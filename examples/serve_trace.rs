//! Capture a serving run end to end: spans, per-request timelines, live
//! metrics and the SLO flight recorder, all from one continuous-batching
//! workload.
//!
//! ```sh
//! cargo run --release --example serve_trace
//! ```
//!
//! Outputs land in `target/`:
//! * `target/serve_trace.trace.json` — Perfetto/Chrome trace of the run.
//! * `target/serve_trace.jsonl` — flat span/instant event stream.
//! * `target/serve_trace.timeline.jsonl` — one request-lifecycle event per
//!   line (admit → prefill/decode → retire), validated as complete chains.
//! * `target/serve_trace.prom` — Prometheus text exposition of every
//!   registered metric at the end of the run.
//! * `target/serve_trace.incidents.json` — flight-recorder captures (the
//!   workload includes an unmeetable deadline, so at least one is
//!   guaranteed).
//!
//! Before exiting, the example asserts the observability invariants CI
//! relies on: every artifact re-validates, the `serve.*` phase spans cover
//! at least 95% of `serve.tick` wall time, every request's timeline chains
//! admit→…→retire, and the flight recorder caught the deadline miss.

use lad::accel::paged::BlockPool;
use lad::model::backend::AttentionKind;
use lad::model::config::ModelConfig;
use lad::model::transformer::Model;
use lad::obs::export::{chrome_trace, jsonl, validate_chrome_trace, validate_jsonl};
use lad::obs::metrics::{prometheus_text, snapshot, validate_prometheus};
use lad::obs::timeline::{drain_timeline, timeline_jsonl, validate_timeline_jsonl};
use lad::obs::StageBreakdown;
use lad::serve::{incidents_json, Engine, IncidentReason, Request, ServeConfig};
use std::time::Duration;

fn prompt(seed: u64, len: usize) -> Vec<u32> {
    (0..len)
        .map(|i| ((i as u64 * 37 + seed * 13) % 256) as u32)
        .collect()
}

fn main() {
    let model = Model::random(ModelConfig::tiny("serve", 2, 32, 2), 71);
    let model_cfg = ModelConfig::tiny("serve", 2, 32, 2);
    let block_bytes = model_cfg.layers * 2 * model_cfg.hidden * 2 * lad::accel::paged::BLOCK_TOKENS;
    let pool = BlockPool::new(&model_cfg, block_bytes * 64);
    let cfg = ServeConfig {
        max_active: 4,
        prefill_chunk: 3,
        parallelism: 2,
        ..ServeConfig::default()
    };

    println!("serve_trace: serving 6 requests with every recorder on\n");
    lad::obs::set_enabled(true);
    lad::obs::metrics::set_metrics_enabled(true);
    lad::obs::timeline::set_timeline_enabled(true);

    let mut engine = Engine::new(&model, &AttentionKind::Exact, pool, cfg);
    // A mixed workload: plain, generous-deadline, speculative, an evicting
    // streaming-window backend, and one request whose zero deadline cannot
    // be met — the guaranteed flight-recorder incident.
    engine.submit(Request::new(0, prompt(0, 9), 12));
    engine.submit(Request::new(1, prompt(1, 6), 10).with_deadline(Duration::from_secs(60)));
    engine.submit(
        Request::new(2, prompt(2, 11), 16)
            .with_speculation(lad::model::spec::SpecConfig::recency(4)),
    );
    engine.submit(
        Request::new(3, prompt(3, 8), 40)
            .with_backend(AttentionKind::StreamingWindow {
                sinks: 4,
                window: 8,
            })
            .arriving_at(2),
    );
    engine.submit(
        Request::new(4, prompt(4, 7), 8)
            .with_deadline(Duration::ZERO)
            .arriving_at(3),
    );
    engine.submit(Request::new(5, prompt(5, 5), 6).arriving_at(12));
    let report = engine.run();

    lad::obs::metrics::set_metrics_enabled(false);
    lad::obs::timeline::set_timeline_enabled(false);
    lad::obs::set_enabled(false);

    // --- Export every artifact, re-validating each like CI does. ---
    let threads = lad::obs::drain();
    let trace = chrome_trace(&threads);
    let lines = jsonl(&threads);
    validate_chrome_trace(&trace).expect("emitted Chrome trace must validate");
    validate_jsonl(&lines).expect("emitted JSONL must validate");

    let (events, dropped) = drain_timeline();
    let timeline_lines = timeline_jsonl(&events);
    let chains = validate_timeline_jsonl(&timeline_lines).expect("timeline chains must validate");

    let snap = snapshot();
    let prom = prometheus_text(&snap);
    validate_prometheus(&prom).expect("Prometheus exposition must validate");

    let incidents = incidents_json(&report.incidents);

    let out_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target");
    std::fs::create_dir_all(&out_dir).expect("create target/");
    for (name, data) in [
        ("serve_trace.trace.json", &trace),
        ("serve_trace.jsonl", &lines),
        ("serve_trace.timeline.jsonl", &timeline_lines),
        ("serve_trace.prom", &prom),
        ("serve_trace.incidents.json", &incidents),
    ] {
        let path = out_dir.join(name);
        std::fs::write(&path, data).expect("write artifact");
        println!("wrote {}", path.display());
    }

    // --- Serving sanity. ---
    assert_eq!(report.outcomes.len(), 6, "every request must retire");

    // --- Span coverage: the serve.* phase spans must account for >= 95%
    // of serve.tick wall time (work hiding outside named phases would make
    // the trace lie about where serving time goes). ---
    let stages = StageBreakdown::from_events(&threads);
    let tick_total = stages.get("serve.tick").map_or(0, |h| h.sum());
    assert!(tick_total > 0, "serve.tick spans missing from capture");
    let phases: u64 = [
        "serve.reserve",
        "serve.admit",
        "serve.decode_step",
        "serve.prefill_chunk",
        "serve.reclaim",
        "serve.idle",
    ]
    .iter()
    .filter_map(|s| stages.get(s))
    .map(|h| h.sum())
    .sum();
    let coverage = phases as f64 / tick_total as f64;
    println!(
        "\nserve.* phase spans cover {:.1}% of serve.tick wall time",
        coverage * 100.0
    );
    assert!(
        coverage >= 0.95,
        "phase spans cover only {:.1}% of serve.tick wall time",
        coverage * 100.0
    );

    // --- Timeline chains: every request admits, works and retires. ---
    assert_eq!(dropped, 0, "timeline ring must not overflow this workload");
    assert_eq!(chains.len(), 6, "one chain per request");
    for (req, chain) in &chains {
        assert!(chain.retired, "request {req} never retired in the timeline");
        assert!(chain.admits >= 1, "request {req} has no admit event");
    }
    println!("validated {} complete request timelines", chains.len());

    // --- Flight recorder: the zero-deadline request must have tripped it,
    // with its own recent timeline attached. ---
    assert!(
        report
            .incidents
            .iter()
            .any(|i| i.request == 4 && i.reason == IncidentReason::DeadlineMiss),
        "flight recorder missed the unmeetable deadline"
    );
    for inc in &report.incidents {
        assert!(
            inc.events.iter().all(|e| e.request == inc.request),
            "incident events must belong to the offending request"
        );
        assert!(!inc.events.is_empty(), "incident without timeline context");
        assert!(
            inc.metrics.get("serve.admissions").is_some(),
            "incident metrics snapshot is missing engine counters"
        );
    }
    println!(
        "flight recorder captured {} incident(s)",
        report.incidents.len()
    );

    // --- Exposition content: the gauges and counters the run must have
    // touched all appear in the Prometheus text. ---
    for name in [
        "serve_admissions",
        "serve_retired",
        "serve_tokens",
        "serve_bytes_moved_exact",
        "serve_bytes_moved_streaming_window",
        "kv_blocks_total",
        "kv_blocks_used",
        "pool_park_nanos",
        "pool_tasks_stolen",
        "obs_dropped_events",
        "timeline_dropped_events",
    ] {
        assert!(
            prom.contains(name),
            "Prometheus exposition is missing `{name}`"
        );
    }
    assert_eq!(
        snap.counter("serve.tokens"),
        report.total_tokens() as u64,
        "token counter drifted"
    );

    println!("\nserve_trace: OK");
}
