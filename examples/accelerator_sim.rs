//! Accelerator simulation: evaluate LLaMA2-7B decode on the A100 baselines
//! and the three LAD configurations across KV-cache lengths — a miniature of
//! the paper's Fig. 7/9.
//!
//! ```sh
//! cargo run --release --example accelerator_sim
//! ```

use lad::accel::config::AccelConfig;
use lad::accel::gpu::GpuBaseline;
use lad::accel::perf::{evaluate_best_batch, Platform};
use lad::accel::workload::workload_stats;
use lad::model::config::ModelConfig;

fn main() {
    let model = ModelConfig::llama2_7b();
    println!("accelerator simulation: {} decode\n", model.name);
    println!(
        "{:>6} {:>5} | {:>12} {:>12} {:>9} | {:>12} {:>12} {:>9}",
        "kv len",
        "batch",
        "GPU attn t/s",
        "LAD attn t/s",
        "speedup",
        "GPU e2e t/s",
        "LAD e2e t/s",
        "speedup"
    );

    for n in [512usize, 1024, 2048, 3072, 4096] {
        let stats = workload_stats(n, 1);
        let gpu = evaluate_best_batch(&Platform::Gpu(GpuBaseline::Vllm), &model, n, &stats);
        let lad = evaluate_best_batch(&Platform::Lad(AccelConfig::lad_3_5()), &model, n, &stats);
        println!(
            "{:>6} {:>5} | {:>12.0} {:>12.0} {:>8.1}x | {:>12.0} {:>12.0} {:>8.1}x",
            n,
            lad.batch,
            gpu.attn_tokens_per_s,
            lad.attn_tokens_per_s,
            lad.attn_tokens_per_s / gpu.attn_tokens_per_s,
            gpu.e2e_tokens_per_s,
            lad.e2e_tokens_per_s,
            lad.e2e_tokens_per_s / gpu.e2e_tokens_per_s,
        );
    }

    println!("\nenergy at n=4096:");
    let stats = workload_stats(4096, 1);
    let gpu = evaluate_best_batch(&Platform::Gpu(GpuBaseline::Vllm), &model, 4096, &stats);
    for cfg in AccelConfig::paper_configs() {
        let lad = evaluate_best_batch(&Platform::Lad(cfg.clone()), &model, 4096, &stats);
        let attn_eff =
            (lad.batch as f64 / lad.attn_energy_j) / (gpu.batch as f64 / gpu.attn_energy_j);
        let e2e_eff = (lad.batch as f64 / lad.e2e_energy_j) / (gpu.batch as f64 / gpu.e2e_energy_j);
        println!(
            "  {:<8} attention energy efficiency {:>5.1}x, end-to-end {:>5.1}x \
             (HBM {:.0}% / SRAM {:.0}% / compute {:.0}%)",
            cfg.name,
            attn_eff,
            e2e_eff,
            lad.energy.hbm_j / lad.energy.total() * 100.0,
            lad.energy.sram_j / lad.energy.total() * 100.0,
            lad.energy.compute_j / lad.energy.total() * 100.0,
        );
    }
    println!(
        "\npaper headline: 10.7x attention / 2.3x e2e speedup, 52.4x / 13.4x energy (group 2)"
    );
}
