//! Capture a decode timeline: run a short LAD decode with the recorder on,
//! export a Perfetto-loadable Chrome trace plus a flat JSONL event stream,
//! and print the per-stage latency table.
//!
//! ```sh
//! cargo run --release --example trace_decode
//! ```
//!
//! Outputs land in `target/`:
//! * `target/trace_decode.trace.json` — open at <https://ui.perfetto.dev>
//!   (or `chrome://tracing`); one track per thread (`main` + pool workers).
//! * `target/trace_decode.jsonl` — one JSON object per event, for grepping
//!   or downstream tooling.
//!
//! Both files are validated before the example exits, and CI runs it.

use lad::core::decoder::LadConfig;
use lad::core::pool::WorkerPool;
use lad::core::stats::StatsSummary;
use lad::model::backend::AttentionKind;
use lad::model::batch::decode_batch_gemm;
use lad::model::config::ModelConfig;
use lad::model::transformer::{Model, Session};
use lad::obs::export::{chrome_trace, jsonl, validate_chrome_trace, validate_jsonl};
use lad::obs::StageBreakdown;
use std::sync::Arc;

const PROMPT_LEN: usize = 24;
const STEPS: usize = 48;

fn prompt(salt: u32) -> Vec<u32> {
    (0..PROMPT_LEN as u32)
        .map(|i| (i * 31 + 5 + salt * 17) % 256)
        .collect()
}

fn main() {
    let model = Model::random(ModelConfig::tiny("trace", 2, 128, 4), 11);
    let kind = AttentionKind::Lad(LadConfig::default());
    // An explicit two-worker pool so the trace shows real worker tracks even
    // on a single-core host (the global pool would have zero workers there).
    let pool = Arc::new(WorkerPool::new(2));

    println!("trace_decode: recording a {STEPS}-step LAD decode (+ a short batched decode)\n");
    lad::obs::set_enabled(true);

    // Single-sequence decode: per-layer head fan-out on the shared pool.
    let mut session = Session::with_pool(&model, &kind, Arc::clone(&pool), 2);
    let pool_before = pool.metrics();
    let mut stats = Vec::new();
    let mut logits = session.prefill(&prompt(0));
    for _ in 0..STEPS {
        let next = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i as u32)
            .expect("non-empty logits");
        logits = session.step(next);
        stats.extend_from_slice(session.last_stats());
    }
    let pool_metrics = pool.metrics().delta(pool_before);

    // A short step-synchronous batched decode, so the batch.* spans show up
    // on the same timeline.
    let batched = decode_batch_gemm(&model, &kind, &[prompt(1), prompt(2)], 8, 2);

    lad::obs::set_enabled(false);
    let threads = lad::obs::drain();

    let trace = chrome_trace(&threads);
    let lines = jsonl(&threads);
    validate_chrome_trace(&trace).expect("emitted Chrome trace must validate");
    validate_jsonl(&lines).expect("emitted JSONL must validate");
    let out_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target");
    std::fs::create_dir_all(&out_dir).expect("create target/");
    let trace_path = out_dir.join("trace_decode.trace.json");
    let jsonl_path = out_dir.join("trace_decode.jsonl");
    std::fs::write(&trace_path, &trace).expect("write trace");
    std::fs::write(&jsonl_path, &lines).expect("write jsonl");

    let events: usize = threads.iter().map(|t| t.events.len()).sum();
    let dropped: u64 = threads.iter().map(|t| t.dropped).sum();
    println!(
        "captured {events} events on {} threads ({dropped} dropped):",
        threads.len()
    );
    for t in &threads {
        println!(
            "  track {:>2}  {:<12}  {:>6} events",
            t.tid,
            t.label,
            t.events.len()
        );
    }
    println!("\nwrote {}", trace_path.display());
    println!(
        "wrote {}  (load the .trace.json in https://ui.perfetto.dev)\n",
        jsonl_path.display()
    );

    // Per-stage latency table, assembled exactly like library users would:
    // histograms from the capture, pool counters from the metered decode.
    let stages = StageBreakdown::from_events(&threads);
    let summary = StatsSummary::from_steps(&stats)
        .with_pool_metrics(pool_metrics)
        .with_stage_latencies(stages.clone());
    println!("{}", summary.stage_table());

    // Span coverage of the single-sequence decode: the per-layer + logits
    // stages should account for nearly all of session.step's wall time.
    let step_total = stages.get("session.step").map_or(0, |h| h.sum());
    let staged: u64 = [
        "layer.qkv_proj",
        "layer.attn",
        "layer.out_proj",
        "layer.mlp",
        "session.logits",
    ]
    .iter()
    .filter_map(|s| stages.get(s))
    .map(|h| h.sum())
    .sum();
    if step_total > 0 {
        let coverage = staged as f64 / step_total as f64;
        println!(
            "stage spans cover {:.1}% of session.step wall time",
            coverage * 100.0
        );
        assert!(
            coverage >= 0.95,
            "stage spans cover only {:.1}% of step wall time",
            coverage * 100.0
        );
    }
    // Batched decode sanity: both sequences advanced and its spans recorded.
    assert_eq!(batched.sequences.len(), 2);
    assert!(
        stages.get("batch.step").is_some(),
        "batch spans missing from capture"
    );
    println!("\ntrace_decode: OK");
}
