//! Locality analysis: measure inter-decoding-step numerical locality of
//! attention scores — from a real (tiny) transformer decode and from the
//! calibrated trace generator — a miniature of the paper's Fig. 2.
//!
//! ```sh
//! cargo run --release --example locality_analysis
//! ```

use lad::core::locality::LocalityAnalyzer;
use lad::math::pwl::PwlExp;
use lad::model::backend::AttentionKind;
use lad::model::config::ModelConfig;
use lad::model::transformer::{Model, Session};
use lad::trace::{ScoreTrace, TraceConfig};

fn main() {
    // -- Part 1: a real decode with score recording.
    println!("== locality in a (random-weight) transformer decode ==");
    let model = Model::random(ModelConfig::tiny("probe", 2, 64, 4), 9);
    let mut session = Session::new(&model, &AttentionKind::Exact);
    session.record_locality(PwlExp::paper_default());
    let prompt: Vec<u32> = (0..64).map(|i| (i * 13 + 5) % 256).collect();
    session.generate_greedy(&prompt, 48);

    for (idx, analyzer) in session.analyzers().unwrap().iter().enumerate() {
        let report = analyzer.report(20);
        println!(
            "layer {} head {}: top-1 {:.1}%  top-1+2 {:.1}%  adjacent {:.1}%  ({} positions)",
            idx / model.config().heads,
            idx % model.config().heads,
            report.top1 * 100.0,
            report.top2 * 100.0,
            report.top2_adjacent * 100.0,
            report.positions
        );
    }

    // -- Part 2: the calibrated generator across KV lengths.
    println!("\n== calibrated trace generator (paper-shaped statistics) ==");
    for n in [512usize, 1024, 2048, 4096] {
        let mut cfg = TraceConfig::calibrated(n - 96, 96);
        cfg.stability = lad::accel::workload::stability_for(n);
        let pwl = cfg.pwl.clone();
        let trace = ScoreTrace::generate(&cfg);
        let mut analyzer = LocalityAnalyzer::new(pwl);
        for row in trace.rows() {
            analyzer.observe_step(row);
        }
        let report = analyzer.report(48);
        println!(
            "n={n:<5} top-1 {:.1}%  top-1+2 {:.1}%  (paper: >74%, rising past 90% at 4096)",
            report.top1 * 100.0,
            report.top2 * 100.0
        );
    }
}
