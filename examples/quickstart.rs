//! Quickstart: run LAD attention on a single head and watch the KV-cache
//! traffic collapse while the output stays glued to exact attention.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lad::core::decoder::{LadAttention, LadConfig};
use lad::core::kv::KvCache;
use lad::core::reference;
use lad::math::pwl::PwlExp;
use lad::math::{vector, Rng};

fn main() {
    let dim = 64;
    let steps = 256;
    println!("LAD quickstart: one attention head, d={dim}, {steps} decoding steps\n");

    let mut head = LadAttention::new(dim, LadConfig::new(PwlExp::accurate_default()));
    // A shadow dense KV cache to compare against exact attention.
    let mut shadow = KvCache::new(dim);
    let mut rng = Rng::new(2024);

    // Keys cluster around a few directions, like real LLM keys do — this is
    // what the directional centers (paper Alg. 1) exploit.
    let directions: Vec<Vec<f32>> = (0..5).map(|_| rng.normal_vec(dim, 1.0)).collect();
    // Queries evolve smoothly across steps, like real hidden states do —
    // this is what produces the inter-step numerical locality LAD exploits.
    let mut q = rng.normal_vec(dim, 1.0);

    let mut worst_err = 0.0f32;
    for step in 0..steps {
        for slot in q.iter_mut() {
            *slot = 0.995 * *slot + 0.05 * rng.normal() as f32;
        }
        let mut k: Vec<f32> = directions[step % directions.len()]
            .iter()
            .map(|&x| x * (0.7 + 0.6 * rng.next_f32()))
            .collect();
        for slot in k.iter_mut() {
            *slot += 0.05 * rng.normal() as f32;
        }
        let v = rng.normal_vec(dim, 1.0);
        shadow.push(&k, &v);

        let out = head.step(&q, &k, &v);
        let exact = reference::exact_attention(&q, &shadow);
        worst_err = worst_err.max(vector::relative_l2(&out.output, &exact));

        if (step + 1) % 64 == 0 {
            let s = out.stats;
            println!(
                "step {:>3}: n={:<4} centers={:<3} active |J|={:<3} window={} \
                 mode-updates |U|={} kv-reads {}/{} positions",
                step + 1,
                s.n,
                s.centers,
                s.active,
                s.window,
                s.mode_updates,
                s.kv_reads(),
                s.n,
            );
        }
    }

    println!("\nworst relative error vs exact attention: {worst_err:.4}");
    println!(
        "intermediate cache size: {} bytes (fixed) vs KV cache {} bytes (growing)",
        head.intermediate_cache().fp16_bytes(),
        head.kv().fp16_bytes(),
    );
    println!("LAD read only the active positions' keys/values each step.");
}
