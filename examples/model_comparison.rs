//! Model comparison: greedy-decode the same transformer under all four
//! attention backends (exact, LAD, Qserve-KV4, H2O) and score each variant's
//! fidelity to the original with ROUGE — a miniature of the paper's Table I.
//!
//! ```sh
//! cargo run --release --example model_comparison
//! ```

use lad::core::decoder::LadConfig;
use lad::eval::datasets::{gsm8k_shaped, SEPARATOR_TOKEN};
use lad::eval::rouge::RougeScores;
use lad::model::backend::AttentionKind;
use lad::model::config::ModelConfig;
use lad::model::transformer::{Model, Session};

fn main() {
    let model = Model::random(ModelConfig::tiny("demo-llm", 2, 64, 4), 42);
    // Long chain-of-thought-style generations: divergence compounds with
    // sequence length, separating the backends.
    let bench = gsm8k_shaped(model.config().vocab as u32, 3, 7);
    println!(
        "model: {} ({} layers, hidden {}, {} heads)\n",
        model.config().name,
        model.config().layers,
        model.config().hidden,
        model.config().heads
    );

    let variants: Vec<(&str, AttentionKind)> = vec![
        ("exact", AttentionKind::Exact),
        ("LAD", AttentionKind::Lad(LadConfig::default())),
        ("Qserve-KV4", AttentionKind::QserveKv4),
        ("H2O(0.1/0.1)", AttentionKind::h2o_default()),
    ];

    for (prompt_idx, prompt) in bench.prompts.iter().enumerate() {
        println!("prompt {} ({} tokens):", prompt_idx, prompt.len());
        let mut reference = Vec::new();
        for (name, kind) in &variants {
            let mut session = Session::new(&model, kind);
            let generated = session.generate_greedy(prompt, bench.gen_len);
            if *name == "exact" {
                reference = generated.clone();
                println!("  {name:<13} -> {} tokens (reference)", generated.len());
            } else {
                let scores = RougeScores::compute(&reference, &generated, Some(SEPARATOR_TOKEN));
                let agree = reference
                    .iter()
                    .zip(&generated)
                    .filter(|(a, b)| a == b)
                    .count();
                println!(
                    "  {name:<13} -> rouge1 {:>5.1}%  rougeL {:>5.1}%  \
                     exact-match {agree}/{}",
                    scores.rouge1 * 100.0,
                    scores.rouge_l * 100.0,
                    reference.len()
                );
            }
        }
        println!();
    }
    println!("expected ordering (paper Table I): LAD >> Qserve-KV4 >> H2O");
}
