//! Hardware pipeline: drive one attention head through the functional
//! module models (EAS → APID → MD → AC, paper Sec. IV-B) and compare the
//! hardware dataflow against the golden algorithmic model, then show the
//! Fig. 6 end-to-end schedule of a full decode step.
//!
//! ```sh
//! cargo run --release --example hardware_pipeline
//! ```

use lad::accel::config::AccelConfig;
use lad::accel::modules::TileEngine;
use lad::accel::schedule::{simulate_step, PeriodKind};
use lad::accel::workload::workload_stats;
use lad::core::kv::KvCache;
use lad::core::reference;
use lad::math::pwl::PwlExp;
use lad::math::{vector, Rng};
use lad::model::config::ModelConfig;

fn main() {
    // -- Part 1: the per-step module pipeline.
    println!("== tile module pipeline (EAS -> APID -> MD -> AC) ==\n");
    let d = 32;
    let mut tile = TileEngine::new(d, PwlExp::accurate_default());
    let mut shadow = KvCache::new(d);
    let mut rng = Rng::new(0xacce1);
    let dirs: Vec<Vec<f32>> = (0..6).map(|_| rng.normal_vec(d, 1.0)).collect();
    let mut q = rng.normal_vec(d, 1.0);
    let mut worst = 0.0f32;
    for step in 0..160 {
        for slot in q.iter_mut() {
            *slot = 0.99 * *slot + 0.1 * rng.normal() as f32;
        }
        let mut k: Vec<f32> = dirs[step % 6]
            .iter()
            .map(|&x| x * (0.8 + 0.4 * rng.next_f32()))
            .collect();
        for slot in k.iter_mut() {
            *slot += 0.03 * rng.normal() as f32;
        }
        let v = rng.normal_vec(d, 1.0);
        shadow.push(&k, &v);
        let result = tile.step(&q, &k, &v);
        let exact = reference::exact_attention(&q, &shadow);
        worst = worst.max(vector::relative_l2(&result.output, &exact));
        if (step + 1) % 40 == 0 {
            let (eas, apid, md, ac) = result.stage_cycles;
            println!(
                "step {:>3}: n={:<3} |J|={:<3} |U|={} centers={:<3} \
                 cycles EAS {eas} / APID {apid} / MD {md} / AC {ac} (bottleneck {})",
                step + 1,
                result.n,
                result.active,
                result.updates,
                tile.centers().len(),
                result.bottleneck_cycles()
            );
        }
    }
    println!("\nworst relative error vs exact attention: {worst:.4}");

    // -- Part 2: the Fig. 6 schedule of one decode step.
    println!("\n== end-to-end schedule of one decode step (LLaMA2-7B, n=2048, batch 8) ==\n");
    let model = ModelConfig::llama2_7b();
    let stats = workload_stats(2048, 1);
    let timeline = simulate_step(&AccelConfig::lad_2_5(), &model, 2048, &stats, 8);
    for p in timeline.periods.iter().take(6) {
        println!(
            "layer {:>2} {:<9} {:>8.2} us -> {:>8.2} us  ({:>6.1} KB HBM)",
            p.layer,
            match p.kind {
                PeriodKind::Qkv => "QKV",
                PeriodKind::Attention => "attention",
                PeriodKind::Rest => "rest",
            },
            p.start * 1e6,
            p.end * 1e6,
            p.hbm_bytes / 1024.0
        );
    }
    println!("... ({} periods total)", timeline.periods.len());
    println!(
        "\nstep latency {:.2} ms, attention share {:.1}%, prefetched {:.1} MB under QKV periods",
        timeline.total_seconds * 1e3,
        timeline.attention_share() * 100.0,
        timeline.prefetch_bytes / 1e6
    );
}
