//! Property tests of the shared-pool batch decoder.
//!
//! For arbitrary seeded configurations, `decode_batch` on the shared worker
//! pool must produce exactly the tokens and (algorithmic) `StatsSummary`
//! that decoding each sequence alone, sequentially and inline, produces.
//! This is the determinism contract of `lad_core::pool` exercised from the
//! outside, across model shapes, batch sizes, fan-out widths and backends.

use lad_core::decoder::LadConfig;
use lad_core::pool::WorkerPool;
use lad_core::stats::StatsSummary;
use lad_model::backend::AttentionKind;
use lad_model::batch::{decode_batch, decode_batch_on};
use lad_model::config::ModelConfig;
use lad_model::transformer::{Model, Session};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic prompt for sample `s` of a seeded batch.
fn prompt(seed: u64, s: usize, len: usize) -> Vec<u32> {
    (0..len)
        .map(|i| ((i as u64 * 37 + seed * 11 + s as u64 * 13) % 256) as u32)
        .collect()
}

proptest! {
    #[test]
    fn pooled_batch_matches_per_sequence_sequential(
        seed in 0u64..5000,
        batch in 1usize..4,
        prompt_len in 1usize..5,
        steps in 1usize..6,
        parallelism in 2usize..5,
        workers in 0usize..3,
        lad in 0u8..2,
    ) {
        let model = Model::random(ModelConfig::tiny("prop", 1, 16, 2), seed);
        let kind = if lad == 1 {
            AttentionKind::Lad(LadConfig::default())
        } else {
            AttentionKind::Exact
        };
        let prompts: Vec<Vec<u32>> =
            (0..batch).map(|s| prompt(seed, s, prompt_len)).collect();

        // Reference: each sequence decoded alone, inline, head fan-out 1.
        let mut expected_sequences = Vec::new();
        let mut expected_stats = Vec::new();
        for p in &prompts {
            let mut session = Session::with_parallelism(&model, &kind, 1);
            expected_sequences.push(session.generate_greedy(p, steps));
            expected_stats.extend(session.last_stats().iter().copied());
        }

        // Same batch on a dedicated shared pool: sequence-level tasks that
        // each fan their heads out on the same queue.
        let pool = Arc::new(WorkerPool::new(workers));
        let pooled = decode_batch_on(&pool, &model, &kind, &prompts, steps, parallelism);

        prop_assert_eq!(&pooled.sequences, &expected_sequences);
        prop_assert_eq!(pooled.final_stats.len(), expected_stats.len());
        let expected_summary = StatsSummary::from_steps(&expected_stats);
        let pooled_algo: Vec<_> =
            pooled.final_stats.iter().map(|s| s.algorithmic()).collect();
        let expected_algo: Vec<_> =
            expected_stats.iter().map(|s| s.algorithmic()).collect();
        prop_assert_eq!(&pooled_algo, &expected_algo);
        prop_assert_eq!(
            StatsSummary::from_steps(&pooled_algo),
            StatsSummary::from_steps(&expected_algo)
        );
        // The summary means the algorithm determines must survive the pool
        // path end-to-end (den fallbacks included).
        let pooled_summary = pooled.stats_summary();
        prop_assert_eq!(
            pooled_summary.total_den_fallbacks,
            expected_summary.total_den_fallbacks
        );
        prop_assert_eq!(pooled_summary.mean_kv_reads, expected_summary.mean_kv_reads);

        // And the global-pool entry point agrees with the dedicated pool.
        let global = decode_batch(&model, &kind, &prompts, steps, parallelism);
        prop_assert_eq!(&global.sequences, &expected_sequences);
    }
}
