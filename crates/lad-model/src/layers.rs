//! Transformer layer primitives: normalisation, activations, linear layers
//! and rotary position embeddings.
//!
//! These are the operators the LAD accelerator's SFM and VPUs execute
//! (paper Sec. IV-B): LayerNorm/RMSNorm, RoPE, GELU/SiLU and dense
//! projections.

use lad_math::gemm::{gemm_bt_into, GemmScratch};
use lad_math::quant::{gemm_bt_q8_into, matvec_q8_into};
use lad_math::simd::{active_kernel, Kernel};
use lad_math::{vector, Matrix, Q8Matrix, Rng};

/// LayerNorm with learned scale (`gamma`) and shift (`beta`).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    eps: f32,
}

impl LayerNorm {
    /// Identity-initialised LayerNorm of width `dim`.
    pub fn new(dim: usize) -> LayerNorm {
        LayerNorm {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            eps: 1e-5,
        }
    }

    /// Applies `gamma · (x − E[x]) / √(V[x] + eps) + beta`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the layer width.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; x.len()];
        self.forward_into(x, &mut out);
        out
    }

    /// In-place [`LayerNorm::forward`]: writes into `out` (overwritten), so
    /// reused scratch rows never allocate. Bit-identical to `forward`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `out.len()` differs from the layer width.
    pub fn forward_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.gamma.len(), "layernorm: width mismatch");
        assert_eq!(out.len(), self.gamma.len(), "layernorm: output mismatch");
        let n = x.len() as f32;
        let mean = x.iter().sum::<f32>() / n;
        let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv = 1.0 / (var + self.eps).sqrt();
        for (slot, ((&v, &g), &b)) in out
            .iter_mut()
            .zip(x.iter().zip(&self.gamma).zip(&self.beta))
        {
            *slot = g * (v - mean) * inv + b;
        }
    }
}

/// RMSNorm with learned scale.
#[derive(Debug, Clone, PartialEq)]
pub struct RmsNorm {
    gamma: Vec<f32>,
    eps: f32,
}

impl RmsNorm {
    /// Identity-initialised RMSNorm of width `dim`.
    pub fn new(dim: usize) -> RmsNorm {
        RmsNorm {
            gamma: vec![1.0; dim],
            eps: 1e-5,
        }
    }

    /// Applies `gamma · x / rms(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the layer width.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; x.len()];
        self.forward_into(x, &mut out);
        out
    }

    /// In-place [`RmsNorm::forward`]: writes into `out` (overwritten), so
    /// reused scratch rows never allocate. Bit-identical to `forward`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `out.len()` differs from the layer width.
    pub fn forward_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.gamma.len(), "rmsnorm: width mismatch");
        assert_eq!(out.len(), self.gamma.len(), "rmsnorm: output mismatch");
        let n = x.len() as f32;
        let ms = x.iter().map(|&v| v * v).sum::<f32>() / n;
        let inv = 1.0 / (ms + self.eps).sqrt();
        for (slot, (&v, &g)) in out.iter_mut().zip(x.iter().zip(&self.gamma)) {
            *slot = g * v * inv;
        }
    }
}

/// Tanh-approximated GELU (the OPT activation).
pub fn gelu(x: f32) -> f32 {
    let c = (2.0f32 / std::f32::consts::PI).sqrt();
    0.5 * x * (1.0 + (c * (x + 0.044_715 * x * x * x)).tanh())
}

/// SiLU (swish) activation used by LLaMA's SwiGLU MLP.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// A dense projection `y = W · x` (no bias; row-major `out × in` weight).
///
/// Optionally carries an int8 per-output-row-scaled copy of the weights
/// ([`Linear::quantize_int8`]); once present, every forward variant runs the
/// `W8A32` kernels of [`lad_math::quant`] instead — quartering weight bytes
/// moved at a bounded error (`|w − s·q| ≤ s/2` per weight). The per-sample
/// and batched quantised paths stay bit-identical to each other, so the
/// batch-vs-solo differential contract survives quantisation.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    weight: Matrix,
    q8: Option<Q8Matrix>,
}

impl Linear {
    /// Random initialisation with scale `1/√fan_in` (keeps activations
    /// bounded through depth).
    pub fn random(out_dim: usize, in_dim: usize, rng: &mut Rng) -> Linear {
        let scale = 1.0 / (in_dim as f32).sqrt();
        let data = rng.normal_vec(out_dim * in_dim, scale);
        Linear {
            weight: Matrix::from_flat(out_dim, in_dim, data),
            q8: None,
        }
    }

    /// Wraps an explicit weight matrix.
    pub fn from_matrix(weight: Matrix) -> Linear {
        Linear { weight, q8: None }
    }

    /// Quantises the weights to int8 with per-output-row scales; subsequent
    /// forwards run the quantised kernels. The f32 weights are retained as
    /// the reference (and for [`Linear::dequantize_int8`] round-trips).
    pub fn quantize_int8(&mut self) {
        self.q8 = Some(Q8Matrix::quantize(&self.weight));
    }

    /// Drops the int8 copy, returning to the exact f32 path.
    pub fn dequantize_int8(&mut self) {
        self.q8 = None;
    }

    /// `true` when forwards run the int8 kernels.
    pub fn is_quantized(&self) -> bool {
        self.q8.is_some()
    }

    /// Bytes of weight data a forward pass streams: the int8 copy when
    /// quantised, the f32 matrix otherwise.
    pub fn weight_bytes(&self) -> usize {
        match &self.q8 {
            Some(q) => q.bytes(),
            None => 4 * self.weight.rows() * self.weight.cols(),
        }
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Applies the projection.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.out_dim()];
        self.forward_into(x, &mut out);
        out
    }

    /// Allocation-free [`Linear::forward`]: writes `W · x` into `out`
    /// (overwritten). Bit-identical to `forward`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()` or `out.len() != out_dim()`.
    pub fn forward_into(&self, x: &[f32], out: &mut [f32]) {
        match &self.q8 {
            Some(q) => matvec_q8_into(q, x, out),
            None => self.weight.matvec_into(x, out),
        }
    }

    /// Cross-sample batched projection: treats `x` as a row-major
    /// `batch × in_dim` activation matrix and writes the row-major
    /// `batch × out_dim` result into `out` with **one** blocked GEMM, so the
    /// weight matrix is streamed once per `lad_math::gemm::MR`-row block
    /// instead of once per sample. Row `s` of the result is bit-identical to
    /// `forward(row s)` (the [`lad_math::gemm`] accumulation contract).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != batch * in_dim()` or
    /// `out.len() != batch * out_dim()`.
    pub fn forward_batch_into(
        &self,
        batch: usize,
        x: &[f32],
        out: &mut [f32],
        scratch: &mut GemmScratch,
    ) {
        let _span = lad_obs::span(gemm_variant_span(self.q8.is_some()));
        match &self.q8 {
            Some(q) => gemm_bt_q8_into(batch, x, q, out, scratch),
            None => gemm_bt_into(
                batch,
                self.out_dim(),
                self.in_dim(),
                x,
                self.weight.as_slice(),
                out,
                scratch,
            ),
        }
    }
}

/// Static span name for the microkernel a batched projection will actually
/// run, so traces attribute GEMM time to the (precision, kernel) pair taken.
fn gemm_variant_span(quantized: bool) -> &'static str {
    match (quantized, active_kernel()) {
        (false, Kernel::Scalar) => "kernel.gemm_f32_scalar",
        (false, Kernel::Simd) => "kernel.gemm_f32_simd",
        (true, Kernel::Scalar) => "kernel.gemm_i8_scalar",
        (true, Kernel::Simd) => "kernel.gemm_i8_simd",
    }
}

/// Rotary position embedding for one head vector (`dim` must be even).
///
/// Rotates consecutive pairs `(x[2i], x[2i+1])` by `position · θᵢ` with
/// `θᵢ = base^(−2i/dim)` — the LLaMA formulation the SFM implements
/// (paper Sec. IV-B(6)).
///
/// # Panics
///
/// Panics if `x.len()` is odd.
pub fn rope(x: &[f32], position: usize, base: f32) -> Vec<f32> {
    let mut out = x.to_vec();
    rope_in_place(&mut out, position, base);
    out
}

/// In-place [`rope`]: rotates `x` directly, so per-head projection spans can
/// be rotated inside their shared buffer without allocating.
///
/// # Panics
///
/// Panics if `x.len()` is odd.
pub fn rope_in_place(x: &mut [f32], position: usize, base: f32) {
    assert!(x.len().is_multiple_of(2), "rope: dimension must be even");
    let d = x.len();
    for i in 0..d / 2 {
        let theta = (position as f32) * base.powf(-2.0 * i as f32 / d as f32);
        let (sin, cos) = theta.sin_cos();
        let (even, odd) = (x[2 * i], x[2 * i + 1]);
        x[2 * i] = even * cos - odd * sin;
        x[2 * i + 1] = even * sin + odd * cos;
    }
}

/// Standard RoPE base.
pub const ROPE_BASE: f32 = 10_000.0;

/// Element-wise residual add.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn residual_add(x: &mut [f32], delta: &[f32]) {
    vector::axpy(x, 1.0, delta);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let ln = LayerNorm::new(4);
        let y = ln.forward(&[1.0, 2.0, 3.0, 4.0]);
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rmsnorm_unit_rms() {
        let norm = RmsNorm::new(3);
        let y = norm.forward(&[3.0, 0.0, 4.0]);
        let ms: f32 = y.iter().map(|v| v * v).sum::<f32>() / 3.0;
        assert!((ms - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_reference_points() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
        // Asymptotically identity for large x.
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn silu_reference_points() {
        assert!(silu(0.0).abs() < 1e-7);
        assert!((silu(1.0) - 0.7311).abs() < 1e-3);
        assert!(silu(-20.0).abs() < 1e-3);
    }

    #[test]
    fn linear_shapes_and_determinism() {
        let mut rng1 = Rng::new(5);
        let mut rng2 = Rng::new(5);
        let a = Linear::random(3, 2, &mut rng1);
        let b = Linear::random(3, 2, &mut rng2);
        assert_eq!(a, b);
        assert_eq!(a.out_dim(), 3);
        assert_eq!(a.in_dim(), 2);
        assert_eq!(a.forward(&[1.0, 0.0]).len(), 3);
    }

    #[test]
    fn forward_into_variants_match_allocating_forward() {
        let mut rng = Rng::new(9);
        let x: Vec<f32> = rng.normal_vec(6, 1.0);
        let ln = LayerNorm::new(6);
        let mut out = vec![7.0f32; 6];
        ln.forward_into(&x, &mut out);
        assert_eq!(out, ln.forward(&x));
        let rn = RmsNorm::new(6);
        rn.forward_into(&x, &mut out);
        assert_eq!(out, rn.forward(&x));
        let lin = Linear::random(4, 6, &mut rng);
        let mut out = vec![7.0f32; 4];
        lin.forward_into(&x, &mut out);
        assert_eq!(out, lin.forward(&x));
    }

    #[test]
    fn batched_projection_rows_match_per_sample_forward() {
        let mut rng = Rng::new(10);
        let lin = Linear::random(5, 8, &mut rng);
        let batch = 3;
        let x: Vec<f32> = rng.normal_vec(batch * 8, 1.0);
        let mut out = vec![0.0f32; batch * 5];
        lin.forward_batch_into(batch, &x, &mut out, &mut GemmScratch::default());
        for s in 0..batch {
            assert_eq!(
                &out[s * 5..(s + 1) * 5],
                &lin.forward(&x[s * 8..(s + 1) * 8])[..],
                "sample {s}"
            );
        }
    }

    #[test]
    fn quantized_linear_is_close_and_streams_fewer_bytes() {
        let mut rng = Rng::new(23);
        let mut lin = Linear::random(24, 32, &mut rng);
        let x = rng.normal_vec(32, 1.0);
        let exact = lin.forward(&x);
        let f32_bytes = lin.weight_bytes();
        assert_eq!(f32_bytes, 4 * 24 * 32);
        lin.quantize_int8();
        assert!(lin.is_quantized());
        assert!(lin.weight_bytes() * 3 < f32_bytes, "int8 ~4x smaller");
        let quant = lin.forward(&x);
        let a_l1: f32 = x.iter().map(|v| v.abs()).sum();
        for (j, (&q, &e)) in quant.iter().zip(&exact).enumerate() {
            // |c_q - c| ≤ (s_j/2)·Σ|x| + slack; scales are private here so
            // bound via the row absmax the scale derives from.
            assert!((q - e).abs() <= a_l1 * 0.01 + 1e-4, "row {j}: {q} vs {e}");
        }
        lin.dequantize_int8();
        assert_eq!(lin.forward(&x), exact, "dequantize restores the f32 path");
    }

    #[test]
    fn quantized_batch_rows_match_per_sample_forward_bitwise() {
        let mut rng = Rng::new(24);
        let mut lin = Linear::random(7, 12, &mut rng);
        lin.quantize_int8();
        let batch = 5;
        let x = rng.normal_vec(batch * 12, 1.0);
        for kernel in [lad_math::Kernel::Scalar, lad_math::Kernel::Simd] {
            let mut out = vec![0.0f32; batch * 7];
            lad_math::with_kernel(kernel, || {
                lin.forward_batch_into(batch, &x, &mut out, &mut GemmScratch::default());
            });
            for s in 0..batch {
                assert_eq!(
                    &out[s * 7..(s + 1) * 7],
                    &lin.forward(&x[s * 12..(s + 1) * 12])[..],
                    "sample {s}"
                );
            }
        }
    }

    #[test]
    fn rope_preserves_norm() {
        let x = vec![1.0, 2.0, -0.5, 0.25];
        let y = rope(&x, 17, ROPE_BASE);
        let nx: f32 = x.iter().map(|v| v * v).sum();
        let ny: f32 = y.iter().map(|v| v * v).sum();
        assert!((nx - ny).abs() < 1e-4);
    }

    #[test]
    fn rope_in_place_matches_rope() {
        let x = vec![0.9f32, -0.2, 1.3, 0.4, -0.8, 0.05];
        for pos in [0usize, 1, 17, 999] {
            let mut y = x.clone();
            rope_in_place(&mut y, pos, ROPE_BASE);
            assert_eq!(y, rope(&x, pos, ROPE_BASE));
        }
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let x = vec![0.3, -0.7, 1.1, 0.0];
        assert_eq!(rope(&x, 0, ROPE_BASE), x);
    }

    #[test]
    fn rope_relative_dot_products() {
        // The defining property: <rope(q, m), rope(k, n)> depends only on
        // m - n.
        let q = vec![0.5, -1.0, 0.25, 0.75];
        let k = vec![1.0, 0.5, -0.5, 0.3];
        let dot = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        let d1 = dot(&rope(&q, 10, ROPE_BASE), &rope(&k, 7, ROPE_BASE));
        let d2 = dot(&rope(&q, 23, ROPE_BASE), &rope(&k, 20, ROPE_BASE));
        assert!((d1 - d2).abs() < 1e-4);
    }

    #[test]
    fn residual_add_accumulates() {
        let mut x = vec![1.0, 2.0];
        residual_add(&mut x, &[0.5, -0.5]);
        assert_eq!(x, vec![1.5, 1.5]);
    }
}
