//! Pluggable attention backends.
//!
//! Each attention head of a decode session runs one of four backends,
//! mirroring the paper's comparison set (Sec. V-A):
//!
//! * [`AttentionKind::Exact`] — the original model (vLLM baseline).
//! * [`AttentionKind::Lad`] — LAD attention ([`lad_core`]).
//! * [`AttentionKind::QserveKv4`] — Qserve's A16W16KV4 configuration: the KV
//!   cache is quantised to 4 bits, everything else fp16.
//! * [`AttentionKind::H2o`] — the Heavy-Hitter Oracle: only the top
//!   `heavy_ratio` cumulative-attention positions plus the `recent_ratio`
//!   most recent ones are kept; the rest are evicted permanently.

use lad_core::decoder::{LadAttention, LadCheckpoint, LadConfig};
use lad_core::kv::{KvCache, KvPrecision};
use lad_core::reference;
use lad_core::stats::StepStats;
use lad_math::softmax::softmax;
use lad_math::vector;

/// Which attention algorithm a head runs.
#[derive(Debug, Clone)]
pub enum AttentionKind {
    /// Exact softmax attention over the full KV cache.
    Exact,
    /// Exact softmax attention over an fp16-stored KV cache: the same
    /// algorithm as [`AttentionKind::Exact`], but keys/values are rounded to
    /// IEEE binary16 on write and stream at half the bytes through the
    /// precision-aware read kernels ([`lad_core::kv::KvPrecision::F16`]).
    /// Bounded-error, not bit-exact — the fp16 analogue of the accelerator's
    /// on-chip number format (paper Sec. V-A).
    ExactF16,
    /// LAD attention with the given configuration.
    Lad(LadConfig),
    /// Qserve-style 4-bit KV-cache quantisation (per-vector asymmetric).
    QserveKv4,
    /// H2O eviction with heavy/recent keep ratios (paper default 0.1/0.1).
    H2o {
        /// Fraction of positions kept by cumulative attention mass.
        heavy_ratio: f64,
        /// Fraction of most recent positions always kept.
        recent_ratio: f64,
    },
    /// StreamingLLM-style window attention (the paper's cited window-based
    /// KV discard class): a few initial "attention sink" positions plus a
    /// sliding window of recent positions are kept, everything else is
    /// evicted.
    StreamingWindow {
        /// Initial positions always kept (attention sinks).
        sinks: usize,
        /// Recent positions kept.
        window: usize,
    },
}

impl AttentionKind {
    /// The paper's H2O default configuration.
    pub fn h2o_default() -> AttentionKind {
        AttentionKind::H2o {
            heavy_ratio: 0.1,
            recent_ratio: 0.1,
        }
    }

    /// A StreamingLLM-style default: 4 sinks + 256 recent positions.
    pub fn streaming_default() -> AttentionKind {
        AttentionKind::StreamingWindow {
            sinks: 4,
            window: 256,
        }
    }
}

/// Output of one head step.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadStepOutput {
    /// Attention output (length `d`).
    pub output: Vec<f32>,
    /// LAD instrumentation (only for the LAD backend).
    pub stats: Option<StepStats>,
    /// Shifted scores (`sᵢ − m`) when recording was requested and the backend
    /// computes dense scores.
    pub shifted_scores: Option<Vec<f64>>,
}

/// Runtime state of one attention head.
///
/// Variant sizes differ widely (the LAD state carries the intermediate
/// caches); head states are long-lived, one per (layer, head), so no boxing
/// is warranted.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum HeadState {
    /// Full-cache exact softmax.
    Exact {
        /// The head's KV cache.
        kv: KvCache,
    },
    /// Full-cache exact softmax over fp16 KV arenas.
    ExactF16 {
        /// The head's fp16 KV cache.
        kv: KvCache,
    },
    /// LAD decoder state.
    Lad(LadAttention),
    /// Exact attention over a 4-bit-quantised KV cache.
    Qserve {
        /// Stores *dequantised* keys/values (quantisation error baked in).
        kv: KvCache,
    },
    /// H2O eviction state.
    H2o(H2oState),
    /// StreamingLLM sink+window state.
    Streaming {
        /// The head's KV cache (evicted positions masked, not freed).
        kv: KvCache,
        /// Liveness per position.
        alive: Vec<bool>,
        /// Sink count.
        sinks: usize,
        /// Window size.
        window: usize,
    },
}

/// State of an H2O head: KV cache plus cumulative attention mass and
/// liveness flags.
#[derive(Debug, Clone)]
pub struct H2oState {
    kv: KvCache,
    cumulative: Vec<f64>,
    alive: Vec<bool>,
    heavy_ratio: f64,
    recent_ratio: f64,
}

/// Snapshot of a [`HeadState`], taken before a speculative row so rejected
/// drafts can be rolled back bit-exactly ([`HeadState::restore`]).
///
/// Every backend only *appends* to its KV arena, so the arena is rewound by
/// truncation; metadata that backends mutate in place for old positions
/// (H2O's cumulative mass and liveness, streaming liveness, LAD's
/// counters/caches) is copied.
#[derive(Debug, Clone)]
pub enum HeadCheckpoint {
    /// Exact and Qserve heads: the arena length is the whole state.
    KvLen(usize),
    /// LAD head snapshot (boxed: the copied caches dwarf the other variants).
    Lad(Box<LadCheckpoint>),
    /// H2O head: arena length plus cumulative mass and liveness.
    H2o {
        /// KV arena length at the checkpoint.
        kv_len: usize,
        /// Cumulative attention mass per position.
        cumulative: Vec<f64>,
        /// Liveness per position.
        alive: Vec<bool>,
    },
    /// Streaming head: arena length plus liveness.
    Streaming {
        /// KV arena length at the checkpoint.
        kv_len: usize,
        /// Liveness per position.
        alive: Vec<bool>,
    },
}

impl HeadState {
    /// Creates head state for dimension `dim` under `kind`.
    pub fn new(dim: usize, kind: &AttentionKind) -> HeadState {
        match kind {
            AttentionKind::Exact => HeadState::Exact {
                kv: KvCache::new(dim),
            },
            AttentionKind::ExactF16 => HeadState::ExactF16 {
                kv: KvCache::with_precision(dim, KvPrecision::F16),
            },
            AttentionKind::Lad(cfg) => HeadState::Lad(LadAttention::new(dim, cfg.clone())),
            AttentionKind::QserveKv4 => HeadState::Qserve {
                kv: KvCache::new(dim),
            },
            AttentionKind::H2o {
                heavy_ratio,
                recent_ratio,
            } => HeadState::H2o(H2oState {
                kv: KvCache::new(dim),
                cumulative: Vec::new(),
                alive: Vec::new(),
                heavy_ratio: *heavy_ratio,
                recent_ratio: *recent_ratio,
            }),
            AttentionKind::StreamingWindow { sinks, window } => HeadState::Streaming {
                kv: KvCache::new(dim),
                alive: Vec::new(),
                sinks: *sinks,
                window: *window,
            },
        }
    }

    /// Current KV length (for evicting backends this counts live positions).
    pub fn live_len(&self) -> usize {
        match self {
            HeadState::Exact { kv } | HeadState::ExactF16 { kv } | HeadState::Qserve { kv } => {
                kv.len()
            }
            HeadState::Lad(head) => head.kv().len(),
            HeadState::H2o(state) => state.alive.iter().filter(|&&a| a).count(),
            HeadState::Streaming { alive, .. } => alive.iter().filter(|&&a| a).count(),
        }
    }

    /// Bytes this head's KV arenas occupy right now (fp16 caches count two
    /// bytes per element, f32 four). Qserve stores *dequantised* f32 copies,
    /// so its in-memory footprint is the f32 one even though the modelled
    /// accelerator format is 4-bit.
    pub fn kv_bytes(&self) -> usize {
        match self {
            HeadState::Exact { kv }
            | HeadState::ExactF16 { kv }
            | HeadState::Qserve { kv }
            | HeadState::Streaming { kv, .. } => kv.stored_bytes(),
            HeadState::Lad(head) => head.kv().stored_bytes(),
            HeadState::H2o(state) => state.kv.stored_bytes(),
        }
    }

    /// Captures this head's decoding state for a later [`restore`].
    ///
    /// [`restore`]: HeadState::restore
    pub fn checkpoint(&self) -> HeadCheckpoint {
        match self {
            HeadState::Exact { kv } | HeadState::ExactF16 { kv } | HeadState::Qserve { kv } => {
                HeadCheckpoint::KvLen(kv.len())
            }
            HeadState::Lad(head) => HeadCheckpoint::Lad(Box::new(head.checkpoint())),
            HeadState::H2o(state) => HeadCheckpoint::H2o {
                kv_len: state.kv.len(),
                cumulative: state.cumulative.clone(),
                alive: state.alive.clone(),
            },
            HeadState::Streaming { kv, alive, .. } => HeadCheckpoint::Streaming {
                kv_len: kv.len(),
                alive: alive.clone(),
            },
        }
    }

    /// Rewinds this head to `ck`: positions appended since the checkpoint
    /// are truncated out of the KV arena and in-place metadata is restored,
    /// so subsequent steps are bit-identical to never having decoded past it.
    ///
    /// # Panics
    ///
    /// Panics if `ck` came from a different backend variant, or if the arena
    /// has since been truncated below the checkpoint.
    pub fn restore(&mut self, ck: &HeadCheckpoint) {
        match (self, ck) {
            (
                HeadState::Exact { kv } | HeadState::ExactF16 { kv } | HeadState::Qserve { kv },
                HeadCheckpoint::KvLen(len),
            ) => {
                kv.truncate(*len);
            }
            (HeadState::Lad(head), HeadCheckpoint::Lad(lck)) => head.restore(lck),
            (
                HeadState::H2o(state),
                HeadCheckpoint::H2o {
                    kv_len,
                    cumulative,
                    alive,
                },
            ) => {
                state.kv.truncate(*kv_len);
                state.cumulative.clone_from(cumulative);
                state.alive.clone_from(alive);
            }
            (
                HeadState::Streaming { kv, alive, .. },
                HeadCheckpoint::Streaming {
                    kv_len,
                    alive: ck_alive,
                },
            ) => {
                kv.truncate(*kv_len);
                alive.clone_from(ck_alive);
            }
            _ => panic!("HeadState::restore: checkpoint from a different backend"),
        }
    }

    /// Executes one decoding step.
    pub fn step(&mut self, q: &[f32], k: &[f32], v: &[f32], record_scores: bool) -> HeadStepOutput {
        match self {
            HeadState::Exact { kv } => {
                let _kv_span = lad_obs::span("kernel.kv_read_f32");
                kv.push(k, v);
                let scores = reference::scores(q, kv);
                let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let output = reference::exact_attention(q, kv);
                HeadStepOutput {
                    output,
                    stats: None,
                    shifted_scores: record_scores.then(|| scores.iter().map(|s| s - m).collect()),
                }
            }
            HeadState::ExactF16 { kv } => {
                let _kv_span = lad_obs::span("kernel.kv_read_f16");
                kv.push(k, v);
                let scores = reference::scores(q, kv);
                let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let output = reference::exact_attention(q, kv);
                HeadStepOutput {
                    output,
                    stats: None,
                    shifted_scores: record_scores.then(|| scores.iter().map(|s| s - m).collect()),
                }
            }
            HeadState::Lad(head) => {
                let step = head.step(q, k, v);
                HeadStepOutput {
                    output: step.output,
                    stats: Some(step.stats),
                    shifted_scores: None,
                }
            }
            HeadState::Qserve { kv } => {
                kv.push(&quantize_int4(k), &quantize_int4(v));
                HeadStepOutput {
                    output: reference::exact_attention(q, kv),
                    stats: None,
                    shifted_scores: None,
                }
            }
            HeadState::H2o(state) => HeadStepOutput {
                output: state.step(q, k, v),
                stats: None,
                shifted_scores: None,
            },
            HeadState::Streaming {
                kv,
                alive,
                sinks,
                window,
            } => {
                kv.push(k, v);
                alive.push(true);
                let n = kv.len();
                // Evict the position leaving the window (sinks survive).
                if n > *sinks + *window {
                    let leaving = n - *window - 1;
                    if leaving >= *sinks {
                        alive[leaving] = false;
                    }
                }
                let qs = reference::scale_query(q);
                let live: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
                let scores: Vec<f32> = live.iter().map(|&i| vector::dot(&qs, kv.key(i))).collect();
                let probs = softmax(&scores);
                let mut output = vec![0.0f32; kv.dim()];
                for (&i, &p) in live.iter().zip(&probs) {
                    vector::axpy(&mut output, p, kv.value(i));
                }
                HeadStepOutput {
                    output,
                    stats: None,
                    shifted_scores: None,
                }
            }
        }
    }
}

impl H2oState {
    fn step(&mut self, q: &[f32], k: &[f32], v: &[f32]) -> Vec<f32> {
        self.kv.push(k, v);
        self.cumulative.push(0.0);
        self.alive.push(true);
        let n = self.kv.len();
        let qs = reference::scale_query(q);

        // Scores over live positions only.
        let live: Vec<usize> = (0..n).filter(|&i| self.alive[i]).collect();
        let scores: Vec<f32> = live
            .iter()
            .map(|&i| vector::dot(&qs, self.kv.key(i)))
            .collect();
        let probs = softmax(&scores);

        let mut output = vec![0.0f32; self.kv.dim()];
        for (&i, &p) in live.iter().zip(&probs) {
            self.cumulative[i] += f64::from(p);
            vector::axpy(&mut output, p, self.kv.value(i));
        }

        // Eviction: keep the most recent `recent_k` live positions plus the
        // `heavy_k` highest cumulative-mass among the rest.
        let recent_k = ((self.recent_ratio * n as f64).ceil() as usize).max(1);
        let heavy_k = ((self.heavy_ratio * n as f64).ceil() as usize).max(1);
        if live.len() > recent_k + heavy_k {
            let recent_cut = live.len() - recent_k;
            let mut older: Vec<usize> = live[..recent_cut].to_vec();
            older.sort_by(|&a, &b| {
                self.cumulative[b]
                    .partial_cmp(&self.cumulative[a])
                    .expect("cumulative mass is finite")
            });
            for &evict in &older[heavy_k..] {
                self.alive[evict] = false;
            }
        }
        output
    }
}

/// Per-vector asymmetric 4-bit quantisation, returning the dequantised
/// vector (the error a KV4 cache injects).
pub fn quantize_int4(x: &[f32]) -> Vec<f32> {
    let min = x.iter().copied().fold(f32::INFINITY, f32::min);
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !min.is_finite() || !max.is_finite() || max == min {
        return x.to_vec();
    }
    let scale = (max - min) / 15.0;
    x.iter()
        .map(|&v| {
            let q = ((v - min) / scale).round().clamp(0.0, 15.0);
            q * scale + min
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_math::Rng;

    #[test]
    fn quantize_int4_error_bound() {
        let mut rng = Rng::new(41);
        for _ in 0..50 {
            let x = rng.normal_vec(16, 1.0);
            let q = quantize_int4(&x);
            let min = x.iter().copied().fold(f32::INFINITY, f32::min);
            let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let half_step = (max - min) / 15.0 / 2.0;
            for (orig, quant) in x.iter().zip(&q) {
                assert!((orig - quant).abs() <= half_step + 1e-6);
            }
        }
    }

    #[test]
    fn quantize_int4_constant_vector_passthrough() {
        assert_eq!(quantize_int4(&[2.0, 2.0]), vec![2.0, 2.0]);
    }

    #[test]
    fn exact_backend_matches_reference() {
        let mut rng = Rng::new(42);
        let d = 8;
        let mut head = HeadState::new(d, &AttentionKind::Exact);
        let mut shadow = KvCache::new(d);
        for _ in 0..20 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            shadow.push(&k, &v);
            let out = head.step(&q, &k, &v, false);
            assert_eq!(out.output, reference::exact_attention(&q, &shadow));
        }
    }

    #[test]
    fn exact_backend_records_shifted_scores() {
        let mut head = HeadState::new(4, &AttentionKind::Exact);
        let out = head.step(&[1.0; 4], &[0.5; 4], &[0.1; 4], true);
        let scores = out.shifted_scores.expect("recording requested");
        assert_eq!(scores.len(), 1);
        assert!(scores[0] <= 0.0);
    }

    #[test]
    fn lad_backend_produces_stats() {
        let mut rng = Rng::new(43);
        let d = 8;
        let mut head = HeadState::new(d, &AttentionKind::Lad(LadConfig::default()));
        for i in 0..30 {
            let out = head.step(
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                false,
            );
            let stats = out.stats.expect("lad backend reports stats");
            assert_eq!(stats.n, i + 1);
        }
        assert_eq!(head.live_len(), 30);
    }

    #[test]
    fn exact_f16_backend_is_close_to_exact_and_cheaper() {
        let mut rng = Rng::new(52);
        let d = 8;
        let mut exact = HeadState::new(d, &AttentionKind::Exact);
        let mut half = HeadState::new(d, &AttentionKind::ExactF16);
        let mut worst = 0.0f32;
        for _ in 0..60 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            let e = exact.step(&q, &k, &v, true);
            let h = half.step(&q, &k, &v, true);
            worst = worst.max(vector::relative_l2(&h.output, &e.output));
            assert!(h.shifted_scores.is_some(), "f16 backend records scores");
        }
        // fp16 must perturb (it quantises) but stay within its 2^-11-per-
        // element budget after softmax normalisation.
        assert!(worst > 1e-7, "fp16 should actually quantise");
        assert!(worst < 5e-3, "fp16 error unreasonably large: {worst}");
        let HeadState::ExactF16 { kv } = &half else {
            unreachable!()
        };
        let HeadState::Exact { kv: kv32 } = &exact else {
            unreachable!()
        };
        assert_eq!(kv.stored_bytes() * 2, kv32.stored_bytes());
    }

    #[test]
    fn qserve_backend_injects_bounded_error() {
        let mut rng = Rng::new(44);
        let d = 8;
        let mut exact = HeadState::new(d, &AttentionKind::Exact);
        let mut qserve = HeadState::new(d, &AttentionKind::QserveKv4);
        let mut worst = 0.0f32;
        for _ in 0..40 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            let e = exact.step(&q, &k, &v, false);
            let s = qserve.step(&q, &k, &v, false);
            worst = worst.max(vector::relative_l2(&s.output, &e.output));
        }
        assert!(worst > 1e-4, "KV4 must actually perturb outputs");
        assert!(worst < 0.5, "KV4 error unreasonably large: {worst}");
    }

    #[test]
    fn h2o_evicts_down_to_budget() {
        let mut rng = Rng::new(45);
        let d = 8;
        let mut head = HeadState::new(d, &AttentionKind::h2o_default());
        for _ in 0..100 {
            head.step(
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                false,
            );
        }
        // Keep ratios 0.1 + 0.1 -> about 20 live positions out of 100.
        let live = head.live_len();
        assert!((18..=22).contains(&live), "live = {live}");
    }

    #[test]
    fn h2o_keeps_recent_positions() {
        let mut rng = Rng::new(46);
        let d = 4;
        let mut head = HeadState::new(d, &AttentionKind::h2o_default());
        for _ in 0..50 {
            head.step(
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                false,
            );
        }
        let HeadState::H2o(state) = &head else {
            unreachable!()
        };
        // The very latest positions must always be alive.
        for i in 45..50 {
            assert!(state.alive[i], "recent position {i} evicted");
        }
    }

    #[test]
    fn streaming_window_keeps_sinks_and_recent() {
        let mut rng = Rng::new(48);
        let d = 4;
        let kind = AttentionKind::StreamingWindow {
            sinks: 2,
            window: 8,
        };
        let mut head = HeadState::new(d, &kind);
        for _ in 0..40 {
            head.step(
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                false,
            );
        }
        // 2 sinks + 8 recent survive.
        assert_eq!(head.live_len(), 10);
        let HeadState::Streaming { alive, .. } = &head else {
            unreachable!()
        };
        assert!(alive[0] && alive[1], "sinks evicted");
        assert!(alive[39] && alive[32], "recent window evicted");
        assert!(!alive[10], "middle position survived");
    }

    #[test]
    fn streaming_matches_exact_while_window_covers_everything() {
        let mut rng = Rng::new(49);
        let d = 4;
        let kind = AttentionKind::StreamingWindow {
            sinks: 4,
            window: 64,
        };
        let mut streaming = HeadState::new(d, &kind);
        let mut exact = HeadState::new(d, &AttentionKind::Exact);
        for _ in 0..30 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            let a = streaming.step(&q, &k, &v, false);
            let b = exact.step(&q, &k, &v, false);
            assert!(vector::relative_l2(&a.output, &b.output) < 1e-5);
        }
    }

    #[test]
    fn checkpoint_restore_is_bit_exact_for_every_backend() {
        let d = 8;
        let kinds = [
            AttentionKind::Exact,
            AttentionKind::ExactF16,
            AttentionKind::Lad(LadConfig::default()),
            AttentionKind::QserveKv4,
            AttentionKind::h2o_default(),
            AttentionKind::StreamingWindow {
                sinks: 2,
                window: 8,
            },
        ];
        for kind in &kinds {
            let mut rng = Rng::new(51);
            let mut head = HeadState::new(d, kind);
            for _ in 0..30 {
                head.step(
                    &rng.normal_vec(d, 1.0),
                    &rng.normal_vec(d, 1.0),
                    &rng.normal_vec(d, 1.0),
                    false,
                );
            }
            let ck = head.checkpoint();
            let inputs: Vec<_> = (0..8)
                .map(|_| {
                    (
                        rng.normal_vec(d, 1.0),
                        rng.normal_vec(d, 1.0),
                        rng.normal_vec(d, 1.0),
                    )
                })
                .collect();
            let first: Vec<HeadStepOutput> = inputs
                .iter()
                .map(|(q, k, v)| head.step(q, k, v, false))
                .collect();
            head.restore(&ck);
            let second: Vec<HeadStepOutput> = inputs
                .iter()
                .map(|(q, k, v)| head.step(q, k, v, false))
                .collect();
            assert_eq!(first, second, "{kind:?}: replay after restore diverged");
        }
    }

    #[test]
    #[should_panic(expected = "different backend")]
    fn restore_rejects_foreign_checkpoint() {
        let exact = HeadState::new(4, &AttentionKind::Exact);
        let mut lad = HeadState::new(4, &AttentionKind::Lad(LadConfig::default()));
        lad.restore(&exact.checkpoint());
    }

    #[test]
    fn h2o_diverges_from_exact() {
        // H2O discards information, so outputs must drift from the original
        // model — that is the decoding-accuracy cost Table I quantifies.
        let mut rng = Rng::new(47);
        let d = 8;
        let mut exact = HeadState::new(d, &AttentionKind::Exact);
        let mut h2o = HeadState::new(d, &AttentionKind::h2o_default());
        let mut drift = 0.0f32;
        for _ in 0..80 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            let e = exact.step(&q, &k, &v, false);
            let h = h2o.step(&q, &k, &v, false);
            drift = drift.max(vector::relative_l2(&h.output, &e.output));
        }
        assert!(drift > 0.05, "H2O should diverge, drift = {drift}");
    }
}
