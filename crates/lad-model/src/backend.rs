//! Pluggable attention backends.
//!
//! Each attention head of a decode session runs one backend from the zoo,
//! mirroring the paper's comparison set (Sec. V-A) plus the sparse-attention
//! families it implicitly argues with:
//!
//! * [`AttentionKind::Exact`] — the original model (vLLM baseline).
//! * [`AttentionKind::Lad`] — LAD attention ([`lad_core`]).
//! * [`AttentionKind::QserveKv4`] — Qserve's A16W16KV4 configuration: the KV
//!   cache is quantised to 4 bits, everything else fp16.
//! * [`AttentionKind::H2o`] — the Heavy-Hitter Oracle with *ratio* knobs:
//!   only the top `heavy_ratio` cumulative-attention positions plus the
//!   `recent_ratio` most recent ones are kept; the rest are evicted.
//! * [`AttentionKind::TopK`] — dynamic top-k selection: exact scores over
//!   every key, softmax restricted to the `k` best-scoring positions
//!   (deterministic ties: lowest index wins).
//! * [`AttentionKind::H2O`] — budget-based H2O eviction: an absolute
//!   `budget` of heavy hitters plus a `recent` window, evicting per step so
//!   the live set never exceeds `budget + recent`.
//!
//! Every backend reports the shared [`StepStats`] traffic counters
//! (`keys_scored`, `keys_read`, `bytes_moved`, `evictions`) and implements
//! the full checkpoint/rollback contract speculative decoding relies on.

use lad_core::decoder::{LadAttention, LadCheckpoint, LadConfig};
use lad_core::kv::{KvCache, KvPrecision};
use lad_core::reference;
use lad_core::stats::StepStats;
use lad_math::softmax::softmax;
use lad_math::vector;

/// Which attention algorithm a head runs.
#[derive(Debug, Clone, PartialEq)]
pub enum AttentionKind {
    /// Exact softmax attention over the full KV cache.
    Exact,
    /// Exact softmax attention over an fp16-stored KV cache: the same
    /// algorithm as [`AttentionKind::Exact`], but keys/values are rounded to
    /// IEEE binary16 on write and stream at half the bytes through the
    /// precision-aware read kernels ([`lad_core::kv::KvPrecision::F16`]).
    /// Bounded-error, not bit-exact — the fp16 analogue of the accelerator's
    /// on-chip number format (paper Sec. V-A).
    ExactF16,
    /// LAD attention with the given configuration.
    Lad(LadConfig),
    /// Qserve-style 4-bit KV-cache quantisation (per-vector asymmetric).
    QserveKv4,
    /// H2O eviction with heavy/recent keep ratios (paper default 0.1/0.1).
    H2o {
        /// Fraction of positions kept by cumulative attention mass.
        heavy_ratio: f64,
        /// Fraction of most recent positions always kept.
        recent_ratio: f64,
    },
    /// StreamingLLM-style window attention (the paper's cited window-based
    /// KV discard class): a few initial "attention sink" positions plus a
    /// sliding window of recent positions are kept, everything else is
    /// evicted.
    StreamingWindow {
        /// Initial positions always kept (attention sinks).
        sinks: usize,
        /// Recent positions kept.
        window: usize,
    },
    /// Dynamic top-k selection: exact scores over **all** keys, softmax
    /// restricted to the `k` best-scoring positions. Ties are broken
    /// deterministically by lowest position index, so decodes are
    /// reproducible across schedules and kernels. With `k >= n` this is
    /// bit-identical to [`AttentionKind::Exact`].
    TopK {
        /// Positions kept per step (must be at least 1).
        k: usize,
    },
    /// Budget-based H2O eviction: the `budget` positions with the highest
    /// accumulated attention mass plus the `recent` newest live positions
    /// survive each step; everything else is evicted (masked dead in the
    /// arena, accounted exactly in the paged pool). Cumulative-mass ties are
    /// broken deterministically: the lowest index is kept. While the live
    /// set fits inside `budget + recent`, outputs are bit-identical to
    /// [`AttentionKind::Exact`].
    H2O {
        /// Heavy-hitter positions retained by accumulated attention mass.
        budget: usize,
        /// Newest live positions always retained (must be at least 1).
        recent: usize,
    },
}

impl AttentionKind {
    /// The paper's H2O default configuration.
    pub fn h2o_default() -> AttentionKind {
        AttentionKind::H2o {
            heavy_ratio: 0.1,
            recent_ratio: 0.1,
        }
    }

    /// A StreamingLLM-style default: 4 sinks + 256 recent positions.
    pub fn streaming_default() -> AttentionKind {
        AttentionKind::StreamingWindow {
            sinks: 4,
            window: 256,
        }
    }

    /// Top-k selection keeping `k` positions per step.
    pub fn topk(k: usize) -> AttentionKind {
        AttentionKind::TopK { k }
    }

    /// Budget-based H2O keeping `budget` heavy hitters + `recent` newest.
    pub fn h2o_budget(budget: usize, recent: usize) -> AttentionKind {
        AttentionKind::H2O { budget, recent }
    }
}

/// Output of one head step.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadStepOutput {
    /// Attention output (length `d`).
    pub output: Vec<f32>,
    /// Per-step instrumentation. Every backend reports the shared traffic
    /// counters (`n`, `keys_scored`, `keys_read`, `bytes_moved`,
    /// `evictions`); the LAD backend additionally fills its
    /// identification/correction fields.
    pub stats: Option<StepStats>,
    /// Shifted scores (`sᵢ − m`) when recording was requested and the backend
    /// computes dense scores.
    pub shifted_scores: Option<Vec<f64>>,
}

/// Runtime state of one attention head.
///
/// Variant sizes differ widely (the LAD state carries the intermediate
/// caches); head states are long-lived, one per (layer, head), so no boxing
/// is warranted.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum HeadState {
    /// Full-cache exact softmax.
    Exact {
        /// The head's KV cache.
        kv: KvCache,
    },
    /// Full-cache exact softmax over fp16 KV arenas.
    ExactF16 {
        /// The head's fp16 KV cache.
        kv: KvCache,
    },
    /// LAD decoder state.
    Lad(LadAttention),
    /// Exact attention over a 4-bit-quantised KV cache.
    Qserve {
        /// Stores *dequantised* keys/values (quantisation error baked in).
        kv: KvCache,
    },
    /// H2O eviction state.
    H2o(H2oState),
    /// StreamingLLM sink+window state.
    Streaming {
        /// The head's KV cache (evicted positions masked, not freed).
        kv: KvCache,
        /// Liveness per position.
        alive: Vec<bool>,
        /// Sink count.
        sinks: usize,
        /// Window size.
        window: usize,
    },
    /// Top-k selection over the full cache (no eviction).
    TopK {
        /// The head's KV cache.
        kv: KvCache,
        /// Positions kept per step.
        k: usize,
    },
    /// Budget-based H2O eviction state.
    H2OBudget(H2oBudgetState),
}

/// State of an H2O head: KV cache plus cumulative attention mass and
/// liveness flags.
#[derive(Debug, Clone)]
pub struct H2oState {
    kv: KvCache,
    cumulative: Vec<f64>,
    alive: Vec<bool>,
    heavy_ratio: f64,
    recent_ratio: f64,
}

/// State of a budget-based H2O head ([`AttentionKind::H2O`]): the KV arena
/// stays append-only (evicted positions are masked dead, never compacted),
/// so checkpoint/rollback and paged accounting work exactly like every other
/// backend. All reads go through the precision-aware kernels, so fp16 arenas
/// work unchanged.
#[derive(Debug, Clone)]
pub struct H2oBudgetState {
    kv: KvCache,
    cumulative: Vec<f64>,
    alive: Vec<bool>,
    budget: usize,
    recent: usize,
}

/// Snapshot of a [`HeadState`], taken before a speculative row so rejected
/// drafts can be rolled back bit-exactly ([`HeadState::restore`]).
///
/// Every backend only *appends* to its KV arena, so the arena is rewound by
/// truncation; metadata that backends mutate in place for old positions
/// (H2O's cumulative mass and liveness, streaming liveness, LAD's
/// counters/caches) is copied.
#[derive(Debug, Clone)]
pub enum HeadCheckpoint {
    /// Exact and Qserve heads: the arena length is the whole state.
    KvLen(usize),
    /// LAD head snapshot (boxed: the copied caches dwarf the other variants).
    Lad(Box<LadCheckpoint>),
    /// H2O head: arena length plus cumulative mass and liveness.
    H2o {
        /// KV arena length at the checkpoint.
        kv_len: usize,
        /// Cumulative attention mass per position.
        cumulative: Vec<f64>,
        /// Liveness per position.
        alive: Vec<bool>,
    },
    /// Streaming head: arena length plus liveness.
    Streaming {
        /// KV arena length at the checkpoint.
        kv_len: usize,
        /// Liveness per position.
        alive: Vec<bool>,
    },
    /// Budget-based H2O head: arena length plus cumulative mass and liveness.
    H2OBudget {
        /// KV arena length at the checkpoint.
        kv_len: usize,
        /// Cumulative attention mass per position.
        cumulative: Vec<f64>,
        /// Liveness per position.
        alive: Vec<bool>,
    },
}

impl HeadState {
    /// Creates head state for dimension `dim` under `kind`.
    pub fn new(dim: usize, kind: &AttentionKind) -> HeadState {
        match kind {
            AttentionKind::Exact => HeadState::Exact {
                kv: KvCache::new(dim),
            },
            AttentionKind::ExactF16 => HeadState::ExactF16 {
                kv: KvCache::with_precision(dim, KvPrecision::F16),
            },
            AttentionKind::Lad(cfg) => HeadState::Lad(LadAttention::new(dim, cfg.clone())),
            AttentionKind::QserveKv4 => HeadState::Qserve {
                kv: KvCache::new(dim),
            },
            AttentionKind::H2o {
                heavy_ratio,
                recent_ratio,
            } => HeadState::H2o(H2oState {
                kv: KvCache::new(dim),
                cumulative: Vec::new(),
                alive: Vec::new(),
                heavy_ratio: *heavy_ratio,
                recent_ratio: *recent_ratio,
            }),
            AttentionKind::StreamingWindow { sinks, window } => HeadState::Streaming {
                kv: KvCache::new(dim),
                alive: Vec::new(),
                sinks: *sinks,
                window: *window,
            },
            AttentionKind::TopK { k } => {
                assert!(*k >= 1, "AttentionKind::TopK: k must be at least 1");
                HeadState::TopK {
                    kv: KvCache::new(dim),
                    k: *k,
                }
            }
            AttentionKind::H2O { budget, recent } => {
                assert!(
                    *recent >= 1,
                    "AttentionKind::H2O: recent must be at least 1"
                );
                HeadState::H2OBudget(H2oBudgetState {
                    kv: KvCache::new(dim),
                    cumulative: Vec::new(),
                    alive: Vec::new(),
                    budget: *budget,
                    recent: *recent,
                })
            }
        }
    }

    /// Like [`HeadState::new`] but with an explicit KV storage precision.
    ///
    /// Only the full-cache and sparse-selection backends support fp16 arenas
    /// (`Exact`/`ExactF16`, `TopK`, `H2O`) — their reads all go through the
    /// precision-aware kernels. `Exact` with [`KvPrecision::F16`] is the
    /// `ExactF16` backend.
    ///
    /// # Panics
    ///
    /// Panics for backends without an fp16 read path (LAD, Qserve, ratio-H2O,
    /// streaming).
    pub fn with_kv_precision(
        dim: usize,
        kind: &AttentionKind,
        precision: KvPrecision,
    ) -> HeadState {
        if precision == KvPrecision::F32 {
            return HeadState::new(dim, kind);
        }
        match kind {
            AttentionKind::Exact | AttentionKind::ExactF16 => HeadState::ExactF16 {
                kv: KvCache::with_precision(dim, KvPrecision::F16),
            },
            AttentionKind::TopK { k } => {
                assert!(*k >= 1, "AttentionKind::TopK: k must be at least 1");
                HeadState::TopK {
                    kv: KvCache::with_precision(dim, KvPrecision::F16),
                    k: *k,
                }
            }
            AttentionKind::H2O { budget, recent } => {
                assert!(
                    *recent >= 1,
                    "AttentionKind::H2O: recent must be at least 1"
                );
                HeadState::H2OBudget(H2oBudgetState {
                    kv: KvCache::with_precision(dim, KvPrecision::F16),
                    cumulative: Vec::new(),
                    alive: Vec::new(),
                    budget: *budget,
                    recent: *recent,
                })
            }
            other => panic!("HeadState::with_kv_precision: no fp16 read path for {other:?}"),
        }
    }

    /// Current KV length (for evicting backends this counts live positions).
    pub fn live_len(&self) -> usize {
        match self {
            HeadState::Exact { kv }
            | HeadState::ExactF16 { kv }
            | HeadState::Qserve { kv }
            | HeadState::TopK { kv, .. } => kv.len(),
            HeadState::Lad(head) => head.kv().len(),
            HeadState::H2o(state) => state.alive.iter().filter(|&&a| a).count(),
            HeadState::Streaming { alive, .. } => alive.iter().filter(|&&a| a).count(),
            HeadState::H2OBudget(state) => state.alive.iter().filter(|&&a| a).count(),
        }
    }

    /// Whether arena position `pos` is still live: `false` once an evicting
    /// backend (H2O, streaming) has discarded it, or if it was never decoded.
    /// Non-evicting backends report every decoded position live.
    pub fn is_alive(&self, pos: usize) -> bool {
        match self {
            HeadState::Exact { kv }
            | HeadState::ExactF16 { kv }
            | HeadState::Qserve { kv }
            | HeadState::TopK { kv, .. } => pos < kv.len(),
            HeadState::Lad(head) => pos < head.kv().len(),
            HeadState::H2o(state) => state.alive.get(pos).copied().unwrap_or(false),
            HeadState::Streaming { alive, .. } => alive.get(pos).copied().unwrap_or(false),
            HeadState::H2OBudget(state) => state.alive.get(pos).copied().unwrap_or(false),
        }
    }

    /// Bytes this head's KV arenas occupy right now (fp16 caches count two
    /// bytes per element, f32 four). Qserve stores *dequantised* f32 copies,
    /// so its in-memory footprint is the f32 one even though the modelled
    /// accelerator format is 4-bit.
    pub fn kv_bytes(&self) -> usize {
        match self {
            HeadState::Exact { kv }
            | HeadState::ExactF16 { kv }
            | HeadState::Qserve { kv }
            | HeadState::Streaming { kv, .. }
            | HeadState::TopK { kv, .. } => kv.stored_bytes(),
            HeadState::Lad(head) => head.kv().stored_bytes(),
            HeadState::H2o(state) => state.kv.stored_bytes(),
            HeadState::H2OBudget(state) => state.kv.stored_bytes(),
        }
    }

    /// Captures this head's decoding state for a later [`restore`].
    ///
    /// [`restore`]: HeadState::restore
    pub fn checkpoint(&self) -> HeadCheckpoint {
        match self {
            HeadState::Exact { kv }
            | HeadState::ExactF16 { kv }
            | HeadState::Qserve { kv }
            | HeadState::TopK { kv, .. } => HeadCheckpoint::KvLen(kv.len()),
            HeadState::Lad(head) => HeadCheckpoint::Lad(Box::new(head.checkpoint())),
            HeadState::H2o(state) => HeadCheckpoint::H2o {
                kv_len: state.kv.len(),
                cumulative: state.cumulative.clone(),
                alive: state.alive.clone(),
            },
            HeadState::Streaming { kv, alive, .. } => HeadCheckpoint::Streaming {
                kv_len: kv.len(),
                alive: alive.clone(),
            },
            HeadState::H2OBudget(state) => HeadCheckpoint::H2OBudget {
                kv_len: state.kv.len(),
                cumulative: state.cumulative.clone(),
                alive: state.alive.clone(),
            },
        }
    }

    /// Rewinds this head to `ck`: positions appended since the checkpoint
    /// are truncated out of the KV arena and in-place metadata is restored,
    /// so subsequent steps are bit-identical to never having decoded past it.
    ///
    /// # Panics
    ///
    /// Panics if `ck` came from a different backend variant, or if the arena
    /// has since been truncated below the checkpoint.
    pub fn restore(&mut self, ck: &HeadCheckpoint) {
        match (self, ck) {
            (
                HeadState::Exact { kv }
                | HeadState::ExactF16 { kv }
                | HeadState::Qserve { kv }
                | HeadState::TopK { kv, .. },
                HeadCheckpoint::KvLen(len),
            ) => {
                kv.truncate(*len);
            }
            (HeadState::Lad(head), HeadCheckpoint::Lad(lck)) => head.restore(lck),
            (
                HeadState::H2o(state),
                HeadCheckpoint::H2o {
                    kv_len,
                    cumulative,
                    alive,
                },
            ) => {
                state.kv.truncate(*kv_len);
                state.cumulative.clone_from(cumulative);
                state.alive.clone_from(alive);
            }
            (
                HeadState::Streaming { kv, alive, .. },
                HeadCheckpoint::Streaming {
                    kv_len,
                    alive: ck_alive,
                },
            ) => {
                kv.truncate(*kv_len);
                alive.clone_from(ck_alive);
            }
            (
                HeadState::H2OBudget(state),
                HeadCheckpoint::H2OBudget {
                    kv_len,
                    cumulative,
                    alive,
                },
            ) => {
                state.kv.truncate(*kv_len);
                state.cumulative.clone_from(cumulative);
                state.alive.clone_from(alive);
            }
            _ => panic!("HeadState::restore: checkpoint from a different backend"),
        }
    }

    /// Executes one decoding step.
    pub fn step(&mut self, q: &[f32], k: &[f32], v: &[f32], record_scores: bool) -> HeadStepOutput {
        match self {
            HeadState::Exact { kv } | HeadState::ExactF16 { kv } => {
                let _kv_span = lad_obs::span(match kv.precision() {
                    KvPrecision::F32 => "kernel.kv_read_f32",
                    KvPrecision::F16 => "kernel.kv_read_f16",
                });
                kv.push(k, v);
                let n = kv.len();
                let bpe = kv.precision().bytes_per_element();
                let (output, scores, m) = exact_single_pass(q, kv);
                HeadStepOutput {
                    output,
                    stats: Some(traffic_stats(n, n, n, 2 * n * kv.dim() * bpe, 0)),
                    shifted_scores: record_scores.then(|| scores.iter().map(|s| s - m).collect()),
                }
            }
            HeadState::Lad(head) => {
                let step = head.step(q, k, v);
                HeadStepOutput {
                    output: step.output,
                    stats: Some(step.stats),
                    shifted_scores: None,
                }
            }
            HeadState::Qserve { kv } => {
                kv.push(&quantize_int4(k), &quantize_int4(v));
                let n = kv.len();
                HeadStepOutput {
                    output: reference::exact_attention(q, kv),
                    stats: Some(traffic_stats(n, n, n, 2 * n * kv.dim() * 4, 0)),
                    shifted_scores: None,
                }
            }
            HeadState::H2o(state) => {
                let (output, stats) = state.step(q, k, v);
                HeadStepOutput {
                    output,
                    stats: Some(stats),
                    shifted_scores: None,
                }
            }
            HeadState::Streaming {
                kv,
                alive,
                sinks,
                window,
            } => {
                kv.push(k, v);
                alive.push(true);
                let n = kv.len();
                let mut evictions = 0usize;
                // Evict the position leaving the window (sinks survive).
                if n > *sinks + *window {
                    let leaving = n - *window - 1;
                    if leaving >= *sinks && alive[leaving] {
                        alive[leaving] = false;
                        evictions = 1;
                    }
                }
                let qs = reference::scale_query(q);
                let live: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
                let scores: Vec<f32> = live.iter().map(|&i| vector::dot(&qs, kv.key(i))).collect();
                let probs = softmax(&scores);
                let mut output = vec![0.0f32; kv.dim()];
                for (&i, &p) in live.iter().zip(&probs) {
                    vector::axpy(&mut output, p, kv.value(i));
                }
                let d = kv.dim();
                HeadStepOutput {
                    output,
                    stats: Some(traffic_stats(
                        n,
                        live.len(),
                        live.len(),
                        2 * live.len() * d * 4,
                        evictions,
                    )),
                    shifted_scores: None,
                }
            }
            HeadState::TopK { kv, k: top_k } => {
                kv.push(k, v);
                let n = kv.len();
                let d = kv.dim();
                let bpe = kv.precision().bytes_per_element();
                let scores = reference::scores(q, kv);
                let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                // Selection: highest score first, ties broken by lowest
                // index, so the kept set (and therefore the decode) is
                // deterministic across schedules and kernels.
                let selected = {
                    let _span = lad_obs::span("attn.topk_select");
                    let mut idx: Vec<usize> = (0..n).collect();
                    idx.sort_by(|&a, &b| {
                        scores[b]
                            .partial_cmp(&scores[a])
                            .expect("attention scores are finite")
                            .then_with(|| a.cmp(&b))
                    });
                    idx.truncate(*top_k);
                    idx.sort_unstable();
                    idx
                };
                // Softmax restricted to the selection, accumulated in the
                // same ascending-index order as exact attention. The global
                // max is always selected, so `m` is also the selected max —
                // with `k >= n` this loop is bit-identical to Exact.
                let mut num = vec![0.0f64; d];
                let mut den = 0.0f64;
                for &i in &selected {
                    let w = (scores[i] - m).exp();
                    den += w;
                    kv.value_axpy(i, w, &mut num);
                }
                let output = num.into_iter().map(|x| (x / den) as f32).collect();
                HeadStepOutput {
                    output,
                    stats: Some(traffic_stats(
                        n,
                        n,
                        n,
                        n * d * bpe + selected.len() * d * bpe,
                        0,
                    )),
                    shifted_scores: record_scores.then(|| scores.iter().map(|s| s - m).collect()),
                }
            }
            HeadState::H2OBudget(state) => state.step(q, k, v, record_scores),
        }
    }
}

/// Single-pass exact softmax over the whole cache: one metered score sweep,
/// one value read per position, accumulated in [`reference::exact_attention`]'s
/// exact order (bit-identical output) while exposing the dense scores and
/// their max for recording.
fn exact_single_pass(q: &[f32], kv: &KvCache) -> (Vec<f32>, Vec<f64>, f64) {
    let scores = reference::scores(q, kv);
    let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut num = vec![0.0f64; kv.dim()];
    let mut den = 0.0f64;
    for (i, &si) in scores.iter().enumerate() {
        let w = (si - m).exp();
        den += w;
        kv.value_axpy(i, w, &mut num);
    }
    let output = num.into_iter().map(|x| (x / den) as f32).collect();
    (output, scores, m)
}

/// Builds a [`StepStats`] carrying only the shared traffic counters — the
/// identification/correction fields are LAD-specific and stay zero for the
/// rest of the zoo.
fn traffic_stats(
    n: usize,
    keys_scored: usize,
    keys_read: usize,
    bytes_moved: usize,
    evictions: usize,
) -> StepStats {
    StepStats {
        n,
        centers: 0,
        large_mode_exact: 0,
        active: 0,
        window: 0,
        mode_updates: 0,
        new_active: 0,
        false_negatives: 0,
        false_positives: 0,
        den_fallbacks: 0,
        keys_scored,
        keys_read,
        bytes_moved,
        evictions,
        fanout_width: 0,
    }
}

impl H2oState {
    fn step(&mut self, q: &[f32], k: &[f32], v: &[f32]) -> (Vec<f32>, StepStats) {
        self.kv.push(k, v);
        self.cumulative.push(0.0);
        self.alive.push(true);
        let n = self.kv.len();
        let d = self.kv.dim();
        let qs = reference::scale_query(q);

        // Scores over live positions only.
        let live: Vec<usize> = (0..n).filter(|&i| self.alive[i]).collect();
        let scores: Vec<f32> = live
            .iter()
            .map(|&i| vector::dot(&qs, self.kv.key(i)))
            .collect();
        let probs = softmax(&scores);

        let mut output = vec![0.0f32; d];
        for (&i, &p) in live.iter().zip(&probs) {
            self.cumulative[i] += f64::from(p);
            vector::axpy(&mut output, p, self.kv.value(i));
        }

        // Eviction: keep the most recent `recent_k` live positions plus the
        // `heavy_k` highest cumulative-mass among the rest.
        let mut evictions = 0usize;
        let recent_k = ((self.recent_ratio * n as f64).ceil() as usize).max(1);
        let heavy_k = ((self.heavy_ratio * n as f64).ceil() as usize).max(1);
        if live.len() > recent_k + heavy_k {
            let recent_cut = live.len() - recent_k;
            let mut older: Vec<usize> = live[..recent_cut].to_vec();
            older.sort_by(|&a, &b| {
                self.cumulative[b]
                    .partial_cmp(&self.cumulative[a])
                    .expect("cumulative mass is finite")
            });
            for &evict in &older[heavy_k..] {
                self.alive[evict] = false;
                evictions += 1;
            }
        }
        let stats = traffic_stats(n, live.len(), live.len(), 2 * live.len() * d * 4, evictions);
        (output, stats)
    }
}

impl H2oBudgetState {
    fn step(&mut self, q: &[f32], k: &[f32], v: &[f32], record_scores: bool) -> HeadStepOutput {
        self.kv.push(k, v);
        self.cumulative.push(0.0);
        self.alive.push(true);
        let n = self.kv.len();
        let d = self.kv.dim();
        let bpe = self.kv.precision().bytes_per_element();
        let qs = reference::scale_query(q);

        // Scores over live positions only, read per-key through the
        // precision-aware decode. On f32 arenas each dot is bit-identical to
        // the bulk score sweep Exact runs, so until the first eviction the
        // whole step mirrors exact attention bit-for-bit.
        let live: Vec<usize> = (0..n).filter(|&i| self.alive[i]).collect();
        let mut key_buf = vec![0.0f32; d];
        let scores: Vec<f64> = live
            .iter()
            .map(|&i| {
                self.kv.key_into(i, &mut key_buf);
                f64::from(vector::dot(&qs, &key_buf))
            })
            .collect();
        let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut num = vec![0.0f64; d];
        let mut den = 0.0f64;
        let mut weights = Vec::with_capacity(live.len());
        for (&i, &si) in live.iter().zip(&scores) {
            let w = (si - m).exp();
            den += w;
            weights.push(w);
            self.kv.value_axpy(i, w, &mut num);
        }
        let output: Vec<f32> = num.into_iter().map(|x| (x / den) as f32).collect();
        for (&i, &w) in live.iter().zip(&weights) {
            self.cumulative[i] += w / den;
        }

        // Evict down to `budget + recent`: the newest `recent` live
        // positions always survive; among the older ones the `budget`
        // highest accumulated-mass positions are kept (ties: lowest index).
        let mut evictions = 0usize;
        if live.len() > self.budget + self.recent {
            let _span = lad_obs::span("attn.h2o_evict");
            let recent_cut = live.len() - self.recent;
            let mut older: Vec<usize> = live[..recent_cut].to_vec();
            older.sort_by(|&a, &b| {
                self.cumulative[b]
                    .partial_cmp(&self.cumulative[a])
                    .expect("cumulative mass is finite")
                    .then_with(|| a.cmp(&b))
            });
            for &evict in &older[self.budget..] {
                self.alive[evict] = false;
                evictions += 1;
            }
        }

        HeadStepOutput {
            output,
            stats: Some(traffic_stats(
                n,
                live.len(),
                live.len(),
                2 * live.len() * d * bpe,
                evictions,
            )),
            shifted_scores: record_scores.then(|| scores.iter().map(|s| s - m).collect()),
        }
    }
}

/// Per-vector asymmetric 4-bit quantisation, returning the dequantised
/// vector (the error a KV4 cache injects).
pub fn quantize_int4(x: &[f32]) -> Vec<f32> {
    let min = x.iter().copied().fold(f32::INFINITY, f32::min);
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !min.is_finite() || !max.is_finite() || max == min {
        return x.to_vec();
    }
    let scale = (max - min) / 15.0;
    x.iter()
        .map(|&v| {
            let q = ((v - min) / scale).round().clamp(0.0, 15.0);
            q * scale + min
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_math::Rng;

    #[test]
    fn quantize_int4_error_bound() {
        let mut rng = Rng::new(41);
        for _ in 0..50 {
            let x = rng.normal_vec(16, 1.0);
            let q = quantize_int4(&x);
            let min = x.iter().copied().fold(f32::INFINITY, f32::min);
            let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let half_step = (max - min) / 15.0 / 2.0;
            for (orig, quant) in x.iter().zip(&q) {
                assert!((orig - quant).abs() <= half_step + 1e-6);
            }
        }
    }

    #[test]
    fn quantize_int4_constant_vector_passthrough() {
        assert_eq!(quantize_int4(&[2.0, 2.0]), vec![2.0, 2.0]);
    }

    #[test]
    fn exact_backend_matches_reference() {
        let mut rng = Rng::new(42);
        let d = 8;
        let mut head = HeadState::new(d, &AttentionKind::Exact);
        let mut shadow = KvCache::new(d);
        for _ in 0..20 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            shadow.push(&k, &v);
            let out = head.step(&q, &k, &v, false);
            assert_eq!(out.output, reference::exact_attention(&q, &shadow));
        }
    }

    #[test]
    fn exact_backend_records_shifted_scores() {
        let mut head = HeadState::new(4, &AttentionKind::Exact);
        let out = head.step(&[1.0; 4], &[0.5; 4], &[0.1; 4], true);
        let scores = out.shifted_scores.expect("recording requested");
        assert_eq!(scores.len(), 1);
        assert!(scores[0] <= 0.0);
    }

    #[test]
    fn lad_backend_produces_stats() {
        let mut rng = Rng::new(43);
        let d = 8;
        let mut head = HeadState::new(d, &AttentionKind::Lad(LadConfig::default()));
        for i in 0..30 {
            let out = head.step(
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                false,
            );
            let stats = out.stats.expect("lad backend reports stats");
            assert_eq!(stats.n, i + 1);
        }
        assert_eq!(head.live_len(), 30);
    }

    #[test]
    fn exact_f16_backend_is_close_to_exact_and_cheaper() {
        let mut rng = Rng::new(52);
        let d = 8;
        let mut exact = HeadState::new(d, &AttentionKind::Exact);
        let mut half = HeadState::new(d, &AttentionKind::ExactF16);
        let mut worst = 0.0f32;
        for _ in 0..60 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            let e = exact.step(&q, &k, &v, true);
            let h = half.step(&q, &k, &v, true);
            worst = worst.max(vector::relative_l2(&h.output, &e.output));
            assert!(h.shifted_scores.is_some(), "f16 backend records scores");
        }
        // fp16 must perturb (it quantises) but stay within its 2^-11-per-
        // element budget after softmax normalisation.
        assert!(worst > 1e-7, "fp16 should actually quantise");
        assert!(worst < 5e-3, "fp16 error unreasonably large: {worst}");
        let HeadState::ExactF16 { kv } = &half else {
            unreachable!()
        };
        let HeadState::Exact { kv: kv32 } = &exact else {
            unreachable!()
        };
        assert_eq!(kv.stored_bytes() * 2, kv32.stored_bytes());
    }

    #[test]
    fn qserve_backend_injects_bounded_error() {
        let mut rng = Rng::new(44);
        let d = 8;
        let mut exact = HeadState::new(d, &AttentionKind::Exact);
        let mut qserve = HeadState::new(d, &AttentionKind::QserveKv4);
        let mut worst = 0.0f32;
        for _ in 0..40 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            let e = exact.step(&q, &k, &v, false);
            let s = qserve.step(&q, &k, &v, false);
            worst = worst.max(vector::relative_l2(&s.output, &e.output));
        }
        assert!(worst > 1e-4, "KV4 must actually perturb outputs");
        assert!(worst < 0.5, "KV4 error unreasonably large: {worst}");
    }

    #[test]
    fn h2o_evicts_down_to_budget() {
        let mut rng = Rng::new(45);
        let d = 8;
        let mut head = HeadState::new(d, &AttentionKind::h2o_default());
        for _ in 0..100 {
            head.step(
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                false,
            );
        }
        // Keep ratios 0.1 + 0.1 -> about 20 live positions out of 100.
        let live = head.live_len();
        assert!((18..=22).contains(&live), "live = {live}");
    }

    #[test]
    fn h2o_keeps_recent_positions() {
        let mut rng = Rng::new(46);
        let d = 4;
        let mut head = HeadState::new(d, &AttentionKind::h2o_default());
        for _ in 0..50 {
            head.step(
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                false,
            );
        }
        let HeadState::H2o(state) = &head else {
            unreachable!()
        };
        // The very latest positions must always be alive.
        for i in 45..50 {
            assert!(state.alive[i], "recent position {i} evicted");
        }
    }

    #[test]
    fn streaming_window_keeps_sinks_and_recent() {
        let mut rng = Rng::new(48);
        let d = 4;
        let kind = AttentionKind::StreamingWindow {
            sinks: 2,
            window: 8,
        };
        let mut head = HeadState::new(d, &kind);
        for _ in 0..40 {
            head.step(
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                false,
            );
        }
        // 2 sinks + 8 recent survive.
        assert_eq!(head.live_len(), 10);
        let HeadState::Streaming { alive, .. } = &head else {
            unreachable!()
        };
        assert!(alive[0] && alive[1], "sinks evicted");
        assert!(alive[39] && alive[32], "recent window evicted");
        assert!(!alive[10], "middle position survived");
    }

    #[test]
    fn streaming_matches_exact_while_window_covers_everything() {
        let mut rng = Rng::new(49);
        let d = 4;
        let kind = AttentionKind::StreamingWindow {
            sinks: 4,
            window: 64,
        };
        let mut streaming = HeadState::new(d, &kind);
        let mut exact = HeadState::new(d, &AttentionKind::Exact);
        for _ in 0..30 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            let a = streaming.step(&q, &k, &v, false);
            let b = exact.step(&q, &k, &v, false);
            assert!(vector::relative_l2(&a.output, &b.output) < 1e-5);
        }
    }

    #[test]
    fn checkpoint_restore_is_bit_exact_for_every_backend() {
        let d = 8;
        let kinds = [
            AttentionKind::Exact,
            AttentionKind::ExactF16,
            AttentionKind::Lad(LadConfig::default()),
            AttentionKind::QserveKv4,
            AttentionKind::h2o_default(),
            AttentionKind::StreamingWindow {
                sinks: 2,
                window: 8,
            },
            AttentionKind::topk(4),
            AttentionKind::h2o_budget(12, 4),
        ];
        for kind in &kinds {
            let mut rng = Rng::new(51);
            let mut head = HeadState::new(d, kind);
            for _ in 0..30 {
                head.step(
                    &rng.normal_vec(d, 1.0),
                    &rng.normal_vec(d, 1.0),
                    &rng.normal_vec(d, 1.0),
                    false,
                );
            }
            let ck = head.checkpoint();
            let inputs: Vec<_> = (0..8)
                .map(|_| {
                    (
                        rng.normal_vec(d, 1.0),
                        rng.normal_vec(d, 1.0),
                        rng.normal_vec(d, 1.0),
                    )
                })
                .collect();
            let first: Vec<HeadStepOutput> = inputs
                .iter()
                .map(|(q, k, v)| head.step(q, k, v, false))
                .collect();
            head.restore(&ck);
            let second: Vec<HeadStepOutput> = inputs
                .iter()
                .map(|(q, k, v)| head.step(q, k, v, false))
                .collect();
            assert_eq!(first, second, "{kind:?}: replay after restore diverged");
        }
    }

    #[test]
    #[should_panic(expected = "different backend")]
    fn restore_rejects_foreign_checkpoint() {
        let exact = HeadState::new(4, &AttentionKind::Exact);
        let mut lad = HeadState::new(4, &AttentionKind::Lad(LadConfig::default()));
        lad.restore(&exact.checkpoint());
    }

    #[test]
    fn topk_matches_exact_bitwise_when_k_covers_cache() {
        let mut rng = Rng::new(54);
        let d = 8;
        let mut exact = HeadState::new(d, &AttentionKind::Exact);
        let mut topk = HeadState::new(d, &AttentionKind::topk(64));
        for _ in 0..30 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            let e = exact.step(&q, &k, &v, true);
            let t = topk.step(&q, &k, &v, true);
            assert_eq!(t.output, e.output, "k >= n must be bit-identical");
            assert_eq!(t.shifted_scores, e.shifted_scores);
        }
    }

    #[test]
    fn topk_diverges_from_exact_when_k_is_small() {
        let mut rng = Rng::new(55);
        let d = 8;
        let mut exact = HeadState::new(d, &AttentionKind::Exact);
        let mut topk = HeadState::new(d, &AttentionKind::topk(4));
        let mut drift = 0.0f32;
        for _ in 0..60 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            let e = exact.step(&q, &k, &v, false);
            let t = topk.step(&q, &k, &v, false);
            drift = drift.max(vector::relative_l2(&t.output, &e.output));
        }
        assert!(drift > 1e-4, "top-4 of 60 should drift, drift = {drift}");
    }

    #[test]
    fn topk_tie_break_keeps_lowest_index() {
        // Identical keys -> identical scores; the deterministic tie-break
        // must keep position 0, so the output is exactly its value.
        let d = 4;
        let mut head = HeadState::new(d, &AttentionKind::topk(1));
        let key = [1.0, 0.0, 0.0, 0.0];
        let q = [1.0; 4];
        let values = [[1.0f32; 4], [2.0; 4], [3.0; 4]];
        let mut last = Vec::new();
        for v in &values {
            last = head.step(&q, &key, v, false).output;
        }
        assert_eq!(last, values[0].to_vec());
    }

    #[test]
    fn h2o_budget_caps_live_set_and_keeps_recent() {
        let mut rng = Rng::new(56);
        let d = 8;
        let mut head = HeadState::new(d, &AttentionKind::h2o_budget(8, 4));
        let mut total_evictions = 0;
        for _ in 0..100 {
            let out = head.step(
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                false,
            );
            total_evictions += out.stats.expect("h2o reports stats").evictions;
        }
        assert_eq!(head.live_len(), 12, "live set must sit at budget + recent");
        assert_eq!(total_evictions, 88, "every dead position is one eviction");
        let HeadState::H2OBudget(state) = &head else {
            unreachable!()
        };
        for i in 96..100 {
            assert!(state.alive[i], "recent position {i} evicted");
        }
        let dead = (0..100).filter(|&i| !head.is_alive(i)).count();
        assert_eq!(dead, 88);
        assert!(head.is_alive(99));
    }

    #[test]
    fn h2o_budget_matches_exact_bitwise_until_eviction() {
        let mut rng = Rng::new(57);
        let d = 8;
        let mut exact = HeadState::new(d, &AttentionKind::Exact);
        let mut h2o = HeadState::new(d, &AttentionKind::h2o_budget(40, 8));
        // 30 steps never exceed the 48-position live cap: no eviction yet,
        // so the decode must be bit-identical to exact attention.
        for _ in 0..30 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            let e = exact.step(&q, &k, &v, true);
            let h = h2o.step(&q, &k, &v, true);
            assert_eq!(h.output, e.output, "pre-eviction H2O must match exact");
            assert_eq!(h.shifted_scores, e.shifted_scores);
        }
    }

    #[test]
    #[should_panic(expected = "recent must be at least 1")]
    fn h2o_budget_requires_recent() {
        HeadState::new(4, &AttentionKind::h2o_budget(4, 0));
    }

    #[test]
    fn every_backend_reports_traffic_stats() {
        let d = 8;
        let kinds = [
            AttentionKind::Exact,
            AttentionKind::ExactF16,
            AttentionKind::Lad(LadConfig::default()),
            AttentionKind::QserveKv4,
            AttentionKind::h2o_default(),
            AttentionKind::streaming_default(),
            AttentionKind::topk(4),
            AttentionKind::h2o_budget(8, 4),
        ];
        for kind in &kinds {
            let mut rng = Rng::new(58);
            let mut head = HeadState::new(d, kind);
            for i in 0..10 {
                let out = head.step(
                    &rng.normal_vec(d, 1.0),
                    &rng.normal_vec(d, 1.0),
                    &rng.normal_vec(d, 1.0),
                    false,
                );
                let stats = out.stats.unwrap_or_else(|| panic!("{kind:?}: no stats"));
                assert_eq!(stats.n, i + 1, "{kind:?}");
                assert!(stats.keys_scored >= 1, "{kind:?}");
                assert!(stats.keys_read >= 1, "{kind:?}");
                assert!(stats.bytes_moved > 0, "{kind:?}");
            }
        }
    }

    #[test]
    fn stats_bytes_match_traffic_meter() {
        use lad_core::kv::{reset_traffic_bytes, traffic_bytes};
        let d = 8;
        let kinds = [
            AttentionKind::Exact,
            AttentionKind::ExactF16,
            AttentionKind::QserveKv4,
            AttentionKind::h2o_default(),
            AttentionKind::streaming_default(),
            AttentionKind::topk(4),
            AttentionKind::h2o_budget(8, 4),
        ];
        for kind in &kinds {
            let mut rng = Rng::new(59);
            let mut head = HeadState::new(d, kind);
            for i in 0..40 {
                let (q, k, v) = (
                    rng.normal_vec(d, 1.0),
                    rng.normal_vec(d, 1.0),
                    rng.normal_vec(d, 1.0),
                );
                reset_traffic_bytes();
                let out = head.step(&q, &k, &v, false);
                let stats = out.stats.expect("stats present");
                assert_eq!(
                    traffic_bytes(),
                    stats.bytes_moved as u64,
                    "{kind:?} step {i}: analytic bytes diverge from metered bytes"
                );
            }
        }
    }

    #[test]
    fn sparse_backends_support_f16_arenas() {
        for kind in [AttentionKind::topk(6), AttentionKind::h2o_budget(12, 4)] {
            let mut rng = Rng::new(60);
            let d = 8;
            let mut full = HeadState::new(d, &kind);
            let mut half = HeadState::with_kv_precision(d, &kind, KvPrecision::F16);
            let mut worst = 0.0f32;
            for _ in 0..40 {
                let (q, k, v) = (
                    rng.normal_vec(d, 1.0),
                    rng.normal_vec(d, 1.0),
                    rng.normal_vec(d, 1.0),
                );
                let a = full.step(&q, &k, &v, false);
                let b = half.step(&q, &k, &v, false);
                worst = worst.max(vector::relative_l2(&b.output, &a.output));
                let (sa, sb) = (a.stats.unwrap(), b.stats.unwrap());
                assert_eq!(
                    sa.bytes_moved,
                    2 * sb.bytes_moved,
                    "{kind:?}: fp16 halves traffic"
                );
            }
            assert!(worst > 1e-7, "{kind:?}: fp16 should actually quantise");
            assert!(
                worst < 5e-3,
                "{kind:?}: fp16 error unreasonably large: {worst}"
            );
            assert_eq!(half.kv_bytes() * 2, full.kv_bytes());
        }
    }

    #[test]
    #[should_panic(expected = "no fp16 read path")]
    fn with_kv_precision_rejects_lad() {
        HeadState::with_kv_precision(
            4,
            &AttentionKind::Lad(LadConfig::default()),
            KvPrecision::F16,
        );
    }

    #[test]
    fn h2o_diverges_from_exact() {
        // H2O discards information, so outputs must drift from the original
        // model — that is the decoding-accuracy cost Table I quantifies.
        let mut rng = Rng::new(47);
        let d = 8;
        let mut exact = HeadState::new(d, &AttentionKind::Exact);
        let mut h2o = HeadState::new(d, &AttentionKind::h2o_default());
        let mut drift = 0.0f32;
        for _ in 0..80 {
            let (q, k, v) = (
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
                rng.normal_vec(d, 1.0),
            );
            let e = exact.step(&q, &k, &v, false);
            let h = h2o.step(&q, &k, &v, false);
            drift = drift.max(vector::relative_l2(&h.output, &e.output));
        }
        assert!(drift > 0.05, "H2O should diverge, drift = {drift}");
    }
}
