//! Training-free speculative decoding: draft, batched verify, rollback.
//!
//! A drafter proposes up to `K` continuation tokens from nothing but the
//! token stream itself (no draft model), the target model verifies all of
//! them in **one** multi-row forward per layer through
//! [`BatchSession::step_runs`] — the exact cross-row blocked-GEMM shape the
//! batch engine is already fast at — and the longest prefix of drafts that
//! matches the model's own greedy choices is accepted. Rows past the first
//! mismatch are unwound with [`BatchSession::rollback_sample`] (KV-arena
//! truncation plus metadata restore), so the visible token stream is
//! **bit-identical to plain greedy decoding**; speculation only changes how
//! many forward passes it takes to produce it.
//!
//! Two draft policies, both deterministic:
//!
//! * [`DraftPolicy::Recency`] — Cacheback-style: the longest matching
//!   suffix of the stream (up to `max_ngram` tokens) predicts the token
//!   that followed its most recent earlier occurrence.
//! * [`DraftPolicy::NgramPool`] — Lookahead-style: a pool of `n`-grams
//!   keyed by their `(n-1)`-token prefix, most recent occurrence wins.
//!
//! The acceptance walk for a round that fed rows `[pending, d_1..d_L]`:
//! row `j`'s argmax is committed; while it equals draft `d_{j+1}` the next
//! row was computed from the correct input and the walk continues. A round
//! therefore commits between 1 (all drafts rejected — never slower than
//! plain decoding in tokens per forward) and `L + 1` (all accepted plus the
//! bonus token) positions per forward pass.

use crate::backend::AttentionKind;
use crate::batch::BatchSession;
use crate::transformer::{argmax, Model};
use lad_obs::Histogram;
use std::collections::HashMap;

/// How draft tokens are proposed from the generated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DraftPolicy {
    /// Cacheback-style recency table: the longest matching stream suffix
    /// (down from `max_ngram` context tokens) proposes the token that
    /// followed its most recent earlier occurrence.
    Recency {
        /// Longest suffix length tried as context.
        max_ngram: usize,
    },
    /// Lookahead-style n-gram pool: a fixed `(n-1)`-token context maps to
    /// the continuation of its most recent occurrence.
    NgramPool {
        /// N-gram size (`n - 1` context tokens predict the `n`-th).
        n: usize,
    },
}

impl DraftPolicy {
    /// Default recency policy (suffixes up to 4 tokens).
    pub fn recency_default() -> DraftPolicy {
        DraftPolicy::Recency { max_ngram: 4 }
    }

    /// Default n-gram pool policy (trigrams: 2 context tokens).
    pub fn ngram_default() -> DraftPolicy {
        DraftPolicy::NgramPool { n: 3 }
    }

    /// Context lengths this policy indexes, shortest first.
    fn context_lens(&self) -> std::ops::RangeInclusive<usize> {
        match *self {
            DraftPolicy::Recency { max_ngram } => 1..=max_ngram,
            DraftPolicy::NgramPool { n } => (n - 1)..=(n - 1),
        }
    }
}

/// A training-free draft-token proposer fed by the decoded stream.
///
/// Deterministic by construction (pure table lookups, most-recent-wins
/// updates), so speculative decoding stays reproducible.
///
/// # Example
///
/// ```
/// use lad_model::spec::{DraftPolicy, Drafter};
///
/// let mut d = Drafter::new(DraftPolicy::recency_default());
/// d.observe_all(&[1, 2, 3, 1, 2]);
/// // The suffix [1, 2] was last followed by 3.
/// assert_eq!(d.draft(2), vec![3, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct Drafter {
    policy: DraftPolicy,
    history: Vec<u32>,
    /// Context n-gram -> token that followed its most recent occurrence.
    table: HashMap<Vec<u32>, u32>,
}

impl Drafter {
    /// An empty drafter under `policy`.
    ///
    /// # Panics
    ///
    /// Panics on a zero-length context (`max_ngram == 0` / `n < 2`).
    pub fn new(policy: DraftPolicy) -> Drafter {
        assert!(
            !policy.context_lens().is_empty() && *policy.context_lens().start() > 0,
            "Drafter: policy must index at least one non-empty context"
        );
        Drafter {
            policy,
            history: Vec::new(),
            table: HashMap::new(),
        }
    }

    /// Tokens observed so far (prompt plus committed stream).
    pub fn observed(&self) -> usize {
        self.history.len()
    }

    /// Feeds one committed token: every indexed context ending just before
    /// it now predicts it (most recent occurrence wins).
    pub fn observe(&mut self, token: u32) {
        self.history.push(token);
        let n = self.history.len();
        for ctx in self.policy.context_lens() {
            if n > ctx {
                self.table
                    .insert(self.history[n - 1 - ctx..n - 1].to_vec(), token);
            }
        }
    }

    /// Feeds a slice of committed tokens in order.
    pub fn observe_all(&mut self, tokens: &[u32]) {
        for &t in tokens {
            self.observe(t);
        }
    }

    /// Proposes up to `k` draft tokens by chaining table lookups on the
    /// current stream suffix (proposed tokens extend the context but never
    /// enter the table — they are hypotheses, not observations). Returns
    /// fewer than `k` when a context has no recorded continuation.
    pub fn draft(&self, k: usize) -> Vec<u32> {
        let longest = *self.policy.context_lens().end();
        let start = self.history.len().saturating_sub(longest);
        let mut work: Vec<u32> = self.history[start..].to_vec();
        let mut drafts = Vec::with_capacity(k);
        for _ in 0..k {
            let Some(next) = self.predict(&work) else {
                break;
            };
            drafts.push(next);
            work.push(next);
        }
        drafts
    }

    fn predict(&self, suffix: &[u32]) -> Option<u32> {
        for ctx in self.policy.context_lens().rev() {
            if suffix.len() >= ctx {
                if let Some(&t) = self.table.get(&suffix[suffix.len() - ctx..]) {
                    return Some(t);
                }
            }
        }
        None
    }
}

/// Speculative-decoding configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecConfig {
    /// Maximum draft tokens verified per round (`0` = plain decoding).
    pub k: usize,
    /// Draft proposal policy.
    pub policy: DraftPolicy,
}

impl SpecConfig {
    /// `k` drafts under the default recency policy.
    pub fn recency(k: usize) -> SpecConfig {
        SpecConfig {
            k,
            policy: DraftPolicy::recency_default(),
        }
    }

    /// `k` drafts under the default n-gram pool policy.
    pub fn ngram(k: usize) -> SpecConfig {
        SpecConfig {
            k,
            policy: DraftPolicy::ngram_default(),
        }
    }
}

/// Outcome of a speculative decode: the (greedy-identical) token stream
/// plus the draft/verify accounting behind the speedup model
/// `tokens per forward = 1 + acceptance_rate × K`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecReport {
    /// Generated tokens — bit-identical to plain greedy decoding.
    pub tokens: Vec<u32>,
    /// Draft/verify rounds executed.
    pub rounds: usize,
    /// Model forward passes (== `rounds`; each round is one multi-row step).
    pub forward_steps: usize,
    /// Draft tokens proposed across all rounds.
    pub drafted: usize,
    /// Draft tokens accepted across all rounds.
    pub accepted: usize,
    /// Histogram of committed tokens per round (accepted drafts + 1).
    pub accepted_len: Histogram,
    /// Histogram of per-round acceptance, in percent of proposed drafts
    /// (rounds that proposed nothing record no sample).
    pub acceptance_pct: Histogram,
}

impl SpecReport {
    /// Fraction of proposed drafts the model accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.drafted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.drafted as f64
        }
    }

    /// Mean committed tokens per forward pass (> 1.0 means speculation is
    /// paying for itself in steps; 1.0 is the plain-decoding floor).
    pub fn mean_accepted_len(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.tokens.len() as f64 / self.rounds as f64
        }
    }
}

/// Greedy-decodes `steps` tokens from `prompt` speculatively: each round
/// drafts up to `cfg.k` tokens, verifies them in one multi-row
/// [`BatchSession::step_runs`] forward, commits the longest matching prefix
/// (plus the model's correction/bonus token) and rolls the rest back.
///
/// The returned token stream is bit-identical to
/// [`Session::generate_greedy`](crate::transformer::Session::generate_greedy)
/// with the same model, backend and prompt — `tests/differential.rs` pins
/// this across the backend grid. With `cfg.k == 0` every round degenerates
/// to exactly the plain one-row step.
///
/// # Panics
///
/// Panics if `prompt` is empty.
pub fn decode_speculative(
    model: &Model,
    kind: &AttentionKind,
    prompt: &[u32],
    steps: usize,
    cfg: &SpecConfig,
) -> SpecReport {
    assert!(!prompt.is_empty(), "decode_speculative: empty prompt");
    let mut session = BatchSession::new(model, kind, 1, 1);
    let mut drafter = Drafter::new(cfg.policy.clone());
    drafter.observe_all(prompt);

    // Prefill everything but the last prompt token; that token is the first
    // round's pending input.
    for &t in &prompt[..prompt.len() - 1] {
        session.step(&[(0, t)]);
    }
    let mut pending = prompt[prompt.len() - 1];

    let mut report = SpecReport {
        tokens: Vec::with_capacity(steps),
        rounds: 0,
        forward_steps: 0,
        drafted: 0,
        accepted: 0,
        accepted_len: Histogram::new(),
        acceptance_pct: Histogram::new(),
    };
    let mut run_buf: Vec<u32> = Vec::with_capacity(cfg.k + 1);

    while report.tokens.len() < steps {
        let remaining = steps - report.tokens.len();
        // Never draft past the request budget: a round commits at most
        // `drafts + 1` tokens.
        let budget = cfg.k.min(remaining - 1);
        let drafts = {
            let _draft_span = lad_obs::span("spec.draft");
            drafter.draft(budget)
        };
        run_buf.clear();
        run_buf.push(pending);
        run_buf.extend_from_slice(&drafts);
        {
            let _verify_span = lad_obs::span("spec.verify");
            session.step_runs(&[(0, &run_buf)]);
        }

        // Acceptance walk: commit row argmaxes while they confirm drafts.
        let mut j = 0usize;
        loop {
            let next = argmax(session.logits(j));
            report.tokens.push(next);
            drafter.observe(next);
            if j < drafts.len() && drafts[j] == next {
                j += 1;
            } else {
                pending = next;
                break;
            }
        }
        if run_buf.len() > 1 {
            let _rollback_span = lad_obs::span("spec.rollback");
            session.rollback_sample(0, j + 1);
        }
        report.rounds += 1;
        report.forward_steps += 1;
        report.drafted += drafts.len();
        report.accepted += j;
        report.accepted_len.record((j + 1) as u64);
        if !drafts.is_empty() {
            report
                .acceptance_pct
                .record((100 * j / drafts.len()) as u64);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::transformer::Session;

    fn model() -> Model {
        Model::random(ModelConfig::tiny("spec", 2, 32, 2), 71)
    }

    #[test]
    fn recency_drafter_predicts_repeats() {
        let mut d = Drafter::new(DraftPolicy::recency_default());
        d.observe_all(&[5, 6, 7, 5, 6]);
        // Longest known suffix [5, 6] predicts 7, then [6, 7] predicts 5...
        assert_eq!(d.draft(3), vec![7, 5, 6]);
    }

    #[test]
    fn recency_prefers_longest_context() {
        let mut d = Drafter::new(DraftPolicy::Recency { max_ngram: 2 });
        // Context [1] is last followed by 9, but the 2-gram [2, 1] by 7.
        d.observe_all(&[2, 1, 7, 1, 9, 2, 1]);
        assert_eq!(d.draft(1), vec![7]);
    }

    #[test]
    fn ngram_pool_most_recent_wins() {
        let mut d = Drafter::new(DraftPolicy::NgramPool { n: 3 });
        d.observe_all(&[1, 2, 3, 1, 2, 4, 1, 2]);
        // [1, 2] -> 4 (latest occurrence shadows the earlier 3).
        assert_eq!(d.draft(1), vec![4]);
    }

    #[test]
    fn drafter_returns_short_on_unknown_context() {
        let d = Drafter::new(DraftPolicy::recency_default());
        assert!(d.draft(4).is_empty());
        let mut d = Drafter::new(DraftPolicy::NgramPool { n: 3 });
        d.observe(1);
        assert!(d.draft(2).is_empty(), "one token cannot fill a 2-context");
    }

    #[test]
    fn speculative_matches_greedy_for_both_policies() {
        let model = model();
        let prompt = vec![3u32, 1, 4, 1, 5];
        let mut reference = Session::new(&model, &AttentionKind::Exact);
        let want = reference.generate_greedy(&prompt, 24);
        for cfg in [SpecConfig::recency(4), SpecConfig::ngram(4)] {
            let report = decode_speculative(&model, &AttentionKind::Exact, &prompt, 24, &cfg);
            assert_eq!(report.tokens, want, "{:?} diverged from greedy", cfg.policy);
            assert_eq!(report.rounds, report.forward_steps);
            assert!(report.accepted <= report.drafted);
        }
    }

    #[test]
    fn k_zero_is_one_round_per_token() {
        let model = model();
        let prompt = vec![7u32, 8, 9];
        let report = decode_speculative(
            &model,
            &AttentionKind::Exact,
            &prompt,
            12,
            &SpecConfig::recency(0),
        );
        let mut reference = Session::new(&model, &AttentionKind::Exact);
        assert_eq!(report.tokens, reference.generate_greedy(&prompt, 12));
        assert_eq!(report.rounds, 12);
        assert_eq!(report.drafted, 0);
        assert_eq!(report.acceptance_pct.count(), 0);
        assert!((report.mean_accepted_len() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speculative_matches_greedy_for_sparse_backends() {
        // The acceptance criterion for the sparse zoo: speculation with
        // rollback (K = 4) and the degenerate one-token rounds (K = 0) must
        // both reproduce plain greedy decoding token-for-token, with the
        // budgets tight enough that top-k selection and H2O eviction are
        // actually exercised mid-speculation.
        let model = model();
        let prompt = vec![3u32, 1, 4, 1, 5];
        for kind in [AttentionKind::topk(4), AttentionKind::h2o_budget(8, 4)] {
            let mut reference = Session::new(&model, &kind);
            let want = reference.generate_greedy(&prompt, 24);
            for k in [0usize, 4] {
                let report =
                    decode_speculative(&model, &kind, &prompt, 24, &SpecConfig::recency(k));
                assert_eq!(report.tokens, want, "{kind:?} K={k} diverged from greedy");
            }
        }
    }

    #[test]
    fn cyclic_stream_reaches_high_acceptance() {
        // Greedy decoding of a tiny random model settles into a short cycle;
        // once the cycle has been seen the recency drafter predicts it
        // perfectly, so speculation must commit > 1 token per forward pass.
        let model = model();
        let prompt = vec![3u32, 1, 4, 1, 5];
        let report = decode_speculative(
            &model,
            &AttentionKind::Exact,
            &prompt,
            48,
            &SpecConfig::recency(4),
        );
        assert!(
            report.mean_accepted_len() > 1.0,
            "mean accepted length {} never beat plain decoding",
            report.mean_accepted_len()
        );
        assert_eq!(report.accepted_len.count() as usize, report.rounds);
    }
}
