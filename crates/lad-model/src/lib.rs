//! Decoder-only transformer substrate for the LAD reproduction.
//!
//! Provides a from-scratch transformer ([`transformer::Model`]) with seeded
//! random weights and a per-sample decode [`transformer::Session`] whose
//! attention heads run one of four pluggable backends
//! ([`backend::AttentionKind`]): exact softmax, LAD, Qserve-KV4 or H2O —
//! the paper's comparison set.
//!
//! Config presets ([`config::ModelConfig`]) carry the real dimensions of the
//! paper's four evaluation models for analytic accelerator modelling;
//! functional experiments use [`config::ModelConfig::tiny`] because no
//! pretrained checkpoints are available offline (see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use lad_model::backend::AttentionKind;
//! use lad_model::config::ModelConfig;
//! use lad_model::transformer::{Model, Session};
//!
//! let model = Model::random(ModelConfig::tiny("demo", 2, 32, 2), 1);
//! let mut exact = Session::new(&model, &AttentionKind::Exact);
//! let mut lad = Session::new(
//!     &model,
//!     &AttentionKind::Lad(lad_core::decoder::LadConfig::default()),
//! );
//! let a = exact.generate_greedy(&[1, 2, 3], 8);
//! let b = lad.generate_greedy(&[1, 2, 3], 8);
//! assert_eq!(a.len(), b.len());
//! ```

pub mod backend;
pub mod batch;
pub mod config;
pub mod layers;
pub mod sampling;
pub mod spec;
pub mod transformer;

pub use backend::{AttentionKind, HeadState, HeadStepOutput};
pub use batch::{decode_batch, decode_batch_gemm, BatchResult, BatchSession, StepOutcome};
pub use config::{MlpKind, ModelConfig, NormKind, PositionKind};
pub use sampling::{generate, Sampler};
pub use spec::{decode_speculative, DraftPolicy, Drafter, SpecConfig, SpecReport};
pub use transformer::{argmax, log_prob, Model, Session};
