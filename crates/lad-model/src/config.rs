//! Model configurations.
//!
//! Presets carry the *real* dimensions of the four models the paper evaluates
//! (OPT-2.7B/6.7B, LLaMA2-7B/13B) — these drive the analytic accelerator
//! model, where only layer shapes matter. Functional experiments (decoding,
//! ROUGE, perplexity) run scaled-down configs built with
//! [`ModelConfig::tiny`], since no pretrained checkpoints are available
//! offline (see `DESIGN.md`).

use serde::{Deserialize, Serialize};

/// Normalisation flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NormKind {
    /// LayerNorm with learned scale/shift (OPT).
    LayerNorm,
    /// RMSNorm (LLaMA).
    RmsNorm,
}

/// Position-encoding flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PositionKind {
    /// Learned absolute position embeddings added to token embeddings (OPT).
    Learned,
    /// Rotary position embeddings applied to queries and keys (LLaMA).
    Rope,
}

/// Feed-forward flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MlpKind {
    /// `W2 · gelu(W1 · x)` (OPT).
    Gelu,
    /// `W2 · (silu(Wg·x) ⊙ W1·x)` (LLaMA SwiGLU).
    SwiGlu,
}

/// Architecture hyper-parameters of a decoder-only transformer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name (used in experiment tables).
    pub name: String,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Feed-forward intermediate dimension.
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum supported sequence length.
    pub max_seq: usize,
    /// Normalisation flavour.
    pub norm: NormKind,
    /// Position-encoding flavour.
    pub position: PositionKind,
    /// Feed-forward flavour.
    pub mlp: MlpKind,
}

impl ModelConfig {
    /// Per-head dimension `d = hidden / heads`.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not a multiple of `heads`.
    pub fn head_dim(&self) -> usize {
        assert_eq!(
            self.hidden % self.heads,
            0,
            "hidden must be divisible by heads"
        );
        self.hidden / self.heads
    }

    /// Parameter count (weights only, embeddings tied to the LM head).
    pub fn param_count(&self) -> usize {
        let attn = 4 * self.hidden * self.hidden;
        let mlp = match self.mlp {
            MlpKind::Gelu => 2 * self.hidden * self.intermediate,
            MlpKind::SwiGlu => 3 * self.hidden * self.intermediate,
        };
        self.layers * (attn + mlp) + self.vocab * self.hidden
    }

    /// Per-layer fp16 weight bytes (the paper's linear-layer traffic unit).
    pub fn layer_weight_bytes(&self) -> usize {
        let attn = 4 * self.hidden * self.hidden;
        let mlp = match self.mlp {
            MlpKind::Gelu => 2 * self.hidden * self.intermediate,
            MlpKind::SwiGlu => 3 * self.hidden * self.intermediate,
        };
        (attn + mlp) * 2
    }

    /// Per-layer per-sample fp16 KV-cache bytes at sequence length `n`.
    pub fn layer_kv_bytes(&self, n: usize) -> usize {
        2 * n * self.hidden * 2
    }

    /// OPT-2.7B dimensions (paper Table I).
    pub fn opt_2_7b() -> ModelConfig {
        ModelConfig {
            name: "OPT-2.7B".to_string(),
            layers: 32,
            hidden: 2560,
            heads: 32,
            intermediate: 10240,
            vocab: 50272,
            max_seq: 2048,
            norm: NormKind::LayerNorm,
            position: PositionKind::Learned,
            mlp: MlpKind::Gelu,
        }
    }

    /// OPT-6.7B dimensions.
    pub fn opt_6_7b() -> ModelConfig {
        ModelConfig {
            name: "OPT-6.7B".to_string(),
            layers: 32,
            hidden: 4096,
            heads: 32,
            intermediate: 16384,
            vocab: 50272,
            max_seq: 2048,
            norm: NormKind::LayerNorm,
            position: PositionKind::Learned,
            mlp: MlpKind::Gelu,
        }
    }

    /// LLaMA2-7B dimensions.
    pub fn llama2_7b() -> ModelConfig {
        ModelConfig {
            name: "LLaMA2-7B".to_string(),
            layers: 32,
            hidden: 4096,
            heads: 32,
            intermediate: 11008,
            vocab: 32000,
            max_seq: 4096,
            norm: NormKind::RmsNorm,
            position: PositionKind::Rope,
            mlp: MlpKind::SwiGlu,
        }
    }

    /// LLaMA2-13B dimensions.
    pub fn llama2_13b() -> ModelConfig {
        ModelConfig {
            name: "LLaMA2-13B".to_string(),
            layers: 40,
            hidden: 5120,
            heads: 40,
            intermediate: 13824,
            vocab: 32000,
            max_seq: 4096,
            norm: NormKind::RmsNorm,
            position: PositionKind::Rope,
            mlp: MlpKind::SwiGlu,
        }
    }

    /// The four paper models, in the paper's order.
    pub fn paper_models() -> Vec<ModelConfig> {
        vec![
            ModelConfig::opt_2_7b(),
            ModelConfig::opt_6_7b(),
            ModelConfig::llama2_7b(),
            ModelConfig::llama2_13b(),
        ]
    }

    /// A scaled-down config for functional experiments: LLaMA-style with the
    /// given shape.
    pub fn tiny(name: &str, layers: usize, hidden: usize, heads: usize) -> ModelConfig {
        ModelConfig {
            name: name.to_string(),
            layers,
            hidden,
            heads,
            intermediate: hidden * 2,
            vocab: 256,
            max_seq: 4096,
            norm: NormKind::RmsNorm,
            position: PositionKind::Rope,
            mlp: MlpKind::SwiGlu,
        }
    }

    /// A scaled-down OPT-style config (LayerNorm + learned positions + GELU).
    pub fn tiny_opt(name: &str, layers: usize, hidden: usize, heads: usize) -> ModelConfig {
        ModelConfig {
            norm: NormKind::LayerNorm,
            position: PositionKind::Learned,
            mlp: MlpKind::Gelu,
            ..ModelConfig::tiny(name, layers, hidden, heads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_dimensions_match_paper_models() {
        let llama7 = ModelConfig::llama2_7b();
        assert_eq!(llama7.head_dim(), 128);
        assert_eq!(llama7.layers, 32);
        // ~6.7e9 parameters.
        let params = llama7.param_count() as f64;
        assert!((6.0e9..7.5e9).contains(&params), "params {params}");

        let opt27 = ModelConfig::opt_2_7b();
        assert_eq!(opt27.head_dim(), 80);
        let params = opt27.param_count() as f64;
        assert!((2.3e9..2.9e9).contains(&params), "params {params}");

        let llama13 = ModelConfig::llama2_13b();
        let params = llama13.param_count() as f64;
        assert!((12.0e9..13.5e9).contains(&params), "params {params}");
    }

    #[test]
    fn kv_bytes_match_paper_example() {
        // Paper intro: one layer of LLaMA2-7B at batch 32, seq 1024, fp16
        // accesses 0.5 GB of KV cache.
        let cfg = ModelConfig::llama2_7b();
        let bytes = cfg.layer_kv_bytes(1024) * 32;
        let gib = bytes as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!((gib - 0.5).abs() < 0.01, "got {gib} GiB");
        // And ~2 GB at seq 4096.
        let gib4 = (cfg.layer_kv_bytes(4096) * 32) as f64 / 1024f64.powi(3);
        assert!((gib4 - 2.0).abs() < 0.01, "got {gib4} GiB");
    }

    #[test]
    fn weight_bytes_match_paper_example() {
        // Paper intro: one LLaMA2-7B layer accesses 0.29 GB of fp16 weights.
        // That figure counts the 4 attention projections plus *two* MLP
        // matrices ((4·h² + 2·h·i)·2 = 0.293 GiB); with the SwiGLU gate
        // included the true count is 0.377 GiB. We model all three matrices.
        let cfg = ModelConfig::llama2_7b();
        let gib = cfg.layer_weight_bytes() as f64 / 1024f64.powi(3);
        assert!((0.28..0.40).contains(&gib), "got {gib} GiB");
        let paper_gib = ((4 * cfg.hidden * cfg.hidden + 2 * cfg.hidden * cfg.intermediate) * 2)
            as f64
            / 1024f64.powi(3);
        assert!((paper_gib - 0.29).abs() < 0.01, "got {paper_gib} GiB");
    }

    #[test]
    fn tiny_configs_are_consistent() {
        let t = ModelConfig::tiny("t", 2, 64, 4);
        assert_eq!(t.head_dim(), 16);
        assert_eq!(t.mlp, MlpKind::SwiGlu);
        let o = ModelConfig::tiny_opt("o", 2, 64, 4);
        assert_eq!(o.norm, NormKind::LayerNorm);
        assert_eq!(o.position, PositionKind::Learned);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_heads_panic() {
        ModelConfig::tiny("bad", 1, 65, 4).head_dim();
    }
}
