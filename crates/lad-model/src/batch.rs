//! Batched decoding across samples.
//!
//! The paper's throughput evaluation decodes batches of samples; each sample
//! owns its per-head attention state but shares the model weights, so
//! samples decode independently and in parallel. This module provides a
//! thread-parallel batch decoder (plain `std::thread::scope` — the model is
//! immutable shared state) plus aggregate LAD statistics across the batch.

use crate::backend::AttentionKind;
use crate::transformer::{Model, Session};
use lad_core::stats::{StatsSummary, StepStats};

/// Result of decoding one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Generated tokens per sample, prompt order.
    pub sequences: Vec<Vec<u32>>,
    /// LAD step statistics of every (sample, layer, head) at the final step
    /// (empty for non-LAD backends).
    pub final_stats: Vec<StepStats>,
}

impl BatchResult {
    /// Aggregate of the final-step LAD statistics.
    pub fn stats_summary(&self) -> StatsSummary {
        StatsSummary::from_steps(&self.final_stats)
    }
}

/// Greedy-decodes every prompt for `steps` tokens, `threads`-wide.
///
/// Results are identical to sequential decoding (samples are independent and
/// each session is deterministic).
///
/// # Panics
///
/// Panics if `threads == 0` or any prompt is empty.
pub fn decode_batch(
    model: &Model,
    kind: &AttentionKind,
    prompts: &[Vec<u32>],
    steps: usize,
    threads: usize,
) -> BatchResult {
    assert!(threads > 0, "decode_batch: threads must be positive");
    assert!(
        prompts.iter().all(|p| !p.is_empty()),
        "decode_batch: empty prompt"
    );
    let chunk = prompts.len().div_ceil(threads).max(1);
    let mut outputs: Vec<Option<(Vec<u32>, Vec<StepStats>)>> = vec![None; prompts.len()];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk_idx, chunk_prompts) in prompts.chunks(chunk).enumerate() {
            handles.push((
                chunk_idx,
                scope.spawn(move || {
                    chunk_prompts
                        .iter()
                        .map(|prompt| {
                            // Samples already saturate the worker pool here;
                            // nested per-head fan-out would only oversubscribe.
                            let mut session = Session::with_parallelism(model, kind, 1);
                            let tokens = session.generate_greedy(prompt, steps);
                            (tokens, session.last_stats().to_vec())
                        })
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (chunk_idx, handle) in handles {
            let results = handle.join().expect("decode worker panicked");
            for (offset, result) in results.into_iter().enumerate() {
                outputs[chunk_idx * chunk + offset] = Some(result);
            }
        }
    });

    let mut sequences = Vec::with_capacity(prompts.len());
    let mut final_stats = Vec::new();
    for slot in outputs {
        let (tokens, stats) = slot.expect("every prompt decoded");
        sequences.push(tokens);
        final_stats.extend(stats);
    }
    BatchResult {
        sequences,
        final_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use lad_core::decoder::LadConfig;

    fn model() -> Model {
        Model::random(ModelConfig::tiny("batch", 2, 32, 2), 71)
    }

    fn prompts() -> Vec<Vec<u32>> {
        vec![vec![1, 2, 3], vec![9, 8], vec![4, 4, 4, 4], vec![200, 100]]
    }

    #[test]
    fn parallel_matches_sequential() {
        let model = model();
        let sequential = decode_batch(&model, &AttentionKind::Exact, &prompts(), 10, 1);
        let parallel = decode_batch(&model, &AttentionKind::Exact, &prompts(), 10, 4);
        assert_eq!(sequential.sequences, parallel.sequences);
    }

    #[test]
    fn matches_single_session_decoding() {
        let model = model();
        let batch = decode_batch(&model, &AttentionKind::Exact, &prompts(), 8, 2);
        for (prompt, expected) in prompts().iter().zip(&batch.sequences) {
            let mut session = Session::new(&model, &AttentionKind::Exact);
            assert_eq!(&session.generate_greedy(prompt, 8), expected);
        }
    }

    #[test]
    fn lad_batch_collects_stats() {
        let model = model();
        let batch = decode_batch(
            &model,
            &AttentionKind::Lad(LadConfig::default()),
            &prompts(),
            6,
            2,
        );
        // 4 samples x 2 layers x 2 heads.
        assert_eq!(batch.final_stats.len(), 16);
        let summary = batch.stats_summary();
        assert_eq!(summary.steps, 16);
        assert!(summary.mean_centers > 0.0);
    }

    #[test]
    fn exact_batch_has_no_stats() {
        let model = model();
        let batch = decode_batch(&model, &AttentionKind::Exact, &prompts(), 4, 3);
        assert!(batch.final_stats.is_empty());
        assert_eq!(batch.sequences.len(), 4);
    }

    #[test]
    fn more_threads_than_prompts_is_fine() {
        let model = model();
        let batch = decode_batch(&model, &AttentionKind::Exact, &prompts()[..2], 4, 16);
        assert_eq!(batch.sequences.len(), 2);
    }

    #[test]
    #[should_panic(expected = "threads must be positive")]
    fn zero_threads_rejected() {
        decode_batch(&model(), &AttentionKind::Exact, &prompts(), 2, 0);
    }
}
