//! Batched decoding across samples on the shared worker pool.
//!
//! The paper's throughput evaluation decodes batches of samples; each sample
//! owns its per-head attention state but shares the model weights, so
//! samples decode independently. Every sample becomes a *sequence-level*
//! task on the shared [`WorkerPool`]; inside each sample, every decode step
//! fans its attention heads out as *head-level* tasks on the **same** pool.
//! That ends the old mutual exclusion where batch workers pinned
//! `parallelism = 1`: a small batch's sequence tasks leave cores idle, and
//! those cores now drain the head-level queue instead.
//!
//! Scheduling never changes results — samples are independent, each session
//! is deterministic, and head outputs are collected in head order — which
//! `tests/differential.rs` pins down against the sequential paths.
//!
//! [`BatchSession`] / [`decode_batch_gemm`] go one step further: instead of
//! one independent session per sample, all samples advance **one token per
//! global step**, their activation vectors stacked into a `batch × hidden`
//! matrix so every linear layer runs as a single cross-sample blocked GEMM
//! ([`lad_math::gemm`]) — the weights stream once per step instead of once
//! per sample. The GEMM's ascending-`k` accumulation contract keeps this
//! bit-identical to the per-sample paths.

use crate::backend::{AttentionKind, HeadCheckpoint, HeadState, HeadStepOutput};
use crate::config::{MlpKind, PositionKind};
use crate::layers::{gelu, rope_in_place, silu, ROPE_BASE};
use crate::transformer::{argmax, Model, Session};
use lad_core::pool::{PoolMetrics, TaskLevel, WorkerPool};
use lad_core::stats::{GemmBatchMetrics, StatsSummary, StepStats};
use lad_math::gemm::{gemm_bt_into, GemmScratch};
use lad_math::vector;
use std::sync::Arc;

/// Result of decoding one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Generated tokens per sample, prompt order.
    pub sequences: Vec<Vec<u32>>,
    /// Step statistics of every (sample, layer, head) at the final step —
    /// every backend reports the shared traffic counters; LAD additionally
    /// fills its identification fields.
    pub final_stats: Vec<StepStats>,
    /// Worker-pool scheduling counters metered across the whole batch (zero
    /// on the sequential path; best-effort on a pool shared with concurrent
    /// decodes).
    pub pool: PoolMetrics,
    /// Batched-GEMM calls and step barriers (zero on the per-sample paths;
    /// populated by [`decode_batch_gemm`]).
    pub gemm: GemmBatchMetrics,
}

impl BatchResult {
    /// Aggregate of the final-step LAD statistics, with the batch's pool
    /// and batched-GEMM scheduling counters attached.
    pub fn stats_summary(&self) -> StatsSummary {
        StatsSummary::from_steps(&self.final_stats)
            .with_pool_metrics(self.pool)
            .with_gemm_metrics(self.gemm)
    }
}

/// Greedy-decodes every prompt for `steps` tokens.
///
/// `parallelism == 1` is the sequential reference path: every sample decodes
/// inline, one after the other, without touching the pool. Any larger value
/// schedules the batch on the process-global [`WorkerPool`] and also serves
/// as the per-step head fan-out width inside each sample. Results are
/// identical in every configuration.
///
/// # Panics
///
/// Panics if `parallelism == 0` or any prompt is empty.
pub fn decode_batch(
    model: &Model,
    kind: &AttentionKind,
    prompts: &[Vec<u32>],
    steps: usize,
    parallelism: usize,
) -> BatchResult {
    assert!(parallelism > 0, "decode_batch: threads must be positive");
    assert!(
        prompts.iter().all(|p| !p.is_empty()),
        "decode_batch: empty prompt"
    );
    if parallelism == 1 {
        let mut sequences = Vec::with_capacity(prompts.len());
        let mut final_stats = Vec::new();
        for prompt in prompts {
            let mut session = Session::with_parallelism(model, kind, 1);
            sequences.push(session.generate_greedy(prompt, steps));
            final_stats.extend(session.last_stats().iter().copied());
        }
        return BatchResult {
            sequences,
            final_stats,
            pool: PoolMetrics::default(),
            gemm: GemmBatchMetrics::default(),
        };
    }
    decode_batch_on(
        WorkerPool::global(),
        model,
        kind,
        prompts,
        steps,
        parallelism,
    )
}

/// Greedy-decodes every prompt for `steps` tokens on an explicit shared
/// `pool`: one sequence-level task per sample, and up to `head_parallelism`
/// head-level tasks per decode step inside each sample, all on the same
/// two-level queue.
///
/// # Panics
///
/// Panics if any prompt is empty.
pub fn decode_batch_on(
    pool: &Arc<WorkerPool>,
    model: &Model,
    kind: &AttentionKind,
    prompts: &[Vec<u32>],
    steps: usize,
    head_parallelism: usize,
) -> BatchResult {
    assert!(
        prompts.iter().all(|p| !p.is_empty()),
        "decode_batch: empty prompt"
    );
    let before = pool.metrics();
    let mut outputs: Vec<Option<(Vec<u32>, Vec<StepStats>)>> = vec![None; prompts.len()];

    pool.scope(|scope| {
        for (prompt, slot) in prompts.iter().zip(outputs.iter_mut()) {
            let task_pool = Arc::clone(pool);
            scope.spawn(TaskLevel::Sequence, move || {
                let mut session = Session::with_pool(model, kind, task_pool, head_parallelism);
                let tokens = session.generate_greedy(prompt, steps);
                *slot = Some((tokens, session.last_stats().to_vec()));
            });
        }
    });

    let mut sequences = Vec::with_capacity(prompts.len());
    let mut final_stats = Vec::new();
    for slot in outputs {
        let (tokens, stats) = slot.expect("every prompt decoded");
        sequences.push(tokens);
        final_stats.extend(stats);
    }
    BatchResult {
        sequences,
        final_stats,
        pool: pool.metrics().delta(before),
        gemm: GemmBatchMetrics::default(),
    }
}

/// Reused activation matrices of a [`BatchSession`]: every buffer holds
/// `active` stacked per-sample rows, so after the first step the batched hot
/// path performs no per-projection allocation.
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    x: Vec<f32>,
    normed: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    attn: Vec<f32>,
    proj: Vec<f32>,
    up: Vec<f32>,
    gate: Vec<f32>,
    final_h: Vec<f32>,
    logits: Vec<f32>,
    gemm: GemmScratch,
}

impl BatchScratch {
    fn resize(&mut self, active: usize, hidden: usize, intermediate: usize, vocab: usize) {
        for buf in [
            &mut self.x,
            &mut self.normed,
            &mut self.q,
            &mut self.k,
            &mut self.v,
            &mut self.attn,
            &mut self.proj,
            &mut self.final_h,
        ] {
            buf.resize(active * hidden, 0.0);
        }
        self.up.resize(active * intermediate, 0.0);
        self.gate.resize(active * intermediate, 0.0);
        self.logits.resize(active * vocab, 0.0);
    }
}

/// Result of one [`BatchSession::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step fed `active` token rows (one per sample on the plain
    /// [`BatchSession::step`] path; the summed run lengths under
    /// [`BatchSession::step_runs`]).
    Advanced {
        /// Number of token rows the step fed.
        active: usize,
    },
    /// The token list was empty — the step was a no-op: no position moved,
    /// no barrier was crossed, no GEMM ran and the logits buffer is
    /// untouched. A scheduler whose active set momentarily drains (all
    /// requests retired, next arrival still in the queue) hits this.
    Idle,
}

/// Rollback state of one sample's multi-row run, captured during the latest
/// [`BatchSession::step_runs`] so rejected speculative rows can be unwound.
#[derive(Debug)]
struct SampleCheckpoints {
    sample: usize,
    /// Tokens the sample had consumed before the run.
    pos_before: usize,
    run_len: usize,
    /// Head state before each row, indexed
    /// `(row * layers + layer) * heads + head`.
    heads: Vec<Option<HeadCheckpoint>>,
}

/// Step-synchronous batched decode session (the cross-sample GEMM engine).
///
/// Where [`decode_batch`] runs one independent [`Session`] per sample (each
/// streaming every weight matrix once per sample per step), a `BatchSession`
/// advances **all** samples one token per global step: the per-sample
/// activation vectors are stacked into a `batch × hidden` matrix and every
/// linear layer runs as *one* matrix-matrix product
/// ([`lad_math::gemm`]) — the weights stream once per step, not once per
/// sample. The attention heads, which own per-sample state, fan out as one
/// pool task per (sample-chunk, layer) on the shared [`WorkerPool`].
///
/// The GEMM kernel's ascending-`k` accumulation contract makes every row of
/// a batched projection bit-identical to the per-sample `matvec`, so tokens
/// and algorithmic stats are exactly those of [`Session`] /
/// [`decode_batch`]; `tests/differential.rs` pins this down.
///
/// # Dynamic membership
///
/// Membership is not fixed at construction: [`BatchSession::add_sample`]
/// opens a fresh sample slot mid-flight (reusing slots freed by
/// [`BatchSession::remove_sample`]) and `remove_sample` drops a sample and
/// its KV state. A continuous-batching scheduler (`lad-serve`) admits and
/// retires requests per global step this way; [`BatchSession::dynamic`]
/// opens a session with zero slots for exactly that use. Slot indices are
/// stable while a sample is live.
#[derive(Debug)]
pub struct BatchSession<'m> {
    model: &'m Model,
    /// Attention backend every sample's heads run (kept for
    /// [`BatchSession::add_sample`]).
    kind: AttentionKind,
    /// Attention state, indexed `[sample][layer][head]`.
    heads: Vec<Vec<Vec<HeadState>>>,
    /// Tokens consumed so far, per sample.
    pos: Vec<usize>,
    /// Whether each slot currently holds a live sample.
    live: Vec<bool>,
    /// Slots freed by [`BatchSession::remove_sample`], ready for reuse.
    free_slots: Vec<usize>,
    /// Fan-out width of the per-layer sample-chunk scheduling.
    parallelism: usize,
    /// Explicit pool override (`None` = the process-global pool).
    pool: Option<Arc<WorkerPool>>,
    /// Per-sample statistics from each sample's latest step, in
    /// (layer, head) order.
    last_stats: Vec<Vec<StepStats>>,
    scratch: BatchScratch,
    gemm_metrics: GemmBatchMetrics,
    pool_metrics: PoolMetrics,
    /// Run descriptors of the in-flight step (samples, run lengths, tokens
    /// run-major) — reused scratch so stepping stays allocation-free.
    run_samples: Vec<usize>,
    run_lens: Vec<usize>,
    run_tokens: Vec<u32>,
    /// Rollback checkpoints from the latest step's multi-row runs
    /// (invalidated by the next step).
    ckpts: Vec<SampleCheckpoints>,
}

impl<'m> BatchSession<'m> {
    /// Opens a step-synchronous session for `batch` samples over `model`,
    /// with every head running `kind`. Fan-out widths above 1 schedule
    /// sample chunks on the process-global [`WorkerPool`].
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `parallelism == 0`.
    pub fn new(
        model: &'m Model,
        kind: &AttentionKind,
        batch: usize,
        parallelism: usize,
    ) -> BatchSession<'m> {
        assert!(batch > 0, "BatchSession: batch must be positive");
        BatchSession::build(model, kind, batch, parallelism, None)
    }

    /// Like [`BatchSession::new`] but scheduling on an explicit shared pool.
    pub fn with_pool(
        model: &'m Model,
        kind: &AttentionKind,
        batch: usize,
        pool: Arc<WorkerPool>,
        parallelism: usize,
    ) -> BatchSession<'m> {
        assert!(batch > 0, "BatchSession: batch must be positive");
        BatchSession::build(model, kind, batch, parallelism, Some(pool))
    }

    /// Opens a session with **zero** sample slots for dynamic-membership
    /// schedulers: samples join via [`BatchSession::add_sample`] and leave
    /// via [`BatchSession::remove_sample`].
    ///
    /// # Panics
    ///
    /// Panics if `parallelism == 0`.
    pub fn dynamic(model: &'m Model, kind: &AttentionKind, parallelism: usize) -> BatchSession<'m> {
        BatchSession::build(model, kind, 0, parallelism, None)
    }

    fn build(
        model: &'m Model,
        kind: &AttentionKind,
        batch: usize,
        parallelism: usize,
        pool: Option<Arc<WorkerPool>>,
    ) -> BatchSession<'m> {
        assert!(parallelism > 0, "BatchSession: threads must be positive");
        let d = model.cfg.head_dim();
        let heads = (0..batch)
            .map(|_| {
                (0..model.cfg.layers)
                    .map(|_| {
                        (0..model.cfg.heads)
                            .map(|_| HeadState::new(d, kind))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        BatchSession {
            model,
            kind: kind.clone(),
            heads,
            pos: vec![0; batch],
            live: vec![true; batch],
            free_slots: Vec::new(),
            parallelism,
            pool,
            last_stats: vec![Vec::new(); batch],
            scratch: BatchScratch::default(),
            gemm_metrics: GemmBatchMetrics::default(),
            pool_metrics: PoolMetrics::default(),
            run_samples: Vec::new(),
            run_lens: Vec::new(),
            run_tokens: Vec::new(),
            ckpts: Vec::new(),
        }
    }

    /// Number of sample slots (live samples plus freed slots awaiting
    /// reuse). Every statically-opened session has `batch() == live_samples()`
    /// until a sample is removed.
    pub fn batch(&self) -> usize {
        self.pos.len()
    }

    /// Number of currently live samples.
    pub fn live_samples(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Whether slot `sample` currently holds a live sample.
    pub fn is_live(&self, sample: usize) -> bool {
        self.live.get(sample).copied().unwrap_or(false)
    }

    /// Opens a fresh sample slot mid-flight (position 0, empty KV state,
    /// same attention backend as the session) and returns its index. Freed
    /// slots are reused before the session grows.
    pub fn add_sample(&mut self) -> usize {
        let kind = self.kind.clone();
        self.add_sample_with_kind(&kind)
    }

    /// Like [`BatchSession::add_sample`], but the fresh sample's heads run
    /// `kind` instead of the session default — the serving engine uses this
    /// to mix attention backends inside one step-synchronous batch.
    pub fn add_sample_with_kind(&mut self, kind: &AttentionKind) -> usize {
        let cfg = &self.model.cfg;
        let d = cfg.head_dim();
        let fresh: Vec<Vec<HeadState>> = (0..cfg.layers)
            .map(|_| (0..cfg.heads).map(|_| HeadState::new(d, kind)).collect())
            .collect();
        match self.free_slots.pop() {
            Some(slot) => {
                debug_assert!(!self.live[slot], "free list held a live slot");
                self.heads[slot] = fresh;
                self.pos[slot] = 0;
                self.last_stats[slot].clear();
                self.live[slot] = true;
                slot
            }
            None => {
                self.heads.push(fresh);
                self.pos.push(0);
                self.last_stats.push(Vec::new());
                self.live.push(true);
                self.pos.len() - 1
            }
        }
    }

    /// Removes live sample `sample`, dropping its KV state; the slot is
    /// recycled by a later [`BatchSession::add_sample`].
    ///
    /// # Panics
    ///
    /// Panics if `sample` is out of range or not live (double remove).
    pub fn remove_sample(&mut self, sample: usize) {
        assert!(
            self.is_live(sample),
            "BatchSession::remove_sample: sample {sample} is not live"
        );
        self.live[sample] = false;
        self.heads[sample] = Vec::new();
        self.last_stats[sample].clear();
        self.pos[sample] = 0;
        self.free_slots.push(sample);
        // Stale rollback state must not survive into a reused slot.
        self.ckpts.retain(|c| c.sample != sample);
    }

    /// Tokens consumed so far by `sample`.
    pub fn position(&self, sample: usize) -> usize {
        self.pos[sample]
    }

    /// Arena positions of `sample` that **every** (layer, head) state has
    /// evicted — safe for a paged KV allocator to reclaim. Non-evicting
    /// backends never report any.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is not live.
    pub fn dead_positions(&self, sample: usize) -> Vec<usize> {
        assert!(
            self.is_live(sample),
            "BatchSession::dead_positions: sample {sample} is not live"
        );
        let heads = &self.heads[sample];
        (0..self.pos[sample])
            .filter(|&p| heads.iter().flatten().all(|h| !h.is_alive(p)))
            .collect()
    }

    /// Step statistics of `sample` from its latest step, in (layer, head)
    /// order.
    pub fn last_stats(&self, sample: usize) -> &[StepStats] {
        &self.last_stats[sample]
    }

    /// Next-token logits of the `active_idx`-th row fed to the latest
    /// [`BatchSession::step`] / [`BatchSession::step_runs`] (rows are laid
    /// out run-major, so under `step` row index == token-list index).
    pub fn logits(&self, active_idx: usize) -> &[f32] {
        let vocab = self.model.cfg.vocab;
        &self.scratch.logits[active_idx * vocab..(active_idx + 1) * vocab]
    }

    /// Batched-GEMM calls and step barriers accumulated so far.
    pub fn gemm_metrics(&self) -> GemmBatchMetrics {
        self.gemm_metrics
    }

    /// Pool scheduling counters accumulated across this session's steps
    /// (best-effort on a pool shared with concurrent decodes).
    pub fn pool_metrics(&self) -> PoolMetrics {
        self.pool_metrics
    }

    /// Advances every listed sample by one token — one step-synchronous
    /// global step. `tokens` pairs each active sample index with the token
    /// it consumes, in strictly increasing sample order; inactive samples
    /// (already finished their ragged tail) are simply omitted. Logits land
    /// row-per-entry in [`BatchSession::logits`].
    ///
    /// An **empty** `tokens` slice is a documented no-op returning
    /// [`StepOutcome::Idle`]: nothing advances, no barrier or GEMM is
    /// counted, and the logits buffer keeps its previous contents. This is
    /// the idle tick of a scheduler whose active set momentarily drained.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is out of order, names a sample out of range or
    /// not live, a token outside the vocabulary, or a sample past the
    /// model's maximum sequence length.
    pub fn step(&mut self, tokens: &[(usize, u32)]) -> StepOutcome {
        self.run_samples.clear();
        self.run_lens.clear();
        self.run_tokens.clear();
        for &(s, t) in tokens {
            self.run_samples.push(s);
            self.run_lens.push(1);
            self.run_tokens.push(t);
        }
        self.step_flat()
    }

    /// Advances every listed sample by a *run* of consecutive tokens in one
    /// step-synchronous global step — the speculative-verify shape. All rows
    /// of all runs are stacked run-major into the shared activation matrix,
    /// so each linear layer is still one cross-sample GEMM; within a run the
    /// attention heads consume the rows sequentially (row `r` attends over
    /// the KV state left by rows `< r`), making every row's logits
    /// bit-identical to feeding the same tokens one [`BatchSession::step`]
    /// at a time. Logits land row-per-row in [`BatchSession::logits`], in
    /// run order (a run of length `L` starting at global row `r0` owns rows
    /// `r0..r0 + L`).
    ///
    /// For every run longer than one token the session records per-row head
    /// checkpoints so [`BatchSession::rollback_sample`] can unwind rejected
    /// speculative rows; single-token runs skip the bookkeeping entirely and
    /// behave exactly like [`BatchSession::step`].
    ///
    /// An empty `runs` slice is the same documented no-op as an empty
    /// [`BatchSession::step`], returning [`StepOutcome::Idle`].
    ///
    /// # Panics
    ///
    /// Panics on out-of-order or repeated sample indices, empty runs,
    /// samples out of range or not live, tokens outside the vocabulary, or
    /// a run overshooting the model's maximum sequence length.
    pub fn step_runs(&mut self, runs: &[(usize, &[u32])]) -> StepOutcome {
        self.run_samples.clear();
        self.run_lens.clear();
        self.run_tokens.clear();
        for &(s, toks) in runs {
            self.run_samples.push(s);
            self.run_lens.push(toks.len());
            self.run_tokens.extend_from_slice(toks);
        }
        self.step_flat()
    }

    /// Unwinds sample `sample` to just after row `keep_rows` of its
    /// multi-row run in the latest [`BatchSession::step_runs`] call: head
    /// states are restored from the per-row checkpoints (KV arenas
    /// truncated, in-place metadata rewound) and the sample's position is
    /// reset, so subsequent steps are bit-identical to never having fed the
    /// rejected rows. `keep_rows == run_len` is a no-op. Each run's
    /// checkpoints can be consumed once and are invalidated by the next
    /// step.
    ///
    /// # Panics
    ///
    /// Panics if the latest step held no multi-row run for `sample` (or it
    /// was already rolled back), or if `keep_rows` exceeds the run length.
    pub fn rollback_sample(&mut self, sample: usize, keep_rows: usize) {
        let _rollback_span = lad_obs::span("batch.rollback");
        let idx = self
            .ckpts
            .iter()
            .position(|c| c.sample == sample)
            .unwrap_or_else(|| panic!("rollback_sample: no checkpointed run for sample {sample}"));
        let ck = self.ckpts.swap_remove(idx);
        assert!(
            keep_rows <= ck.run_len,
            "rollback_sample: keep_rows {keep_rows} exceeds run length {}",
            ck.run_len
        );
        if keep_rows == ck.run_len {
            return;
        }
        let layers = self.model.cfg.layers;
        let heads_n = self.model.cfg.heads;
        for (layer, row) in self.heads[sample].iter_mut().enumerate() {
            for (h, head) in row.iter_mut().enumerate() {
                let slot = (keep_rows * layers + layer) * heads_n + h;
                let hc = ck.heads[slot].as_ref().expect("checkpoint recorded");
                head.restore(hc);
            }
        }
        self.pos[sample] = ck.pos_before + keep_rows;
    }

    /// The shared step body: consumes the run descriptors staged in
    /// `run_samples` / `run_lens` / `run_tokens`.
    fn step_flat(&mut self) -> StepOutcome {
        let samples = std::mem::take(&mut self.run_samples);
        let lens = std::mem::take(&mut self.run_lens);
        let toks = std::mem::take(&mut self.run_tokens);
        let outcome = self.step_impl(&samples, &lens, &toks);
        self.run_samples = samples;
        self.run_lens = lens;
        self.run_tokens = toks;
        outcome
    }

    fn step_impl(&mut self, samples: &[usize], lens: &[usize], toks: &[u32]) -> StepOutcome {
        if samples.is_empty() {
            return StepOutcome::Idle;
        }
        let _step_span = lad_obs::span("batch.step");
        let cfg = &self.model.cfg;
        for pair in samples.windows(2) {
            assert!(
                pair[0] < pair[1],
                "BatchSession::step: sample indices must be strictly increasing"
            );
        }
        for (&s, &len) in samples.iter().zip(lens) {
            assert!(len > 0, "BatchSession::step_runs: empty token run");
            assert!(s < self.pos.len(), "sample index out of range");
            assert!(self.live[s], "BatchSession::step: sample {s} is not live");
            assert!(self.pos[s] + len <= cfg.max_seq, "sequence length exceeded");
        }
        for &t in toks {
            assert!((t as usize) < cfg.vocab, "token out of vocabulary");
        }
        let n_runs = samples.len();
        let rows = toks.len();
        let hidden = cfg.hidden;
        let d = cfg.head_dim();
        let heads_n = cfg.heads;
        let layers_n = cfg.layers;

        // Rollback state: one checkpoint set per multi-row run, filled
        // layer by layer below. The previous step's checkpoints die here.
        let mut ckpt_store = std::mem::take(&mut self.ckpts);
        ckpt_store.clear();
        // Run index -> index into `ckpt_store` (multi-row runs only).
        let mut store_of_run: Vec<Option<usize>> = Vec::with_capacity(n_runs);
        for (&s, &len) in samples.iter().zip(lens) {
            if len > 1 {
                store_of_run.push(Some(ckpt_store.len()));
                ckpt_store.push(SampleCheckpoints {
                    sample: s,
                    pos_before: self.pos[s],
                    run_len: len,
                    heads: std::iter::repeat_with(|| None)
                        .take(len * layers_n * heads_n)
                        .collect(),
                });
            } else {
                store_of_run.push(None);
            }
        }

        let width = self.parallelism.min(n_runs).max(1);
        let pool: Option<Arc<WorkerPool>> = (width > 1).then(|| {
            self.pool
                .clone()
                .unwrap_or_else(|| Arc::clone(WorkerPool::global()))
        });
        let pool_before = pool.as_ref().map(|p| p.metrics());
        let mut gemm_calls = 0usize;

        // The scratch matrices move out of `self` for the step so the head
        // states below can be borrowed mutably alongside them.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.resize(rows, hidden, cfg.intermediate, cfg.vocab);
        let BatchScratch {
            x,
            normed,
            q,
            k,
            v,
            attn,
            proj,
            up,
            gate,
            final_h,
            logits,
            gemm,
        } = &mut scratch;

        let mut row0 = 0usize;
        for (&s, &len) in samples.iter().zip(lens) {
            for r in 0..len {
                let row = &mut x[(row0 + r) * hidden..(row0 + r + 1) * hidden];
                row.copy_from_slice(self.model.embed.row(toks[row0 + r] as usize));
                if let Some(pos_embed) = &self.model.pos_embed {
                    vector::axpy(row, 1.0, pos_embed.row(self.pos[s] + r));
                }
            }
            self.last_stats[s].clear();
            row0 += len;
        }

        let mut slots: Vec<Option<HeadStepOutput>> = Vec::new();
        let mut ck_slots: Vec<Option<HeadCheckpoint>> = Vec::new();
        for (layer, block) in self.model.blocks.iter().enumerate() {
            let qkv_span = lad_obs::span("batch.qkv_gemm");
            for a in 0..rows {
                block.norm1.forward_into(
                    &x[a * hidden..(a + 1) * hidden],
                    &mut normed[a * hidden..(a + 1) * hidden],
                );
            }
            // One cross-sample GEMM per projection: the whole batch shares a
            // single streaming pass over each weight matrix.
            block.wq.forward_batch_into(rows, normed, q, gemm);
            block.wk.forward_batch_into(rows, normed, k, gemm);
            block.wv.forward_batch_into(rows, normed, v, gemm);
            gemm_calls += 3;
            drop(qkv_span);

            if cfg.position == PositionKind::Rope {
                let mut row0 = 0usize;
                for (&s, &len) in samples.iter().zip(lens) {
                    for r in 0..len {
                        for h in 0..heads_n {
                            let base = (row0 + r) * hidden;
                            let span = base + h * d..base + (h + 1) * d;
                            rope_in_place(&mut q[span.clone()], self.pos[s] + r, ROPE_BASE);
                            rope_in_place(&mut k[span], self.pos[s] + r, ROPE_BASE);
                        }
                    }
                    row0 += len;
                }
            }

            // Gather each active sample's head row for this layer, in run
            // order, so chunks of runs can fan out as pool tasks.
            let mut layer_heads: Vec<&mut [HeadState]> = Vec::with_capacity(n_runs);
            {
                let mut head_rows = self.heads.iter_mut().enumerate();
                for &s in samples {
                    let row = loop {
                        let (i, row) = head_rows.next().expect("sample index in range");
                        if i == s {
                            break row;
                        }
                    };
                    layer_heads.push(&mut row[layer][..]);
                }
            }

            slots.clear();
            slots.resize_with(rows * heads_n, || None);
            ck_slots.clear();
            ck_slots.resize_with(rows * heads_n, || None);
            let attn_span = lad_obs::span("batch.attn_fanout");
            match &pool {
                None => step_run_chunk(
                    0,
                    hidden,
                    d,
                    heads_n,
                    &mut layer_heads,
                    lens,
                    &mut slots,
                    &mut ck_slots,
                    q,
                    k,
                    v,
                ),
                Some(pool) => {
                    let chunk = n_runs.div_ceil(width);
                    pool.scope(|scope| {
                        // Split runs — and their (row-aligned) output and
                        // checkpoint slots — at run boundaries.
                        let mut heads_rest: &mut [&mut [HeadState]] = &mut layer_heads;
                        let mut lens_rest: &[usize] = lens;
                        let mut slots_rest: &mut [Option<HeadStepOutput>] = &mut slots;
                        let mut ck_rest: &mut [Option<HeadCheckpoint>] = &mut ck_slots;
                        let mut first_row = 0usize;
                        let mut first_piece = None;
                        let mut c = 0usize;
                        while !lens_rest.is_empty() {
                            let take = chunk.min(lens_rest.len());
                            let rows_here: usize = lens_rest[..take].iter().sum();
                            let (h_chunk, h_rest) = heads_rest.split_at_mut(take);
                            let (l_chunk, l_rest) = lens_rest.split_at(take);
                            let (s_chunk, s_rest) = slots_rest.split_at_mut(rows_here * heads_n);
                            let (c_chunk, c_rest) = ck_rest.split_at_mut(rows_here * heads_n);
                            heads_rest = h_rest;
                            lens_rest = l_rest;
                            slots_rest = s_rest;
                            ck_rest = c_rest;
                            if c == 0 {
                                first_piece = Some((h_chunk, l_chunk, s_chunk, c_chunk));
                            } else {
                                let (q, k, v) = (&q, &k, &v);
                                let fr = first_row;
                                scope.spawn(TaskLevel::Head, move || {
                                    step_run_chunk(
                                        fr, hidden, d, heads_n, h_chunk, l_chunk, s_chunk, c_chunk,
                                        q, k, v,
                                    );
                                });
                            }
                            first_row += rows_here;
                            c += 1;
                        }
                        if let Some((h, l, s, ck)) = first_piece {
                            step_run_chunk(0, hidden, d, heads_n, h, l, s, ck, q, k, v);
                        }
                    });
                }
            }

            let mut row0 = 0usize;
            for (i, (&s, &len)) in samples.iter().zip(lens).enumerate() {
                for r in 0..len {
                    for h in 0..heads_n {
                        let out = slots[(row0 + r) * heads_n + h]
                            .take()
                            .expect("every head ran");
                        let base = (row0 + r) * hidden;
                        attn[base + h * d..base + (h + 1) * d].copy_from_slice(&out.output);
                        if let Some(mut stats) = out.stats {
                            stats.fanout_width = width;
                            self.last_stats[s].push(stats);
                        }
                        if let Some(store) = store_of_run[i] {
                            let ck = ck_slots[(row0 + r) * heads_n + h]
                                .take()
                                .expect("multi-row run checkpointed");
                            ckpt_store[store].heads[(r * layers_n + layer) * heads_n + h] =
                                Some(ck);
                        }
                    }
                }
                row0 += len;
            }
            drop(attn_span);

            {
                let _out_span = lad_obs::span("batch.out_gemm");
                block.wo.forward_batch_into(rows, attn, proj, gemm);
                gemm_calls += 1;
                for a in 0..rows {
                    vector::axpy(
                        &mut x[a * hidden..(a + 1) * hidden],
                        1.0,
                        &proj[a * hidden..(a + 1) * hidden],
                    );
                }
            }

            let _mlp_span = lad_obs::span("batch.mlp_gemm");
            for a in 0..rows {
                block.norm2.forward_into(
                    &x[a * hidden..(a + 1) * hidden],
                    &mut normed[a * hidden..(a + 1) * hidden],
                );
            }
            match cfg.mlp {
                MlpKind::Gelu => {
                    block.w_up.forward_batch_into(rows, normed, up, gemm);
                    for val in up.iter_mut() {
                        *val = gelu(*val);
                    }
                    block.w_down.forward_batch_into(rows, up, proj, gemm);
                    gemm_calls += 2;
                }
                MlpKind::SwiGlu => {
                    let w_gate = block
                        .w_gate
                        .as_ref()
                        .expect("SwiGLU blocks carry a gate projection");
                    w_gate.forward_batch_into(rows, normed, gate, gemm);
                    block.w_up.forward_batch_into(rows, normed, up, gemm);
                    for (g, &u) in gate.iter_mut().zip(up.iter()) {
                        *g = silu(*g) * u;
                    }
                    block.w_down.forward_batch_into(rows, gate, proj, gemm);
                    gemm_calls += 3;
                }
            }
            for a in 0..rows {
                vector::axpy(
                    &mut x[a * hidden..(a + 1) * hidden],
                    1.0,
                    &proj[a * hidden..(a + 1) * hidden],
                );
            }
        }

        let logits_span = lad_obs::span("batch.logits_gemm");
        for a in 0..rows {
            self.model.final_norm.forward_into(
                &x[a * hidden..(a + 1) * hidden],
                &mut final_h[a * hidden..(a + 1) * hidden],
            );
        }
        // The unembedding is one more cross-sample GEMM against the tied
        // embedding matrix.
        gemm_bt_into(
            rows,
            cfg.vocab,
            hidden,
            final_h,
            self.model.embed.as_slice(),
            logits,
            gemm,
        );
        gemm_calls += 1;
        drop(logits_span);

        for (&s, &len) in samples.iter().zip(lens) {
            self.pos[s] += len;
        }
        self.scratch = scratch;
        self.ckpts = ckpt_store;
        self.gemm_metrics.gemm_calls += gemm_calls;
        self.gemm_metrics.sync_barriers += 1;
        if let (Some(pool), Some(before)) = (&pool, pool_before) {
            let delta = pool.metrics().delta(before);
            self.pool_metrics.tasks_executed += delta.tasks_executed;
            self.pool_metrics.tasks_stolen += delta.tasks_stolen;
            self.pool_metrics.idle_wakeups += delta.idle_wakeups;
            self.pool_metrics.scopes_completed += delta.scopes_completed;
            self.pool_metrics.park_nanos += delta.park_nanos;
        }
        StepOutcome::Advanced { active: rows }
    }
}

/// Steps every head of a contiguous chunk of runs whose first row sits at
/// global row `first_row`, writing each (row, head) output — and, for
/// multi-row runs, the head state *before* the row — into its pre-assigned
/// slot (the pool-task body of the per-(run-chunk, layer) fan-out). Within a
/// run each head consumes its rows oldest-first, so row `r` attends over
/// exactly the KV state rows `< r` left behind — the sequential semantics
/// speculative verification relies on.
#[allow(clippy::too_many_arguments)]
fn step_run_chunk(
    first_row: usize,
    hidden: usize,
    d: usize,
    heads_n: usize,
    runs: &mut [&mut [HeadState]],
    run_lens: &[usize],
    slots: &mut [Option<HeadStepOutput>],
    ckpts: &mut [Option<HeadCheckpoint>],
    q: &[f32],
    k: &[f32],
    v: &[f32],
) {
    let mut row = first_row;
    for (run_heads, &len) in runs.iter_mut().zip(run_lens) {
        for (h, head) in run_heads.iter_mut().enumerate() {
            for r in 0..len {
                let base = (row + r) * hidden;
                let span = base + h * d..base + (h + 1) * d;
                let slot = (row + r - first_row) * heads_n + h;
                if len > 1 {
                    ckpts[slot] = Some(head.checkpoint());
                }
                slots[slot] = Some(head.step(&q[span.clone()], &k[span.clone()], &v[span], false));
            }
        }
        row += len;
    }
}

/// Greedy-decodes every prompt for `steps` tokens through a step-synchronous
/// [`BatchSession`]: all samples advance one token per global step with
/// cross-sample batched GEMMs; ragged prompts are handled by shrinking the
/// active set as samples finish. Tokens and algorithmic stats are
/// bit-identical to [`decode_batch`] at any `parallelism`.
///
/// # Panics
///
/// Panics if `parallelism == 0` or any prompt is empty.
pub fn decode_batch_gemm(
    model: &Model,
    kind: &AttentionKind,
    prompts: &[Vec<u32>],
    steps: usize,
    parallelism: usize,
) -> BatchResult {
    assert!(
        parallelism > 0,
        "decode_batch_gemm: threads must be positive"
    );
    assert!(
        prompts.iter().all(|p| !p.is_empty()),
        "decode_batch_gemm: empty prompt"
    );
    if prompts.is_empty() {
        return BatchResult {
            sequences: Vec::new(),
            final_stats: Vec::new(),
            pool: PoolMetrics::default(),
            gemm: GemmBatchMetrics::default(),
        };
    }
    let n = prompts.len();
    let lens: Vec<usize> = prompts.iter().map(|p| p.len()).collect();
    let horizon = lens.iter().copied().max().unwrap_or(0) + steps;
    let mut session = BatchSession::new(model, kind, n, parallelism);
    let mut next_token = vec![0u32; n];
    let mut generated: Vec<Vec<u32>> = vec![Vec::with_capacity(steps); n];
    let mut tokens: Vec<(usize, u32)> = Vec::with_capacity(n);

    #[allow(clippy::needless_range_loop)] // `t` is a global step counter, not a prompt index
    for t in 0..horizon {
        tokens.clear();
        for s in 0..n {
            // Sample `s` stays active while it still has prompt tokens to
            // consume or generated tokens to feed back — the same
            // `len + steps` consumption as `Session::generate_greedy`.
            if t < lens[s] + steps {
                let tok = if t < lens[s] {
                    prompts[s][t]
                } else {
                    next_token[s]
                };
                tokens.push((s, tok));
            }
        }
        if tokens.is_empty() {
            break;
        }
        session.step(&tokens);
        for (a, &(s, _)) in tokens.iter().enumerate() {
            if t + 1 >= lens[s] && generated[s].len() < steps {
                let next = argmax(session.logits(a));
                generated[s].push(next);
                next_token[s] = next;
            }
        }
    }

    let mut final_stats = Vec::new();
    for s in 0..n {
        final_stats.extend(session.last_stats(s).iter().copied());
    }
    BatchResult {
        sequences: generated,
        final_stats,
        pool: session.pool_metrics(),
        gemm: session.gemm_metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use lad_core::decoder::LadConfig;

    fn model() -> Model {
        Model::random(ModelConfig::tiny("batch", 2, 32, 2), 71)
    }

    fn prompts() -> Vec<Vec<u32>> {
        vec![vec![1, 2, 3], vec![9, 8], vec![4, 4, 4, 4], vec![200, 100]]
    }

    #[test]
    fn parallel_matches_sequential() {
        let model = model();
        let sequential = decode_batch(&model, &AttentionKind::Exact, &prompts(), 10, 1);
        let parallel = decode_batch(&model, &AttentionKind::Exact, &prompts(), 10, 4);
        assert_eq!(sequential.sequences, parallel.sequences);
    }

    #[test]
    fn matches_single_session_decoding() {
        let model = model();
        let batch = decode_batch(&model, &AttentionKind::Exact, &prompts(), 8, 2);
        for (prompt, expected) in prompts().iter().zip(&batch.sequences) {
            let mut session = Session::new(&model, &AttentionKind::Exact);
            assert_eq!(&session.generate_greedy(prompt, 8), expected);
        }
    }

    #[test]
    fn dedicated_pool_matches_sequential() {
        // An explicit pool (with background workers) must agree with the
        // inline path token-for-token and stat-for-stat.
        let model = model();
        let pool = Arc::new(WorkerPool::new(2));
        let kind = AttentionKind::Lad(LadConfig::default());
        let sequential = decode_batch(&model, &kind, &prompts(), 8, 1);
        let pooled = decode_batch_on(&pool, &model, &kind, &prompts(), 8, 2);
        assert_eq!(sequential.sequences, pooled.sequences);
        assert_eq!(sequential.final_stats.len(), pooled.final_stats.len());
        for (a, b) in sequential.final_stats.iter().zip(&pooled.final_stats) {
            assert_eq!(a.algorithmic(), b.algorithmic());
        }
        // The batch ran entirely through the dedicated pool: one sequence
        // task per sample, head tasks on top.
        assert!(pooled.pool.tasks_executed >= prompts().len());
    }

    #[test]
    fn lad_batch_collects_stats() {
        let model = model();
        let batch = decode_batch(
            &model,
            &AttentionKind::Lad(LadConfig::default()),
            &prompts(),
            6,
            2,
        );
        // 4 samples x 2 layers x 2 heads.
        assert_eq!(batch.final_stats.len(), 16);
        let summary = batch.stats_summary();
        assert_eq!(summary.steps, 16);
        assert!(summary.mean_centers > 0.0);
        // Heads fan out 2-wide inside each sequence task now (the old path
        // pinned this to 1).
        assert!(batch.final_stats.iter().all(|s| s.fanout_width == 2));
    }

    #[test]
    fn exact_batch_reports_traffic_stats() {
        let model = model();
        let batch = decode_batch(&model, &AttentionKind::Exact, &prompts(), 4, 3);
        // 4 samples x 2 layers x 2 heads, each carrying traffic counters.
        assert_eq!(batch.final_stats.len(), 16);
        assert!(batch
            .final_stats
            .iter()
            .all(|s| s.keys_scored == s.n && s.bytes_moved > 0));
        assert_eq!(batch.sequences.len(), 4);
    }

    #[test]
    fn more_threads_than_prompts_is_fine() {
        let model = model();
        let batch = decode_batch(&model, &AttentionKind::Exact, &prompts()[..2], 4, 16);
        assert_eq!(batch.sequences.len(), 2);
    }

    #[test]
    #[should_panic(expected = "threads must be positive")]
    fn zero_threads_rejected() {
        decode_batch(&model(), &AttentionKind::Exact, &prompts(), 2, 0);
    }

    #[test]
    fn gemm_batch_matches_sequential_exactly() {
        // The tentpole invariant: the step-synchronous batched engine emits
        // bit-identical tokens and algorithmic stats to the per-sample
        // sequential reference, for exact and LAD backends, ragged prompts
        // included.
        let model = model();
        for kind in [
            AttentionKind::Exact,
            AttentionKind::Lad(LadConfig::default()),
            AttentionKind::topk(6),
            AttentionKind::h2o_budget(12, 4),
        ] {
            let reference = decode_batch(&model, &kind, &prompts(), 10, 1);
            let batched = decode_batch_gemm(&model, &kind, &prompts(), 10, 1);
            assert_eq!(reference.sequences, batched.sequences);
            assert_eq!(reference.final_stats.len(), batched.final_stats.len());
            for (a, b) in reference.final_stats.iter().zip(&batched.final_stats) {
                assert_eq!(a.algorithmic(), b.algorithmic());
            }
        }
    }

    #[test]
    fn gemm_batch_opt_style_matches_sequential() {
        // Learned positions + LayerNorm + GELU exercise the other batched
        // code paths (pos-embed add, gelu loop, no RoPE).
        let model = Model::random(ModelConfig::tiny_opt("opt-batch", 2, 32, 2), 77);
        let reference = decode_batch(&model, &AttentionKind::Exact, &prompts(), 8, 1);
        let batched = decode_batch_gemm(&model, &AttentionKind::Exact, &prompts(), 8, 1);
        assert_eq!(reference.sequences, batched.sequences);
    }

    #[test]
    fn gemm_batch_fanout_is_bit_identical_to_inline() {
        let model = model();
        let kind = AttentionKind::Lad(LadConfig::default());
        let inline = decode_batch_gemm(&model, &kind, &prompts(), 10, 1);
        let fanned = decode_batch_gemm(&model, &kind, &prompts(), 10, 4);
        assert_eq!(inline.sequences, fanned.sequences);
        for (a, b) in inline.final_stats.iter().zip(&fanned.final_stats) {
            assert_eq!(a.algorithmic(), b.algorithmic());
        }
        // The fanned run scheduled head chunks on the pool.
        assert!(fanned.pool.tasks_executed > 0);
    }

    #[test]
    fn gemm_batch_counts_calls_and_barriers() {
        let model = model(); // tiny: 2 layers, SwiGLU -> 7 GEMMs/layer + unembed.
        let steps = 6;
        let batched = decode_batch_gemm(&model, &AttentionKind::Exact, &prompts(), steps, 1);
        let max_len = prompts().iter().map(Vec::len).max().unwrap();
        let barriers = max_len + steps;
        assert_eq!(batched.gemm.sync_barriers, barriers);
        assert_eq!(batched.gemm.gemm_calls, barriers * (2 * 7 + 1));
        let summary = batched.stats_summary();
        assert_eq!(summary.sync_barriers, barriers);
        assert_eq!(summary.gemm_calls, batched.gemm.gemm_calls);
        // The per-sample paths never report batched-GEMM activity.
        let reference = decode_batch(&model, &AttentionKind::Exact, &prompts(), steps, 1);
        assert_eq!(reference.gemm, GemmBatchMetrics::default());
    }

    #[test]
    fn empty_step_is_an_idle_noop() {
        let model = model();
        let mut session = BatchSession::new(&model, &AttentionKind::Exact, 2, 1);
        assert_eq!(
            session.step(&[(0, 1), (1, 2)]),
            StepOutcome::Advanced { active: 2 }
        );
        let logits_before = session.logits(0).to_vec();
        let gemm_before = session.gemm_metrics();
        assert_eq!(session.step(&[]), StepOutcome::Idle);
        assert_eq!(session.position(0), 1);
        assert_eq!(session.position(1), 1);
        assert_eq!(session.logits(0), &logits_before[..]);
        assert_eq!(session.gemm_metrics(), gemm_before);
        // Decoding continues unperturbed after the idle tick.
        assert_eq!(session.step(&[(0, 3)]), StepOutcome::Advanced { active: 1 });
        assert_eq!(session.position(0), 2);
    }

    #[test]
    fn dynamic_membership_matches_solo_sessions() {
        // A sample admitted mid-flight, one retired mid-flight, and one
        // reusing the freed slot all decode bit-identically to solo
        // sessions fed the same token streams.
        let model = model();
        let kind = AttentionKind::Exact;
        let mut session = BatchSession::dynamic(&model, &kind, 1);
        assert_eq!(session.live_samples(), 0);
        assert_eq!(session.step(&[]), StepOutcome::Idle);

        let tokens_a = [5u32, 6, 7, 8];
        let tokens_b = [40u32, 41, 42, 43];
        let a = session.add_sample();
        // a runs alone for two steps.
        session.step(&[(a, tokens_a[0])]);
        session.step(&[(a, tokens_a[1])]);
        // b joins mid-flight; two mixed steps finish a.
        let b = session.add_sample();
        assert_ne!(a, b);
        session.step(&[(a, tokens_a[2]), (b, tokens_b[0])]);
        session.step(&[(a, tokens_a[3]), (b, tokens_b[1])]);
        let logits_a = session.logits(0).to_vec();
        // a retires; b continues alone, then c reuses a's slot.
        session.remove_sample(a);
        session.step(&[(b, tokens_b[2])]);
        let c = session.add_sample();
        assert_eq!(c, a, "freed slot should be reused");
        let tokens_c = [100u32, 101];
        session.step(&[(c, tokens_c[0]), (b, tokens_b[3])]);
        let logits_b = session.logits(1).to_vec();
        session.step(&[(c, tokens_c[1])]);
        let logits_c = session.logits(0).to_vec();

        for (tokens, batched) in [
            (&tokens_a[..], logits_a),
            (&tokens_b[..], logits_b),
            (&tokens_c[..], logits_c),
        ] {
            let mut solo = Session::new(&model, &kind);
            let mut solo_logits = Vec::new();
            for &t in tokens {
                solo_logits = solo.step(t);
            }
            assert_eq!(batched, solo_logits);
        }
    }

    #[test]
    fn multi_row_run_matches_sequential_steps() {
        // A run of L tokens through `step_runs` must produce, row by row,
        // the exact logits of feeding the same tokens one `step` at a time —
        // for exact and LAD backends, mixed with a plain 1-row sample.
        let model = model();
        for kind in [
            AttentionKind::Exact,
            AttentionKind::Lad(LadConfig::default()),
            AttentionKind::topk(6),
            AttentionKind::h2o_budget(12, 4),
        ] {
            let mut spec = BatchSession::new(&model, &kind, 2, 1);
            let mut seq = BatchSession::new(&model, &kind, 2, 1);
            for t in [3u32, 7, 11] {
                spec.step(&[(0, t), (1, t + 1)]);
                seq.step(&[(0, t), (1, t + 1)]);
            }
            let run = [20u32, 21, 22, 23];
            spec.step_runs(&[(0, &run), (1, &[50u32])]);
            let spec_logits: Vec<Vec<f32>> = (0..5).map(|r| spec.logits(r).to_vec()).collect();
            for (r, &t) in run.iter().enumerate() {
                seq.step(&[(0, t)]);
                assert_eq!(
                    spec_logits[r],
                    seq.logits(0),
                    "{kind:?}: run row {r} diverged from sequential step"
                );
            }
            seq.step(&[(1, 50)]);
            assert_eq!(
                spec_logits[4],
                seq.logits(0),
                "{kind:?}: plain row diverged"
            );
            assert_eq!(spec.position(0), seq.position(0));
        }
    }

    #[test]
    fn rollback_sample_rewinds_bit_exactly() {
        // Feed a 4-row run, roll back to 2 kept rows, then continue: every
        // subsequent step must be bit-identical to a session that only ever
        // saw the kept prefix.
        let model = model();
        for kind in [
            AttentionKind::Exact,
            AttentionKind::Lad(LadConfig::default()),
            AttentionKind::topk(6),
            AttentionKind::h2o_budget(12, 4),
        ] {
            let mut spec = BatchSession::new(&model, &kind, 1, 1);
            let mut seq = BatchSession::new(&model, &kind, 1, 1);
            spec.step(&[(0, 5)]);
            seq.step(&[(0, 5)]);
            spec.step_runs(&[(0, &[10u32, 11, 12, 13])]);
            spec.rollback_sample(0, 2);
            assert_eq!(spec.position(0), 3);
            seq.step(&[(0, 10)]);
            seq.step(&[(0, 11)]);
            for t in [30u32, 31, 32] {
                spec.step(&[(0, t)]);
                seq.step(&[(0, t)]);
                assert_eq!(
                    spec.logits(0),
                    seq.logits(0),
                    "{kind:?}: post-rollback diverged"
                );
            }
        }
    }

    #[test]
    fn step_runs_fanout_matches_inline() {
        // Mixed multi-row + plain runs under pool fan-out must be
        // bit-identical to the inline path.
        let model = model();
        let kind = AttentionKind::Lad(LadConfig::default());
        let mut inline = BatchSession::new(&model, &kind, 3, 1);
        let mut fanned = BatchSession::new(&model, &kind, 3, 4);
        for session in [&mut inline, &mut fanned] {
            session.step(&[(0, 1), (1, 2), (2, 3)]);
            session.step_runs(&[(0, &[4u32, 5, 6]), (1, &[7u32]), (2, &[8u32, 9])]);
        }
        for r in 0..6 {
            assert_eq!(inline.logits(r), fanned.logits(r), "row {r} diverged");
        }
        inline.rollback_sample(0, 1);
        fanned.rollback_sample(0, 1);
        inline.step(&[(0, 40), (1, 41), (2, 42)]);
        fanned.step(&[(0, 40), (1, 41), (2, 42)]);
        for r in 0..3 {
            assert_eq!(inline.logits(r), fanned.logits(r), "post-rollback row {r}");
        }
    }

    #[test]
    #[should_panic(expected = "no checkpointed run")]
    fn rollback_without_multi_row_run_panics() {
        let model = model();
        let mut session = BatchSession::new(&model, &AttentionKind::Exact, 1, 1);
        session.step(&[(0, 1)]);
        session.rollback_sample(0, 1);
    }

    #[test]
    #[should_panic(expected = "empty token run")]
    fn empty_run_rejected() {
        let model = model();
        let mut session = BatchSession::new(&model, &AttentionKind::Exact, 1, 1);
        session.step_runs(&[(0, &[])]);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn stepping_removed_sample_panics() {
        let model = model();
        let mut session = BatchSession::new(&model, &AttentionKind::Exact, 2, 1);
        session.remove_sample(1);
        session.step(&[(1, 3)]);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_remove_panics() {
        let model = model();
        let mut session = BatchSession::new(&model, &AttentionKind::Exact, 2, 1);
        session.remove_sample(0);
        session.remove_sample(0);
    }

    #[test]
    fn batch_session_rejects_unsorted_samples() {
        let model = model();
        let mut session = BatchSession::new(&model, &AttentionKind::Exact, 3, 1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session.step(&[(1, 2), (0, 3)]);
        }));
        assert!(caught.is_err(), "unsorted sample list must panic");
    }

    #[test]
    #[should_panic(expected = "empty prompt")]
    fn empty_prompt_rejected_on_gemm_path() {
        decode_batch_gemm(&model(), &AttentionKind::Exact, &[vec![1], vec![]], 2, 1);
    }

    #[test]
    #[should_panic(expected = "empty prompt")]
    fn empty_prompt_rejected_on_pool_path() {
        let pool = Arc::new(WorkerPool::new(0));
        decode_batch_on(
            &pool,
            &model(),
            &AttentionKind::Exact,
            &[vec![1], vec![]],
            2,
            2,
        );
    }
}
