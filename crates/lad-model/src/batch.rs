//! Batched decoding across samples on the shared worker pool.
//!
//! The paper's throughput evaluation decodes batches of samples; each sample
//! owns its per-head attention state but shares the model weights, so
//! samples decode independently. Every sample becomes a *sequence-level*
//! task on the shared [`WorkerPool`]; inside each sample, every decode step
//! fans its attention heads out as *head-level* tasks on the **same** pool.
//! That ends the old mutual exclusion where batch workers pinned
//! `parallelism = 1`: a small batch's sequence tasks leave cores idle, and
//! those cores now drain the head-level queue instead.
//!
//! Scheduling never changes results — samples are independent, each session
//! is deterministic, and head outputs are collected in head order — which
//! `tests/differential.rs` pins down against the sequential paths.

use crate::backend::AttentionKind;
use crate::transformer::{Model, Session};
use lad_core::pool::{PoolMetrics, TaskLevel, WorkerPool};
use lad_core::stats::{StatsSummary, StepStats};
use std::sync::Arc;

/// Result of decoding one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Generated tokens per sample, prompt order.
    pub sequences: Vec<Vec<u32>>,
    /// LAD step statistics of every (sample, layer, head) at the final step
    /// (empty for non-LAD backends).
    pub final_stats: Vec<StepStats>,
    /// Worker-pool scheduling counters metered across the whole batch (zero
    /// on the sequential path; best-effort on a pool shared with concurrent
    /// decodes).
    pub pool: PoolMetrics,
}

impl BatchResult {
    /// Aggregate of the final-step LAD statistics, with the batch's pool
    /// scheduling counters attached.
    pub fn stats_summary(&self) -> StatsSummary {
        StatsSummary::from_steps(&self.final_stats).with_pool_metrics(self.pool)
    }
}

/// Greedy-decodes every prompt for `steps` tokens.
///
/// `parallelism == 1` is the sequential reference path: every sample decodes
/// inline, one after the other, without touching the pool. Any larger value
/// schedules the batch on the process-global [`WorkerPool`] and also serves
/// as the per-step head fan-out width inside each sample. Results are
/// identical in every configuration.
///
/// # Panics
///
/// Panics if `parallelism == 0` or any prompt is empty.
pub fn decode_batch(
    model: &Model,
    kind: &AttentionKind,
    prompts: &[Vec<u32>],
    steps: usize,
    parallelism: usize,
) -> BatchResult {
    assert!(parallelism > 0, "decode_batch: threads must be positive");
    assert!(
        prompts.iter().all(|p| !p.is_empty()),
        "decode_batch: empty prompt"
    );
    if parallelism == 1 {
        let mut sequences = Vec::with_capacity(prompts.len());
        let mut final_stats = Vec::new();
        for prompt in prompts {
            let mut session = Session::with_parallelism(model, kind, 1);
            sequences.push(session.generate_greedy(prompt, steps));
            final_stats.extend(session.last_stats().iter().copied());
        }
        return BatchResult {
            sequences,
            final_stats,
            pool: PoolMetrics::default(),
        };
    }
    decode_batch_on(
        WorkerPool::global(),
        model,
        kind,
        prompts,
        steps,
        parallelism,
    )
}

/// Greedy-decodes every prompt for `steps` tokens on an explicit shared
/// `pool`: one sequence-level task per sample, and up to `head_parallelism`
/// head-level tasks per decode step inside each sample, all on the same
/// two-level queue.
///
/// # Panics
///
/// Panics if any prompt is empty.
pub fn decode_batch_on(
    pool: &Arc<WorkerPool>,
    model: &Model,
    kind: &AttentionKind,
    prompts: &[Vec<u32>],
    steps: usize,
    head_parallelism: usize,
) -> BatchResult {
    assert!(
        prompts.iter().all(|p| !p.is_empty()),
        "decode_batch: empty prompt"
    );
    let before = pool.metrics();
    let mut outputs: Vec<Option<(Vec<u32>, Vec<StepStats>)>> = vec![None; prompts.len()];

    pool.scope(|scope| {
        for (prompt, slot) in prompts.iter().zip(outputs.iter_mut()) {
            let task_pool = Arc::clone(pool);
            scope.spawn(TaskLevel::Sequence, move || {
                let mut session = Session::with_pool(model, kind, task_pool, head_parallelism);
                let tokens = session.generate_greedy(prompt, steps);
                *slot = Some((tokens, session.last_stats().to_vec()));
            });
        }
    });

    let mut sequences = Vec::with_capacity(prompts.len());
    let mut final_stats = Vec::new();
    for slot in outputs {
        let (tokens, stats) = slot.expect("every prompt decoded");
        sequences.push(tokens);
        final_stats.extend(stats);
    }
    BatchResult {
        sequences,
        final_stats,
        pool: pool.metrics().delta(before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use lad_core::decoder::LadConfig;

    fn model() -> Model {
        Model::random(ModelConfig::tiny("batch", 2, 32, 2), 71)
    }

    fn prompts() -> Vec<Vec<u32>> {
        vec![vec![1, 2, 3], vec![9, 8], vec![4, 4, 4, 4], vec![200, 100]]
    }

    #[test]
    fn parallel_matches_sequential() {
        let model = model();
        let sequential = decode_batch(&model, &AttentionKind::Exact, &prompts(), 10, 1);
        let parallel = decode_batch(&model, &AttentionKind::Exact, &prompts(), 10, 4);
        assert_eq!(sequential.sequences, parallel.sequences);
    }

    #[test]
    fn matches_single_session_decoding() {
        let model = model();
        let batch = decode_batch(&model, &AttentionKind::Exact, &prompts(), 8, 2);
        for (prompt, expected) in prompts().iter().zip(&batch.sequences) {
            let mut session = Session::new(&model, &AttentionKind::Exact);
            assert_eq!(&session.generate_greedy(prompt, 8), expected);
        }
    }

    #[test]
    fn dedicated_pool_matches_sequential() {
        // An explicit pool (with background workers) must agree with the
        // inline path token-for-token and stat-for-stat.
        let model = model();
        let pool = Arc::new(WorkerPool::new(2));
        let kind = AttentionKind::Lad(LadConfig::default());
        let sequential = decode_batch(&model, &kind, &prompts(), 8, 1);
        let pooled = decode_batch_on(&pool, &model, &kind, &prompts(), 8, 2);
        assert_eq!(sequential.sequences, pooled.sequences);
        assert_eq!(sequential.final_stats.len(), pooled.final_stats.len());
        for (a, b) in sequential.final_stats.iter().zip(&pooled.final_stats) {
            assert_eq!(a.algorithmic(), b.algorithmic());
        }
        // The batch ran entirely through the dedicated pool: one sequence
        // task per sample, head tasks on top.
        assert!(pooled.pool.tasks_executed >= prompts().len());
    }

    #[test]
    fn lad_batch_collects_stats() {
        let model = model();
        let batch = decode_batch(
            &model,
            &AttentionKind::Lad(LadConfig::default()),
            &prompts(),
            6,
            2,
        );
        // 4 samples x 2 layers x 2 heads.
        assert_eq!(batch.final_stats.len(), 16);
        let summary = batch.stats_summary();
        assert_eq!(summary.steps, 16);
        assert!(summary.mean_centers > 0.0);
        // Heads fan out 2-wide inside each sequence task now (the old path
        // pinned this to 1).
        assert!(batch.final_stats.iter().all(|s| s.fanout_width == 2));
    }

    #[test]
    fn exact_batch_has_no_stats() {
        let model = model();
        let batch = decode_batch(&model, &AttentionKind::Exact, &prompts(), 4, 3);
        assert!(batch.final_stats.is_empty());
        assert_eq!(batch.sequences.len(), 4);
    }

    #[test]
    fn more_threads_than_prompts_is_fine() {
        let model = model();
        let batch = decode_batch(&model, &AttentionKind::Exact, &prompts()[..2], 4, 16);
        assert_eq!(batch.sequences.len(), 2);
    }

    #[test]
    #[should_panic(expected = "threads must be positive")]
    fn zero_threads_rejected() {
        decode_batch(&model(), &AttentionKind::Exact, &prompts(), 2, 0);
    }

    #[test]
    #[should_panic(expected = "empty prompt")]
    fn empty_prompt_rejected_on_pool_path() {
        let pool = Arc::new(WorkerPool::new(0));
        decode_batch_on(
            &pool,
            &model(),
            &AttentionKind::Exact,
            &[vec![1], vec![]],
            2,
            2,
        );
    }
}
