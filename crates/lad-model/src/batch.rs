//! Batched decoding across samples on the shared worker pool.
//!
//! The paper's throughput evaluation decodes batches of samples; each sample
//! owns its per-head attention state but shares the model weights, so
//! samples decode independently. Every sample becomes a *sequence-level*
//! task on the shared [`WorkerPool`]; inside each sample, every decode step
//! fans its attention heads out as *head-level* tasks on the **same** pool.
//! That ends the old mutual exclusion where batch workers pinned
//! `parallelism = 1`: a small batch's sequence tasks leave cores idle, and
//! those cores now drain the head-level queue instead.
//!
//! Scheduling never changes results — samples are independent, each session
//! is deterministic, and head outputs are collected in head order — which
//! `tests/differential.rs` pins down against the sequential paths.
//!
//! [`BatchSession`] / [`decode_batch_gemm`] go one step further: instead of
//! one independent session per sample, all samples advance **one token per
//! global step**, their activation vectors stacked into a `batch × hidden`
//! matrix so every linear layer runs as a single cross-sample blocked GEMM
//! ([`lad_math::gemm`]) — the weights stream once per step instead of once
//! per sample. The GEMM's ascending-`k` accumulation contract keeps this
//! bit-identical to the per-sample paths.

use crate::backend::{AttentionKind, HeadState, HeadStepOutput};
use crate::config::{MlpKind, PositionKind};
use crate::layers::{gelu, rope_in_place, silu, ROPE_BASE};
use crate::transformer::{argmax, Model, Session};
use lad_core::pool::{PoolMetrics, TaskLevel, WorkerPool};
use lad_core::stats::{GemmBatchMetrics, StatsSummary, StepStats};
use lad_math::gemm::{gemm_bt_into, GemmScratch};
use lad_math::vector;
use std::sync::Arc;

/// Result of decoding one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Generated tokens per sample, prompt order.
    pub sequences: Vec<Vec<u32>>,
    /// LAD step statistics of every (sample, layer, head) at the final step
    /// (empty for non-LAD backends).
    pub final_stats: Vec<StepStats>,
    /// Worker-pool scheduling counters metered across the whole batch (zero
    /// on the sequential path; best-effort on a pool shared with concurrent
    /// decodes).
    pub pool: PoolMetrics,
    /// Batched-GEMM calls and step barriers (zero on the per-sample paths;
    /// populated by [`decode_batch_gemm`]).
    pub gemm: GemmBatchMetrics,
}

impl BatchResult {
    /// Aggregate of the final-step LAD statistics, with the batch's pool
    /// and batched-GEMM scheduling counters attached.
    pub fn stats_summary(&self) -> StatsSummary {
        StatsSummary::from_steps(&self.final_stats)
            .with_pool_metrics(self.pool)
            .with_gemm_metrics(self.gemm)
    }
}

/// Greedy-decodes every prompt for `steps` tokens.
///
/// `parallelism == 1` is the sequential reference path: every sample decodes
/// inline, one after the other, without touching the pool. Any larger value
/// schedules the batch on the process-global [`WorkerPool`] and also serves
/// as the per-step head fan-out width inside each sample. Results are
/// identical in every configuration.
///
/// # Panics
///
/// Panics if `parallelism == 0` or any prompt is empty.
pub fn decode_batch(
    model: &Model,
    kind: &AttentionKind,
    prompts: &[Vec<u32>],
    steps: usize,
    parallelism: usize,
) -> BatchResult {
    assert!(parallelism > 0, "decode_batch: threads must be positive");
    assert!(
        prompts.iter().all(|p| !p.is_empty()),
        "decode_batch: empty prompt"
    );
    if parallelism == 1 {
        let mut sequences = Vec::with_capacity(prompts.len());
        let mut final_stats = Vec::new();
        for prompt in prompts {
            let mut session = Session::with_parallelism(model, kind, 1);
            sequences.push(session.generate_greedy(prompt, steps));
            final_stats.extend(session.last_stats().iter().copied());
        }
        return BatchResult {
            sequences,
            final_stats,
            pool: PoolMetrics::default(),
            gemm: GemmBatchMetrics::default(),
        };
    }
    decode_batch_on(
        WorkerPool::global(),
        model,
        kind,
        prompts,
        steps,
        parallelism,
    )
}

/// Greedy-decodes every prompt for `steps` tokens on an explicit shared
/// `pool`: one sequence-level task per sample, and up to `head_parallelism`
/// head-level tasks per decode step inside each sample, all on the same
/// two-level queue.
///
/// # Panics
///
/// Panics if any prompt is empty.
pub fn decode_batch_on(
    pool: &Arc<WorkerPool>,
    model: &Model,
    kind: &AttentionKind,
    prompts: &[Vec<u32>],
    steps: usize,
    head_parallelism: usize,
) -> BatchResult {
    assert!(
        prompts.iter().all(|p| !p.is_empty()),
        "decode_batch: empty prompt"
    );
    let before = pool.metrics();
    let mut outputs: Vec<Option<(Vec<u32>, Vec<StepStats>)>> = vec![None; prompts.len()];

    pool.scope(|scope| {
        for (prompt, slot) in prompts.iter().zip(outputs.iter_mut()) {
            let task_pool = Arc::clone(pool);
            scope.spawn(TaskLevel::Sequence, move || {
                let mut session = Session::with_pool(model, kind, task_pool, head_parallelism);
                let tokens = session.generate_greedy(prompt, steps);
                *slot = Some((tokens, session.last_stats().to_vec()));
            });
        }
    });

    let mut sequences = Vec::with_capacity(prompts.len());
    let mut final_stats = Vec::new();
    for slot in outputs {
        let (tokens, stats) = slot.expect("every prompt decoded");
        sequences.push(tokens);
        final_stats.extend(stats);
    }
    BatchResult {
        sequences,
        final_stats,
        pool: pool.metrics().delta(before),
        gemm: GemmBatchMetrics::default(),
    }
}

/// Reused activation matrices of a [`BatchSession`]: every buffer holds
/// `active` stacked per-sample rows, so after the first step the batched hot
/// path performs no per-projection allocation.
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    x: Vec<f32>,
    normed: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    attn: Vec<f32>,
    proj: Vec<f32>,
    up: Vec<f32>,
    gate: Vec<f32>,
    final_h: Vec<f32>,
    logits: Vec<f32>,
    gemm: GemmScratch,
}

impl BatchScratch {
    fn resize(&mut self, active: usize, hidden: usize, intermediate: usize, vocab: usize) {
        for buf in [
            &mut self.x,
            &mut self.normed,
            &mut self.q,
            &mut self.k,
            &mut self.v,
            &mut self.attn,
            &mut self.proj,
            &mut self.final_h,
        ] {
            buf.resize(active * hidden, 0.0);
        }
        self.up.resize(active * intermediate, 0.0);
        self.gate.resize(active * intermediate, 0.0);
        self.logits.resize(active * vocab, 0.0);
    }
}

/// Result of one [`BatchSession::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step advanced `active` samples by one token each.
    Advanced {
        /// Number of samples the step advanced.
        active: usize,
    },
    /// The token list was empty — the step was a no-op: no position moved,
    /// no barrier was crossed, no GEMM ran and the logits buffer is
    /// untouched. A scheduler whose active set momentarily drains (all
    /// requests retired, next arrival still in the queue) hits this.
    Idle,
}

/// Step-synchronous batched decode session (the cross-sample GEMM engine).
///
/// Where [`decode_batch`] runs one independent [`Session`] per sample (each
/// streaming every weight matrix once per sample per step), a `BatchSession`
/// advances **all** samples one token per global step: the per-sample
/// activation vectors are stacked into a `batch × hidden` matrix and every
/// linear layer runs as *one* matrix-matrix product
/// ([`lad_math::gemm`]) — the weights stream once per step, not once per
/// sample. The attention heads, which own per-sample state, fan out as one
/// pool task per (sample-chunk, layer) on the shared [`WorkerPool`].
///
/// The GEMM kernel's ascending-`k` accumulation contract makes every row of
/// a batched projection bit-identical to the per-sample `matvec`, so tokens
/// and algorithmic stats are exactly those of [`Session`] /
/// [`decode_batch`]; `tests/differential.rs` pins this down.
///
/// # Dynamic membership
///
/// Membership is not fixed at construction: [`BatchSession::add_sample`]
/// opens a fresh sample slot mid-flight (reusing slots freed by
/// [`BatchSession::remove_sample`]) and `remove_sample` drops a sample and
/// its KV state. A continuous-batching scheduler (`lad-serve`) admits and
/// retires requests per global step this way; [`BatchSession::dynamic`]
/// opens a session with zero slots for exactly that use. Slot indices are
/// stable while a sample is live.
#[derive(Debug)]
pub struct BatchSession<'m> {
    model: &'m Model,
    /// Attention backend every sample's heads run (kept for
    /// [`BatchSession::add_sample`]).
    kind: AttentionKind,
    /// Attention state, indexed `[sample][layer][head]`.
    heads: Vec<Vec<Vec<HeadState>>>,
    /// Tokens consumed so far, per sample.
    pos: Vec<usize>,
    /// Whether each slot currently holds a live sample.
    live: Vec<bool>,
    /// Slots freed by [`BatchSession::remove_sample`], ready for reuse.
    free_slots: Vec<usize>,
    /// Fan-out width of the per-layer sample-chunk scheduling.
    parallelism: usize,
    /// Explicit pool override (`None` = the process-global pool).
    pool: Option<Arc<WorkerPool>>,
    /// Per-sample LAD statistics from each sample's latest step, in
    /// (layer, head) order (empty for non-LAD backends).
    last_stats: Vec<Vec<StepStats>>,
    scratch: BatchScratch,
    gemm_metrics: GemmBatchMetrics,
    pool_metrics: PoolMetrics,
}

impl<'m> BatchSession<'m> {
    /// Opens a step-synchronous session for `batch` samples over `model`,
    /// with every head running `kind`. Fan-out widths above 1 schedule
    /// sample chunks on the process-global [`WorkerPool`].
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `parallelism == 0`.
    pub fn new(
        model: &'m Model,
        kind: &AttentionKind,
        batch: usize,
        parallelism: usize,
    ) -> BatchSession<'m> {
        assert!(batch > 0, "BatchSession: batch must be positive");
        BatchSession::build(model, kind, batch, parallelism, None)
    }

    /// Like [`BatchSession::new`] but scheduling on an explicit shared pool.
    pub fn with_pool(
        model: &'m Model,
        kind: &AttentionKind,
        batch: usize,
        pool: Arc<WorkerPool>,
        parallelism: usize,
    ) -> BatchSession<'m> {
        assert!(batch > 0, "BatchSession: batch must be positive");
        BatchSession::build(model, kind, batch, parallelism, Some(pool))
    }

    /// Opens a session with **zero** sample slots for dynamic-membership
    /// schedulers: samples join via [`BatchSession::add_sample`] and leave
    /// via [`BatchSession::remove_sample`].
    ///
    /// # Panics
    ///
    /// Panics if `parallelism == 0`.
    pub fn dynamic(model: &'m Model, kind: &AttentionKind, parallelism: usize) -> BatchSession<'m> {
        BatchSession::build(model, kind, 0, parallelism, None)
    }

    fn build(
        model: &'m Model,
        kind: &AttentionKind,
        batch: usize,
        parallelism: usize,
        pool: Option<Arc<WorkerPool>>,
    ) -> BatchSession<'m> {
        assert!(parallelism > 0, "BatchSession: threads must be positive");
        let d = model.cfg.head_dim();
        let heads = (0..batch)
            .map(|_| {
                (0..model.cfg.layers)
                    .map(|_| {
                        (0..model.cfg.heads)
                            .map(|_| HeadState::new(d, kind))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        BatchSession {
            model,
            kind: kind.clone(),
            heads,
            pos: vec![0; batch],
            live: vec![true; batch],
            free_slots: Vec::new(),
            parallelism,
            pool,
            last_stats: vec![Vec::new(); batch],
            scratch: BatchScratch::default(),
            gemm_metrics: GemmBatchMetrics::default(),
            pool_metrics: PoolMetrics::default(),
        }
    }

    /// Number of sample slots (live samples plus freed slots awaiting
    /// reuse). Every statically-opened session has `batch() == live_samples()`
    /// until a sample is removed.
    pub fn batch(&self) -> usize {
        self.pos.len()
    }

    /// Number of currently live samples.
    pub fn live_samples(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Whether slot `sample` currently holds a live sample.
    pub fn is_live(&self, sample: usize) -> bool {
        self.live.get(sample).copied().unwrap_or(false)
    }

    /// Opens a fresh sample slot mid-flight (position 0, empty KV state,
    /// same attention backend as the session) and returns its index. Freed
    /// slots are reused before the session grows.
    pub fn add_sample(&mut self) -> usize {
        let cfg = &self.model.cfg;
        let d = cfg.head_dim();
        let fresh: Vec<Vec<HeadState>> = (0..cfg.layers)
            .map(|_| {
                (0..cfg.heads)
                    .map(|_| HeadState::new(d, &self.kind))
                    .collect()
            })
            .collect();
        match self.free_slots.pop() {
            Some(slot) => {
                debug_assert!(!self.live[slot], "free list held a live slot");
                self.heads[slot] = fresh;
                self.pos[slot] = 0;
                self.last_stats[slot].clear();
                self.live[slot] = true;
                slot
            }
            None => {
                self.heads.push(fresh);
                self.pos.push(0);
                self.last_stats.push(Vec::new());
                self.live.push(true);
                self.pos.len() - 1
            }
        }
    }

    /// Removes live sample `sample`, dropping its KV state; the slot is
    /// recycled by a later [`BatchSession::add_sample`].
    ///
    /// # Panics
    ///
    /// Panics if `sample` is out of range or not live (double remove).
    pub fn remove_sample(&mut self, sample: usize) {
        assert!(
            self.is_live(sample),
            "BatchSession::remove_sample: sample {sample} is not live"
        );
        self.live[sample] = false;
        self.heads[sample] = Vec::new();
        self.last_stats[sample].clear();
        self.pos[sample] = 0;
        self.free_slots.push(sample);
    }

    /// Tokens consumed so far by `sample`.
    pub fn position(&self, sample: usize) -> usize {
        self.pos[sample]
    }

    /// LAD statistics of `sample` from its latest step, in (layer, head)
    /// order (empty for non-LAD backends).
    pub fn last_stats(&self, sample: usize) -> &[StepStats] {
        &self.last_stats[sample]
    }

    /// Next-token logits of the `active_idx`-th entry of the token list fed
    /// to the latest [`BatchSession::step`].
    pub fn logits(&self, active_idx: usize) -> &[f32] {
        let vocab = self.model.cfg.vocab;
        &self.scratch.logits[active_idx * vocab..(active_idx + 1) * vocab]
    }

    /// Batched-GEMM calls and step barriers accumulated so far.
    pub fn gemm_metrics(&self) -> GemmBatchMetrics {
        self.gemm_metrics
    }

    /// Pool scheduling counters accumulated across this session's steps
    /// (best-effort on a pool shared with concurrent decodes).
    pub fn pool_metrics(&self) -> PoolMetrics {
        self.pool_metrics
    }

    /// Advances every listed sample by one token — one step-synchronous
    /// global step. `tokens` pairs each active sample index with the token
    /// it consumes, in strictly increasing sample order; inactive samples
    /// (already finished their ragged tail) are simply omitted. Logits land
    /// row-per-entry in [`BatchSession::logits`].
    ///
    /// An **empty** `tokens` slice is a documented no-op returning
    /// [`StepOutcome::Idle`]: nothing advances, no barrier or GEMM is
    /// counted, and the logits buffer keeps its previous contents. This is
    /// the idle tick of a scheduler whose active set momentarily drained.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is out of order, names a sample out of range or
    /// not live, a token outside the vocabulary, or a sample past the
    /// model's maximum sequence length.
    pub fn step(&mut self, tokens: &[(usize, u32)]) -> StepOutcome {
        if tokens.is_empty() {
            return StepOutcome::Idle;
        }
        let _step_span = lad_obs::span("batch.step");
        let cfg = &self.model.cfg;
        for pair in tokens.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "BatchSession::step: sample indices must be strictly increasing"
            );
        }
        for &(s, t) in tokens {
            assert!(s < self.pos.len(), "sample index out of range");
            assert!(self.live[s], "BatchSession::step: sample {s} is not live");
            assert!((t as usize) < cfg.vocab, "token out of vocabulary");
            assert!(self.pos[s] < cfg.max_seq, "sequence length exceeded");
        }
        let active = tokens.len();
        let hidden = cfg.hidden;
        let d = cfg.head_dim();
        let heads_n = cfg.heads;

        let width = self.parallelism.min(active).max(1);
        let pool: Option<Arc<WorkerPool>> = (width > 1).then(|| {
            self.pool
                .clone()
                .unwrap_or_else(|| Arc::clone(WorkerPool::global()))
        });
        let pool_before = pool.as_ref().map(|p| p.metrics());
        let mut gemm_calls = 0usize;

        // The scratch matrices move out of `self` for the step so the head
        // states below can be borrowed mutably alongside them.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.resize(active, hidden, cfg.intermediate, cfg.vocab);
        let BatchScratch {
            x,
            normed,
            q,
            k,
            v,
            attn,
            proj,
            up,
            gate,
            final_h,
            logits,
            gemm,
        } = &mut scratch;

        for (a, &(s, token)) in tokens.iter().enumerate() {
            let row = &mut x[a * hidden..(a + 1) * hidden];
            row.copy_from_slice(self.model.embed.row(token as usize));
            if let Some(pos_embed) = &self.model.pos_embed {
                vector::axpy(row, 1.0, pos_embed.row(self.pos[s]));
            }
            self.last_stats[s].clear();
        }

        let mut slots: Vec<Option<HeadStepOutput>> = Vec::new();
        for (layer, block) in self.model.blocks.iter().enumerate() {
            let qkv_span = lad_obs::span("batch.qkv_gemm");
            for a in 0..active {
                block.norm1.forward_into(
                    &x[a * hidden..(a + 1) * hidden],
                    &mut normed[a * hidden..(a + 1) * hidden],
                );
            }
            // One cross-sample GEMM per projection: the whole batch shares a
            // single streaming pass over each weight matrix.
            block.wq.forward_batch_into(active, normed, q, gemm);
            block.wk.forward_batch_into(active, normed, k, gemm);
            block.wv.forward_batch_into(active, normed, v, gemm);
            gemm_calls += 3;
            drop(qkv_span);

            if cfg.position == PositionKind::Rope {
                for (a, &(s, _)) in tokens.iter().enumerate() {
                    for h in 0..heads_n {
                        let span = a * hidden + h * d..a * hidden + (h + 1) * d;
                        rope_in_place(&mut q[span.clone()], self.pos[s], ROPE_BASE);
                        rope_in_place(&mut k[span], self.pos[s], ROPE_BASE);
                    }
                }
            }

            // Gather each active sample's head row for this layer, in token
            // order, so chunks of samples can fan out as pool tasks.
            let mut layer_heads: Vec<&mut [HeadState]> = Vec::with_capacity(active);
            {
                let mut rows = self.heads.iter_mut().enumerate();
                for &(s, _) in tokens {
                    let row = loop {
                        let (i, row) = rows.next().expect("sample index in range");
                        if i == s {
                            break row;
                        }
                    };
                    layer_heads.push(&mut row[layer][..]);
                }
            }

            slots.clear();
            slots.resize_with(active * heads_n, || None);
            let attn_span = lad_obs::span("batch.attn_fanout");
            match &pool {
                None => {
                    step_sample_chunk(0, hidden, d, heads_n, &mut layer_heads, &mut slots, q, k, v)
                }
                Some(pool) => {
                    let chunk = active.div_ceil(width);
                    pool.scope(|scope| {
                        let mut pieces = layer_heads
                            .chunks_mut(chunk)
                            .zip(slots.chunks_mut(chunk * heads_n))
                            .enumerate();
                        let first = pieces.next();
                        for (c, (samples, out_chunk)) in pieces {
                            let (q, k, v) = (&q, &k, &v);
                            scope.spawn(TaskLevel::Head, move || {
                                step_sample_chunk(
                                    c * chunk,
                                    hidden,
                                    d,
                                    heads_n,
                                    samples,
                                    out_chunk,
                                    q,
                                    k,
                                    v,
                                );
                            });
                        }
                        if let Some((_, (samples, out_chunk))) = first {
                            step_sample_chunk(0, hidden, d, heads_n, samples, out_chunk, q, k, v);
                        }
                    });
                }
            }

            for (a, &(s, _)) in tokens.iter().enumerate() {
                for h in 0..heads_n {
                    let out = slots[a * heads_n + h].take().expect("every head ran");
                    attn[a * hidden + h * d..a * hidden + (h + 1) * d].copy_from_slice(&out.output);
                    if let Some(mut stats) = out.stats {
                        stats.fanout_width = width;
                        self.last_stats[s].push(stats);
                    }
                }
            }
            drop(attn_span);

            {
                let _out_span = lad_obs::span("batch.out_gemm");
                block.wo.forward_batch_into(active, attn, proj, gemm);
                gemm_calls += 1;
                for a in 0..active {
                    vector::axpy(
                        &mut x[a * hidden..(a + 1) * hidden],
                        1.0,
                        &proj[a * hidden..(a + 1) * hidden],
                    );
                }
            }

            let _mlp_span = lad_obs::span("batch.mlp_gemm");
            for a in 0..active {
                block.norm2.forward_into(
                    &x[a * hidden..(a + 1) * hidden],
                    &mut normed[a * hidden..(a + 1) * hidden],
                );
            }
            match cfg.mlp {
                MlpKind::Gelu => {
                    block.w_up.forward_batch_into(active, normed, up, gemm);
                    for val in up.iter_mut() {
                        *val = gelu(*val);
                    }
                    block.w_down.forward_batch_into(active, up, proj, gemm);
                    gemm_calls += 2;
                }
                MlpKind::SwiGlu => {
                    let w_gate = block
                        .w_gate
                        .as_ref()
                        .expect("SwiGLU blocks carry a gate projection");
                    w_gate.forward_batch_into(active, normed, gate, gemm);
                    block.w_up.forward_batch_into(active, normed, up, gemm);
                    for (g, &u) in gate.iter_mut().zip(up.iter()) {
                        *g = silu(*g) * u;
                    }
                    block.w_down.forward_batch_into(active, gate, proj, gemm);
                    gemm_calls += 3;
                }
            }
            for a in 0..active {
                vector::axpy(
                    &mut x[a * hidden..(a + 1) * hidden],
                    1.0,
                    &proj[a * hidden..(a + 1) * hidden],
                );
            }
        }

        let logits_span = lad_obs::span("batch.logits_gemm");
        for a in 0..active {
            self.model.final_norm.forward_into(
                &x[a * hidden..(a + 1) * hidden],
                &mut final_h[a * hidden..(a + 1) * hidden],
            );
        }
        // The unembedding is one more cross-sample GEMM against the tied
        // embedding matrix.
        gemm_bt_into(
            active,
            cfg.vocab,
            hidden,
            final_h,
            self.model.embed.as_slice(),
            logits,
            gemm,
        );
        gemm_calls += 1;
        drop(logits_span);

        for &(s, _) in tokens {
            self.pos[s] += 1;
        }
        self.scratch = scratch;
        self.gemm_metrics.gemm_calls += gemm_calls;
        self.gemm_metrics.sync_barriers += 1;
        if let (Some(pool), Some(before)) = (&pool, pool_before) {
            let delta = pool.metrics().delta(before);
            self.pool_metrics.tasks_executed += delta.tasks_executed;
            self.pool_metrics.tasks_stolen += delta.tasks_stolen;
            self.pool_metrics.idle_wakeups += delta.idle_wakeups;
            self.pool_metrics.scopes_completed += delta.scopes_completed;
            self.pool_metrics.park_nanos += delta.park_nanos;
        }
        StepOutcome::Advanced { active }
    }
}

/// Steps every head of a contiguous chunk of active samples starting at
/// `first_active`, writing each head's output into its pre-assigned slot
/// (the pool-task body of the per-(sample-chunk, layer) fan-out).
#[allow(clippy::too_many_arguments)]
fn step_sample_chunk(
    first_active: usize,
    hidden: usize,
    d: usize,
    heads_n: usize,
    samples: &mut [&mut [HeadState]],
    slots: &mut [Option<HeadStepOutput>],
    q: &[f32],
    k: &[f32],
    v: &[f32],
) {
    for (i, sample_heads) in samples.iter_mut().enumerate() {
        let row = (first_active + i) * hidden;
        for (h, head) in sample_heads.iter_mut().enumerate() {
            let span = row + h * d..row + (h + 1) * d;
            slots[i * heads_n + h] =
                Some(head.step(&q[span.clone()], &k[span.clone()], &v[span], false));
        }
    }
}

/// Greedy-decodes every prompt for `steps` tokens through a step-synchronous
/// [`BatchSession`]: all samples advance one token per global step with
/// cross-sample batched GEMMs; ragged prompts are handled by shrinking the
/// active set as samples finish. Tokens and algorithmic stats are
/// bit-identical to [`decode_batch`] at any `parallelism`.
///
/// # Panics
///
/// Panics if `parallelism == 0` or any prompt is empty.
pub fn decode_batch_gemm(
    model: &Model,
    kind: &AttentionKind,
    prompts: &[Vec<u32>],
    steps: usize,
    parallelism: usize,
) -> BatchResult {
    assert!(
        parallelism > 0,
        "decode_batch_gemm: threads must be positive"
    );
    assert!(
        prompts.iter().all(|p| !p.is_empty()),
        "decode_batch_gemm: empty prompt"
    );
    if prompts.is_empty() {
        return BatchResult {
            sequences: Vec::new(),
            final_stats: Vec::new(),
            pool: PoolMetrics::default(),
            gemm: GemmBatchMetrics::default(),
        };
    }
    let n = prompts.len();
    let lens: Vec<usize> = prompts.iter().map(|p| p.len()).collect();
    let horizon = lens.iter().copied().max().unwrap_or(0) + steps;
    let mut session = BatchSession::new(model, kind, n, parallelism);
    let mut next_token = vec![0u32; n];
    let mut generated: Vec<Vec<u32>> = vec![Vec::with_capacity(steps); n];
    let mut tokens: Vec<(usize, u32)> = Vec::with_capacity(n);

    #[allow(clippy::needless_range_loop)] // `t` is a global step counter, not a prompt index
    for t in 0..horizon {
        tokens.clear();
        for s in 0..n {
            // Sample `s` stays active while it still has prompt tokens to
            // consume or generated tokens to feed back — the same
            // `len + steps` consumption as `Session::generate_greedy`.
            if t < lens[s] + steps {
                let tok = if t < lens[s] {
                    prompts[s][t]
                } else {
                    next_token[s]
                };
                tokens.push((s, tok));
            }
        }
        if tokens.is_empty() {
            break;
        }
        session.step(&tokens);
        for (a, &(s, _)) in tokens.iter().enumerate() {
            if t + 1 >= lens[s] && generated[s].len() < steps {
                let next = argmax(session.logits(a));
                generated[s].push(next);
                next_token[s] = next;
            }
        }
    }

    let mut final_stats = Vec::new();
    for s in 0..n {
        final_stats.extend(session.last_stats(s).iter().copied());
    }
    BatchResult {
        sequences: generated,
        final_stats,
        pool: session.pool_metrics(),
        gemm: session.gemm_metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use lad_core::decoder::LadConfig;

    fn model() -> Model {
        Model::random(ModelConfig::tiny("batch", 2, 32, 2), 71)
    }

    fn prompts() -> Vec<Vec<u32>> {
        vec![vec![1, 2, 3], vec![9, 8], vec![4, 4, 4, 4], vec![200, 100]]
    }

    #[test]
    fn parallel_matches_sequential() {
        let model = model();
        let sequential = decode_batch(&model, &AttentionKind::Exact, &prompts(), 10, 1);
        let parallel = decode_batch(&model, &AttentionKind::Exact, &prompts(), 10, 4);
        assert_eq!(sequential.sequences, parallel.sequences);
    }

    #[test]
    fn matches_single_session_decoding() {
        let model = model();
        let batch = decode_batch(&model, &AttentionKind::Exact, &prompts(), 8, 2);
        for (prompt, expected) in prompts().iter().zip(&batch.sequences) {
            let mut session = Session::new(&model, &AttentionKind::Exact);
            assert_eq!(&session.generate_greedy(prompt, 8), expected);
        }
    }

    #[test]
    fn dedicated_pool_matches_sequential() {
        // An explicit pool (with background workers) must agree with the
        // inline path token-for-token and stat-for-stat.
        let model = model();
        let pool = Arc::new(WorkerPool::new(2));
        let kind = AttentionKind::Lad(LadConfig::default());
        let sequential = decode_batch(&model, &kind, &prompts(), 8, 1);
        let pooled = decode_batch_on(&pool, &model, &kind, &prompts(), 8, 2);
        assert_eq!(sequential.sequences, pooled.sequences);
        assert_eq!(sequential.final_stats.len(), pooled.final_stats.len());
        for (a, b) in sequential.final_stats.iter().zip(&pooled.final_stats) {
            assert_eq!(a.algorithmic(), b.algorithmic());
        }
        // The batch ran entirely through the dedicated pool: one sequence
        // task per sample, head tasks on top.
        assert!(pooled.pool.tasks_executed >= prompts().len());
    }

    #[test]
    fn lad_batch_collects_stats() {
        let model = model();
        let batch = decode_batch(
            &model,
            &AttentionKind::Lad(LadConfig::default()),
            &prompts(),
            6,
            2,
        );
        // 4 samples x 2 layers x 2 heads.
        assert_eq!(batch.final_stats.len(), 16);
        let summary = batch.stats_summary();
        assert_eq!(summary.steps, 16);
        assert!(summary.mean_centers > 0.0);
        // Heads fan out 2-wide inside each sequence task now (the old path
        // pinned this to 1).
        assert!(batch.final_stats.iter().all(|s| s.fanout_width == 2));
    }

    #[test]
    fn exact_batch_has_no_stats() {
        let model = model();
        let batch = decode_batch(&model, &AttentionKind::Exact, &prompts(), 4, 3);
        assert!(batch.final_stats.is_empty());
        assert_eq!(batch.sequences.len(), 4);
    }

    #[test]
    fn more_threads_than_prompts_is_fine() {
        let model = model();
        let batch = decode_batch(&model, &AttentionKind::Exact, &prompts()[..2], 4, 16);
        assert_eq!(batch.sequences.len(), 2);
    }

    #[test]
    #[should_panic(expected = "threads must be positive")]
    fn zero_threads_rejected() {
        decode_batch(&model(), &AttentionKind::Exact, &prompts(), 2, 0);
    }

    #[test]
    fn gemm_batch_matches_sequential_exactly() {
        // The tentpole invariant: the step-synchronous batched engine emits
        // bit-identical tokens and algorithmic stats to the per-sample
        // sequential reference, for exact and LAD backends, ragged prompts
        // included.
        let model = model();
        for kind in [
            AttentionKind::Exact,
            AttentionKind::Lad(LadConfig::default()),
        ] {
            let reference = decode_batch(&model, &kind, &prompts(), 10, 1);
            let batched = decode_batch_gemm(&model, &kind, &prompts(), 10, 1);
            assert_eq!(reference.sequences, batched.sequences);
            assert_eq!(reference.final_stats.len(), batched.final_stats.len());
            for (a, b) in reference.final_stats.iter().zip(&batched.final_stats) {
                assert_eq!(a.algorithmic(), b.algorithmic());
            }
        }
    }

    #[test]
    fn gemm_batch_opt_style_matches_sequential() {
        // Learned positions + LayerNorm + GELU exercise the other batched
        // code paths (pos-embed add, gelu loop, no RoPE).
        let model = Model::random(ModelConfig::tiny_opt("opt-batch", 2, 32, 2), 77);
        let reference = decode_batch(&model, &AttentionKind::Exact, &prompts(), 8, 1);
        let batched = decode_batch_gemm(&model, &AttentionKind::Exact, &prompts(), 8, 1);
        assert_eq!(reference.sequences, batched.sequences);
    }

    #[test]
    fn gemm_batch_fanout_is_bit_identical_to_inline() {
        let model = model();
        let kind = AttentionKind::Lad(LadConfig::default());
        let inline = decode_batch_gemm(&model, &kind, &prompts(), 10, 1);
        let fanned = decode_batch_gemm(&model, &kind, &prompts(), 10, 4);
        assert_eq!(inline.sequences, fanned.sequences);
        for (a, b) in inline.final_stats.iter().zip(&fanned.final_stats) {
            assert_eq!(a.algorithmic(), b.algorithmic());
        }
        // The fanned run scheduled head chunks on the pool.
        assert!(fanned.pool.tasks_executed > 0);
    }

    #[test]
    fn gemm_batch_counts_calls_and_barriers() {
        let model = model(); // tiny: 2 layers, SwiGLU -> 7 GEMMs/layer + unembed.
        let steps = 6;
        let batched = decode_batch_gemm(&model, &AttentionKind::Exact, &prompts(), steps, 1);
        let max_len = prompts().iter().map(Vec::len).max().unwrap();
        let barriers = max_len + steps;
        assert_eq!(batched.gemm.sync_barriers, barriers);
        assert_eq!(batched.gemm.gemm_calls, barriers * (2 * 7 + 1));
        let summary = batched.stats_summary();
        assert_eq!(summary.sync_barriers, barriers);
        assert_eq!(summary.gemm_calls, batched.gemm.gemm_calls);
        // The per-sample paths never report batched-GEMM activity.
        let reference = decode_batch(&model, &AttentionKind::Exact, &prompts(), steps, 1);
        assert_eq!(reference.gemm, GemmBatchMetrics::default());
    }

    #[test]
    fn empty_step_is_an_idle_noop() {
        let model = model();
        let mut session = BatchSession::new(&model, &AttentionKind::Exact, 2, 1);
        assert_eq!(
            session.step(&[(0, 1), (1, 2)]),
            StepOutcome::Advanced { active: 2 }
        );
        let logits_before = session.logits(0).to_vec();
        let gemm_before = session.gemm_metrics();
        assert_eq!(session.step(&[]), StepOutcome::Idle);
        assert_eq!(session.position(0), 1);
        assert_eq!(session.position(1), 1);
        assert_eq!(session.logits(0), &logits_before[..]);
        assert_eq!(session.gemm_metrics(), gemm_before);
        // Decoding continues unperturbed after the idle tick.
        assert_eq!(session.step(&[(0, 3)]), StepOutcome::Advanced { active: 1 });
        assert_eq!(session.position(0), 2);
    }

    #[test]
    fn dynamic_membership_matches_solo_sessions() {
        // A sample admitted mid-flight, one retired mid-flight, and one
        // reusing the freed slot all decode bit-identically to solo
        // sessions fed the same token streams.
        let model = model();
        let kind = AttentionKind::Exact;
        let mut session = BatchSession::dynamic(&model, &kind, 1);
        assert_eq!(session.live_samples(), 0);
        assert_eq!(session.step(&[]), StepOutcome::Idle);

        let tokens_a = [5u32, 6, 7, 8];
        let tokens_b = [40u32, 41, 42, 43];
        let a = session.add_sample();
        // a runs alone for two steps.
        session.step(&[(a, tokens_a[0])]);
        session.step(&[(a, tokens_a[1])]);
        // b joins mid-flight; two mixed steps finish a.
        let b = session.add_sample();
        assert_ne!(a, b);
        session.step(&[(a, tokens_a[2]), (b, tokens_b[0])]);
        session.step(&[(a, tokens_a[3]), (b, tokens_b[1])]);
        let logits_a = session.logits(0).to_vec();
        // a retires; b continues alone, then c reuses a's slot.
        session.remove_sample(a);
        session.step(&[(b, tokens_b[2])]);
        let c = session.add_sample();
        assert_eq!(c, a, "freed slot should be reused");
        let tokens_c = [100u32, 101];
        session.step(&[(c, tokens_c[0]), (b, tokens_b[3])]);
        let logits_b = session.logits(1).to_vec();
        session.step(&[(c, tokens_c[1])]);
        let logits_c = session.logits(0).to_vec();

        for (tokens, batched) in [
            (&tokens_a[..], logits_a),
            (&tokens_b[..], logits_b),
            (&tokens_c[..], logits_c),
        ] {
            let mut solo = Session::new(&model, &kind);
            let mut solo_logits = Vec::new();
            for &t in tokens {
                solo_logits = solo.step(t);
            }
            assert_eq!(batched, solo_logits);
        }
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn stepping_removed_sample_panics() {
        let model = model();
        let mut session = BatchSession::new(&model, &AttentionKind::Exact, 2, 1);
        session.remove_sample(1);
        session.step(&[(1, 3)]);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_remove_panics() {
        let model = model();
        let mut session = BatchSession::new(&model, &AttentionKind::Exact, 2, 1);
        session.remove_sample(0);
        session.remove_sample(0);
    }

    #[test]
    fn batch_session_rejects_unsorted_samples() {
        let model = model();
        let mut session = BatchSession::new(&model, &AttentionKind::Exact, 3, 1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session.step(&[(1, 2), (0, 3)]);
        }));
        assert!(caught.is_err(), "unsorted sample list must panic");
    }

    #[test]
    #[should_panic(expected = "empty prompt")]
    fn empty_prompt_rejected_on_gemm_path() {
        decode_batch_gemm(&model(), &AttentionKind::Exact, &[vec![1], vec![]], 2, 1);
    }

    #[test]
    #[should_panic(expected = "empty prompt")]
    fn empty_prompt_rejected_on_pool_path() {
        let pool = Arc::new(WorkerPool::new(0));
        decode_batch_on(
            &pool,
            &model(),
            &AttentionKind::Exact,
            &[vec![1], vec![]],
            2,
            2,
        );
    }
}
