//! Decoder-only transformer: weights, blocks, and decode sessions.
//!
//! [`Model`] holds seeded random weights for a [`ModelConfig`]; a [`Session`]
//! holds the per-head attention state (KV caches / LAD state) and walks the
//! model one token at a time. Different sessions over the *same* model with
//! different [`AttentionKind`]s are exactly the paper's comparison setup:
//! the original model vs. its LAD/Qserve/H2O variants (Table I/II).

use crate::backend::{AttentionKind, HeadState, HeadStepOutput};
use crate::config::{MlpKind, ModelConfig, NormKind, PositionKind};
use crate::layers::{gelu, rope_in_place, silu, LayerNorm, Linear, RmsNorm, ROPE_BASE};
use lad_core::audit::QkvStream;
use lad_core::locality::LocalityAnalyzer;
use lad_core::pool::{PoolMetrics, TaskLevel, WorkerPool};
use lad_core::stats::StepStats;
use lad_math::pwl::PwlExp;
use lad_math::{vector, Matrix, Rng};
use std::sync::Arc;

/// Normalisation layer (LayerNorm or RMSNorm, per config).
#[derive(Debug, Clone, PartialEq)]
pub enum Norm {
    /// OPT-style LayerNorm.
    Layer(LayerNorm),
    /// LLaMA-style RMSNorm.
    Rms(RmsNorm),
}

impl Norm {
    fn new(kind: NormKind, dim: usize) -> Norm {
        match kind {
            NormKind::LayerNorm => Norm::Layer(LayerNorm::new(dim)),
            NormKind::RmsNorm => Norm::Rms(RmsNorm::new(dim)),
        }
    }

    /// Applies the normalisation.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        match self {
            Norm::Layer(ln) => ln.forward(x),
            Norm::Rms(rn) => rn.forward(x),
        }
    }

    /// Allocation-free [`Norm::forward`] into a scratch row (overwritten).
    pub fn forward_into(&self, x: &[f32], out: &mut [f32]) {
        match self {
            Norm::Layer(ln) => ln.forward_into(x, out),
            Norm::Rms(rn) => rn.forward_into(x, out),
        }
    }
}

/// Weights of one transformer block.
#[derive(Debug, Clone)]
pub struct BlockWeights {
    pub(crate) norm1: Norm,
    pub(crate) norm2: Norm,
    pub(crate) wq: Linear,
    pub(crate) wk: Linear,
    pub(crate) wv: Linear,
    pub(crate) wo: Linear,
    pub(crate) w_up: Linear,
    pub(crate) w_down: Linear,
    pub(crate) w_gate: Option<Linear>,
}

impl BlockWeights {
    fn random(cfg: &ModelConfig, rng: &mut Rng) -> BlockWeights {
        let h = cfg.hidden;
        BlockWeights {
            norm1: Norm::new(cfg.norm, h),
            norm2: Norm::new(cfg.norm, h),
            wq: Linear::random(h, h, rng),
            wk: Linear::random(h, h, rng),
            wv: Linear::random(h, h, rng),
            wo: Linear::random(h, h, rng),
            w_up: Linear::random(cfg.intermediate, h, rng),
            w_down: Linear::random(h, cfg.intermediate, rng),
            w_gate: match cfg.mlp {
                MlpKind::SwiGlu => Some(Linear::random(cfg.intermediate, h, rng)),
                MlpKind::Gelu => None,
            },
        }
    }

    /// Feed-forward with caller-provided intermediate scratch (`up`, `gate`)
    /// and output row — the allocation-free form both the per-sample step and
    /// the batch engine share. Bit-identical to the old allocating `mlp`.
    pub(crate) fn mlp_into(
        &self,
        x: &[f32],
        kind: MlpKind,
        up: &mut [f32],
        gate: &mut [f32],
        out: &mut [f32],
    ) {
        match kind {
            MlpKind::Gelu => {
                self.w_up.forward_into(x, up);
                for v in up.iter_mut() {
                    *v = gelu(*v);
                }
                self.w_down.forward_into(up, out);
            }
            MlpKind::SwiGlu => {
                let w_gate = self
                    .w_gate
                    .as_ref()
                    .expect("SwiGLU blocks carry a gate projection");
                w_gate.forward_into(x, gate);
                self.w_up.forward_into(x, up);
                for (g, &u) in gate.iter_mut().zip(up.iter()) {
                    *g = silu(*g) * u;
                }
                self.w_down.forward_into(gate, out);
            }
        }
    }
}

/// Reused per-step activation buffers of a [`Session`]: after the first step
/// the decode hot path performs no per-projection allocation (the returned
/// logits vector is the only fresh allocation per step).
#[derive(Debug, Clone, Default)]
struct StepScratch {
    x: Vec<f32>,
    normed: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    attn: Vec<f32>,
    proj: Vec<f32>,
    up: Vec<f32>,
    gate: Vec<f32>,
    final_h: Vec<f32>,
}

impl StepScratch {
    fn resize(&mut self, hidden: usize, intermediate: usize) {
        for buf in [
            &mut self.x,
            &mut self.normed,
            &mut self.q,
            &mut self.k,
            &mut self.v,
            &mut self.attn,
            &mut self.proj,
            &mut self.final_h,
        ] {
            buf.resize(hidden, 0.0);
        }
        self.up.resize(intermediate, 0.0);
        self.gate.resize(intermediate, 0.0);
    }
}

/// A decoder-only transformer with seeded random weights.
///
/// # Example
///
/// ```
/// use lad_model::config::ModelConfig;
/// use lad_model::transformer::{Model, Session};
/// use lad_model::backend::AttentionKind;
///
/// let model = Model::random(ModelConfig::tiny("demo", 2, 32, 2), 7);
/// let mut session = Session::new(&model, &AttentionKind::Exact);
/// let logits = session.step(5);
/// assert_eq!(logits.len(), model.config().vocab);
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) cfg: ModelConfig,
    pub(crate) embed: Matrix,
    pub(crate) pos_embed: Option<Matrix>,
    pub(crate) blocks: Vec<BlockWeights>,
    pub(crate) final_norm: Norm,
}

impl Model {
    /// Creates a model with random weights from `seed`. Two calls with the
    /// same config and seed yield identical models.
    pub fn random(cfg: ModelConfig, seed: u64) -> Model {
        let mut rng = Rng::new(seed);
        let embed_scale = 1.0 / (cfg.hidden as f32).sqrt();
        let embed = Matrix::from_flat(
            cfg.vocab,
            cfg.hidden,
            rng.normal_vec(cfg.vocab * cfg.hidden, embed_scale),
        );
        let pos_embed = match cfg.position {
            PositionKind::Learned => Some(Matrix::from_flat(
                cfg.max_seq,
                cfg.hidden,
                rng.normal_vec(cfg.max_seq * cfg.hidden, embed_scale * 0.1),
            )),
            PositionKind::Rope => None,
        };
        let blocks = (0..cfg.layers)
            .map(|_| BlockWeights::random(&cfg, &mut rng))
            .collect();
        let final_norm = Norm::new(cfg.norm, cfg.hidden);
        Model {
            cfg,
            embed,
            pos_embed,
            blocks,
            final_norm,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Quantises the MLP and attention-output projections (`wo`, `w_up`,
    /// `w_down`, `w_gate`) of every block to int8 with per-row scales — the
    /// GEMMs the traces say dominate step time. `wq`/`wk`/`wv` and the tied
    /// embedding stay f32: they feed RoPE and the attention state, where
    /// quantisation error would compound through the KV cache rather than
    /// wash out in a single projection.
    pub fn quantize_int8_weights(&mut self) {
        for block in &mut self.blocks {
            block.wo.quantize_int8();
            block.w_up.quantize_int8();
            block.w_down.quantize_int8();
            if let Some(gate) = block.w_gate.as_mut() {
                gate.quantize_int8();
            }
        }
    }

    /// Drops every int8 weight copy, returning all projections to f32.
    pub fn dequantize_int8_weights(&mut self) {
        for block in &mut self.blocks {
            block.wo.dequantize_int8();
            block.w_up.dequantize_int8();
            block.w_down.dequantize_int8();
            if let Some(gate) = block.w_gate.as_mut() {
                gate.dequantize_int8();
            }
        }
    }

    /// Bytes of projection weights one decode step streams per sample
    /// (all block projections at their current precision plus the f32
    /// embedding/unembedding) — the denominator of quality-per-byte.
    pub fn projection_weight_bytes(&self) -> usize {
        let mut bytes = 4 * self.cfg.vocab * self.cfg.hidden;
        for block in &self.blocks {
            bytes += block.wq.weight_bytes()
                + block.wk.weight_bytes()
                + block.wv.weight_bytes()
                + block.wo.weight_bytes()
                + block.w_up.weight_bytes()
                + block.w_down.weight_bytes()
                + block.w_gate.as_ref().map_or(0, Linear::weight_bytes);
        }
        bytes
    }
}

/// A decode session: the per-head attention state for one sample.
#[derive(Debug)]
pub struct Session<'m> {
    model: &'m Model,
    heads: Vec<Vec<HeadState>>,
    pos: usize,
    /// Fan-out width the per-layer head scheduling may use (`1` = fully
    /// sequential, inline). Outputs are bit-identical at any setting.
    parallelism: usize,
    /// Worker pool the head fan-out is scheduled on (`None` = the
    /// process-global [`WorkerPool`]). Only touched when the effective
    /// fan-out width exceeds 1.
    pool: Option<Arc<WorkerPool>>,
    /// Pool scheduling counters observed during the latest step (zero when
    /// the step ran inline).
    last_pool_metrics: PoolMetrics,
    /// LAD step statistics of every (layer, head) at the latest step.
    last_stats: Vec<StepStats>,
    /// Locality analyzers per (layer, head), when score recording is on.
    analyzers: Option<Vec<LocalityAnalyzer>>,
    /// Per-head (q, k, v) streams, when QKV recording is on: indexed by
    /// `layer * heads + head`, one triple per step.
    qkv_taps: Option<Vec<QkvStream>>,
    /// Reused per-step activation buffers (see [`StepScratch`]).
    scratch: StepScratch,
}

impl<'m> Session<'m> {
    /// Opens a session over `model` with every head running `kind`. Head
    /// steps fan out over all available cores; see
    /// [`Session::with_parallelism`] to pick the worker count explicitly.
    pub fn new(model: &'m Model, kind: &AttentionKind) -> Session<'m> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Session::with_parallelism(model, kind, workers)
    }

    /// Opens a session whose per-layer head fan-out is at most `parallelism`
    /// wide (`1` runs every head inline; values are clamped to at least 1).
    /// Widths above 1 schedule head chunks on the process-global
    /// [`WorkerPool`]. Heads within a layer are independent and outputs are
    /// collected in head order, so any setting produces bit-identical logits.
    pub fn with_parallelism(
        model: &'m Model,
        kind: &AttentionKind,
        parallelism: usize,
    ) -> Session<'m> {
        Session::build(model, kind, parallelism, None)
    }

    /// Opens a session that schedules its head fan-out on an explicit shared
    /// `pool` instead of the process-global one. Batch decoding uses this so
    /// sequence-level and head-level tasks share one set of workers.
    pub fn with_pool(
        model: &'m Model,
        kind: &AttentionKind,
        pool: Arc<WorkerPool>,
        parallelism: usize,
    ) -> Session<'m> {
        Session::build(model, kind, parallelism, Some(pool))
    }

    fn build(
        model: &'m Model,
        kind: &AttentionKind,
        parallelism: usize,
        pool: Option<Arc<WorkerPool>>,
    ) -> Session<'m> {
        let d = model.cfg.head_dim();
        let heads = (0..model.cfg.layers)
            .map(|_| {
                (0..model.cfg.heads)
                    .map(|_| HeadState::new(d, kind))
                    .collect()
            })
            .collect();
        Session {
            model,
            heads,
            pos: 0,
            parallelism: parallelism.max(1),
            pool,
            last_pool_metrics: PoolMetrics::default(),
            last_stats: Vec::new(),
            analyzers: None,
            qkv_taps: None,
            scratch: StepScratch::default(),
        }
    }

    /// Sets the worker-thread cap for subsequent steps (clamped to >= 1).
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.parallelism = parallelism.max(1);
    }

    /// The current worker-thread cap.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Pool scheduling counters (tasks executed/stolen, idle wakeups)
    /// observed during the latest step. Zero when the step ran inline; on a
    /// pool shared with other sessions the delta is best-effort (concurrent
    /// decodes meter into the same counters).
    pub fn last_pool_metrics(&self) -> PoolMetrics {
        self.last_pool_metrics
    }

    /// Total bytes of KV state across every (layer, head) right now — the
    /// cache-traffic denominator of quality-per-byte comparisons.
    pub fn kv_bytes(&self) -> usize {
        self.heads.iter().flatten().map(HeadState::kv_bytes).sum()
    }

    /// Enables recording of every head's per-step `(q, k, v)` triples
    /// (post-RoPE, as the attention backend sees them). The streams feed the
    /// error audit ([`lad_core::audit`]) and the hardware tile engine with
    /// *real* transformer traffic.
    pub fn record_qkv(&mut self) {
        let count = self.model.cfg.layers * self.model.cfg.heads;
        self.qkv_taps = Some(vec![Vec::new(); count]);
    }

    /// The recorded per-head QKV streams, if recording was enabled.
    /// Indexed by `layer * heads + head`.
    pub fn qkv_streams(&self) -> Option<&[QkvStream]> {
        self.qkv_taps.as_deref()
    }

    /// Enables shifted-score recording into per-head locality analyzers
    /// (only effective on the exact backend, which computes dense scores).
    pub fn record_locality(&mut self, pwl: PwlExp) {
        let count = self.model.cfg.layers * self.model.cfg.heads;
        self.analyzers = Some(
            (0..count)
                .map(|_| LocalityAnalyzer::new(pwl.clone()))
                .collect(),
        );
    }

    /// The locality analyzers, if recording was enabled.
    pub fn analyzers(&self) -> Option<&[LocalityAnalyzer]> {
        self.analyzers.as_deref()
    }

    /// Number of tokens consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Step statistics of all (layer, head) pairs from the latest step —
    /// every backend reports the shared traffic counters; LAD additionally
    /// fills its identification fields.
    pub fn last_stats(&self) -> &[StepStats] {
        &self.last_stats
    }

    /// Feeds one token and returns the next-token logits.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary or the maximum sequence
    /// length is exceeded.
    pub fn step(&mut self, token: u32) -> Vec<f32> {
        let _step_span = lad_obs::span("session.step");
        let cfg = &self.model.cfg;
        assert!((token as usize) < cfg.vocab, "token out of vocabulary");
        assert!(self.pos < cfg.max_seq, "sequence length exceeded");
        let d = cfg.head_dim();
        let record = self.analyzers.is_some();

        // Resolve the fan-out width and pool once per step; `width == 1`
        // never touches the pool (the pure sequential reference path).
        let width = self.parallelism.min(cfg.heads).max(1);
        let pool: Option<Arc<WorkerPool>> = (width > 1).then(|| {
            self.pool
                .clone()
                .unwrap_or_else(|| Arc::clone(WorkerPool::global()))
        });
        let pool_before = pool.as_ref().map(|p| p.metrics());

        // The scratch buffers move out of `self` for the step so the head
        // states below can be borrowed mutably alongside them; every buffer
        // is overwritten before use.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.resize(cfg.hidden, cfg.intermediate);
        let StepScratch {
            x,
            normed,
            q: q_full,
            k: k_full,
            v: v_full,
            attn,
            proj,
            up,
            gate,
            final_h,
        } = &mut scratch;
        x.copy_from_slice(self.model.embed.row(token as usize));
        if let Some(pos_embed) = &self.model.pos_embed {
            vector::axpy(x, 1.0, pos_embed.row(self.pos));
        }

        self.last_stats.clear();
        for (layer, block) in self.model.blocks.iter().enumerate() {
            let qkv_span = lad_obs::span("layer.qkv_proj");
            block.norm1.forward_into(x, normed);
            block.wq.forward_into(normed, q_full);
            block.wk.forward_into(normed, k_full);
            block.wv.forward_into(normed, v_full);

            // RoPE is applied in place on each head's span of the shared
            // projection buffers, so the fan-out below can hand every worker
            // plain sub-slices of immutable data.
            if cfg.position == PositionKind::Rope {
                for h in 0..cfg.heads {
                    let span = h * d..(h + 1) * d;
                    rope_in_place(&mut q_full[span.clone()], self.pos, ROPE_BASE);
                    rope_in_place(&mut k_full[span], self.pos, ROPE_BASE);
                }
            }
            drop(qkv_span);
            let attn_span = lad_obs::span("layer.attn");

            // Heads within a layer are independent (only `x` is sequential,
            // between layers), so their steps fan out as head-level tasks on
            // the shared worker pool; this thread runs the first chunk itself
            // and then help-executes queued tasks until the layer drains.
            // Post-processing stays in head order below, making the logits
            // bit-identical to the sequential path.
            let head_row = &mut self.heads[layer];
            let outputs: Vec<HeadStepOutput> = match &pool {
                None => head_row
                    .iter_mut()
                    .enumerate()
                    .map(|(h, head)| {
                        let span = h * d..(h + 1) * d;
                        head.step(
                            &q_full[span.clone()],
                            &k_full[span.clone()],
                            &v_full[span],
                            record,
                        )
                    })
                    .collect(),
                Some(pool) => {
                    let chunk = cfg.heads.div_ceil(width);
                    let mut slots: Vec<Option<HeadStepOutput>> =
                        (0..cfg.heads).map(|_| None).collect();
                    pool.scope(|scope| {
                        let mut pieces = head_row
                            .chunks_mut(chunk)
                            .zip(slots.chunks_mut(chunk))
                            .enumerate();
                        let first = pieces.next();
                        for (c, (heads_chunk, out_chunk)) in pieces {
                            let (q_full, k_full, v_full) = (&q_full, &k_full, &v_full);
                            scope.spawn(TaskLevel::Head, move || {
                                step_head_chunk(
                                    c * chunk,
                                    d,
                                    record,
                                    heads_chunk,
                                    out_chunk,
                                    q_full,
                                    k_full,
                                    v_full,
                                );
                            });
                        }
                        if let Some((_, (heads_chunk, out_chunk))) = first {
                            step_head_chunk(
                                0,
                                d,
                                record,
                                heads_chunk,
                                out_chunk,
                                q_full,
                                k_full,
                                v_full,
                            );
                        }
                    });
                    slots
                        .into_iter()
                        .map(|slot| slot.expect("every head ran"))
                        .collect()
                }
            };

            for (h, out) in outputs.into_iter().enumerate() {
                let span = h * d..(h + 1) * d;
                if let Some(taps) = self.qkv_taps.as_mut() {
                    taps[layer * cfg.heads + h].push((
                        q_full[span.clone()].to_vec(),
                        k_full[span.clone()].to_vec(),
                        v_full[span.clone()].to_vec(),
                    ));
                }
                attn[span].copy_from_slice(&out.output);
                if let Some(mut stats) = out.stats {
                    stats.fanout_width = width;
                    self.last_stats.push(stats);
                }
                if let (Some(analyzers), Some(scores)) =
                    (self.analyzers.as_mut(), out.shifted_scores)
                {
                    analyzers[layer * cfg.heads + h].observe_step(&scores);
                }
            }
            drop(attn_span);
            {
                let _out_proj_span = lad_obs::span("layer.out_proj");
                block.wo.forward_into(attn, proj);
                vector::axpy(x, 1.0, proj);
            }

            let _mlp_span = lad_obs::span("layer.mlp");
            block.norm2.forward_into(x, normed);
            block.mlp_into(normed, cfg.mlp, up, gate, proj);
            vector::axpy(x, 1.0, proj);
        }

        self.last_pool_metrics = match (&pool, pool_before) {
            (Some(pool), Some(before)) => pool.metrics().delta(before),
            _ => PoolMetrics::default(),
        };
        self.pos += 1;
        let logits_span = lad_obs::span("session.logits");
        self.model.final_norm.forward_into(x, final_h);
        let logits = self.model.embed.matvec(final_h);
        drop(logits_span);
        self.scratch = scratch;
        logits
    }

    /// Feeds a prompt token-by-token; returns the logits after the last one.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn prefill(&mut self, prompt: &[u32]) -> Vec<f32> {
        assert!(!prompt.is_empty(), "prefill: empty prompt");
        let mut logits = Vec::new();
        for &t in prompt {
            logits = self.step(t);
        }
        logits
    }

    /// Greedy generation: feeds `prompt`, then generates `steps` tokens by
    /// argmax. Returns only the generated tokens.
    pub fn generate_greedy(&mut self, prompt: &[u32], steps: usize) -> Vec<u32> {
        let mut logits = self.prefill(prompt);
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            let next = argmax(&logits);
            out.push(next);
            logits = self.step(next);
        }
        out
    }
}

/// Steps a contiguous chunk of heads starting at `first_head`, writing each
/// head's output into its pre-assigned slot (the pool-task body of the
/// per-layer fan-out).
#[allow(clippy::too_many_arguments)]
fn step_head_chunk(
    first_head: usize,
    d: usize,
    record: bool,
    heads: &mut [HeadState],
    slots: &mut [Option<HeadStepOutput>],
    q_full: &[f32],
    k_full: &[f32],
    v_full: &[f32],
) {
    for (i, (head, slot)) in heads.iter_mut().zip(slots.iter_mut()).enumerate() {
        let h = first_head + i;
        let span = h * d..(h + 1) * d;
        *slot = Some(head.step(
            &q_full[span.clone()],
            &k_full[span.clone()],
            &v_full[span],
            record,
        ));
    }
}

/// Index of the maximum logit (ties resolve to the lowest index).
pub fn argmax(logits: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best as u32
}

/// Log-probability of `target` under a softmax over `logits`.
pub fn log_prob(logits: &[f32], target: u32) -> f64 {
    let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let logsum: f64 = logits
        .iter()
        .map(|&l| f64::from(l - m).exp())
        .sum::<f64>()
        .ln();
    f64::from(logits[target as usize] - m) - logsum
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_core::decoder::LadConfig;

    fn tiny_model() -> Model {
        Model::random(ModelConfig::tiny("test", 2, 32, 2), 11)
    }

    #[test]
    fn logits_shape_and_determinism() {
        let model = tiny_model();
        let mut s1 = Session::new(&model, &AttentionKind::Exact);
        let mut s2 = Session::new(&model, &AttentionKind::Exact);
        let l1 = s1.step(3);
        let l2 = s2.step(3);
        assert_eq!(l1.len(), 256);
        assert_eq!(l1, l2);
    }

    #[test]
    fn different_tokens_different_logits() {
        let model = tiny_model();
        let mut s1 = Session::new(&model, &AttentionKind::Exact);
        let mut s2 = Session::new(&model, &AttentionKind::Exact);
        assert_ne!(s1.step(3), s2.step(4));
    }

    #[test]
    fn opt_style_model_runs() {
        let model = Model::random(ModelConfig::tiny_opt("opt-test", 2, 32, 2), 12);
        let mut s = Session::new(&model, &AttentionKind::Exact);
        let tokens = s.generate_greedy(&[1, 2, 3], 10);
        assert_eq!(tokens.len(), 10);
        assert!(tokens.iter().all(|&t| (t as usize) < 256));
    }

    #[test]
    fn lad_session_tracks_exact_session() {
        // The LAD variant must generate mostly the same tokens as the exact
        // model — the Table I premise.
        let model = tiny_model();
        let mut exact = Session::new(&model, &AttentionKind::Exact);
        let mut lad = Session::new(
            &model,
            &AttentionKind::Lad(LadConfig::new(PwlExp::accurate_default())),
        );
        let prompt = [5u32, 9, 13, 2];
        let a = exact.generate_greedy(&prompt, 40);
        let b = lad.generate_greedy(&prompt, 40);
        let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(agree >= 36, "agreement {agree}/40");
    }

    #[test]
    fn lad_session_reports_stats() {
        let model = tiny_model();
        let mut lad = Session::new(
            &model,
            &AttentionKind::Lad(LadConfig::new(PwlExp::accurate_default())),
        );
        lad.prefill(&[1, 2, 3, 4]);
        // 2 layers × 2 heads.
        assert_eq!(lad.last_stats().len(), 4);
        assert!(lad.last_stats().iter().all(|s| s.n == 4));
    }

    #[test]
    fn locality_recording_populates_analyzers() {
        let model = tiny_model();
        let mut s = Session::new(&model, &AttentionKind::Exact);
        s.record_locality(PwlExp::paper_default());
        s.prefill(&[1, 2, 3, 4, 5]);
        let analyzers = s.analyzers().expect("recording enabled");
        assert_eq!(analyzers.len(), 4);
        assert_eq!(analyzers[0].positions(), 5);
    }

    #[test]
    fn argmax_and_log_prob() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[1.0, 1.0]), 0);
        let lp = log_prob(&[0.0, 0.0], 0);
        assert!((lp - (0.5f64).ln()).abs() < 1e-6);
        // Probabilities sum to one.
        let logits = [0.3f32, -1.0, 2.0];
        let total: f64 = (0..3).map(|t| log_prob(&logits, t).exp()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn qkv_tap_records_streams() {
        let model = tiny_model();
        let mut s = Session::new(&model, &AttentionKind::Exact);
        s.record_qkv();
        s.prefill(&[1, 2, 3, 4, 5, 6]);
        let streams = s.qkv_streams().expect("recording enabled");
        // 2 layers x 2 heads, 6 steps each, head-dim vectors.
        assert_eq!(streams.len(), 4);
        let d = model.config().head_dim();
        for stream in streams {
            assert_eq!(stream.len(), 6);
            assert!(stream
                .iter()
                .all(|(q, k, v)| { q.len() == d && k.len() == d && v.len() == d }));
        }
    }

    #[test]
    fn parallel_fanout_is_bit_identical_to_sequential() {
        // The tentpole invariant: any parallelism setting yields exactly the
        // same logits, for every backend.
        let model = Model::random(ModelConfig::tiny("par", 2, 64, 8), 21);
        let kinds = [
            AttentionKind::Exact,
            AttentionKind::Lad(LadConfig::new(PwlExp::accurate_default())),
            AttentionKind::h2o_default(),
            AttentionKind::topk(6),
            AttentionKind::h2o_budget(12, 4),
        ];
        for kind in &kinds {
            let mut serial = Session::with_parallelism(&model, kind, 1);
            let mut fanned = Session::with_parallelism(&model, kind, 4);
            assert_eq!(serial.parallelism(), 1);
            assert_eq!(fanned.parallelism(), 4);
            for t in [3u32, 1, 4, 1, 5, 9, 2, 6] {
                assert_eq!(serial.step(t), fanned.step(t), "kind {kind:?}");
            }
            assert_eq!(
                serial.generate_greedy(&[7, 7], 24),
                fanned.generate_greedy(&[7, 7], 24),
                "kind {kind:?}"
            );
        }
    }

    #[test]
    fn parallelism_knob_clamps_and_updates() {
        let model = tiny_model();
        let mut s = Session::with_parallelism(&model, &AttentionKind::Exact, 0);
        assert_eq!(s.parallelism(), 1);
        s.set_parallelism(0);
        assert_eq!(s.parallelism(), 1);
        s.set_parallelism(6);
        assert_eq!(s.parallelism(), 6);
        assert!(Session::new(&model, &AttentionKind::Exact).parallelism() >= 1);
    }

    #[test]
    fn session_position_advances() {
        let model = tiny_model();
        let mut s = Session::new(&model, &AttentionKind::Exact);
        s.prefill(&[1, 2, 3]);
        assert_eq!(s.position(), 3);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oversized_token_panics() {
        let model = tiny_model();
        Session::new(&model, &AttentionKind::Exact).step(9999);
    }
}
