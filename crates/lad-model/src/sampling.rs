//! Token sampling strategies for the decode loop.
//!
//! Greedy decoding (what the paper's ROUGE comparisons use — deterministic,
//! so divergence is attributable to the attention backend), plus the
//! temperature / top-k samplers a downstream user of the substrate expects.

use crate::transformer::{argmax, Session};
use lad_math::Rng;

/// A decoding strategy turning logits into the next token.
#[derive(Debug, Clone, PartialEq)]
pub enum Sampler {
    /// Deterministic argmax.
    Greedy,
    /// Softmax sampling at a temperature (`> 0`).
    Temperature(f32),
    /// Top-k filtering then temperature sampling.
    TopK {
        /// Candidates kept.
        k: usize,
        /// Softmax temperature.
        temperature: f32,
    },
}

impl Sampler {
    /// Draws the next token from `logits`.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is empty, the temperature is not positive, or
    /// `k == 0`.
    pub fn sample(&self, logits: &[f32], rng: &mut Rng) -> u32 {
        assert!(!logits.is_empty(), "sample: empty logits");
        match self {
            Sampler::Greedy => argmax(logits),
            Sampler::Temperature(t) => {
                assert!(*t > 0.0, "sample: temperature must be positive");
                weighted_draw(logits, *t, rng, logits.len())
            }
            Sampler::TopK { k, temperature } => {
                assert!(*k > 0, "sample: k must be positive");
                assert!(*temperature > 0.0, "sample: temperature must be positive");
                weighted_draw(logits, *temperature, rng, *k)
            }
        }
    }
}

fn weighted_draw(logits: &[f32], temperature: f32, rng: &mut Rng, k: usize) -> u32 {
    let mut order: Vec<usize> = (0..logits.len()).collect();
    order.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).expect("finite logits"));
    order.truncate(k.min(logits.len()));
    let max = logits[order[0]];
    let weights: Vec<f64> = order
        .iter()
        .map(|&i| f64::from((logits[i] - max) / temperature).exp())
        .collect();
    order[rng.weighted_index(&weights)] as u32
}

/// Generates `steps` tokens from `session` after feeding `prompt`, with the
/// chosen sampler. Returns only the generated tokens.
///
/// # Panics
///
/// Panics if `prompt` is empty.
pub fn generate(
    session: &mut Session<'_>,
    prompt: &[u32],
    steps: usize,
    sampler: &Sampler,
    rng: &mut Rng,
) -> Vec<u32> {
    let mut logits = session.prefill(prompt);
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let next = sampler.sample(&logits, rng);
        out.push(next);
        logits = session.step(next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AttentionKind;
    use crate::config::ModelConfig;
    use crate::transformer::Model;

    #[test]
    fn greedy_matches_argmax() {
        let mut rng = Rng::new(1);
        assert_eq!(Sampler::Greedy.sample(&[0.1, 0.9, 0.3], &mut rng), 1);
    }

    #[test]
    fn low_temperature_approaches_greedy() {
        let mut rng = Rng::new(2);
        let logits = [1.0f32, 5.0, 2.0];
        let hits = (0..200)
            .filter(|_| Sampler::Temperature(0.05).sample(&logits, &mut rng) == 1)
            .count();
        assert!(hits > 195, "hits {hits}");
    }

    #[test]
    fn high_temperature_spreads_mass() {
        let mut rng = Rng::new(3);
        let logits = [1.0f32, 1.5, 0.5];
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[Sampler::Temperature(100.0).sample(&logits, &mut rng) as usize] += 1;
        }
        // Near-uniform at huge temperature.
        for c in counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn top_k_restricts_support() {
        let mut rng = Rng::new(4);
        let logits = [5.0f32, 4.0, -10.0, -20.0];
        for _ in 0..200 {
            let t = Sampler::TopK {
                k: 2,
                temperature: 1.0,
            }
            .sample(&logits, &mut rng);
            assert!(t < 2, "token {t} outside top-2");
        }
    }

    #[test]
    fn generate_is_deterministic_under_seed() {
        let model = Model::random(ModelConfig::tiny("sampling", 1, 32, 2), 5);
        let sampler = Sampler::TopK {
            k: 8,
            temperature: 0.8,
        };
        let run = |seed: u64| {
            let mut session = Session::new(&model, &AttentionKind::Exact);
            let mut rng = Rng::new(seed);
            generate(&mut session, &[1, 2, 3], 12, &sampler, &mut rng)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_rejected() {
        Sampler::Temperature(0.0).sample(&[1.0], &mut Rng::new(0));
    }
}
