//! Property-based tests of the ROUGE metrics.

use lad_eval::rouge::{lcs_len, rouge_l, rouge_lsum, rouge_n, RougeScores};
use proptest::prelude::*;

fn token_seq() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..12, 0..40)
}

proptest! {
    /// All scores live in [0, 1].
    #[test]
    fn scores_are_bounded(a in token_seq(), b in token_seq()) {
        let s = RougeScores::compute(&a, &b, Some(0));
        for v in [s.rouge1, s.rouge2, s.rouge_l, s.rouge_lsum] {
            prop_assert!((0.0..=1.0).contains(&v), "score {v}");
        }
    }

    /// Self-comparison is perfect for non-empty sequences.
    #[test]
    fn identity_scores_one(a in prop::collection::vec(1u32..12, 2..40)) {
        prop_assert_eq!(rouge_n(&a, &a, 1), 1.0);
        prop_assert_eq!(rouge_l(&a, &a), 1.0);
    }

    /// ROUGE-N and ROUGE-L F1 are symmetric in their arguments.
    #[test]
    fn f1_is_symmetric(a in token_seq(), b in token_seq()) {
        prop_assert!((rouge_n(&a, &b, 1) - rouge_n(&b, &a, 1)).abs() < 1e-12);
        prop_assert!((rouge_n(&a, &b, 2) - rouge_n(&b, &a, 2)).abs() < 1e-12);
        prop_assert!((rouge_l(&a, &b) - rouge_l(&b, &a)).abs() < 1e-12);
    }

    /// The LCS length is bounded by both sequence lengths and monotone under
    /// concatenation.
    #[test]
    fn lcs_bounds(a in token_seq(), b in token_seq(), extra in 0u32..12) {
        let l = lcs_len(&a, &b);
        prop_assert!(l <= a.len() && l <= b.len());
        let mut a2 = a.clone();
        a2.push(extra);
        prop_assert!(lcs_len(&a2, &b) >= l);
    }

    /// ROUGE-L never exceeds ROUGE-1: the LCS is a subset of the unigram
    /// overlap.
    #[test]
    fn rouge_l_bounded_by_rouge_1(a in token_seq(), b in token_seq()) {
        prop_assert!(rouge_l(&a, &b) <= rouge_n(&a, &b, 1) + 1e-12);
    }

    /// Lsum of single-sentence inputs (no separators) equals plain L.
    #[test]
    fn lsum_degenerates_to_l(a in prop::collection::vec(1u32..12, 1..30),
                             b in prop::collection::vec(1u32..12, 1..30)) {
        prop_assert!((rouge_lsum(&a, &b, 0) - rouge_l(&a, &b)).abs() < 1e-12);
    }

    /// Corrupting tokens can only lower (or keep) ROUGE-1 relative to the
    /// intact copy, and more corruption scores no higher.
    #[test]
    fn corruption_is_monotone(a in prop::collection::vec(1u32..6, 8..30), idx in 0usize..8) {
        let mut one = a.clone();
        one[idx] = 99;
        let mut many = one.clone();
        for slot in many.iter_mut().take(6) {
            *slot = 99;
        }
        let intact = rouge_n(&a, &a, 1);
        let light = rouge_n(&a, &one, 1);
        // token 99 never appears in `a`, so each corruption removes overlap.
        prop_assert!(light <= intact);
        prop_assert!(rouge_n(&a, &many, 1) <= light + 1e-12);
    }
}
