//! ROUGE metrics over token sequences.
//!
//! The paper's Table I reports ROUGE-1/2/L/Lsum between sequences generated
//! by the original model and by its LAD/Qserve/H2O variants. ROUGE is defined
//! over token sequences, so it applies unchanged to our integer token streams
//! (no text detokenisation required).
//!
//! All scores are F1 variants in `[0, 1]`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// The four ROUGE variants of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RougeScores {
    /// Unigram overlap F1.
    pub rouge1: f64,
    /// Bigram overlap F1.
    pub rouge2: f64,
    /// Longest-common-subsequence F1.
    pub rouge_l: f64,
    /// Sentence-split union-LCS F1 (sentences delimited by a separator
    /// token).
    pub rouge_lsum: f64,
}

impl RougeScores {
    /// Computes all four scores; `separator` is the token that delimits
    /// "sentences" for ROUGE-Lsum (pass `None` to fall back to ROUGE-L).
    pub fn compute(reference: &[u32], candidate: &[u32], separator: Option<u32>) -> RougeScores {
        RougeScores {
            rouge1: rouge_n(reference, candidate, 1),
            rouge2: rouge_n(reference, candidate, 2),
            rouge_l: rouge_l(reference, candidate),
            rouge_lsum: match separator {
                Some(sep) => rouge_lsum(reference, candidate, sep),
                None => rouge_l(reference, candidate),
            },
        }
    }

    /// Arithmetic mean over a batch of score records.
    pub fn mean(scores: &[RougeScores]) -> RougeScores {
        if scores.is_empty() {
            return RougeScores::default();
        }
        let n = scores.len() as f64;
        RougeScores {
            rouge1: scores.iter().map(|s| s.rouge1).sum::<f64>() / n,
            rouge2: scores.iter().map(|s| s.rouge2).sum::<f64>() / n,
            rouge_l: scores.iter().map(|s| s.rouge_l).sum::<f64>() / n,
            rouge_lsum: scores.iter().map(|s| s.rouge_lsum).sum::<f64>() / n,
        }
    }
}

fn ngram_counts(tokens: &[u32], n: usize) -> HashMap<&[u32], usize> {
    let mut counts = HashMap::new();
    if tokens.len() >= n {
        for window in tokens.windows(n) {
            *counts.entry(window).or_insert(0) += 1;
        }
    }
    counts
}

fn f1(overlap: usize, candidate_total: usize, reference_total: usize) -> f64 {
    if candidate_total == 0 || reference_total == 0 || overlap == 0 {
        return 0.0;
    }
    let p = overlap as f64 / candidate_total as f64;
    let r = overlap as f64 / reference_total as f64;
    2.0 * p * r / (p + r)
}

/// ROUGE-N: clipped n-gram overlap F1.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn rouge_n(reference: &[u32], candidate: &[u32], n: usize) -> f64 {
    assert!(n > 0, "rouge_n: n must be positive");
    let ref_counts = ngram_counts(reference, n);
    let cand_counts = ngram_counts(candidate, n);
    let overlap: usize = cand_counts
        .iter()
        .map(|(gram, &c)| c.min(ref_counts.get(gram).copied().unwrap_or(0)))
        .sum();
    let ref_total = reference.len().saturating_sub(n - 1);
    let cand_total = candidate.len().saturating_sub(n - 1);
    f1(overlap, cand_total, ref_total)
}

/// Length of the longest common subsequence.
pub fn lcs_len(a: &[u32], b: &[u32]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut curr = vec![0usize; b.len() + 1];
    for &x in a {
        for (j, &y) in b.iter().enumerate() {
            curr[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// ROUGE-L: LCS-based F1.
pub fn rouge_l(reference: &[u32], candidate: &[u32]) -> f64 {
    f1(
        lcs_len(reference, candidate),
        candidate.len(),
        reference.len(),
    )
}

/// ROUGE-Lsum: sequences are split into sentences at `separator`; the union
/// LCS of each reference sentence against all candidate sentences is
/// aggregated (the summarisation-style variant Table I uses).
pub fn rouge_lsum(reference: &[u32], candidate: &[u32], separator: u32) -> f64 {
    let split = |tokens: &[u32]| -> Vec<Vec<u32>> {
        tokens
            .split(|&t| t == separator)
            .filter(|s| !s.is_empty())
            .map(|s| s.to_vec())
            .collect()
    };
    let ref_sents = split(reference);
    let cand_sents = split(candidate);
    if ref_sents.is_empty() || cand_sents.is_empty() {
        return 0.0;
    }
    // Union LCS: for each reference sentence, the union of LCS token hits
    // against every candidate sentence (approximated by the max per
    // sentence, the common implementation simplification).
    let mut overlap = 0usize;
    for rs in &ref_sents {
        let best = cand_sents
            .iter()
            .map(|cs| lcs_len(rs, cs))
            .max()
            .unwrap_or(0);
        overlap += best;
    }
    let ref_total: usize = ref_sents.iter().map(Vec::len).sum();
    let cand_total: usize = cand_sents.iter().map(Vec::len).sum();
    f1(overlap, cand_total, ref_total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_score_one() {
        let s = vec![1u32, 2, 3, 4, 5];
        let scores = RougeScores::compute(&s, &s, Some(0));
        assert_eq!(scores.rouge1, 1.0);
        assert_eq!(scores.rouge2, 1.0);
        assert_eq!(scores.rouge_l, 1.0);
        assert_eq!(scores.rouge_lsum, 1.0);
    }

    #[test]
    fn disjoint_sequences_score_zero() {
        let a = vec![1u32, 2, 3];
        let b = vec![4u32, 5, 6];
        let scores = RougeScores::compute(&a, &b, None);
        assert_eq!(scores.rouge1, 0.0);
        assert_eq!(scores.rouge2, 0.0);
        assert_eq!(scores.rouge_l, 0.0);
    }

    #[test]
    fn rouge1_counts_are_clipped() {
        // candidate repeats a token more often than the reference has it.
        let reference = vec![1u32, 2];
        let candidate = vec![1u32, 1, 1, 1];
        // overlap clipped to 1; P = 1/4, R = 1/2 -> F1 = 1/3.
        assert!((rouge_n(&reference, &candidate, 1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rouge2_needs_adjacent_pairs() {
        let reference = vec![1u32, 2, 3];
        let candidate = vec![1u32, 3, 2]; // same unigrams, no shared bigram
        assert!(rouge_n(&reference, &candidate, 1) > 0.9);
        assert_eq!(rouge_n(&reference, &candidate, 2), 0.0);
    }

    #[test]
    fn lcs_known_cases() {
        assert_eq!(lcs_len(&[1, 2, 3, 4], &[2, 4]), 2);
        assert_eq!(lcs_len(&[1, 2, 3], &[3, 2, 1]), 1);
        assert_eq!(lcs_len(&[], &[1]), 0);
        assert_eq!(lcs_len(&[5, 6, 7], &[5, 6, 7]), 3);
    }

    #[test]
    fn rouge_l_order_sensitivity() {
        let reference = vec![1u32, 2, 3, 4];
        let shuffled = vec![4u32, 3, 2, 1];
        assert!(rouge_l(&reference, &reference) > rouge_l(&reference, &shuffled));
    }

    #[test]
    fn rouge_lsum_uses_sentence_structure() {
        // Two sentences split by 0; candidate swaps sentence order.
        let reference = vec![1u32, 2, 3, 0, 4, 5, 6];
        let candidate = vec![4u32, 5, 6, 0, 1, 2, 3];
        // Lsum matches sentences independently -> perfect; plain L does not.
        assert_eq!(rouge_lsum(&reference, &candidate, 0), 1.0);
        assert!(rouge_l(&reference, &candidate) < 1.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(rouge_n(&[], &[1], 1), 0.0);
        assert_eq!(rouge_l(&[1], &[]), 0.0);
        assert_eq!(rouge_lsum(&[], &[], 0), 0.0);
    }

    #[test]
    fn empty_candidate_scores_zero_everywhere() {
        let reference = vec![1u32, 2, 3, 0, 4];
        let scores = RougeScores::compute(&reference, &[], Some(0));
        assert_eq!(scores.rouge1, 0.0);
        assert_eq!(scores.rouge2, 0.0);
        assert_eq!(scores.rouge_l, 0.0);
        assert_eq!(scores.rouge_lsum, 0.0);
    }

    #[test]
    fn empty_reference_scores_zero_everywhere() {
        let candidate = vec![7u32, 8, 0, 9];
        let scores = RougeScores::compute(&[], &candidate, Some(0));
        assert_eq!(scores.rouge1, 0.0);
        assert_eq!(scores.rouge2, 0.0);
        assert_eq!(scores.rouge_l, 0.0);
        assert_eq!(scores.rouge_lsum, 0.0);
    }

    #[test]
    fn single_token_sequences() {
        // A matching single token is a perfect unigram/LCS match, but there
        // is no bigram to count — ROUGE-2 must be 0, not NaN.
        let matching = RougeScores::compute(&[5], &[5], Some(0));
        assert_eq!(matching.rouge1, 1.0);
        assert_eq!(matching.rouge2, 0.0);
        assert_eq!(matching.rouge_l, 1.0);
        assert_eq!(matching.rouge_lsum, 1.0);
        let differing = RougeScores::compute(&[5], &[6], Some(0));
        assert_eq!(differing.rouge1, 0.0);
        assert_eq!(differing.rouge_l, 0.0);
    }

    #[test]
    fn separator_only_sequences_score_zero() {
        // Streams of nothing but sentence separators have no sentences at
        // all; every variant must return a finite 0, not divide by zero.
        let seps = vec![0u32, 0, 0];
        assert_eq!(rouge_lsum(&seps, &seps, 0), 0.0);
        let scores = RougeScores::compute(&seps, &[1u32, 0, 2], Some(0));
        assert!(scores.rouge_lsum.is_finite());
        assert_eq!(scores.rouge_lsum, 0.0);
        assert_eq!(rouge_lsum(&[1u32, 0, 2], &seps, 0), 0.0);
    }

    #[test]
    fn mean_aggregates() {
        let a = RougeScores {
            rouge1: 1.0,
            rouge2: 0.5,
            rouge_l: 0.4,
            rouge_lsum: 0.2,
        };
        let b = RougeScores::default();
        let m = RougeScores::mean(&[a, b]);
        assert!((m.rouge1 - 0.5).abs() < 1e-12);
        assert!((m.rouge2 - 0.25).abs() < 1e-12);
        assert_eq!(RougeScores::mean(&[]), RougeScores::default());
    }

    #[test]
    fn near_identical_sequences_score_high() {
        // One substitution out of 40 tokens keeps ROUGE-1 ~0.95 — the regime
        // Table I reports for LAD.
        let reference: Vec<u32> = (0..40).collect();
        let mut candidate = reference.clone();
        candidate[20] = 99;
        let scores = RougeScores::compute(&reference, &candidate, None);
        assert!(scores.rouge1 > 0.95);
        assert!(scores.rouge_l > 0.95);
    }
}
