//! Evaluation tooling for the LAD reproduction.
//!
//! * [`rouge`] — ROUGE-1/2/L/Lsum over token sequences (paper Table I).
//! * [`quality`] — perplexity, multiple-choice accuracy and generation
//!   fidelity harnesses (paper Tables I and II).
//! * [`precision`] — quality-per-byte scorecards for the reduced-precision
//!   decode paths (fp16 KV arenas, int8 projection weights).
//! * [`backends`] — quality-per-byte-**moved** scorecards for the sparse
//!   attention backend zoo (exact, LAD, top-k, H2O) from the per-step
//!   traffic counters.
//! * [`datasets`] — seeded synthetic prompt sets and corpora shaped after the
//!   paper's benchmark suites (alpaca/gsm8k/mmlu, wikitext2/openbookQA/
//!   lambada) — see `DESIGN.md` for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use lad_eval::rouge::RougeScores;
//!
//! let reference = vec![1u32, 2, 3, 4, 5, 6];
//! let mut candidate = reference.clone();
//! candidate[3] = 9;
//! let scores = RougeScores::compute(&reference, &candidate, None);
//! assert!(scores.rouge1 > 0.8);
//! ```

pub mod backends;
pub mod datasets;
pub mod precision;
pub mod quality;
pub mod report;
pub mod rouge;

pub use backends::{backend_quality_report, backend_zoo, BackendQualityRow};
pub use datasets::{ChoiceTask, PromptSet, TokenSampler};
pub use precision::{precision_quality_report, PrecisionVariant};
pub use quality::{choice_accuracy, generation_fidelity, mean_nll, perplexity};
pub use report::Table;
pub use rouge::RougeScores;
