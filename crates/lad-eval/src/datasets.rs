//! Seeded synthetic datasets shaped after the paper's benchmark suites.
//!
//! Real alpaca/gsm8k/mmlu prompts and wikitext2/openbookQA/lambada corpora
//! are unavailable offline; these generators produce token streams with the
//! same *roles* (prompt sets for generation-fidelity ROUGE, corpora for
//! perplexity, multiple-choice tasks for accuracy) and dataset-shaped length
//! distributions. The evaluation logic is unchanged — see `DESIGN.md`.
//!
//! Token streams come from a Zipfian unigram distribution blended with local
//! repetition (a cheap stand-in for natural-language statistics), always from
//! a fixed seed so experiments are reproducible.

use lad_math::Rng;
use serde::{Deserialize, Serialize};

/// The sentence-separator token used by ROUGE-Lsum.
pub const SEPARATOR_TOKEN: u32 = 0;

/// A generation benchmark: prompts plus the generation length to use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PromptSet {
    /// Dataset name (paper benchmark it is shaped after).
    pub name: String,
    /// The prompts.
    pub prompts: Vec<Vec<u32>>,
    /// Number of tokens to generate per prompt.
    pub gen_len: usize,
}

/// A multiple-choice task (openbookQA-shaped).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChoiceTask {
    /// Context tokens.
    pub prompt: Vec<u32>,
    /// Candidate continuations.
    pub options: Vec<Vec<u32>>,
    /// Index of the correct option.
    pub answer: usize,
}

/// Zipf-with-repetition token sampler.
#[derive(Debug, Clone)]
pub struct TokenSampler {
    rng: Rng,
    vocab: u32,
    weights: Vec<f64>,
    history: Vec<u32>,
}

impl TokenSampler {
    /// Creates a sampler over `[1, vocab)` (token 0 is the separator).
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 8`.
    pub fn new(vocab: u32, seed: u64) -> TokenSampler {
        assert!(vocab >= 8, "TokenSampler: vocab too small");
        let weights = (1..vocab)
            .map(|k| 1.0 / f64::from(k + 1).powf(1.1))
            .collect();
        TokenSampler {
            rng: Rng::new(seed),
            vocab,
            weights,
            history: Vec::new(),
        }
    }

    /// Draws the next token: 20 % chance of repeating a recent token (local
    /// coherence), 5 % chance of a separator, otherwise Zipfian.
    pub fn next_token(&mut self) -> u32 {
        let token = if !self.history.is_empty() && self.rng.chance(0.2) {
            let back = self.rng.index(self.history.len().min(16)) + 1;
            self.history[self.history.len() - back]
        } else if self.rng.chance(0.05) {
            SEPARATOR_TOKEN
        } else {
            self.rng.weighted_index(&self.weights) as u32 + 1
        };
        self.history.push(token);
        if self.history.len() > 64 {
            self.history.remove(0);
        }
        debug_assert!(token < self.vocab);
        token
    }

    /// Draws a sequence of `len` tokens.
    pub fn sequence(&mut self, len: usize) -> Vec<u32> {
        (0..len).map(|_| self.next_token()).collect()
    }
}

fn prompt_set(
    name: &str,
    vocab: u32,
    count: usize,
    prompt_range: (usize, usize),
    gen_len: usize,
    seed: u64,
) -> PromptSet {
    let mut sampler = TokenSampler::new(vocab, seed);
    let mut rng = Rng::new(seed ^ 0x5eed);
    let prompts = (0..count)
        .map(|_| {
            let len = prompt_range.0 + rng.index(prompt_range.1 - prompt_range.0 + 1);
            sampler.sequence(len)
        })
        .collect();
    PromptSet {
        name: name.to_string(),
        prompts,
        gen_len,
    }
}

/// Alpaca-shaped: short instruction prompts, medium generations.
pub fn alpaca_shaped(vocab: u32, count: usize, seed: u64) -> PromptSet {
    prompt_set("alpaca", vocab, count, (16, 40), 96, seed)
}

/// GSM8K-shaped: medium word-problem prompts, long chain-of-thought
/// generations.
pub fn gsm8k_shaped(vocab: u32, count: usize, seed: u64) -> PromptSet {
    prompt_set("gsm8k", vocab, count, (40, 80), 160, seed)
}

/// MMLU-shaped: longer question+choices prompts, short generations.
pub fn mmlu_shaped(vocab: u32, count: usize, seed: u64) -> PromptSet {
    prompt_set("mmlu", vocab, count, (60, 100), 48, seed)
}

/// The paper's three generation benchmarks (Table I rows).
pub fn generation_benchmarks(vocab: u32, count: usize, seed: u64) -> Vec<PromptSet> {
    vec![
        alpaca_shaped(vocab, count, seed),
        gsm8k_shaped(vocab, count, seed + 1),
        mmlu_shaped(vocab, count, seed + 2),
    ]
}

/// A wikitext2/lambada-shaped language-modelling corpus for perplexity.
pub fn lm_corpus(name: &str, vocab: u32, len: usize, seed: u64) -> (String, Vec<u32>) {
    let mut sampler = TokenSampler::new(vocab, seed);
    (name.to_string(), sampler.sequence(len))
}

/// openbookQA-shaped multiple-choice tasks. The `answer` labels are supplied
/// by the caller's teacher model (see `lad-eval::quality`), so this only
/// generates prompts and options.
pub fn choice_prompts(
    vocab: u32,
    count: usize,
    options: usize,
    seed: u64,
) -> Vec<(Vec<u32>, Vec<Vec<u32>>)> {
    let mut sampler = TokenSampler::new(vocab, seed);
    let mut rng = Rng::new(seed ^ 0xbeef);
    (0..count)
        .map(|_| {
            let prompt_len = 24 + rng.index(25);
            let prompt = sampler.sequence(prompt_len);
            let opts = (0..options)
                .map(|_| sampler.sequence(6 + rng.index(5)))
                .collect();
            (prompt, opts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_stays_in_vocab() {
        let mut s = TokenSampler::new(64, 1);
        for _ in 0..1000 {
            assert!(s.next_token() < 64);
        }
    }

    #[test]
    fn sampler_is_deterministic() {
        let mut a = TokenSampler::new(128, 7);
        let mut b = TokenSampler::new(128, 7);
        assert_eq!(a.sequence(100), b.sequence(100));
    }

    #[test]
    fn sampler_is_zipfian_headed() {
        // Low token ids must dominate.
        let mut s = TokenSampler::new(256, 3);
        let seq = s.sequence(5000);
        let low = seq.iter().filter(|&&t| t > 0 && t <= 16).count();
        assert!(low > seq.len() / 3, "low-id fraction {low}/5000");
    }

    #[test]
    fn prompt_sets_have_shaped_lengths() {
        let a = alpaca_shaped(256, 10, 1);
        assert_eq!(a.prompts.len(), 10);
        assert!(a.prompts.iter().all(|p| (16..=40).contains(&p.len())));
        let g = gsm8k_shaped(256, 10, 1);
        assert!(g.prompts.iter().all(|p| (40..=80).contains(&p.len())));
        assert!(g.gen_len > a.gen_len);
        let m = mmlu_shaped(256, 10, 1);
        assert!(m.prompts.iter().all(|p| (60..=100).contains(&p.len())));
    }

    #[test]
    fn benchmarks_cover_the_paper_suites() {
        let benches = generation_benchmarks(256, 4, 9);
        let names: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["alpaca", "gsm8k", "mmlu"]);
    }

    #[test]
    fn corpus_and_choice_shapes() {
        let (name, corpus) = lm_corpus("wikitext2", 256, 500, 11);
        assert_eq!(name, "wikitext2");
        assert_eq!(corpus.len(), 500);
        let tasks = choice_prompts(256, 5, 4, 13);
        assert_eq!(tasks.len(), 5);
        assert!(tasks.iter().all(|(_, opts)| opts.len() == 4));
    }

    #[test]
    #[should_panic(expected = "vocab too small")]
    fn tiny_vocab_rejected() {
        TokenSampler::new(4, 0);
    }
}
