//! Model-quality harnesses: perplexity, multiple-choice accuracy and
//! generation fidelity (ROUGE against the original model).
//!
//! These drive the paper's Table I (ROUGE of LAD/Qserve/H2O decodes vs. the
//! original model) and Table II (perplexity / accuracy of each variant).

use crate::datasets::{ChoiceTask, PromptSet, SEPARATOR_TOKEN};
use crate::rouge::RougeScores;
use lad_model::backend::AttentionKind;
use lad_model::transformer::{log_prob, Model, Session};

/// Mean negative log-likelihood of `tokens` under the model with the given
/// attention backend (teacher forcing).
///
/// # Panics
///
/// Panics if `tokens` has fewer than two entries.
pub fn mean_nll(model: &Model, kind: &AttentionKind, tokens: &[u32]) -> f64 {
    assert!(tokens.len() >= 2, "mean_nll: need at least two tokens");
    let mut session = Session::new(model, kind);
    let mut total = 0.0f64;
    let mut count = 0usize;
    for window in tokens.windows(2) {
        let logits = session.step(window[0]);
        total -= log_prob(&logits, window[1]);
        count += 1;
    }
    total / count as f64
}

/// Perplexity = `exp(mean NLL)` — the Table II metric.
pub fn perplexity(model: &Model, kind: &AttentionKind, tokens: &[u32]) -> f64 {
    mean_nll(model, kind, tokens).exp()
}

/// Mean log-probability of `option` as a continuation of `prompt`.
fn option_score(model: &Model, kind: &AttentionKind, prompt: &[u32], option: &[u32]) -> f64 {
    let mut session = Session::new(model, kind);
    let mut logits = session.prefill(prompt);
    let mut total = 0.0f64;
    for &t in option {
        total += log_prob(&logits, t);
        logits = session.step(t);
    }
    total / option.len().max(1) as f64
}

/// Labels multiple-choice prompts with a *teacher* model: the correct answer
/// is the option the teacher scores highest. This substitutes for real
/// labelled datasets (see `DESIGN.md`) — the student models (original and its
/// LAD/Qserve/H2O variants) are then evaluated against the same labels, so
/// any drift from the original model shows up as lost accuracy.
pub fn label_choice_tasks(
    teacher: &Model,
    prompts: Vec<(Vec<u32>, Vec<Vec<u32>>)>,
) -> Vec<ChoiceTask> {
    prompts
        .into_iter()
        .map(|(prompt, options)| {
            let answer = best_option(teacher, &AttentionKind::Exact, &prompt, &options);
            ChoiceTask {
                prompt,
                options,
                answer,
            }
        })
        .collect()
}

fn best_option(model: &Model, kind: &AttentionKind, prompt: &[u32], options: &[Vec<u32>]) -> usize {
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (i, option) in options.iter().enumerate() {
        let score = option_score(model, kind, prompt, option);
        if score > best_score {
            best_score = score;
            best = i;
        }
    }
    best
}

/// Fraction of tasks where the model (under `kind`) picks the labelled
/// answer — the Table II accuracy metric.
pub fn choice_accuracy(model: &Model, kind: &AttentionKind, tasks: &[ChoiceTask]) -> f64 {
    if tasks.is_empty() {
        return 0.0;
    }
    let correct = tasks
        .iter()
        .filter(|t| best_option(model, kind, &t.prompt, &t.options) == t.answer)
        .count();
    correct as f64 / tasks.len() as f64
}

/// Greedy-decodes every prompt under both the original model and the variant
/// `kind`, returning the mean ROUGE of variant-vs-original — one Table I
/// cell.
pub fn generation_fidelity(model: &Model, kind: &AttentionKind, bench: &PromptSet) -> RougeScores {
    let mut scores = Vec::with_capacity(bench.prompts.len());
    for prompt in &bench.prompts {
        let mut original = Session::new(model, &AttentionKind::Exact);
        let reference = original.generate_greedy(prompt, bench.gen_len);
        let mut variant = Session::new(model, kind);
        let candidate = variant.generate_greedy(prompt, bench.gen_len);
        scores.push(RougeScores::compute(
            &reference,
            &candidate,
            Some(SEPARATOR_TOKEN),
        ));
    }
    RougeScores::mean(&scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use lad_core::decoder::LadConfig;
    use lad_model::config::ModelConfig;

    fn tiny_model() -> Model {
        Model::random(ModelConfig::tiny("eval-test", 2, 32, 2), 21)
    }

    #[test]
    fn perplexity_is_finite_and_consistent() {
        let model = tiny_model();
        let (_, corpus) = datasets::lm_corpus("test", 256, 60, 5);
        let ppl_exact = perplexity(&model, &AttentionKind::Exact, &corpus);
        assert!(ppl_exact.is_finite() && ppl_exact > 1.0);
        // Deterministic.
        assert_eq!(
            ppl_exact,
            perplexity(&model, &AttentionKind::Exact, &corpus)
        );
    }

    #[test]
    fn lad_perplexity_close_to_original() {
        // Table II: original and LAD perplexities agree to ~0.01.
        let model = tiny_model();
        let (_, corpus) = datasets::lm_corpus("test", 256, 60, 6);
        let exact = perplexity(&model, &AttentionKind::Exact, &corpus);
        let lad = perplexity(&model, &AttentionKind::Lad(LadConfig::default()), &corpus);
        let rel = (lad - exact).abs() / exact;
        assert!(rel < 0.02, "exact {exact} vs lad {lad}");
    }

    #[test]
    fn fidelity_of_exact_is_perfect() {
        let model = tiny_model();
        let bench = datasets::PromptSet {
            name: "self".to_string(),
            prompts: vec![vec![1, 2, 3], vec![7, 8]],
            gen_len: 12,
        };
        let scores = generation_fidelity(&model, &AttentionKind::Exact, &bench);
        assert_eq!(scores.rouge1, 1.0);
        assert_eq!(scores.rouge_lsum, 1.0);
    }

    #[test]
    fn lad_fidelity_beats_h2o() {
        // The Table I headline: LAD tracks the original far better than H2O.
        let model = tiny_model();
        let bench = datasets::PromptSet {
            name: "cmp".to_string(),
            prompts: vec![vec![3, 1, 4, 1, 5], vec![2, 7, 1, 8]],
            gen_len: 48,
        };
        let lad = generation_fidelity(&model, &AttentionKind::Lad(LadConfig::default()), &bench);
        let h2o = generation_fidelity(&model, &AttentionKind::h2o_default(), &bench);
        assert!(
            lad.rouge1 >= h2o.rouge1,
            "lad {} vs h2o {}",
            lad.rouge1,
            h2o.rouge1
        );
        assert!(lad.rouge1 > 0.8, "lad rouge1 {}", lad.rouge1);
    }

    #[test]
    fn teacher_labels_and_accuracy() {
        let teacher = Model::random(ModelConfig::tiny("teacher", 2, 32, 2), 99);
        let student = tiny_model();
        let tasks = label_choice_tasks(&teacher, datasets::choice_prompts(256, 6, 3, 17));
        assert_eq!(tasks.len(), 6);
        assert!(tasks.iter().all(|t| t.answer < 3));
        // Teacher gets 100% on its own labels.
        assert_eq!(
            choice_accuracy(&teacher, &AttentionKind::Exact, &tasks),
            1.0
        );
        // A different student lands somewhere in [0, 1].
        let acc = choice_accuracy(&student, &AttentionKind::Exact, &tasks);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    #[should_panic(expected = "at least two tokens")]
    fn nll_needs_tokens() {
        mean_nll(&tiny_model(), &AttentionKind::Exact, &[1]);
    }
}
