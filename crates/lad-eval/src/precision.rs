//! Quality-per-byte harness for the reduced-precision decode paths.
//!
//! The SIMD/f16/int8 kernel work trades exactness for bandwidth: fp16 KV
//! arenas halve cache traffic and int8 weights quarter projection traffic,
//! both within documented error bounds. This module measures what that buys —
//! greedy-decode agreement with the exact f32 path per byte of weight + KV
//! state streamed — so a precision configuration that loses quality faster
//! than it sheds bytes fails review.

use crate::datasets::PromptSet;
use lad_model::backend::AttentionKind;
use lad_model::transformer::{Model, Session};

/// One precision configuration's scorecard from
/// [`precision_quality_report`].
#[derive(Debug, Clone)]
pub struct PrecisionVariant {
    /// Human-readable configuration name.
    pub name: &'static str,
    /// Fraction of greedy-decoded tokens (over all prompts and positions)
    /// identical to the exact-f32 reference decode.
    pub agreement: f64,
    /// Projection-weight bytes one decode step streams
    /// ([`Model::projection_weight_bytes`]).
    pub weight_bytes: usize,
    /// KV arena bytes held after decoding the full prompt set
    /// ([`Session::kv_bytes`], summed over prompts).
    pub kv_bytes: usize,
}

impl PrecisionVariant {
    /// Agreement per megabyte of streamed state (weights + KV). Higher is
    /// better; the reduced-precision paths must not fall below the exact
    /// path here, otherwise the bytes saved are not paying for the quality
    /// lost.
    pub fn quality_per_mbyte(&self) -> f64 {
        self.agreement / ((self.weight_bytes + self.kv_bytes) as f64 / 1e6)
    }
}

/// Greedy-decodes `bench` under `kind`, returning per-token agreement with
/// `reference` decodes plus the KV bytes the sessions held at the end.
fn decode_agreement(
    model: &Model,
    kind: &AttentionKind,
    bench: &PromptSet,
    reference: &[Vec<u32>],
) -> (f64, usize) {
    let mut matches = 0usize;
    let mut total = 0usize;
    let mut kv_bytes = 0usize;
    for (prompt, reference) in bench.prompts.iter().zip(reference) {
        let mut session = Session::new(model, kind);
        let candidate = session.generate_greedy(prompt, bench.gen_len);
        kv_bytes += session.kv_bytes();
        total += reference.len();
        matches += candidate
            .iter()
            .zip(reference)
            .filter(|(c, r)| c == r)
            .count();
    }
    (matches as f64 / total.max(1) as f64, kv_bytes)
}

/// Scores the four precision configurations of the decode path — exact f32,
/// fp16 KV, int8 projection weights, and both reductions combined — on
/// greedy-decode agreement against the exact path over `bench`.
///
/// The returned variants are ordered exact, f16-kv, int8-weights,
/// int8+f16-kv. The exact variant's agreement is 1.0 by construction (it is
/// its own reference), so its [`PrecisionVariant::quality_per_mbyte`] is the
/// bar the reduced-precision variants are judged against.
pub fn precision_quality_report(model: &Model, bench: &PromptSet) -> Vec<PrecisionVariant> {
    let reference: Vec<Vec<u32>> = bench
        .prompts
        .iter()
        .map(|prompt| {
            Session::new(model, &AttentionKind::Exact).generate_greedy(prompt, bench.gen_len)
        })
        .collect();

    let mut quantized = model.clone();
    quantized.quantize_int8_weights();

    let configs: [(&'static str, &Model, AttentionKind); 4] = [
        ("exact-f32", model, AttentionKind::Exact),
        ("f16-kv", model, AttentionKind::ExactF16),
        ("int8-weights", &quantized, AttentionKind::Exact),
        ("int8+f16-kv", &quantized, AttentionKind::ExactF16),
    ];
    configs
        .into_iter()
        .map(|(name, m, kind)| {
            let (agreement, kv_bytes) = decode_agreement(m, &kind, bench, &reference);
            PrecisionVariant {
                name,
                agreement,
                weight_bytes: m.projection_weight_bytes(),
                kv_bytes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_model::config::ModelConfig;

    fn bench() -> PromptSet {
        PromptSet {
            name: "precision".to_string(),
            prompts: vec![vec![3, 1, 4, 1, 5], vec![2, 7, 1, 8], vec![11, 9, 6]],
            gen_len: 32,
        }
    }

    #[test]
    fn reduced_precision_keeps_quality_per_byte() {
        let model = Model::random(ModelConfig::tiny("precision", 2, 32, 2), 41);
        let report = precision_quality_report(&model, &bench());
        assert_eq!(report.len(), 4);
        let exact = &report[0];
        assert_eq!(exact.name, "exact-f32");
        assert_eq!(exact.agreement, 1.0);
        for variant in &report[1..] {
            // Bounded-error paths may flip a near-tie argmax but must track
            // the exact decode closely...
            assert!(
                variant.agreement >= 0.9,
                "{}: agreement {}",
                variant.name,
                variant.agreement
            );
            // ...while streaming strictly fewer bytes, so quality-per-byte
            // must come out ahead of the exact path.
            assert!(
                variant.weight_bytes + variant.kv_bytes < exact.weight_bytes + exact.kv_bytes,
                "{}: bytes did not shrink",
                variant.name
            );
            assert!(
                variant.quality_per_mbyte() > exact.quality_per_mbyte(),
                "{}: {} vs exact {}",
                variant.name,
                variant.quality_per_mbyte(),
                exact.quality_per_mbyte()
            );
        }
        // The halved-KV and quartered-weight variants shave the bytes they
        // claim: fp16 KV halves kv_bytes, int8 cuts projection weight bytes.
        assert_eq!(report[1].kv_bytes * 2, exact.kv_bytes);
        assert!(report[2].weight_bytes < exact.weight_bytes);
        assert_eq!(report[3].kv_bytes, report[1].kv_bytes);
        assert_eq!(report[3].weight_bytes, report[2].weight_bytes);
    }

    #[test]
    fn quality_per_mbyte_is_agreement_over_megabytes() {
        let v = PrecisionVariant {
            name: "unit",
            agreement: 0.5,
            weight_bytes: 1_000_000,
            kv_bytes: 1_000_000,
        };
        assert!((v.quality_per_mbyte() - 0.25).abs() < 1e-12);
    }
}
