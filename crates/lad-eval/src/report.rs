//! Experiment result tables with CSV and Markdown export.
//!
//! The bench harness prints human-readable tables; downstream analysis wants
//! machine-readable artefacts. [`Table`] is a small dependency-free tabular
//! container with RFC-4180 CSV escaping and GitHub-flavoured Markdown
//! rendering.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A named table of experiment results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(name: &str, headers: &[&str]) -> Table {
        assert!(!headers.is_empty(), "Table: need at least one column");
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header count.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "Table::push_row: width mismatch"
        );
        self.rows.push(row);
    }

    fn csv_escape(cell: &str) -> String {
        if cell.contains([',', '"', '\n', '\r']) {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }

    /// Renders RFC-4180 CSV (header row first, CRLF-free line endings).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let render = |cells: &[String]| {
            cells
                .iter()
                .map(|c| Table::csv_escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(out, "{}", render(&self.headers));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render(row));
        }
        out
    }

    /// Renders a GitHub-flavoured Markdown table (pipes in cells escaped).
    pub fn to_markdown(&self) -> String {
        let escape = |cell: &str| cell.replace('|', "\\|");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| {} |",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter()
                    .map(|c| escape(c))
                    .collect::<Vec<_>>()
                    .join(" | ")
            );
        }
        out
    }

    /// Writes the CSV rendering to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("fig7", &["platform", "speedup"]);
        t.push_row(vec!["vLLM", "1.0"]);
        t.push_row(vec!["LAD-3.5", "10.2"]);
        t
    }

    #[test]
    fn csv_round_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["platform,speedup", "vLLM,1.0", "LAD-3.5,10.2"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("esc", &["a", "b"]);
        t.push_row(vec!["has,comma", "has \"quote\""]);
        t.push_row(vec!["has\nnewline", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has \"\"quote\"\"\""));
        assert!(csv.contains("\"has\nnewline\""));
    }

    #[test]
    fn markdown_shape_and_escaping() {
        let mut t = Table::new("md", &["col"]);
        t.push_row(vec!["a|b"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| col |");
        assert_eq!(lines[1], "|---|");
        assert_eq!(lines[2], "| a\\|b |");
    }

    #[test]
    fn write_csv_to_disk() {
        let dir = std::env::temp_dir().join("lad-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        sample().write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("platform,speedup"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.name(), "fig7");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        sample().push_row(vec!["only-one"]);
    }
}
