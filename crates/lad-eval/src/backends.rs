//! Quality-per-byte-moved harness for the sparse-attention backend zoo.
//!
//! Where [`crate::precision`] compares *representations* (f32 vs f16 KV, f32
//! vs int8 weights) on bytes *held*, this module compares *attention
//! policies* — exact, LAD, top-k selection, H2O eviction — on bytes
//! **moved**: the KV traffic the backend actually streams per decode,
//! straight from the [`StepStats`] traffic counters every backend reports
//! (and which `tests/differential.rs` pins to a thread-local byte meter).
//! Each backend's greedy-decode agreement with the exact reference is
//! divided by the megabytes of KV state it read, so a sparsity knob that
//! loses quality faster than it sheds traffic fails review.

use crate::datasets::PromptSet;
use lad_core::decoder::LadConfig;
use lad_core::stats::{StatsSummary, StepStats};
use lad_model::backend::AttentionKind;
use lad_model::transformer::{argmax, Model, Session};

/// One (backend, prompt set) cell of the sweep from
/// [`backend_quality_report`].
#[derive(Debug, Clone)]
pub struct BackendQualityRow {
    /// Backend label, e.g. `"topk-8"` or `"h2o-16+8"`.
    pub backend: String,
    /// Name of the prompt set the cell was decoded on.
    pub dataset: String,
    /// Tokens greedily generated per prompt (the sequence-length axis).
    pub gen_len: usize,
    /// Fraction of generated tokens identical to the exact-attention
    /// reference decode of the same prompt set.
    pub agreement: f64,
    /// KV bytes the backend streamed over every prefill + decode step,
    /// summed across prompts ([`StepStats::bytes_moved`]).
    pub bytes_moved: usize,
    /// Entries the backend evicted ([`StepStats::evictions`]; zero for the
    /// non-evicting backends).
    pub evictions: usize,
}

impl BackendQualityRow {
    /// Agreement per megabyte of KV state streamed — the figure of merit of
    /// the backend comparison. A sparse backend earns its keep only by
    /// scoring higher here than exact attention on the same prompt set.
    pub fn quality_per_mbyte_moved(&self) -> f64 {
        self.agreement / (self.bytes_moved as f64 / 1e6)
    }
}

/// The standard backend roster of the sweep: exact attention, LAD at its
/// default configuration, top-k at three selection budgets, and H2O at
/// three retention budgets (heavy-hitter budget + recency window). The
/// three budgets per sparse family are the byte-budget axis of the report.
pub fn backend_zoo() -> Vec<(String, AttentionKind)> {
    vec![
        ("exact".to_string(), AttentionKind::Exact),
        ("lad".to_string(), AttentionKind::Lad(LadConfig::default())),
        ("topk-4".to_string(), AttentionKind::topk(4)),
        ("topk-8".to_string(), AttentionKind::topk(8)),
        ("topk-16".to_string(), AttentionKind::topk(16)),
        ("h2o-8+4".to_string(), AttentionKind::h2o_budget(8, 4)),
        ("h2o-16+8".to_string(), AttentionKind::h2o_budget(16, 8)),
        ("h2o-32+8".to_string(), AttentionKind::h2o_budget(32, 8)),
    ]
}

/// Greedy-decodes `prompt` for `gen_len` tokens under `kind`, accumulating
/// the per-step traffic counters of every (layer, head) along the way.
fn decode_with_traffic(
    model: &Model,
    kind: &AttentionKind,
    prompt: &[u32],
    gen_len: usize,
) -> (Vec<u32>, StatsSummary) {
    let mut session = Session::new(model, kind);
    let mut steps: Vec<StepStats> = Vec::new();
    let mut logits = Vec::new();
    for &t in prompt {
        logits = session.step(t);
        steps.extend(session.last_stats().iter().copied());
    }
    let mut out = Vec::with_capacity(gen_len);
    for _ in 0..gen_len {
        let next = argmax(&logits);
        out.push(next);
        logits = session.step(next);
        steps.extend(session.last_stats().iter().copied());
    }
    (out, StatsSummary::from_steps(steps.iter()))
}

/// Scores every backend in `kinds` on every prompt set in `benches`:
/// greedy-decode agreement against a fresh exact-attention reference of the
/// same prompt set, plus the KV traffic and evictions the backend's steps
/// reported. Rows are ordered bench-major, preserving both input orders;
/// an `"exact"`-labelled row scores agreement 1.0 by construction.
///
/// Vary `PromptSet::gen_len` across `benches` entries to sweep the
/// sequence-length axis, and the k / budget knobs across `kinds` to sweep
/// the byte-budget axis.
pub fn backend_quality_report(
    model: &Model,
    benches: &[PromptSet],
    kinds: &[(String, AttentionKind)],
) -> Vec<BackendQualityRow> {
    let mut rows = Vec::with_capacity(benches.len() * kinds.len());
    for bench in benches {
        let reference: Vec<Vec<u32>> = bench
            .prompts
            .iter()
            .map(|prompt| {
                Session::new(model, &AttentionKind::Exact).generate_greedy(prompt, bench.gen_len)
            })
            .collect();
        for (label, kind) in kinds {
            let mut matches = 0usize;
            let mut total = 0usize;
            let mut bytes_moved = 0usize;
            let mut evictions = 0usize;
            for (prompt, reference) in bench.prompts.iter().zip(&reference) {
                let (candidate, summary) = decode_with_traffic(model, kind, prompt, bench.gen_len);
                total += reference.len();
                matches += candidate
                    .iter()
                    .zip(reference)
                    .filter(|(c, r)| c == r)
                    .count();
                bytes_moved += summary.total_bytes_moved;
                evictions += summary.total_evictions;
            }
            rows.push(BackendQualityRow {
                backend: label.clone(),
                dataset: bench.name.clone(),
                gen_len: bench.gen_len,
                agreement: matches as f64 / total.max(1) as f64,
                bytes_moved,
                evictions,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_model::config::ModelConfig;

    fn bench(gen_len: usize) -> PromptSet {
        PromptSet {
            name: "zoo".to_string(),
            prompts: vec![vec![3, 1, 4, 1, 5], vec![2, 7, 1, 8]],
            gen_len,
        }
    }

    #[test]
    fn exact_row_is_its_own_reference() {
        let model = Model::random(ModelConfig::tiny("zoo", 2, 32, 2), 17);
        let kinds = vec![("exact".to_string(), AttentionKind::Exact)];
        let rows = backend_quality_report(&model, &[bench(16)], &kinds);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].agreement, 1.0);
        assert_eq!(rows[0].evictions, 0);
        assert!(rows[0].bytes_moved > 0);
    }

    #[test]
    fn unconstrained_topk_agrees_exactly_and_h2o_moves_fewer_bytes() {
        let model = Model::random(ModelConfig::tiny("zoo", 2, 32, 2), 17);
        let kinds = vec![
            ("exact".to_string(), AttentionKind::Exact),
            // k beyond the longest sequence: selection never bites.
            ("topk-big".to_string(), AttentionKind::topk(64)),
            ("topk-4".to_string(), AttentionKind::topk(4)),
            ("h2o-6+2".to_string(), AttentionKind::h2o_budget(6, 2)),
        ];
        let rows = backend_quality_report(&model, &[bench(24)], &kinds);
        let exact = &rows[0];
        assert_eq!(rows[1].agreement, 1.0, "k >= n must reproduce exact");
        // Top-k still scores every key but reads only k values; H2O evicts,
        // shrinking both sides. Either way the sparse rows move fewer bytes.
        assert!(rows[2].bytes_moved < exact.bytes_moved);
        assert!(rows[3].bytes_moved < exact.bytes_moved);
        assert!(rows[3].evictions > 0, "h2o over budget must evict");
        assert_eq!(exact.evictions, 0);
    }

    #[test]
    fn rows_are_bench_major_with_gen_len_recorded() {
        let model = Model::random(ModelConfig::tiny("zoo", 1, 16, 2), 3);
        let kinds = vec![
            ("exact".to_string(), AttentionKind::Exact),
            ("topk-4".to_string(), AttentionKind::topk(4)),
        ];
        let benches = [bench(8), bench(16)];
        let rows = backend_quality_report(&model, &benches, &kinds);
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows.iter().map(|r| r.gen_len).collect::<Vec<_>>(),
            vec![8, 8, 16, 16]
        );
        assert_eq!(rows[0].backend, "exact");
        assert_eq!(rows[1].backend, "topk-4");
    }

    #[test]
    fn quality_per_mbyte_moved_is_agreement_over_megabytes() {
        let row = BackendQualityRow {
            backend: "unit".to_string(),
            dataset: "unit".to_string(),
            gen_len: 1,
            agreement: 0.5,
            bytes_moved: 2_000_000,
            evictions: 0,
        };
        assert!((row.quality_per_mbyte_moved() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zoo_covers_the_three_budget_families() {
        let zoo = backend_zoo();
        assert_eq!(zoo.len(), 8);
        assert_eq!(zoo[0].0, "exact");
        assert_eq!(
            zoo.iter().filter(|(n, _)| n.starts_with("topk-")).count(),
            3
        );
        assert_eq!(zoo.iter().filter(|(n, _)| n.starts_with("h2o-")).count(), 3);
    }
}
