//! Shared helpers for the experiment harness.
//!
//! Every paper table and figure has a bench target (`harness = false`) in
//! `benches/` that prints the corresponding rows/series. This library holds
//! the common pieces: the KV-length sweep grid, the model list, plain-text
//! table rendering and geometric-mean summaries.

use lad_accel::workload::workload_stats;
use lad_core::stats::StatsSummary;
use lad_math::stats;
use lad_model::config::ModelConfig;

/// KV-cache lengths of "group 1" (512–2048, paper Sec. V-C).
pub const GROUP1: [usize; 3] = [512, 1024, 2048];

/// KV-cache lengths of "group 2" (2560–4096).
pub const GROUP2: [usize; 3] = [2560, 3072, 4096];

/// The full sweep grid.
pub fn kv_lengths() -> Vec<usize> {
    GROUP1.iter().chain(GROUP2.iter()).copied().collect()
}

/// The paper's four evaluation models.
pub fn paper_models() -> Vec<ModelConfig> {
    ModelConfig::paper_models()
}

/// One point of the performance sweep: a model at a KV length, with the
/// calibrated workload statistics.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Model preset.
    pub model: ModelConfig,
    /// KV-cache length.
    pub n: usize,
    /// Calibrated LAD execution statistics at `n`.
    pub stats: StatsSummary,
}

impl SweepPoint {
    /// `true` if this point belongs to group 2 (KV length ≥ 2560).
    pub fn is_group2(&self) -> bool {
        self.n >= 2560
    }
}

/// The full model × KV-length grid (points beyond a model's maximum
/// sequence length are skipped, as in the paper).
pub fn sweep_points() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for model in paper_models() {
        for n in kv_lengths() {
            if n <= model.max_seq {
                points.push(SweepPoint {
                    stats: workload_stats(n, 0x1ad),
                    model: model.clone(),
                    n,
                });
            }
        }
    }
    points
}

/// Prints a titled separator.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Renders a plain-text table with right-aligned numeric columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "table row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |sep: &str, cells: Vec<String>| {
        let body: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("{}", body.join(sep));
    };
    line(" | ", headers.iter().map(|s| s.to_string()).collect());
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-")
    );
    for row in rows {
        line(" | ", row.clone());
    }
}

/// Geometric mean of a ratio series, skipping non-finite entries.
pub fn geomean(values: &[f64]) -> f64 {
    let clean: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if clean.is_empty() {
        return f64::NAN;
    }
    stats::geomean(&clean)
}

/// Formats a ratio like "10.7x".
pub fn ratio(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}x")
    } else {
        "NA".to_string()
    }
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_grid_covers_both_groups() {
        let grid = kv_lengths();
        assert_eq!(grid.len(), 6);
        assert_eq!(grid[0], 512);
        assert_eq!(*grid.last().unwrap(), 4096);
    }

    #[test]
    fn geomean_skips_bad_values() {
        assert!((geomean(&[2.0, 8.0, f64::NAN]) - 4.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn formatting() {
        assert_eq!(ratio(10.66), "10.7x");
        assert_eq!(ratio(f64::NAN), "NA");
        assert_eq!(pct(0.425), "42.5%");
    }
}
