//! Bench regression gate: `cargo run -p lad-bench --bin bench_check`.
//!
//! Reads the committed `BENCH_*.json` baselines at the repo root, validates
//! their schemas, then re-runs the gated measurements in quick mode and
//! fails — nonzero exit — if either measured ratio falls below its
//! acceptance floor:
//!
//! * the `gemm_batch` batch-8 per-sample vs batched-GEMM per-token speedup
//!   (floor 1.3x);
//! * the `serve_goodput` continuous vs fixed-batch goodput ratio at an
//!   equal batch budget (floor 1.0x — continuous batching must never lose);
//! * the `spec_decode` draft/verify vs plain-decode speedup at the best
//!   draft depth (floor 1.0x — speculation must never lose), with mean
//!   accepted length > 1.0 (the verifier must accept real draft tokens,
//!   not just the bonus token);
//! * the `gemm_kernels` microkernel ratios: SIMD f32 GEMM at least 1.5x the
//!   scalar microkernel on the MLP shape (and bit-identical to it), and the
//!   fp16 KV score read at least 1.2x the f32 read. Skipped (with a notice)
//!   on hosts without AVX2+F16C, where only the committed numbers are
//!   checked;
//! * the `obs_overhead` enabled-recorder cost: serving steps/s with spans,
//!   metrics and the request timeline all recording may run at most 5%
//!   behind the recorders-off run of the identical workload;
//! * the `backend_quality` quality-per-byte-moved ratios of the sparse
//!   backend zoo: on every (dataset, length) cell the best non-exact
//!   backend holds 0.95x of exact attention's agreement per KV megabyte
//!   moved, and somewhere in the sweep a sparse backend beats exact by
//!   1.2x. This gate is fully deterministic (traffic counters, not timers),
//!   so the quick re-measurement runs one small cell in-process and must
//!   reproduce the effect exactly.
//!
//! Additionally, every `BENCH_*.json` at the repo root must be one this
//! binary knows how to gate — a new committed baseline without a matching
//! gate here fails the run.
//!
//! The gates compare **ratios, not absolute times**: both sides of each
//! comparison run in the same process on the same machine back to back, so
//! CI noise that slows the box slows both sides and cancels out. That is
//! what makes these non-flaky smokes — large effects gated at loose floors,
//! measured as ratios.

use lad_accel::paged::{BlockPool, BLOCK_TOKENS};
use lad_bench::section;
use lad_core::decoder::LadConfig;
use lad_core::kv::{KvCache, KvPrecision};
use lad_eval::backends::backend_quality_report;
use lad_eval::datasets::alpaca_shaped;
use lad_math::gemm::{gemm_bt_into, GemmScratch};
use lad_math::{with_kernel, Kernel, Rng};
use lad_model::backend::AttentionKind;
use lad_model::batch::{decode_batch, decode_batch_gemm};
use lad_model::config::ModelConfig;
use lad_model::spec::{decode_speculative, SpecConfig};
use lad_model::transformer::Model;
use lad_obs::json::{self, Value};
use lad_serve::baseline::serve_fixed_batches;
use lad_serve::{Engine, Request, ServeConfig, ServeReport};
use std::time::Instant;

/// Acceptance floor the `gemm_batch` bench commits to (batch-8 exact).
const SPEEDUP_FLOOR: f64 = 1.3;

/// Acceptance floor the `serve_goodput` bench commits to: continuous
/// batching must deliver at least the fixed-batch baseline's goodput.
const GOODPUT_FLOOR: f64 = 1.0;

/// Acceptance floor the `spec_decode` bench commits to: at its best draft
/// depth, speculative decoding must at least match plain decoding.
const SPEC_FLOOR: f64 = 1.0;

/// Acceptance floor of the `gemm_kernels` SIMD f32 GEMM row (vs scalar).
const SIMD_GEMM_FLOOR: f64 = 1.5;

/// Acceptance floor of the `gemm_kernels` fp16 KV score read row (vs f32).
const F16_READ_FLOOR: f64 = 1.2;

/// Ceiling on the enabled-recorder serving overhead (percent) committed
/// by the `obs_overhead` bench.
const OBS_OVERHEAD_CEILING_PCT: f64 = 5.0;

/// Per-cell floor of the `backend_quality` bench: the best non-exact
/// backend must stay within 5% of exact attention on quality per megabyte
/// of KV traffic.
const BACKEND_QPB_FLOOR: f64 = 0.95;

/// Sweep-wide floor of the `backend_quality` bench: somewhere a sparse
/// backend must beat exact attention outright on quality per byte moved.
const BACKEND_HERO_FLOOR: f64 = 1.2;

/// Every committed baseline this binary gates. Any other `BENCH_*.json` at
/// the repo root is a baseline without a floor, and fails the run.
const KNOWN_BASELINES: [&str; 7] = [
    "BENCH_gemm.json",
    "BENCH_pool.json",
    "BENCH_serve.json",
    "BENCH_spec.json",
    "BENCH_kernels.json",
    "BENCH_backends.json",
    "BENCH_obs.json",
];

/// Quick-mode decode length: half the committed run, same prompt length.
/// Only the ratio matters, so the shorter run does not move the gate.
const PROMPT_LEN: usize = 32;
const STEPS: usize = 16;
const BATCH: usize = 8;

fn fail(msg: &str) -> ! {
    eprintln!("bench_check: FAIL: {msg}");
    std::process::exit(1);
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn load(name: &str) -> Value {
    let path = repo_root().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    json::parse(&text).unwrap_or_else(|e| fail(&format!("{name}: {e}")))
}

/// Requires `doc` to carry the common baseline envelope plus, per result
/// row, every field in `required` with a numeric value. Returns the rows.
fn check_schema<'a>(name: &str, doc: &'a Value, required: &[&str]) -> &'a [Value] {
    for field in ["bench", "model"] {
        if doc.get(field).and_then(Value::as_str).is_none() {
            fail(&format!("{name}: missing string field '{field}'"));
        }
    }
    if doc.get("host_cores").and_then(Value::as_u64).is_none() {
        fail(&format!("{name}: missing numeric field 'host_cores'"));
    }
    let results = doc
        .get("results")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(&format!("{name}: missing results array")));
    if results.is_empty() {
        fail(&format!("{name}: empty results array"));
    }
    for (i, row) in results.iter().enumerate() {
        if row.get("kind").and_then(Value::as_str).is_none() {
            fail(&format!("{name}: results[{i}]: missing string 'kind'"));
        }
        for field in required {
            match row.get(field).and_then(Value::as_f64) {
                Some(v) if v.is_finite() => {}
                _ => fail(&format!(
                    "{name}: results[{i}]: missing/invalid numeric '{field}'"
                )),
            }
        }
    }
    results
}

/// The committed batch-8 exact speedup from `BENCH_gemm.json`.
fn recorded_speedup(results: &[Value]) -> f64 {
    let row = results
        .iter()
        .find(|r| {
            r.get("kind").and_then(Value::as_str) == Some("exact")
                && r.get("batch").and_then(Value::as_u64) == Some(BATCH as u64)
        })
        .unwrap_or_else(|| fail("BENCH_gemm.json: no exact batch-8 row"));
    row.get("speedup")
        .and_then(Value::as_f64)
        .expect("validated above")
}

/// The committed continuous-vs-fixed goodput ratio from `BENCH_serve.json`.
fn recorded_goodput_ratio(results: &[Value]) -> f64 {
    let row = results
        .iter()
        .find(|r| r.get("kind").and_then(Value::as_str) == Some("continuous"))
        .unwrap_or_else(|| fail("BENCH_serve.json: no continuous row"));
    row.get("goodput_ratio_vs_fixed")
        .and_then(Value::as_f64)
        .expect("validated above")
}

/// The committed enabled-recorder overhead (percent, with its ceiling)
/// from `BENCH_obs.json`.
fn recorded_obs_overhead(results: &[Value]) -> (f64, f64) {
    let row = results
        .iter()
        .find(|r| r.get("kind").and_then(Value::as_str) == Some("recorder_on"))
        .unwrap_or_else(|| fail("BENCH_obs.json: no recorder_on row"));
    let overhead = row
        .get("overhead_pct")
        .and_then(Value::as_f64)
        .expect("validated above");
    let ceiling = row
        .get("max_overhead_pct")
        .and_then(Value::as_f64)
        .expect("validated above");
    (overhead, ceiling)
}

/// The committed best speculative (speedup, mean accepted length) from
/// `BENCH_spec.json`, taken over every non-plain row.
fn recorded_spec_best(results: &[Value]) -> (String, f64, f64) {
    results
        .iter()
        .filter(|r| r.get("kind").and_then(Value::as_str) != Some("plain"))
        .map(|r| {
            (
                r.get("kind")
                    .and_then(Value::as_str)
                    .expect("validated above")
                    .to_string(),
                r.get("speedup_vs_plain")
                    .and_then(Value::as_f64)
                    .expect("validated above"),
                r.get("mean_accepted_len")
                    .and_then(Value::as_f64)
                    .expect("validated above"),
            )
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or_else(|| fail("BENCH_spec.json: no speculative row"))
}

/// Validates the `BENCH_kernels.json` rows: every row meets its own
/// recorded floor, and the two hard-gated kinds are present with floors no
/// weaker than this binary's constants (a committed baseline cannot quietly
/// lower the bar). Returns the recorded (simd-gemm, f16-read) speedups.
fn check_kernel_rows(results: &[Value]) -> (f64, f64) {
    let field = |row: &Value, name: &str| -> f64 {
        row.get(name)
            .and_then(Value::as_f64)
            .expect("validated above")
    };
    for row in results {
        let kind = row
            .get("kind")
            .and_then(Value::as_str)
            .expect("validated above");
        let (speedup, floor) = (field(row, "speedup"), field(row, "floor"));
        if speedup < floor {
            fail(&format!(
                "BENCH_kernels.json: {kind} records {speedup:.2}x, below its own \
                 {floor:.2}x floor — the baseline itself regressed"
            ));
        }
    }
    let find = |kind: &str, min_floor: f64| -> f64 {
        let row = results
            .iter()
            .find(|r| r.get("kind").and_then(Value::as_str) == Some(kind))
            .unwrap_or_else(|| fail(&format!("BENCH_kernels.json: no {kind} row")));
        if field(row, "floor") < min_floor {
            fail(&format!(
                "BENCH_kernels.json: {kind} floor weakened below {min_floor:.2}x"
            ));
        }
        field(row, "speedup")
    };
    let gemm = find("gemm_f32", SIMD_GEMM_FLOOR);
    let f16 = find("kv_read_f16", F16_READ_FLOOR);
    (gemm, f16)
}

/// Validates the committed `BENCH_backends.json` rows: agreements are
/// fractions, every (dataset, gen_len) cell has an exact row that is its
/// own reference, the cell's best non-exact quality-per-byte ratio meets
/// the per-cell floor, and the H2O family actually evicted. Returns the
/// recorded sweep-wide best ratio.
fn check_backend_rows(results: &[Value]) -> f64 {
    let field = |row: &Value, name: &str| -> f64 {
        row.get(name)
            .and_then(Value::as_f64)
            .expect("validated above")
    };
    let mut cells: Vec<(String, u64)> = Vec::new();
    let mut evictions = 0.0;
    for row in results {
        let agreement = field(row, "agreement");
        if !(0.0..=1.0).contains(&agreement) {
            fail("BENCH_backends.json: agreement outside [0, 1]");
        }
        evictions += field(row, "evictions");
        let kind = row
            .get("kind")
            .and_then(Value::as_str)
            .expect("validated above");
        if kind == "exact"
            && (agreement != 1.0 || (field(row, "qpb_ratio_vs_exact") - 1.0).abs() > 1e-6)
        {
            fail("BENCH_backends.json: an exact row is not its own reference");
        }
        let cell = (
            row.get("dataset")
                .and_then(Value::as_str)
                .unwrap_or_else(|| fail("BENCH_backends.json: row missing string 'dataset'"))
                .to_string(),
            field(row, "gen_len") as u64,
        );
        if !cells.contains(&cell) {
            cells.push(cell);
        }
    }
    if evictions <= 0.0 {
        fail("BENCH_backends.json: the H2O rows never evicted");
    }
    let mut hero = f64::NEG_INFINITY;
    for (dataset, gen_len) in &cells {
        let best = results
            .iter()
            .filter(|r| {
                r.get("dataset").and_then(Value::as_str) == Some(dataset)
                    && field(r, "gen_len") as u64 == *gen_len
                    && r.get("kind").and_then(Value::as_str) != Some("exact")
            })
            .map(|r| field(r, "qpb_ratio_vs_exact"))
            .fold(f64::NEG_INFINITY, f64::max);
        if best < BACKEND_QPB_FLOOR {
            fail(&format!(
                "BENCH_backends.json: {dataset}/g{gen_len} records a best non-exact \
                 quality-per-byte ratio of {best:.2}x, below the {BACKEND_QPB_FLOOR:.2}x \
                 floor — the baseline itself regressed"
            ));
        }
        hero = hero.max(best);
    }
    if hero < BACKEND_HERO_FLOOR {
        fail(&format!(
            "BENCH_backends.json: sweep-best quality-per-byte ratio {hero:.2}x never \
             reached the {BACKEND_HERO_FLOOR:.2}x floor — no sparse backend beat exact"
        ));
    }
    hero
}

/// Quick re-measurement of the backend-zoo quality-per-byte effect: the
/// committed sweep's hero cell (alpaca-shaped, gen 32), four backends,
/// in-process. The traffic counters are deterministic, so unlike the timed
/// gates this one must reproduce exactly; it pins that H2O eviction still
/// beats exact attention per KV byte moved on the short-prompt workload.
fn measure_backend_qpb() -> (f64, f64) {
    let model = Model::random(ModelConfig::tiny("backend-bench", 2, 256, 4), 7);
    let mut bench = alpaca_shaped(256, 2, 23);
    bench.gen_len = 32;
    let kinds = vec![
        ("exact".to_string(), AttentionKind::Exact),
        ("lad".to_string(), AttentionKind::Lad(LadConfig::default())),
        ("topk-16".to_string(), AttentionKind::topk(16)),
        ("h2o-8+4".to_string(), AttentionKind::h2o_budget(8, 4)),
    ];
    let rows = backend_quality_report(&model, &[bench], &kinds);
    let exact_qpb = rows[0].quality_per_mbyte_moved();
    if rows[0].backend != "exact" || rows[0].agreement != 1.0 {
        fail("backend_quality re-measure: exact row is not its own reference");
    }
    if rows[3].evictions == 0 {
        fail("backend_quality re-measure: the H2O cell never evicted");
    }
    let best = rows[1..]
        .iter()
        .map(|r| r.quality_per_mbyte_moved() / exact_qpb)
        .fold(f64::NEG_INFINITY, f64::max);
    let h2o = rows[3].quality_per_mbyte_moved() / exact_qpb;
    (best, h2o)
}

/// Fails on any `BENCH_*.json` at the repo root this binary has no gate
/// for — committed baselines must never be floor-less.
fn check_no_ungated_baselines() {
    let entries = std::fs::read_dir(repo_root())
        .unwrap_or_else(|e| fail(&format!("cannot list repo root: {e}")));
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("BENCH_")
            && name.ends_with(".json")
            && !KNOWN_BASELINES.contains(&name.as_ref())
        {
            fail(&format!(
                "{name} is committed but bench_check has no gate for it — \
                 add a schema check and an acceptance floor"
            ));
        }
    }
}

/// Best-of-5 mean microseconds per call over `iters` calls.
fn time_us(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e6 / iters as f64);
    }
    best
}

/// Quick re-measurement of the two gated microkernel ratios, same shapes as
/// the committed `gemm_kernels` bench at a quarter of the iterations.
/// Returns (simd-gemm speedup, f16-read speedup).
fn measure_kernel_ratios() -> (f64, f64) {
    const M: usize = 8;
    const N: usize = 512;
    const K: usize = 256;
    const KV_DIM: usize = 64;
    const KV_POSITIONS: usize = 4096;
    let mut rng = Rng::new(0x51);
    let a = rng.normal_vec(M * K, 1.0);
    let b_t = rng.normal_vec(N * K, 1.0);
    let mut c_scalar = vec![0.0f32; M * N];
    let mut c_simd = vec![0.0f32; M * N];
    let mut scratch = GemmScratch::default();
    let scalar_us = with_kernel(Kernel::Scalar, || {
        time_us(25, || {
            gemm_bt_into(M, N, K, &a, &b_t, &mut c_scalar, &mut scratch)
        })
    });
    let simd_us = with_kernel(Kernel::Simd, || {
        time_us(25, || {
            gemm_bt_into(M, N, K, &a, &b_t, &mut c_simd, &mut scratch)
        })
    });
    if c_scalar != c_simd {
        fail("SIMD f32 GEMM diverged from the scalar microkernel (must be bit-identical)");
    }
    let mut kv32 = KvCache::new(KV_DIM);
    let mut kv16 = KvCache::with_precision(KV_DIM, KvPrecision::F16);
    for _ in 0..KV_POSITIONS {
        let key = rng.normal_vec(KV_DIM, 1.0);
        let value = rng.normal_vec(KV_DIM, 1.0);
        kv32.push(&key, &value);
        kv16.push(&key, &value);
    }
    let q = rng.normal_vec(KV_DIM, 1.0);
    let mut scores = Vec::with_capacity(KV_POSITIONS);
    let f32_us = time_us(50, || {
        scores.clear();
        kv32.score_keys_into(&q, &mut scores);
    });
    let f16_us = time_us(50, || {
        scores.clear();
        kv16.score_keys_into(&q, &mut scores);
    });
    (scalar_us / simd_us, f32_us / f16_us)
}

/// Quick serving workload: two waves of four ragged requests against a
/// batch budget of 4 — enough for the fixed baseline to pay one
/// batch-forming wait and one straggler tail, which is the effect the
/// ratio gate pins. (id, prompt_len, max_tokens, arrival_step.)
const SERVE_WORKLOAD: [(u64, usize, usize, usize); 8] = [
    (0, 12, 24, 0),
    (1, 8, 8, 0),
    (2, 14, 40, 1),
    (3, 9, 12, 2),
    (4, 10, 16, 8),
    (5, 12, 32, 8),
    (6, 7, 8, 9),
    (7, 11, 20, 10),
];

fn serve_requests() -> Vec<Request> {
    SERVE_WORKLOAD
        .iter()
        .map(|&(id, plen, max, at)| {
            let prompt: Vec<u32> = (0..plen)
                .map(|i| ((i as u64 * 37 + 5 + id * 13) % 256) as u32)
                .collect();
            Request::new(id, prompt, max).arriving_at(at)
        })
        .collect()
}

/// Best-of-3 goodput ratio of the continuous engine over the fixed-batch
/// baseline, same process, same workload, equal batch budget. Requests
/// carry no deadline, so goodput degenerates to throughput and the gate is
/// purely structural (step-packing density), immune to wall-clock noise in
/// deadline accounting.
fn measure_goodput_ratio(model: &Model) -> (f64, usize, usize) {
    let model_cfg = ModelConfig::tiny("gemm", 2, 256, 4);
    let cfg = ServeConfig {
        max_active: 4,
        prefill_chunk: 1,
        eos: None,
        parallelism: 1,
        ..ServeConfig::default()
    };
    let block_bytes = model_cfg.layers * 2 * model_cfg.hidden * 2 * BLOCK_TOKENS;
    let best = |mut run: Box<dyn FnMut() -> ServeReport + '_>| -> ServeReport {
        let mut best: Option<ServeReport> = None;
        for _ in 0..3 {
            let r = run();
            if best.as_ref().is_none_or(|b| r.goodput() > b.goodput()) {
                best = Some(r);
            }
        }
        best.expect("at least one run")
    };
    let kind = AttentionKind::Exact;
    let continuous = best(Box::new(|| {
        let pool = BlockPool::new(&model_cfg, 256 * block_bytes);
        let mut engine = Engine::new(model, &kind, pool, cfg.clone());
        for req in serve_requests() {
            engine.submit(req);
        }
        engine.run()
    }));
    let fixed = best(Box::new(|| {
        serve_fixed_batches(model, &kind, &cfg, serve_requests())
    }));
    if continuous.total_tokens() != fixed.total_tokens() {
        fail("continuous and fixed engines generated different token counts");
    }
    let ratio = continuous.goodput() / fixed.goodput().max(1e-12);
    (ratio, continuous.steps, fixed.steps)
}

/// Quick spec re-measurement: the same model/prompt recipe as the
/// committed `spec_decode` bench at half the decode length. Returns the
/// best speculative speedup over plain decoding (recency and ngram-pool
/// drafters at K = 4) and that run's mean accepted length; token streams
/// are asserted identical to the plain run.
fn measure_spec_speedup() -> (f64, f64) {
    const SPEC_STEPS: usize = 128;
    let model = Model::random(ModelConfig::tiny("spec-bench", 2, 256, 4), 7);
    let kind = AttentionKind::Exact;
    let prompt: Vec<u32> = (0..16u32).map(|i| (i * 31 + 5) % 256).collect();
    let run = |cfg: &SpecConfig| {
        time_per_token(SPEC_STEPS as f64, || {
            decode_speculative(&model, &kind, &prompt, SPEC_STEPS, cfg)
        })
    };
    let (plain, plain_t) = run(&SpecConfig::recency(0));
    [SpecConfig::recency(4), SpecConfig::ngram(4)]
        .iter()
        .map(|cfg| {
            let (report, t) = run(cfg);
            if report.tokens != plain.tokens {
                fail("speculative decode diverged from the plain stream");
            }
            (plain_t / t, report.mean_accepted_len())
        })
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("two speculative configs measured")
}

/// Quick recorder-overhead re-measurement: the serving workload above,
/// best-of-3 steps/s with every recorder off vs on, same process.
fn measure_obs_overhead_pct(model: &Model) -> f64 {
    let model_cfg = ModelConfig::tiny("gemm", 2, 256, 4);
    let cfg = ServeConfig {
        max_active: 4,
        prefill_chunk: 1,
        ..ServeConfig::default()
    };
    let block_bytes = model_cfg.layers * 2 * model_cfg.hidden * 2 * BLOCK_TOKENS;
    let serve = || {
        let pool = BlockPool::new(&model_cfg, 256 * block_bytes);
        let mut engine = Engine::new(model, &AttentionKind::Exact, pool, cfg.clone());
        for req in serve_requests() {
            engine.submit(req);
        }
        engine.run()
    };
    let best = |on: bool| -> f64 {
        lad_obs::set_enabled(on);
        lad_obs::metrics::set_metrics_enabled(on);
        lad_obs::timeline::set_timeline_enabled(on);
        let mut top = 0.0f64;
        for _ in 0..3 {
            let r = serve();
            top = top.max(r.steps as f64 / r.wall.as_secs_f64().max(1e-12));
        }
        lad_obs::set_enabled(false);
        lad_obs::metrics::set_metrics_enabled(false);
        lad_obs::timeline::set_timeline_enabled(false);
        top
    };
    let off = best(false);
    let on = best(true);
    let _ = lad_obs::drain();
    let _ = lad_obs::timeline::drain_timeline();
    (off - on) / off * 100.0
}

/// Best-of-3 wall-clock seconds per token for one decode closure.
fn time_per_token<R>(total_tokens: f64, mut f: impl FnMut() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() / total_tokens);
        out = Some(r);
    }
    (out.expect("at least one timed run"), best)
}

fn main() {
    section("bench_check: committed baseline schemas");
    let gemm_doc = load("BENCH_gemm.json");
    let gemm_results = check_schema(
        "BENCH_gemm.json",
        &gemm_doc,
        &[
            "batch",
            "per_sample_ms_per_token",
            "batched_ms_per_token",
            "speedup",
            "gemm_calls",
            "sync_barriers",
        ],
    );
    let pool_doc = load("BENCH_pool.json");
    check_schema(
        "BENCH_pool.json",
        &pool_doc,
        &[
            "batch",
            "head_parallelism",
            "ms_per_token",
            "speedup_vs_sequential",
            "pool_tasks_executed",
            "pool_tasks_stolen",
            "pool_idle_wakeups",
        ],
    );
    let serve_doc = load("BENCH_serve.json");
    let serve_results = check_schema(
        "BENCH_serve.json",
        &serve_doc,
        &[
            "goodput_tok_per_s",
            "throughput_tok_per_s",
            "goodput_ratio_vs_fixed",
            "steps",
            "idle_steps",
            "deadline_hits",
            "ttft_p50_us",
            "ttft_p95_us",
            "ttft_p99_us",
            "itl_p50_us",
            "itl_p95_us",
            "itl_p99_us",
        ],
    );
    let spec_doc = load("BENCH_spec.json");
    let spec_results = check_schema(
        "BENCH_spec.json",
        &spec_doc,
        &[
            "ms_per_token",
            "speedup_vs_plain",
            "acceptance_rate",
            "mean_accepted_len",
            "rounds",
            "forward_steps",
            "drafted",
            "accepted",
        ],
    );
    let kernels_doc = load("BENCH_kernels.json");
    let kernel_results = check_schema(
        "BENCH_kernels.json",
        &kernels_doc,
        &["baseline_us", "variant_us", "speedup", "floor", "bit_exact"],
    );
    let obs_doc = load("BENCH_obs.json");
    let obs_results = check_schema(
        "BENCH_obs.json",
        &obs_doc,
        &["steps_per_s", "overhead_pct", "max_overhead_pct"],
    );
    let backends_doc = load("BENCH_backends.json");
    let backend_results = check_schema(
        "BENCH_backends.json",
        &backends_doc,
        &[
            "gen_len",
            "agreement",
            "mbytes_moved",
            "evictions",
            "quality_per_mbyte",
            "qpb_ratio_vs_exact",
        ],
    );
    println!(
        "BENCH_gemm.json / BENCH_pool.json / BENCH_serve.json / BENCH_spec.json / \
         BENCH_kernels.json / BENCH_backends.json / BENCH_obs.json: schemas ok"
    );
    check_no_ungated_baselines();
    println!("no ungated BENCH_*.json at the repo root");

    let recorded_backend_hero = check_backend_rows(backend_results);
    println!(
        "recorded backend-zoo best quality-per-byte ratio: {recorded_backend_hero:.2}x \
         (per-cell floor {BACKEND_QPB_FLOOR:.2}x, sweep floor {BACKEND_HERO_FLOOR:.2}x)"
    );

    let (recorded_simd_gemm, recorded_f16_read) = check_kernel_rows(kernel_results);
    println!(
        "recorded microkernel speedups: gemm_f32 {recorded_simd_gemm:.2}x \
         (floor {SIMD_GEMM_FLOOR:.2}x), kv_read_f16 {recorded_f16_read:.2}x \
         (floor {F16_READ_FLOOR:.2}x)"
    );

    let recorded_goodput = recorded_goodput_ratio(serve_results);
    println!(
        "recorded continuous/fixed goodput ratio: {recorded_goodput:.2}x \
         (floor {GOODPUT_FLOOR:.2}x)"
    );
    if recorded_goodput < GOODPUT_FLOOR {
        fail(&format!(
            "committed serving baseline records {recorded_goodput:.2}x, below the \
             {GOODPUT_FLOOR:.2}x floor — the baseline itself regressed"
        ));
    }

    let (recorded_obs, recorded_obs_ceiling) = recorded_obs_overhead(obs_results);
    println!(
        "recorded enabled-recorder overhead: {recorded_obs:.2}% \
         (ceiling {OBS_OVERHEAD_CEILING_PCT:.1}%)"
    );
    if recorded_obs_ceiling > OBS_OVERHEAD_CEILING_PCT {
        fail(&format!(
            "BENCH_obs.json commits a {recorded_obs_ceiling:.1}% ceiling, weaker than \
             this binary's {OBS_OVERHEAD_CEILING_PCT:.1}% gate"
        ));
    }
    if recorded_obs > OBS_OVERHEAD_CEILING_PCT {
        fail(&format!(
            "committed recorder overhead {recorded_obs:.2}% exceeds the \
             {OBS_OVERHEAD_CEILING_PCT:.1}% ceiling — the baseline itself regressed"
        ));
    }

    let (spec_kind, recorded_spec, recorded_accept_len) = recorded_spec_best(spec_results);
    println!(
        "recorded best speculative speedup: {recorded_spec:.2}x ({spec_kind}, \
         {recorded_accept_len:.2} tokens/round; floor {SPEC_FLOOR:.2}x)"
    );
    if recorded_spec < SPEC_FLOOR {
        fail(&format!(
            "committed speculative baseline records {recorded_spec:.2}x, below the \
             {SPEC_FLOOR:.2}x floor — the baseline itself regressed"
        ));
    }
    if recorded_accept_len <= 1.0 {
        fail(&format!(
            "committed speculative baseline records {recorded_accept_len:.2} accepted \
             tokens/round — the verifier never accepted a real draft token"
        ));
    }

    let recorded = recorded_speedup(gemm_results);
    println!("recorded batch-8 exact speedup: {recorded:.2}x (floor {SPEEDUP_FLOOR:.2}x)");
    if recorded < SPEEDUP_FLOOR {
        fail(&format!(
            "committed baseline records {recorded:.2}x, below the {SPEEDUP_FLOOR:.2}x floor — \
             the baseline itself regressed"
        ));
    }

    section("bench_check: quick re-measurement (gemm_batch, exact, batch 8)");
    // Same model, seed and prompts as the committed `gemm_batch` bench.
    let model = Model::random(ModelConfig::tiny("gemm", 2, 256, 4), 7);
    let kind = AttentionKind::Exact;
    let prompts: Vec<Vec<u32>> = (0..BATCH)
        .map(|s| {
            (0..PROMPT_LEN as u32)
                .map(|i| (i * 31 + 5 + s as u32 * 17) % 256)
                .collect()
        })
        .collect();
    let total_tokens = (BATCH * (PROMPT_LEN + STEPS)) as f64;
    let (per_sample, per_sample_t) = time_per_token(total_tokens, || {
        decode_batch(&model, &kind, &prompts, STEPS, 1)
    });
    let (batched, batched_t) = time_per_token(total_tokens, || {
        decode_batch_gemm(&model, &kind, &prompts, STEPS, 1)
    });
    if per_sample.sequences != batched.sequences {
        fail("batched-GEMM decode diverged from per-sample decoding");
    }
    let measured = per_sample_t / batched_t;
    println!(
        "per-sample {:.3} ms/tok, batched {:.3} ms/tok -> speedup {measured:.2}x \
         (recorded {recorded:.2}x, floor {SPEEDUP_FLOOR:.2}x)",
        per_sample_t * 1e3,
        batched_t * 1e3,
    );
    if measured < SPEEDUP_FLOOR {
        fail(&format!(
            "measured speedup {measured:.2}x regressed below the {SPEEDUP_FLOOR:.2}x floor \
             (baseline recorded {recorded:.2}x)"
        ));
    }

    section("bench_check: quick re-measurement (serve_goodput, continuous vs fixed)");
    let (goodput_ratio, cont_steps, fixed_steps) = measure_goodput_ratio(&model);
    println!(
        "continuous {cont_steps} steps, fixed {fixed_steps} steps -> goodput ratio \
         {goodput_ratio:.2}x (recorded {recorded_goodput:.2}x, floor {GOODPUT_FLOOR:.2}x)"
    );
    if goodput_ratio < GOODPUT_FLOOR {
        fail(&format!(
            "measured goodput ratio {goodput_ratio:.2}x regressed below the \
             {GOODPUT_FLOOR:.2}x floor (baseline recorded {recorded_goodput:.2}x)"
        ));
    }
    section("bench_check: quick re-measurement (obs_overhead, recorders on vs off)");
    let obs_overhead = measure_obs_overhead_pct(&model);
    println!(
        "enabled-recorder overhead {obs_overhead:.2}% (recorded {recorded_obs:.2}%, \
         ceiling {OBS_OVERHEAD_CEILING_PCT:.1}%)"
    );
    if obs_overhead > OBS_OVERHEAD_CEILING_PCT {
        fail(&format!(
            "measured recorder overhead {obs_overhead:.2}% exceeds the \
             {OBS_OVERHEAD_CEILING_PCT:.1}% ceiling (baseline recorded \
             {recorded_obs:.2}%)"
        ));
    }

    section("bench_check: quick re-measurement (spec_decode, draft/verify vs plain)");
    let (spec_ratio, accept_len) = measure_spec_speedup();
    println!(
        "best speculative speedup {spec_ratio:.2}x, {accept_len:.2} tokens/round \
         (recorded {recorded_spec:.2}x, floor {SPEC_FLOOR:.2}x)"
    );
    if spec_ratio < SPEC_FLOOR {
        fail(&format!(
            "measured speculative speedup {spec_ratio:.2}x regressed below the \
             {SPEC_FLOOR:.2}x floor (baseline recorded {recorded_spec:.2}x)"
        ));
    }
    if accept_len <= 1.0 {
        fail(&format!(
            "measured accepted length {accept_len:.2} tokens/round — the verifier \
             never accepted a real draft token"
        ));
    }

    section("bench_check: quick re-measurement (backend_quality, one alpaca cell)");
    let (backend_best, backend_h2o) = measure_backend_qpb();
    println!(
        "best non-exact qpb ratio {backend_best:.2}x, h2o-8+4 {backend_h2o:.2}x \
         (recorded sweep best {recorded_backend_hero:.2}x, floor {BACKEND_QPB_FLOOR:.2}x)"
    );
    if backend_best < BACKEND_QPB_FLOOR {
        fail(&format!(
            "measured backend-zoo quality-per-byte ratio {backend_best:.2}x regressed \
             below the {BACKEND_QPB_FLOOR:.2}x floor (baseline recorded \
             {recorded_backend_hero:.2}x sweep best)"
        ));
    }
    if backend_h2o < BACKEND_HERO_FLOOR {
        fail(&format!(
            "measured H2O quality-per-byte ratio {backend_h2o:.2}x regressed below the \
             {BACKEND_HERO_FLOOR:.2}x hero floor — eviction no longer pays for itself \
             on the hero cell"
        ));
    }

    section("bench_check: quick re-measurement (gemm_kernels, scalar vs SIMD)");
    if Kernel::Simd.available() {
        let (simd_gemm, f16_read) = measure_kernel_ratios();
        println!(
            "gemm_f32 {simd_gemm:.2}x (recorded {recorded_simd_gemm:.2}x, floor \
             {SIMD_GEMM_FLOOR:.2}x), kv_read_f16 {f16_read:.2}x (recorded \
             {recorded_f16_read:.2}x, floor {F16_READ_FLOOR:.2}x)"
        );
        if simd_gemm < SIMD_GEMM_FLOOR {
            fail(&format!(
                "measured SIMD GEMM speedup {simd_gemm:.2}x regressed below the \
                 {SIMD_GEMM_FLOOR:.2}x floor (baseline recorded {recorded_simd_gemm:.2}x)"
            ));
        }
        if f16_read < F16_READ_FLOOR {
            fail(&format!(
                "measured fp16 KV read speedup {f16_read:.2}x regressed below the \
                 {F16_READ_FLOOR:.2}x floor (baseline recorded {recorded_f16_read:.2}x)"
            ));
        }
    } else {
        println!(
            "AVX2+F16C not available on this host; skipping the microkernel \
             re-measurement (committed floors were still enforced above)"
        );
    }
    println!("\nbench_check: OK");
}
