//! Bench regression gate: `cargo run -p lad-bench --bin bench_check`.
//!
//! Reads the committed `BENCH_*.json` baselines at the repo root, validates
//! their schemas, then re-runs the gated measurement (the `gemm_batch`
//! batch-8 per-sample vs batched-GEMM comparison) in quick mode and fails —
//! nonzero exit — if the measured per-token speedup falls below the
//! baseline's recorded acceptance floor of 1.3x.
//!
//! The gate compares **ratios, not absolute times**: both decode paths run
//! in the same process on the same machine back to back, so CI noise that
//! slows the box slows both paths and cancels out. That is what makes this
//! a non-flaky smoke — a 4.9x effect gated at 1.3x, measured as a ratio.

use lad_bench::section;
use lad_model::backend::AttentionKind;
use lad_model::batch::{decode_batch, decode_batch_gemm};
use lad_model::config::ModelConfig;
use lad_model::transformer::Model;
use lad_obs::json::{self, Value};
use std::time::Instant;

/// Acceptance floor the `gemm_batch` bench commits to (batch-8 exact).
const SPEEDUP_FLOOR: f64 = 1.3;

/// Quick-mode decode length: half the committed run, same prompt length.
/// Only the ratio matters, so the shorter run does not move the gate.
const PROMPT_LEN: usize = 32;
const STEPS: usize = 16;
const BATCH: usize = 8;

fn fail(msg: &str) -> ! {
    eprintln!("bench_check: FAIL: {msg}");
    std::process::exit(1);
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn load(name: &str) -> Value {
    let path = repo_root().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    json::parse(&text).unwrap_or_else(|e| fail(&format!("{name}: {e}")))
}

/// Requires `doc` to carry the common baseline envelope plus, per result
/// row, every field in `required` with a numeric value. Returns the rows.
fn check_schema<'a>(name: &str, doc: &'a Value, required: &[&str]) -> &'a [Value] {
    for field in ["bench", "model"] {
        if doc.get(field).and_then(Value::as_str).is_none() {
            fail(&format!("{name}: missing string field '{field}'"));
        }
    }
    if doc.get("host_cores").and_then(Value::as_u64).is_none() {
        fail(&format!("{name}: missing numeric field 'host_cores'"));
    }
    let results = doc
        .get("results")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(&format!("{name}: missing results array")));
    if results.is_empty() {
        fail(&format!("{name}: empty results array"));
    }
    for (i, row) in results.iter().enumerate() {
        if row.get("kind").and_then(Value::as_str).is_none() {
            fail(&format!("{name}: results[{i}]: missing string 'kind'"));
        }
        for field in required {
            match row.get(field).and_then(Value::as_f64) {
                Some(v) if v.is_finite() => {}
                _ => fail(&format!(
                    "{name}: results[{i}]: missing/invalid numeric '{field}'"
                )),
            }
        }
    }
    results
}

/// The committed batch-8 exact speedup from `BENCH_gemm.json`.
fn recorded_speedup(results: &[Value]) -> f64 {
    let row = results
        .iter()
        .find(|r| {
            r.get("kind").and_then(Value::as_str) == Some("exact")
                && r.get("batch").and_then(Value::as_u64) == Some(BATCH as u64)
        })
        .unwrap_or_else(|| fail("BENCH_gemm.json: no exact batch-8 row"));
    row.get("speedup")
        .and_then(Value::as_f64)
        .expect("validated above")
}

/// Best-of-3 wall-clock seconds per token for one decode closure.
fn time_per_token<R>(total_tokens: f64, mut f: impl FnMut() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() / total_tokens);
        out = Some(r);
    }
    (out.expect("at least one timed run"), best)
}

fn main() {
    section("bench_check: committed baseline schemas");
    let gemm_doc = load("BENCH_gemm.json");
    let gemm_results = check_schema(
        "BENCH_gemm.json",
        &gemm_doc,
        &[
            "batch",
            "per_sample_ms_per_token",
            "batched_ms_per_token",
            "speedup",
            "gemm_calls",
            "sync_barriers",
        ],
    );
    let pool_doc = load("BENCH_pool.json");
    check_schema(
        "BENCH_pool.json",
        &pool_doc,
        &[
            "batch",
            "head_parallelism",
            "ms_per_token",
            "speedup_vs_sequential",
            "pool_tasks_executed",
            "pool_tasks_stolen",
            "pool_idle_wakeups",
        ],
    );
    println!("BENCH_gemm.json / BENCH_pool.json: schemas ok");

    let recorded = recorded_speedup(gemm_results);
    println!("recorded batch-8 exact speedup: {recorded:.2}x (floor {SPEEDUP_FLOOR:.2}x)");
    if recorded < SPEEDUP_FLOOR {
        fail(&format!(
            "committed baseline records {recorded:.2}x, below the {SPEEDUP_FLOOR:.2}x floor — \
             the baseline itself regressed"
        ));
    }

    section("bench_check: quick re-measurement (gemm_batch, exact, batch 8)");
    // Same model, seed and prompts as the committed `gemm_batch` bench.
    let model = Model::random(ModelConfig::tiny("gemm", 2, 256, 4), 7);
    let kind = AttentionKind::Exact;
    let prompts: Vec<Vec<u32>> = (0..BATCH)
        .map(|s| {
            (0..PROMPT_LEN as u32)
                .map(|i| (i * 31 + 5 + s as u32 * 17) % 256)
                .collect()
        })
        .collect();
    let total_tokens = (BATCH * (PROMPT_LEN + STEPS)) as f64;
    let (per_sample, per_sample_t) = time_per_token(total_tokens, || {
        decode_batch(&model, &kind, &prompts, STEPS, 1)
    });
    let (batched, batched_t) = time_per_token(total_tokens, || {
        decode_batch_gemm(&model, &kind, &prompts, STEPS, 1)
    });
    if per_sample.sequences != batched.sequences {
        fail("batched-GEMM decode diverged from per-sample decoding");
    }
    let measured = per_sample_t / batched_t;
    println!(
        "per-sample {:.3} ms/tok, batched {:.3} ms/tok -> speedup {measured:.2}x \
         (recorded {recorded:.2}x, floor {SPEEDUP_FLOOR:.2}x)",
        per_sample_t * 1e3,
        batched_t * 1e3,
    );
    if measured < SPEEDUP_FLOOR {
        fail(&format!(
            "measured speedup {measured:.2}x regressed below the {SPEEDUP_FLOOR:.2}x floor \
             (baseline recorded {recorded:.2}x)"
        ));
    }
    println!("\nbench_check: OK");
}
