//! Observability overhead: the serving engine with every recorder on
//! (spans + metrics registry + request timeline) vs all of them off.
//!
//! The recorders promise near-zero cost: a disabled record path is one
//! relaxed atomic load, and an enabled one is a handful of relaxed atomic
//! ops plus a `Copy` ring write — invisible next to the GEMMs a serving
//! step actually spends its time in. This bench pins that promise as a
//! gated number: decode **steps per second** of an identical continuous-
//! batching workload, recorders off vs on, same process back to back
//! (machine noise hits both sides). The enabled run may cost at most
//! `MAX_OVERHEAD_PCT` percent.
//!
//! The run is written to `BENCH_obs.json` at the repo root as the
//! committed baseline (validated and re-measured by `bench_check`).
//!
//! ```sh
//! cargo bench --bench obs_overhead
//! ```

use lad_accel::paged::{BlockPool, BLOCK_TOKENS};
use lad_bench::{print_table, section};
use lad_model::backend::AttentionKind;
use lad_model::config::ModelConfig;
use lad_model::transformer::Model;
use lad_serve::{Engine, Request, ServeConfig, ServeReport};
use std::fmt::Write as _;

/// Ceiling on the enabled-recorder cost the baseline commits to.
const MAX_OVERHEAD_PCT: f64 = 5.0;

/// Runs per side; the best (highest steps/s) run of each side is compared.
const RUNS: usize = 5;

/// (id, prompt_len, max_tokens, arrival_step) — two staggered waves.
const WORKLOAD: [(u64, usize, usize, usize); 8] = [
    (0, 12, 24, 0),
    (1, 8, 8, 0),
    (2, 14, 40, 1),
    (3, 9, 12, 2),
    (4, 10, 16, 8),
    (5, 12, 32, 8),
    (6, 7, 8, 9),
    (7, 11, 20, 10),
];

fn model_cfg() -> ModelConfig {
    ModelConfig::tiny("serve-bench", 2, 256, 4)
}

fn requests() -> Vec<Request> {
    WORKLOAD
        .iter()
        .map(|&(id, plen, max, at)| {
            let prompt: Vec<u32> = (0..plen)
                .map(|i| ((i as u64 * 37 + 5 + id * 13) % 256) as u32)
                .collect();
            Request::new(id, prompt, max).arriving_at(at)
        })
        .collect()
}

fn serve_once(model: &Model) -> ServeReport {
    let cfg = model_cfg();
    let block_bytes = cfg.layers * 2 * cfg.hidden * 2 * BLOCK_TOKENS;
    let pool = BlockPool::new(&cfg, 256 * block_bytes);
    let serve_cfg = ServeConfig {
        max_active: 4,
        prefill_chunk: 1,
        ..ServeConfig::default()
    };
    let mut engine = Engine::new(model, &AttentionKind::Exact, pool, serve_cfg);
    for req in requests() {
        engine.submit(req);
    }
    engine.run()
}

/// Best steps-per-second over `RUNS` runs of the workload.
fn best_steps_per_s(model: &Model) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..RUNS {
        let report = serve_once(model);
        let sps = report.steps as f64 / report.wall.as_secs_f64().max(1e-12);
        best = best.max(sps);
    }
    best
}

fn set_recorders(on: bool) {
    lad_obs::set_enabled(on);
    lad_obs::metrics::set_metrics_enabled(on);
    lad_obs::timeline::set_timeline_enabled(on);
}

fn write_baseline(off_sps: f64, on_sps: f64, overhead_pct: f64) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"obs_overhead/recorder_on_vs_off\",");
    let _ = writeln!(
        json,
        "  \"model\": \"tiny serve preset (2 layers, 256 hidden, 4 heads)\","
    );
    let _ = writeln!(json, "  \"requests\": {},", WORKLOAD.len());
    let _ = writeln!(json, "  \"runs_per_side\": {RUNS},");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"results\": [");
    let _ = writeln!(
        json,
        "    {{\"kind\": \"recorder_off\", \"steps_per_s\": {off_sps:.1}, \
         \"overhead_pct\": 0.0, \"max_overhead_pct\": {MAX_OVERHEAD_PCT}}},"
    );
    let _ = writeln!(
        json,
        "    {{\"kind\": \"recorder_on\", \"steps_per_s\": {on_sps:.1}, \
         \"overhead_pct\": {overhead_pct:.2}, \"max_overhead_pct\": {MAX_OVERHEAD_PCT}}}"
    );
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match std::fs::write(path, json) {
        Ok(()) => println!("\nbaseline written to BENCH_obs.json"),
        Err(e) => println!("\ncould not write BENCH_obs.json: {e}"),
    }
}

fn main() {
    let model = Model::random(model_cfg(), 7);

    section("obs_overhead: warmup");
    let warmup = serve_once(&model);
    println!(
        "warmup: {} steps, {} outcomes",
        warmup.steps,
        warmup.outcomes.len()
    );

    section("obs_overhead: recorders off vs on (same workload, same process)");
    set_recorders(false);
    let off_sps = best_steps_per_s(&model);
    set_recorders(true);
    let on_sps = best_steps_per_s(&model);
    set_recorders(false);
    // Discard what the measurement recorded: this bench only times.
    let _ = lad_obs::drain();
    let _ = lad_obs::timeline::drain_timeline();

    let overhead_pct = (off_sps - on_sps) / off_sps * 100.0;
    let rows = vec![
        vec![
            "recorder_off".to_string(),
            format!("{off_sps:.0}"),
            "0.00".to_string(),
        ],
        vec![
            "recorder_on".to_string(),
            format!("{on_sps:.0}"),
            format!("{overhead_pct:.2}"),
        ],
    ];
    print_table(&["config", "steps/s", "overhead %"], &rows);
    println!("\nenabled-recorder overhead: {overhead_pct:.2}% (ceiling {MAX_OVERHEAD_PCT}%)");

    write_baseline(off_sps, on_sps, overhead_pct);
    assert!(
        overhead_pct <= MAX_OVERHEAD_PCT,
        "recorder overhead {overhead_pct:.2}% exceeds the {MAX_OVERHEAD_PCT}% ceiling"
    );
    println!("\nobs_overhead: OK");
}
