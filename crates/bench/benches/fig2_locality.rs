//! Fig. 2 — existence of inter-decoding-step numerical locality in attention
//! scores.
//!
//! (a) interval heatmap: which interval each position's score fell in over
//!     the last 10 decoding steps (paper shows positions 0–127 of one head).
//! (b) averaged top-1 / top-2 interval probabilities per KV length.
//!
//! Paper reference points: top-1 > 74 % everywhere, top-1+top-2 > 95 %,
//! top-1 dominance rising with KV length (> 90 % at 4096); top-2 intervals
//! mostly neighbour top-1.

use lad_bench::{kv_lengths, pct, print_table, section};
use lad_core::locality::LocalityAnalyzer;
use lad_model::backend::AttentionKind;
use lad_model::config::ModelConfig;
use lad_model::transformer::{Model, Session};
use lad_trace::{ScoreTrace, TraceConfig};

fn main() {
    heatmap_from_transformer();
    top_probabilities();
}

/// Fig. 2(a): a 10-step interval heatmap from a real (tiny, random-weight)
/// transformer decode.
fn heatmap_from_transformer() {
    section("Fig.2(a): interval heatmap, one attention head, last 10 steps");
    let model = Model::random(ModelConfig::tiny("probe", 2, 64, 4), 5);
    let mut session = Session::new(&model, &AttentionKind::Exact);
    session.record_locality(lad_math::pwl::PwlExp::paper_default());
    let prompt: Vec<u32> = (0..48).map(|i| (i * 7 + 3) % 256).collect();
    session.generate_greedy(&prompt, 16);
    let analyzer = &session.analyzers().expect("recording enabled")[0];
    let heatmap = analyzer.heatmap(32);
    println!("(rows = positions 0-31, columns = last 10 steps, cell = interval index)");
    for (pos, history) in heatmap.iter().enumerate() {
        let cells: Vec<String> = history.iter().map(|i| i.to_string()).collect();
        println!("pos {pos:>3}: {}", cells.join(" "));
    }
    let report = analyzer.report(10);
    println!(
        "head summary: top1 {} top2 {} adjacent-top2 {}",
        pct(report.top1),
        pct(report.top2),
        pct(report.top2_adjacent)
    );
}

/// Fig. 2(b): top-1/top-2 interval probabilities vs KV length, from the
/// calibrated trace generator (stability scales with n per Fig. 2b's trend).
fn top_probabilities() {
    section("Fig.2(b): top-1 / top-2 interval probabilities vs KV length");
    let mut rows = Vec::new();
    for n in kv_lengths() {
        let mut cfg = TraceConfig::calibrated(n - 96, 96);
        cfg.stability = lad_accel::workload::stability_for(n);
        let pwl = cfg.pwl.clone();
        let trace = ScoreTrace::generate(&cfg);
        let mut analyzer = LocalityAnalyzer::new(pwl);
        for row in trace.rows() {
            analyzer.observe_step(row);
        }
        let report = analyzer.report(48);
        rows.push(vec![
            format!("{n}"),
            pct(report.top1),
            pct(report.top2),
            pct(report.top2_adjacent),
        ]);
    }
    print_table(&["kv len", "top-1", "top-1+2", "top-2 adjacent"], &rows);
    println!("\npaper: top-1 > 74%, top-1+top-2 > 95%, top-1 > 90% at 4096");
}
