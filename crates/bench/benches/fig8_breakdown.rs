//! Fig. 8 — (left) normalized HBM access breakdown of the attention layer:
//! key centers / active positions / others, relative to the ideal
//! accelerator's dense access; (right) end-to-end latency breakdown
//! (attention vs the rest) for the ideal accelerator and LAD-1.5/2.5/3.5.
//!
//! Paper reference points: center and active proportions are small and
//! shrink with KV length; LAD's latency is 0.78-0.79x of ideal in group 1
//! and 0.52-0.56x in group 2; the ideal accelerator's attention share grows
//! sharply with KV length while LAD's grows only mildly (+3 % for
//! LLaMA2-13B on LAD-3.5 from 512 to 4096).

use lad_accel::config::AccelConfig;
use lad_accel::perf::{evaluate, Platform};
use lad_accel::traffic::AttentionTraffic;
use lad_bench::{pct, print_table, section, sweep_points};

fn main() {
    let configs = AccelConfig::paper_configs();
    let points = sweep_points();
    let batch = 8;

    section("Fig.8 (left): attention HBM access normalized to the ideal accelerator");
    let mut rows = Vec::new();
    for point in &points {
        let d = point.model.head_dim();
        let dense = AttentionTraffic::dense_bytes(point.n, d);
        let mut cells = vec![
            format!("{} n={}", point.model.name, point.n),
            "100% dense".to_string(),
        ];
        for cfg in &configs {
            let r = evaluate(
                &Platform::Lad(cfg.clone()),
                &point.model,
                point.n,
                &point.stats,
                batch,
            );
            let (c, a, o) = r.hbm_breakdown;
            // Per-head-sample traffic relative to the dense access.
            let total =
                AttentionTraffic::from_stats(&point.stats, point.n, d, 17, 0.0).total_bytes();
            let rel = total / dense;
            cells.push(format!(
                "{} (c {} / a {} / o {})",
                pct(rel),
                pct(c * rel),
                pct(a * rel),
                pct(o * rel)
            ));
        }
        rows.push(cells);
    }
    let headers: Vec<String> = ["test case", "Ideal"]
        .iter()
        .map(|s| s.to_string())
        .chain(configs.iter().map(|c| c.name.clone()))
        .collect();
    print_table(
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        &rows,
    );

    section("Fig.8 (right): end-to-end latency breakdown (attention share, LAD vs ideal ratio)");
    let mut rows = Vec::new();
    let mut group_ratios: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); configs.len()];
    for point in &points {
        let ideal = evaluate(
            &Platform::Ideal(configs[2].clone()),
            &point.model,
            point.n,
            &point.stats,
            batch,
        );
        let mut cells = vec![
            format!("{} n={}", point.model.name, point.n),
            format!("attn {}", pct(ideal.attn_seconds / ideal.e2e_seconds)),
        ];
        for (i, cfg) in configs.iter().enumerate() {
            let lad = evaluate(
                &Platform::Lad(cfg.clone()),
                &point.model,
                point.n,
                &point.stats,
                batch,
            );
            let ratio = lad.e2e_seconds / ideal.e2e_seconds;
            cells.push(format!(
                "attn {} ({:.2}x ideal)",
                pct(lad.attn_seconds / lad.e2e_seconds),
                ratio
            ));
            let bucket = if point.is_group2() {
                &mut group_ratios[i].1
            } else {
                &mut group_ratios[i].0
            };
            bucket.push(ratio);
        }
        rows.push(cells);
    }
    print_table(
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        &rows,
    );

    println!("\nmean latency ratio vs ideal:");
    let mut summary = Vec::new();
    for (cfg, (g1, g2)) in configs.iter().zip(&group_ratios) {
        summary.push(vec![
            cfg.name.clone(),
            format!("{:.2}x", lad_bench::geomean(g1)),
            format!("{:.2}x", lad_bench::geomean(g2)),
        ]);
    }
    print_table(&["config", "group 1", "group 2"], &summary);
    println!("\npaper: 0.78-0.79x of ideal in group 1, 0.52-0.56x in group 2");
}
