//! Continuous batching vs the naive fixed-batch baseline: goodput.
//!
//! Both engines serve the same staggered, ragged workload at an equal batch
//! budget. The fixed-batch baseline groups requests FIFO, waits for every
//! group member to arrive, and holds each group open until its slowest
//! member retires — batch-forming waits plus ragged-shrink straggler steps.
//! The continuous engine admits requests the step they arrive (slots and
//! pool permitting) and back-fills retired slots immediately, so the batch
//! stays dense and the same workload finishes in fewer global steps.
//!
//! **Goodput** is tokens/s counting only requests that met their deadline.
//! Deadlines are calibrated from a warmup run (a per-step wall-time probe on
//! this machine), sized so a promptly-scheduled request meets its deadline
//! with a comfortable margin while a request stuck behind whole earlier
//! batches does not. The gated quantity is the continuous/fixed goodput
//! *ratio* — both engines run in the same process back to back, so machine
//! noise cancels; the ratio floor is 1.0 (continuous must never lose).
//!
//! The run is written to `BENCH_serve.json` at the repo root as the
//! committed baseline (validated and re-measured by `bench_check`).
//!
//! ```sh
//! cargo bench --bench serve_goodput
//! ```

use lad_accel::paged::{BlockPool, BLOCK_TOKENS};
use lad_bench::{print_table, section};
use lad_model::backend::AttentionKind;
use lad_model::config::ModelConfig;
use lad_model::transformer::Model;
use lad_obs::Histogram;
use lad_serve::baseline::serve_fixed_batches;
use lad_serve::{Engine, Request, ServeConfig, ServeReport};
use std::fmt::Write as _;
use std::time::Duration;

/// Batch budget shared by both engines.
const MAX_ACTIVE: usize = 4;
/// KV pool capacity in blocks (ample: this sweep isolates scheduling, the
/// preemption path is pinned differentially in `tests/serving.rs`).
const POOL_BLOCKS: usize = 256;
/// Deadline slack: a request may take this many times its solo step count
/// (arrival to retirement, in engine steps) before it misses.
const DEADLINE_SLACK: f64 = 3.0;

/// (id, prompt_len, max_tokens, arrival_step) — four staggered waves of
/// four, ragged lengths inside each wave.
const WORKLOAD: [(u64, usize, usize, usize); 16] = [
    (0, 12, 24, 0),
    (1, 8, 8, 0),
    (2, 14, 40, 1),
    (3, 9, 12, 2),
    (4, 10, 16, 8),
    (5, 12, 32, 8),
    (6, 7, 8, 9),
    (7, 11, 20, 10),
    (8, 8, 28, 16),
    (9, 13, 10, 16),
    (10, 9, 36, 17),
    (11, 10, 14, 18),
    (12, 12, 8, 24),
    (13, 7, 24, 24),
    (14, 11, 18, 25),
    (15, 8, 30, 26),
];

fn model_cfg() -> ModelConfig {
    ModelConfig::tiny("serve-bench", 2, 256, 4)
}

fn pool() -> BlockPool {
    let cfg = model_cfg();
    let block_bytes = cfg.layers * 2 * cfg.hidden * 2 * BLOCK_TOKENS;
    BlockPool::new(&cfg, POOL_BLOCKS * block_bytes)
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        max_active: MAX_ACTIVE,
        prefill_chunk: 1,
        eos: None,
        parallelism: 1,
        ..ServeConfig::default()
    }
}

fn prompt(id: u64, len: usize) -> Vec<u32> {
    (0..len)
        .map(|i| ((i as u64 * 37 + 5 + id * 13) % 256) as u32)
        .collect()
}

fn requests(deadline_per_step: Option<Duration>) -> Vec<Request> {
    WORKLOAD
        .iter()
        .map(|&(id, plen, max, at)| {
            let mut req = Request::new(id, prompt(id, plen), max).arriving_at(at);
            if let Some(per_step) = deadline_per_step {
                // Solo budget: prompt prefill + decode, stretched by slack.
                let steps = ((plen + max) as f64 * DEADLINE_SLACK).ceil() as u32;
                req = req.with_deadline(per_step * steps);
            }
            req
        })
        .collect()
}

fn run_continuous(model: &Model, deadline_per_step: Option<Duration>) -> ServeReport {
    let mut engine = Engine::new(model, &AttentionKind::Exact, pool(), serve_cfg());
    for req in requests(deadline_per_step) {
        engine.submit(req);
    }
    engine.run()
}

fn run_fixed(model: &Model, deadline_per_step: Option<Duration>) -> ServeReport {
    serve_fixed_batches(
        model,
        &AttentionKind::Exact,
        &serve_cfg(),
        requests(deadline_per_step),
    )
}

/// Best goodput over three runs (same-process, ratio-friendly).
fn best_of_3(mut run: impl FnMut() -> ServeReport) -> ServeReport {
    let mut best: Option<ServeReport> = None;
    for _ in 0..3 {
        let report = run();
        if best.as_ref().is_none_or(|b| report.goodput() > b.goodput()) {
            best = Some(report);
        }
    }
    best.expect("at least one run")
}

struct EngineRow {
    kind: &'static str,
    report: ServeReport,
    goodput_ratio: f64,
}

fn quantiles_us(h: &Histogram) -> (f64, f64, f64) {
    (
        h.p50() as f64 / 1e3,
        h.p95() as f64 / 1e3,
        h.p99() as f64 / 1e3,
    )
}

fn write_baseline(rows: &[EngineRow]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"serve_goodput/continuous_vs_fixed\",");
    let _ = writeln!(
        json,
        "  \"model\": \"tiny serve preset (2 layers, 256 hidden, 4 heads)\","
    );
    let _ = writeln!(json, "  \"requests\": {},", WORKLOAD.len());
    let _ = writeln!(json, "  \"batch_budget\": {MAX_ACTIVE},");
    let _ = writeln!(json, "  \"deadline_slack\": {DEADLINE_SLACK},");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let r = &row.report;
        let met = r.outcomes.iter().filter(|o| o.met_deadline).count();
        let (t50, t95, t99) = quantiles_us(&r.ttft);
        let (i50, i95, i99) = quantiles_us(&r.itl);
        let _ = writeln!(
            json,
            "    {{\"kind\": \"{}\", \"goodput_tok_per_s\": {:.1}, \
             \"throughput_tok_per_s\": {:.1}, \"goodput_ratio_vs_fixed\": {:.3}, \
             \"steps\": {}, \"idle_steps\": {}, \"deadline_hits\": {}, \
             \"ttft_p50_us\": {t50:.1}, \"ttft_p95_us\": {t95:.1}, \"ttft_p99_us\": {t99:.1}, \
             \"itl_p50_us\": {i50:.1}, \"itl_p95_us\": {i95:.1}, \"itl_p99_us\": {i99:.1}}}{comma}",
            row.kind,
            r.goodput(),
            r.throughput(),
            row.goodput_ratio,
            r.steps,
            r.idle_steps,
            met,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match std::fs::write(path, json) {
        Ok(()) => println!("\nbaseline written to BENCH_serve.json"),
        Err(e) => println!("\ncould not write BENCH_serve.json: {e}"),
    }
}

fn main() {
    let model = Model::random(model_cfg(), 7);

    // Warmup + deadline calibration: probe this machine's per-step wall
    // time with a deadline-free continuous run.
    section("serve_goodput: calibration");
    let warmup = run_continuous(&model, None);
    let per_step = warmup.wall / warmup.steps.max(1) as u32;
    println!(
        "calibrated {:.1} us/step over {} steps",
        per_step.as_secs_f64() * 1e6,
        warmup.steps
    );

    section("serve_goodput: continuous vs fixed-batch (equal batch budget)");
    let continuous = best_of_3(|| run_continuous(&model, Some(per_step)));
    let fixed = best_of_3(|| run_fixed(&model, Some(per_step)));
    let ratio = continuous.goodput() / fixed.goodput().max(1e-12);

    let mut rows = Vec::new();
    for (kind, report, goodput_ratio) in [("continuous", continuous, ratio), ("fixed", fixed, 1.0)]
    {
        rows.push(EngineRow {
            kind,
            report,
            goodput_ratio,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let r = &row.report;
            let met = r.outcomes.iter().filter(|o| o.met_deadline).count();
            let (t50, t95, t99) = quantiles_us(&r.ttft);
            vec![
                row.kind.to_string(),
                format!("{:.0}", r.goodput()),
                format!("{:.0}", r.throughput()),
                format!("{}", r.steps),
                format!("{}", r.idle_steps),
                format!("{met}/{}", r.outcomes.len()),
                format!("{t50:.0}/{t95:.0}/{t99:.0}"),
            ]
        })
        .collect();
    print_table(
        &[
            "engine",
            "goodput tok/s",
            "tok/s",
            "steps",
            "idle",
            "in-SLO",
            "ttft p50/p95/p99 us",
        ],
        &table,
    );
    println!("\ncontinuous/fixed goodput ratio: {ratio:.2}x (acceptance floor 1.00x)");

    write_baseline(&rows);

    // Acceptance floor: at an equal batch budget, continuous batching must
    // never deliver less goodput than the fixed-batch baseline.
    assert!(
        ratio >= 1.0,
        "continuous goodput ratio {ratio:.2}x fell below the fixed-batch baseline"
    );
}
