//! Decode-step scaling of the per-head worker pool.
//!
//! `Session` fans the heads of each layer over a scoped thread pool; this
//! bench sweeps the `parallelism` knob over an 8-head preset and reports
//! per-token decode latency and the speedup over the sequential path. The
//! fan-out is required to be bit-identical to sequential decoding, so the
//! sweep also cross-checks every configuration's output tokens.
//!
//! ```sh
//! cargo bench --bench decode_parallelism
//! ```

use lad_bench::{print_table, section};
use lad_core::decoder::LadConfig;
use lad_model::backend::AttentionKind;
use lad_model::config::ModelConfig;
use lad_model::transformer::{Model, Session};
use std::time::Instant;

/// Decodes `steps` tokens after `prompt` and returns (tokens, secs/token).
fn run(model: &Model, kind: &AttentionKind, parallelism: usize, steps: usize) -> (Vec<u32>, f64) {
    let prompt: Vec<u32> = (0..256u32).map(|i| (i * 31 + 5) % 256).collect();
    let mut session = Session::with_parallelism(model, kind, parallelism);
    let start = Instant::now();
    let tokens = session.generate_greedy(&prompt, steps);
    let per_token = start.elapsed().as_secs_f64() / (prompt.len() + steps) as f64;
    (tokens, per_token)
}

fn sweep(model: &Model, kind: &AttentionKind, label: &str, steps: usize) {
    section(&format!("decode_parallelism: {label} (8-head preset)"));
    let (baseline_tokens, baseline) = run(model, kind, 1, steps);
    let mut rows = vec![vec![
        "1".to_string(),
        format!("{:.3}", baseline * 1e3),
        "1.00x".to_string(),
        "yes (baseline)".to_string(),
    ]];
    for parallelism in [2usize, 4, 8] {
        let (tokens, per_token) = run(model, kind, parallelism, steps);
        rows.push(vec![
            format!("{parallelism}"),
            format!("{:.3}", per_token * 1e3),
            format!("{:.2}x", baseline / per_token),
            if tokens == baseline_tokens {
                "yes".to_string()
            } else {
                "MISMATCH".to_string()
            },
        ]);
        assert_eq!(
            tokens, baseline_tokens,
            "parallelism={parallelism} diverged from sequential decoding"
        );
    }
    print_table(&["threads", "ms/token", "speedup", "bit-identical"], &rows);
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host cores: {cores} (speedup saturates at the core count)");
    // 8 heads of dimension 32: enough per-head work for the fan-out to beat
    // the spawn overhead once the KV cache has some length.
    let model = Model::random(ModelConfig::tiny("par8", 2, 256, 8), 7);
    let steps = 64;
    sweep(&model, &AttentionKind::Exact, "exact attention", steps);
    sweep(
        &model,
        &AttentionKind::Lad(LadConfig::default()),
        "LAD attention",
        steps,
    );
    println!("\noutputs are bit-identical across every thread count; the knob only");
    println!("changes wall-clock, never results (see Session::set_parallelism).");
}
