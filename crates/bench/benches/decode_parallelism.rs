//! Decode-step scaling of the shared worker pool.
//!
//! Two sweeps:
//!
//! 1. **Single-sequence head fan-out** — `Session` fans the heads of each
//!    layer over the shared pool; the `parallelism` knob is swept over an
//!    8-head preset, reporting per-token decode latency and speedup over the
//!    sequential path.
//! 2. **Batch × head fan-out** — `decode_batch_on` puts one sequence-level
//!    task per sample and head-level tasks per step on the *same* pool; the
//!    sweep crosses batch sizes 2–8 with head widths 1–4 and records the
//!    pool's scheduling counters. The run is written to `BENCH_pool.json`
//!    at the repo root as the committed baseline.
//!
//! The fan-out is required to be bit-identical to sequential decoding, so
//! both sweeps also cross-check every configuration's output tokens.
//!
//! ```sh
//! cargo bench --bench decode_parallelism
//! ```

use lad_bench::{print_table, section};
use lad_core::decoder::LadConfig;
use lad_core::pool::WorkerPool;
use lad_model::backend::AttentionKind;
use lad_model::batch::{decode_batch, decode_batch_on};
use lad_model::config::ModelConfig;
use lad_model::transformer::{Model, Session};
use std::fmt::Write as _;
use std::time::Instant;

/// Decodes `steps` tokens after `prompt` and returns (tokens, secs/token).
fn run(model: &Model, kind: &AttentionKind, parallelism: usize, steps: usize) -> (Vec<u32>, f64) {
    let prompt: Vec<u32> = (0..256u32).map(|i| (i * 31 + 5) % 256).collect();
    let mut session = Session::with_parallelism(model, kind, parallelism);
    let start = Instant::now();
    let tokens = session.generate_greedy(&prompt, steps);
    let per_token = start.elapsed().as_secs_f64() / (prompt.len() + steps) as f64;
    (tokens, per_token)
}

fn sweep(model: &Model, kind: &AttentionKind, label: &str, steps: usize) {
    section(&format!("decode_parallelism: {label} (8-head preset)"));
    let (baseline_tokens, baseline) = run(model, kind, 1, steps);
    let mut rows = vec![vec![
        "1".to_string(),
        format!("{:.3}", baseline * 1e3),
        "1.00x".to_string(),
        "yes (baseline)".to_string(),
    ]];
    for parallelism in [2usize, 4, 8] {
        let (tokens, per_token) = run(model, kind, parallelism, steps);
        rows.push(vec![
            format!("{parallelism}"),
            format!("{:.3}", per_token * 1e3),
            format!("{:.2}x", baseline / per_token),
            if tokens == baseline_tokens {
                "yes".to_string()
            } else {
                "MISMATCH".to_string()
            },
        ]);
        assert_eq!(
            tokens, baseline_tokens,
            "parallelism={parallelism} diverged from sequential decoding"
        );
    }
    print_table(&["threads", "ms/token", "speedup", "bit-identical"], &rows);
}

/// One measured point of the batch × head sweep, as written to the JSON
/// baseline.
struct PoolPoint {
    kind: &'static str,
    batch: usize,
    heads: usize,
    ms_per_token: f64,
    speedup: f64,
    tasks_executed: usize,
    tasks_stolen: usize,
    idle_wakeups: usize,
}

/// Sweeps `decode_batch_on` over batch sizes × head fan-out widths on one
/// shared pool, cross-checking tokens against the sequential batch path.
fn batch_sweep(
    model: &Model,
    kind: &AttentionKind,
    label: &'static str,
    steps: usize,
    points: &mut Vec<PoolPoint>,
) {
    section(&format!(
        "decode_parallelism: batched {label} (4-head preset)"
    ));
    let pool = WorkerPool::global();
    let mut rows = Vec::new();
    for batch in [2usize, 4, 8] {
        let prompts: Vec<Vec<u32>> = (0..batch)
            .map(|s| {
                (0..64u32)
                    .map(|i| (i * 31 + 5 + s as u32 * 17) % 256)
                    .collect()
            })
            .collect();
        let total_tokens = (batch * (64 + steps)) as f64;
        let start = Instant::now();
        let sequential = decode_batch(model, kind, &prompts, steps, 1);
        let baseline = start.elapsed().as_secs_f64() / total_tokens;
        for heads in [1usize, 2, 4] {
            let start = Instant::now();
            let pooled = decode_batch_on(pool, model, kind, &prompts, steps, heads);
            let per_token = start.elapsed().as_secs_f64() / total_tokens;
            assert_eq!(
                pooled.sequences, sequential.sequences,
                "batch={batch} heads={heads} diverged from sequential decoding"
            );
            rows.push(vec![
                format!("{batch}"),
                format!("{heads}"),
                format!("{:.3}", per_token * 1e3),
                format!("{:.2}x", baseline / per_token),
                format!("{}", pooled.pool.tasks_executed),
                format!("{}", pooled.pool.tasks_stolen),
                format!("{}", pooled.pool.idle_wakeups),
            ]);
            points.push(PoolPoint {
                kind: label,
                batch,
                heads,
                ms_per_token: per_token * 1e3,
                speedup: baseline / per_token,
                tasks_executed: pooled.pool.tasks_executed,
                tasks_stolen: pooled.pool.tasks_stolen,
                idle_wakeups: pooled.pool.idle_wakeups,
            });
        }
    }
    print_table(
        &[
            "batch",
            "heads",
            "ms/token",
            "speedup",
            "tasks",
            "stolen",
            "idle-wakes",
        ],
        &rows,
    );
}

/// Writes the batch-sweep baseline to `BENCH_pool.json` at the repo root.
fn write_baseline(points: &[PoolPoint]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pool.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"decode_parallelism/batch_pool\",");
    let _ = writeln!(
        json,
        "  \"model\": \"tiny pool preset (2 layers, 128 hidden, 4 heads)\","
    );
    let _ = writeln!(json, "  \"prompt_len\": 64,");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"kind\": \"{}\", \"batch\": {}, \"head_parallelism\": {}, \
             \"ms_per_token\": {:.4}, \"speedup_vs_sequential\": {:.3}, \
             \"pool_tasks_executed\": {}, \"pool_tasks_stolen\": {}, \
             \"pool_idle_wakeups\": {}}}{comma}",
            p.kind,
            p.batch,
            p.heads,
            p.ms_per_token,
            p.speedup,
            p.tasks_executed,
            p.tasks_stolen,
            p.idle_wakeups,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match std::fs::write(path, json) {
        Ok(()) => println!("\nbaseline written to BENCH_pool.json"),
        Err(e) => println!("\ncould not write BENCH_pool.json: {e}"),
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host cores: {cores} (speedup saturates at the core count)");
    // 8 heads of dimension 32: enough per-head work for the fan-out to beat
    // the spawn overhead once the KV cache has some length.
    let model = Model::random(ModelConfig::tiny("par8", 2, 256, 8), 7);
    let steps = 64;
    sweep(&model, &AttentionKind::Exact, "exact attention", steps);
    sweep(
        &model,
        &AttentionKind::Lad(LadConfig::default()),
        "LAD attention",
        steps,
    );
    println!("\noutputs are bit-identical across every thread count; the knob only");
    println!("changes wall-clock, never results (see Session::with_parallelism).");

    // Batch × head sweep on the shared pool: sequence tasks and head tasks
    // compete for the same workers, so small batches still fill the cores.
    let pool_model = Model::random(ModelConfig::tiny("pool", 2, 128, 4), 7);
    let mut points = Vec::new();
    batch_sweep(&pool_model, &AttentionKind::Exact, "exact", 32, &mut points);
    batch_sweep(
        &pool_model,
        &AttentionKind::Lad(LadConfig::default()),
        "lad",
        32,
        &mut points,
    );
    write_baseline(&points);
}
