//! Per-sample vs cross-sample-GEMM batched decoding.
//!
//! The per-sample path (`decode_batch` with `parallelism = 1`) streams every
//! weight matrix once per sample per step; the step-synchronous engine
//! (`decode_batch_gemm`) stacks the batch into one activation matrix and
//! streams each weight matrix once per *step*. Both run single-threaded here
//! so the sweep isolates the GEMM effect from pool scheduling. The engines
//! are required to be bit-identical, so every point also cross-checks tokens.
//!
//! The run is written to `BENCH_gemm.json` at the repo root as the committed
//! baseline, and the batch-8 point asserts the acceptance floor of a 1.3x
//! per-token speedup on the tiny preset.
//!
//! ```sh
//! cargo bench --bench gemm_batch
//! ```

use lad_bench::{print_table, section};
use lad_core::decoder::LadConfig;
use lad_model::backend::AttentionKind;
use lad_model::batch::{decode_batch, decode_batch_gemm};
use lad_model::config::ModelConfig;
use lad_model::transformer::Model;
use std::fmt::Write as _;
use std::time::Instant;

const PROMPT_LEN: usize = 32;
const STEPS: usize = 32;

/// One measured point of the batch sweep, as written to the JSON baseline.
struct GemmPoint {
    kind: &'static str,
    batch: usize,
    per_sample_ms: f64,
    batched_ms: f64,
    speedup: f64,
    gemm_calls: usize,
    sync_barriers: usize,
}

fn prompts(batch: usize) -> Vec<Vec<u32>> {
    (0..batch)
        .map(|s| {
            (0..PROMPT_LEN as u32)
                .map(|i| (i * 31 + 5 + s as u32 * 17) % 256)
                .collect()
        })
        .collect()
}

/// Best-of-3 wall-clock for one decode closure, in seconds per token.
fn time_per_token<R>(total_tokens: f64, mut f: impl FnMut() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() / total_tokens);
        out = Some(r);
    }
    (out.expect("at least one timed run"), best)
}

fn sweep(model: &Model, kind: &AttentionKind, label: &'static str, points: &mut Vec<GemmPoint>) {
    section(&format!(
        "gemm_batch: {label} (tiny preset, single-threaded)"
    ));
    let mut rows = Vec::new();
    for batch in [2usize, 4, 8] {
        let prompts = prompts(batch);
        let total_tokens = (batch * (PROMPT_LEN + STEPS)) as f64;
        let (per_sample, per_sample_t) = time_per_token(total_tokens, || {
            decode_batch(model, kind, &prompts, STEPS, 1)
        });
        let (batched, batched_t) = time_per_token(total_tokens, || {
            decode_batch_gemm(model, kind, &prompts, STEPS, 1)
        });
        assert_eq!(
            per_sample.sequences, batched.sequences,
            "batch={batch}: batched-GEMM decode diverged from per-sample decoding"
        );
        let speedup = per_sample_t / batched_t;
        rows.push(vec![
            format!("{batch}"),
            format!("{:.3}", per_sample_t * 1e3),
            format!("{:.3}", batched_t * 1e3),
            format!("{speedup:.2}x"),
            format!("{}", batched.gemm.gemm_calls),
            format!("{}", batched.gemm.sync_barriers),
        ]);
        points.push(GemmPoint {
            kind: label,
            batch,
            per_sample_ms: per_sample_t * 1e3,
            batched_ms: batched_t * 1e3,
            speedup,
            gemm_calls: batched.gemm.gemm_calls,
            sync_barriers: batched.gemm.sync_barriers,
        });
    }
    print_table(
        &[
            "batch",
            "per-sample ms/tok",
            "batched ms/tok",
            "speedup",
            "gemm-calls",
            "barriers",
        ],
        &rows,
    );
}

/// Writes the sweep baseline to `BENCH_gemm.json` at the repo root.
fn write_baseline(points: &[GemmPoint]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"gemm_batch/per_sample_vs_batched\",");
    let _ = writeln!(
        json,
        "  \"model\": \"tiny gemm preset (2 layers, 256 hidden, 4 heads)\","
    );
    let _ = writeln!(json, "  \"prompt_len\": {PROMPT_LEN},");
    let _ = writeln!(json, "  \"steps\": {STEPS},");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"kind\": \"{}\", \"batch\": {}, \"per_sample_ms_per_token\": {:.4}, \
             \"batched_ms_per_token\": {:.4}, \"speedup\": {:.3}, \
             \"gemm_calls\": {}, \"sync_barriers\": {}}}{comma}",
            p.kind,
            p.batch,
            p.per_sample_ms,
            p.batched_ms,
            p.speedup,
            p.gemm_calls,
            p.sync_barriers,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match std::fs::write(path, json) {
        Ok(()) => println!("\nbaseline written to BENCH_gemm.json"),
        Err(e) => println!("\ncould not write BENCH_gemm.json: {e}"),
    }
}

fn main() {
    // 256 hidden keeps each weight matrix well past L1, so the per-sample
    // path's repeated weight streaming is visible at small batch sizes.
    let model = Model::random(ModelConfig::tiny("gemm", 2, 256, 4), 7);
    let mut points = Vec::new();
    sweep(&model, &AttentionKind::Exact, "exact", &mut points);
    sweep(
        &model,
        &AttentionKind::Lad(LadConfig::default()),
        "lad",
        &mut points,
    );
    write_baseline(&points);

    // Acceptance floor: at batch 8 the batched engine must beat per-sample
    // decoding by >= 1.3x per token on the exact backend.
    let floor = points
        .iter()
        .find(|p| p.kind == "exact" && p.batch == 8)
        .expect("batch-8 exact point measured");
    println!(
        "\nbatch-8 exact speedup: {:.2}x (acceptance floor 1.30x)",
        floor.speedup
    );
    assert!(
        floor.speedup >= 1.3,
        "batched GEMM speedup {:.2}x below the 1.3x acceptance floor",
        floor.speedup
    );
}
