//! Ablation — pipeline stage balance (paper Eq. 7 discussion).
//!
//! The paper claims the four compute-stage terms are balanced under its
//! workloads and that the tile count is chosen so the HBM stages match the
//! compute stages. This bench prints each stage's cycles per head-sample
//! across the KV sweep and the resulting bottleneck, plus a tile-count
//! sensitivity sweep.

use lad_accel::config::AccelConfig;
use lad_accel::pipeline::{attention_period, compute_stage_cycles, WINDOW_POSITIONS};
use lad_accel::traffic::AttentionTraffic;
use lad_accel::workload::workload_stats;
use lad_bench::{kv_lengths, print_table, section};

fn main() {
    let cfg = AccelConfig::lad_2_5();
    let d = 128;

    section("Eq.7 stage latencies per head-sample (cycles), LAD-2.5, d=128");
    let mut rows = Vec::new();
    for n in kv_lengths() {
        let stats = workload_stats(n, 0x1ad);
        let j = stats.mean_active + WINDOW_POSITIONS as f64;
        let u = stats.mean_mode_updates + 1.0;
        let eas = (2.0 * stats.mean_centers + n as f64 / 128.0 + stats.mean_large_mode) / 2.0;
        let apid = n as f64 / 12.0;
        let md = j / 2.0;
        let ac = (d as f64 + j + u * d as f64 + 3.0 * u) / 3.0;
        let traffic = AttentionTraffic::from_stats(&stats, n, d, WINDOW_POSITIONS, 0.0);
        let bpc = cfg.per_tile_bandwidth() / cfg.tile.clock_hz;
        let stage1 = traffic.stage1_bytes() / bpc;
        let stage4 = traffic.stage4_bytes() / bpc;
        let compute = compute_stage_cycles(&cfg, n, d, &stats);
        rows.push(vec![
            format!("{n}"),
            format!("{eas:.0}"),
            format!("{apid:.0}"),
            format!("{md:.0}"),
            format!("{ac:.0}"),
            format!("{stage1:.0}"),
            format!("{stage4:.0}"),
            format!("{:.0}", compute.max(stage1).max(stage4)),
        ]);
    }
    print_table(
        &[
            "kv len",
            "EAS",
            "APID",
            "MD",
            "AC",
            "stage1 (HBM)",
            "stage4 (HBM)",
            "bottleneck",
        ],
        &rows,
    );

    section("tile-count sensitivity (attention period seconds, LLaMA2-7B-like head grid, n=4096)");
    let stats = workload_stats(4096, 0x1ad);
    let mut rows = Vec::new();
    for tiles in [2, 4, 6, 8, 12] {
        let mut cfg = AccelConfig::lad_2_5();
        cfg.tiles = tiles;
        let period = attention_period(&cfg, 4096, d, &stats, 8 * 32, 1e6);
        rows.push(vec![
            format!("{tiles}"),
            format!("{:.1}", period.seconds * 1e6),
            format!("{:.0}", period.bottleneck_cycles),
        ]);
    }
    print_table(
        &["tiles", "attention period (us)", "bottleneck (cycles/hs)"],
        &rows,
    );
    println!("\npaper: 6 tiles balance per-tile bandwidth against Eq.7 compute");
}
