//! Fig. 9 — energy efficiency of baselines and LAD accelerators: (a) the
//! attention layer, (b) the end-to-end model, as tokens per joule, plus the
//! geomean improvement over vLLM-GPU.
//!
//! Paper reference points (geomean over test cases): attention energy
//! efficiency 29.3/30.4/29.0x (LAD-1.5/2.5/3.5) in group 1 and
//! 36.9/51.2/52.4x in group 2; end-to-end 10.9/10.6/10.0x and
//! 14.4/14.2/13.4x.

use lad_accel::config::AccelConfig;
use lad_accel::gpu::GpuBaseline;
use lad_accel::perf::{evaluate_best_batch, Platform};
use lad_bench::{geomean, print_table, ratio, section, sweep_points};

fn main() {
    let platforms: Vec<Platform> = vec![
        Platform::Gpu(GpuBaseline::Vllm),
        Platform::Gpu(GpuBaseline::Qserve),
        Platform::Gpu(GpuBaseline::H2o),
        Platform::Lad(AccelConfig::lad_1_5()),
        Platform::Lad(AccelConfig::lad_2_5()),
        Platform::Lad(AccelConfig::lad_3_5()),
    ];
    let points = sweep_points();

    for (title, attn) in [
        ("Fig.9(a): attention-layer", true),
        ("Fig.9(b): end-to-end", false),
    ] {
        section(&format!("{title} energy efficiency (tokens/J)"));
        let mut rows = Vec::new();
        let mut gains: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); platforms.len()];
        for point in &points {
            let vllm = evaluate_best_batch(
                &Platform::Gpu(GpuBaseline::Vllm),
                &point.model,
                point.n,
                &point.stats,
            );
            let vllm_eff = if attn {
                vllm.batch as f64 / vllm.attn_energy_j
            } else {
                vllm.batch as f64 / vllm.e2e_energy_j
            };
            let mut cells = vec![format!("{} n={}", point.model.name, point.n)];
            for (i, platform) in platforms.iter().enumerate() {
                if let Platform::Gpu(baseline) = platform {
                    if !baseline.supports(&point.model) {
                        cells.push("NA".to_string());
                        continue;
                    }
                }
                let r = evaluate_best_batch(platform, &point.model, point.n, &point.stats);
                let eff = if attn {
                    r.batch as f64 / r.attn_energy_j
                } else {
                    r.batch as f64 / r.e2e_energy_j
                };
                cells.push(format!("{eff:.1}"));
                let bucket = if point.is_group2() {
                    &mut gains[i].1
                } else {
                    &mut gains[i].0
                };
                bucket.push(eff / vllm_eff);
            }
            rows.push(cells);
        }
        let mut headers = vec!["test case".to_string()];
        headers.extend(platforms.iter().map(|p| p.name()));
        print_table(
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
            &rows,
        );

        println!("\ngeomean energy-efficiency gain over vLLM-GPU:");
        let mut summary = Vec::new();
        for (platform, (g1, g2)) in platforms.iter().zip(&gains) {
            summary.push(vec![
                platform.name(),
                ratio(geomean(g1)),
                ratio(geomean(g2)),
            ]);
        }
        print_table(&["platform", "group 1", "group 2"], &summary);
    }
    println!("\npaper: attention 29-30x (g1), 37-52x (g2); e2e 10-11x (g1), 13-14x (g2)");
}
