//! Speculative decoding vs plain one-token-per-step decoding.
//!
//! The draft/verify loop trades wasted work on rejected rows for blocked
//! multi-row GEMMs on accepted ones: a verify round feeds `1 + d` rows
//! through one forward pass, reusing every weight matrix across the rows
//! (the same memory-bound win `gemm_batch` pins across samples), and
//! commits `1 + matched` tokens. The analytic speedup model is
//!
//! ```text
//! tokens per forward = 1 + acceptance_rate x K   (= mean accepted length)
//! speedup            = mean_accepted_len x (batched row cost / solo row cost)
//! ```
//!
//! so speculation wins exactly when acceptance is high enough that the
//! committed rows outweigh the rejected ones. Greedy streams of the tiny
//! random bench models settle into cycles, which the training-free recency
//! drafter learns from the generated stream itself — no draft model.
//!
//! The gated quantity is the **speedup ratio vs the K = 0 run of the same
//! machinery** (bit-identical tokens, same `BatchSession` path), measured
//! in the same process so machine noise cancels. Floor: 1.0x at the best
//! K, with measured mean accepted length > 1.0.
//!
//! The run is written to `BENCH_spec.json` at the repo root as the
//! committed baseline (validated and re-measured by `bench_check`).
//!
//! ```sh
//! cargo bench --bench spec_decode
//! ```

use lad_bench::{print_table, section};
use lad_model::backend::AttentionKind;
use lad_model::config::ModelConfig;
use lad_model::spec::{decode_speculative, SpecConfig, SpecReport};
use lad_model::transformer::Model;
use std::fmt::Write as _;
use std::time::Instant;

const PROMPT_LEN: usize = 16;
const STEPS: usize = 256;

/// (kind label, draft depth, ngram-pool policy instead of recency).
const SWEEP: [(&str, usize, bool); 5] = [
    ("plain", 0, false),
    ("recency-k2", 2, false),
    ("recency-k4", 4, false),
    ("recency-k8", 8, false),
    ("ngram-k4", 4, true),
];

fn model_cfg() -> ModelConfig {
    ModelConfig::tiny("spec-bench", 2, 256, 4)
}

fn prompt() -> Vec<u32> {
    (0..PROMPT_LEN as u32).map(|i| (i * 31 + 5) % 256).collect()
}

fn spec_cfg(k: usize, ngram: bool) -> SpecConfig {
    if ngram {
        SpecConfig::ngram(k)
    } else {
        SpecConfig::recency(k)
    }
}

/// Best-of-3 wall seconds per generated token, plus the (deterministic)
/// report of the final run.
fn best_of_3(model: &Model, cfg: &SpecConfig) -> (SpecReport, f64) {
    let kind = AttentionKind::Exact;
    let p = prompt();
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let start = Instant::now();
        let report = decode_speculative(model, &kind, &p, STEPS, cfg);
        best = best.min(start.elapsed().as_secs_f64() / report.tokens.len() as f64);
        out = Some(report);
    }
    (out.expect("at least one run"), best)
}

struct Row {
    kind: &'static str,
    report: SpecReport,
    ms_per_token: f64,
    speedup: f64,
}

fn write_baseline(rows: &[Row]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spec.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"spec_decode/draft_verify_vs_plain\",");
    let _ = writeln!(
        json,
        "  \"model\": \"tiny spec preset (2 layers, 256 hidden, 4 heads)\","
    );
    let _ = writeln!(json, "  \"prompt_len\": {PROMPT_LEN},");
    let _ = writeln!(json, "  \"steps\": {STEPS},");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let r = &row.report;
        let _ = writeln!(
            json,
            "    {{\"kind\": \"{}\", \"ms_per_token\": {:.4}, \
             \"speedup_vs_plain\": {:.3}, \"acceptance_rate\": {:.3}, \
             \"mean_accepted_len\": {:.3}, \"rounds\": {}, \
             \"forward_steps\": {}, \"drafted\": {}, \"accepted\": {}}}{comma}",
            row.kind,
            row.ms_per_token * 1e3,
            row.speedup,
            r.acceptance_rate(),
            r.mean_accepted_len(),
            r.rounds,
            r.forward_steps,
            r.drafted,
            r.accepted,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match std::fs::write(path, json) {
        Ok(()) => println!("\nbaseline written to BENCH_spec.json"),
        Err(e) => println!("\ncould not write BENCH_spec.json: {e}"),
    }
}

fn main() {
    let model = Model::random(model_cfg(), 7);

    section("spec_decode: draft/verify vs plain (same BatchSession machinery)");
    let mut rows: Vec<Row> = Vec::new();
    let mut plain_tokens: Option<Vec<u32>> = None;
    let mut plain_t = f64::NAN;
    for (kind, k, ngram) in SWEEP {
        let (report, t) = best_of_3(&model, &spec_cfg(k, ngram));
        match &plain_tokens {
            None => {
                plain_t = t;
                plain_tokens = Some(report.tokens.clone());
            }
            Some(reference) => assert_eq!(
                &report.tokens, reference,
                "{kind}: speculative decode diverged from the plain stream"
            ),
        }
        let speedup = plain_t / t;
        rows.push(Row {
            kind,
            report,
            ms_per_token: t,
            speedup,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let r = &row.report;
            vec![
                row.kind.to_string(),
                format!("{:.3}", row.ms_per_token * 1e3),
                format!("{:.2}", row.speedup),
                format!("{:.0}%", r.acceptance_rate() * 100.0),
                format!("{:.2}", r.mean_accepted_len()),
                format!("{}", r.forward_steps),
            ]
        })
        .collect();
    print_table(
        &[
            "drafter",
            "ms/token",
            "speedup",
            "acceptance",
            "tokens/round",
            "forwards",
        ],
        &table,
    );

    let best = rows
        .iter()
        .skip(1)
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .expect("speculative rows exist");
    println!(
        "\nbest: {} at {:.2}x, {:.2} tokens/round (floors: 1.00x, 1.0)",
        best.kind,
        best.speedup,
        best.report.mean_accepted_len()
    );

    write_baseline(&rows);

    // Acceptance floors: at some K the draft/verify loop must beat plain
    // decoding outright, and its verify rounds must commit more than the
    // bonus token on average (otherwise speculation never engaged).
    assert!(
        best.speedup >= 1.0,
        "best speculative speedup {:.2}x fell below the plain baseline",
        best.speedup
    );
    assert!(
        best.report.mean_accepted_len() > 1.0,
        "best mean accepted length {:.2} never beat the bonus token",
        best.report.mean_accepted_len()
    );
}
