//! Ablation — decoding-error anatomy (paper Sec. III-F).
//!
//! Measures the error sources the paper enumerates: false-positive vs
//! false-negative identification, how often false negatives land adjacent to
//! the mode interval (top-2 adjacency), the PWL floor (oracle LAD vs exact),
//! and the identification-induced error on top — on both synthetic clustered
//! streams and real transformer QKV streams.

use lad_bench::{pct, print_table, section};
use lad_core::audit::audit_stream;
use lad_core::decoder::LadConfig;
use lad_math::pwl::PwlExp;
use lad_math::Rng;
use lad_model::backend::AttentionKind;
use lad_model::config::ModelConfig;
use lad_model::transformer::{Model, Session};

fn clustered_stream(seed: u64, steps: usize, d: usize) -> lad_core::QkvStream {
    let mut rng = Rng::new(seed);
    let dirs: Vec<Vec<f32>> = (0..5).map(|_| rng.normal_vec(d, 1.0)).collect();
    let mut q = rng.normal_vec(d, 1.0);
    (0..steps)
        .map(|i| {
            for slot in q.iter_mut() {
                *slot = 0.99 * *slot + 0.1 * rng.normal() as f32;
            }
            let mut k: Vec<f32> = dirs[i % 5]
                .iter()
                .map(|&x| x * (0.8 + 0.4 * rng.next_f32()))
                .collect();
            for slot in k.iter_mut() {
                *slot += 0.03 * rng.normal() as f32;
            }
            (q.clone(), k, rng.normal_vec(d, 1.0))
        })
        .collect()
}

fn real_stream(steps: usize) -> lad_core::QkvStream {
    let model = Model::random(ModelConfig::tiny("audit-probe", 2, 64, 4), 4242);
    let mut session = Session::new(&model, &AttentionKind::Exact);
    session.record_qkv();
    let prompt: Vec<u32> = (0..32).map(|i| (i * 17 + 11) % 256).collect();
    session.generate_greedy(&prompt, steps.saturating_sub(32));
    session.qkv_streams().expect("recording enabled")[0].clone()
}

fn main() {
    section("error anatomy (Sec. III-F): identification errors and the PWL floor");
    let cfg = LadConfig::new(PwlExp::accurate_default());
    let cases: Vec<(&str, lad_core::QkvStream)> = vec![
        ("clustered synthetic", clustered_stream(3, 160, 16)),
        ("transformer head 0", real_stream(96)),
    ];
    let mut rows = Vec::new();
    for (name, stream) in &cases {
        let report = audit_stream(&cfg, stream);
        rows.push(vec![
            name.to_string(),
            format!("{}", report.false_negatives),
            format!("{}", report.false_positives),
            pct(report.false_negative_rate()),
            pct(report.adjacent_fraction()),
            format!("{:.4}", report.mean_pwl_error),
            format!("{:.4}", report.identification_error()),
        ]);
    }
    print_table(
        &[
            "stream",
            "FN",
            "FP",
            "FN rate",
            "FN adjacent",
            "PWL floor",
            "ident. error",
        ],
        &rows,
    );
    println!("\npaper: error positions ~1% on real checkpoints; false positives harmless;");
    println!("false negatives usually land in the top-2 (adjacent) interval.");
    println!("(random-weight transformers have weaker locality than trained ones, so");
    println!("the FN rate here overstates the deployed case.)");
}
