//! Table II — model quality of original / LAD / Qserve / H2O variants:
//! perplexity on wikitext2- and lambada-shaped corpora, accuracy on an
//! openbookQA-shaped multiple-choice task.
//!
//! Paper reference points: LAD's perplexity equals the original's to the
//! second decimal on every dataset; Qserve is slightly worse; H2O is clearly
//! worse (e.g. wikitext2 8.71 -> 8.82 for LLaMA2-7B, openbookQA accuracy
//! 0.31 -> 0.18).

use lad_bench::{print_table, section};
use lad_core::decoder::LadConfig;
use lad_eval::datasets::{choice_prompts, lm_corpus};
use lad_eval::quality::{choice_accuracy, label_choice_tasks, perplexity};
use lad_model::backend::AttentionKind;
use lad_model::config::ModelConfig;
use lad_model::transformer::Model;

fn main() {
    section("Table II: perplexity / accuracy of original, LAD, Qserve, H2O");
    println!("(scaled-down model; synthetic dataset-shaped corpora)");

    let model = Model::random(ModelConfig::tiny("quality-mini", 2, 64, 4), 501);
    let vocab = model.config().vocab as u32;
    let variants: Vec<(&str, AttentionKind)> = vec![
        ("original", AttentionKind::Exact),
        ("LAD", AttentionKind::Lad(LadConfig::default())),
        ("Qserve", AttentionKind::QserveKv4),
        ("H2O", AttentionKind::h2o_default()),
    ];

    let mut rows = Vec::new();
    for (i, corpus_name) in ["wikitext2", "lambada-std"].iter().enumerate() {
        let (_, corpus) = lm_corpus(corpus_name, vocab, 192, 601 + i as u64);
        let mut cells = vec![format!("{corpus_name} (ppl)")];
        for (_, kind) in &variants {
            cells.push(format!("{:.2}", perplexity(&model, kind, &corpus)));
        }
        rows.push(cells);
    }

    // openbookQA-shaped accuracy, labelled by a held-out teacher model.
    let teacher = Model::random(ModelConfig::tiny("teacher", 2, 64, 4), 999);
    let tasks = label_choice_tasks(&teacher, choice_prompts(vocab, 12, 4, 603));
    let mut cells = vec!["openbookQA (acc)".to_string()];
    for (_, kind) in &variants {
        cells.push(format!("{:.2}", choice_accuracy(&model, kind, &tasks)));
    }
    rows.push(cells);

    print_table(&["dataset", "original", "LAD", "Qserve", "H2O"], &rows);
    println!("\npaper: LAD == original to ~0.01 ppl; H2O degrades ppl and accuracy");
}
