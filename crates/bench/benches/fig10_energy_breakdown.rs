//! Fig. 10 — normalized energy breakdown of the LAD accelerators: HBM /
//! SRAM / computation, for the attention layer (left) and end-to-end
//! (right).
//!
//! Paper reference points: HBM and SRAM consume the majority of LAD's total
//! energy; for long KV caches, larger SRAM reduces attention-layer HBM
//! energy (higher prefetch hit ratio served on-chip) but e2e HBM energy is
//! flat across SRAM sizes (all active positions are eventually fetched).

use lad_accel::config::AccelConfig;
use lad_accel::perf::{evaluate, Platform};
use lad_bench::{pct, print_table, section, sweep_points};

fn main() {
    let configs = AccelConfig::paper_configs();
    let points = sweep_points();
    let batch = 8;

    for (title, attn) in [
        ("Fig.10 (left): attention-layer", true),
        ("Fig.10 (right): end-to-end", false),
    ] {
        section(&format!("{title} energy breakdown (HBM / SRAM / compute)"));
        let mut rows = Vec::new();
        for point in &points {
            let mut cells = vec![format!("{} n={}", point.model.name, point.n)];
            for cfg in &configs {
                let r = evaluate(
                    &Platform::Lad(cfg.clone()),
                    &point.model,
                    point.n,
                    &point.stats,
                    batch,
                );
                let e = if attn { r.attn_energy } else { r.energy };
                let total = e.total();
                cells.push(format!(
                    "{} / {} / {}",
                    pct(e.hbm_j / total),
                    pct(e.sram_j / total),
                    pct(e.compute_j / total)
                ));
            }
            rows.push(cells);
        }
        let headers: Vec<String> = std::iter::once("test case".to_string())
            .chain(configs.iter().map(|c| c.name.clone()))
            .collect();
        print_table(
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
            &rows,
        );
    }

    // The paper's SRAM-size observation, made explicit.
    section("SRAM-size effect on absolute HBM energy (LLaMA2-7B, n=4096)");
    let point = points
        .iter()
        .find(|p| p.model.name == "LLaMA2-7B" && p.n == 4096)
        .expect("sweep covers LLaMA2-7B at 4096");
    let mut rows = Vec::new();
    for cfg in &configs {
        let r = evaluate(
            &Platform::Lad(cfg.clone()),
            &point.model,
            point.n,
            &point.stats,
            batch,
        );
        rows.push(vec![
            cfg.name.clone(),
            format!("{:.2} mJ", r.attn_energy.hbm_j * 1e3),
            format!("{:.2} mJ", r.energy.hbm_j * 1e3),
        ]);
    }
    print_table(&["config", "attention HBM energy", "e2e HBM energy"], &rows);
    println!("\npaper: HBM+SRAM dominate; e2e HBM energy does not drop with larger SRAM");
}
