//! Criterion microbenchmarks of the core kernels: the LAD decoding step vs
//! the dense references, the intermediate-cache operations and the
//! directional-center scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lad_core::cache::IntermediateCache;
use lad_core::decoder::{LadAttention, LadConfig};
use lad_core::kv::KvCache;
use lad_core::reference;
use lad_math::pwl::PwlExp;
use lad_math::Rng;
use std::hint::black_box;

const DIM: usize = 64;

fn prepared_head(n: usize) -> (LadAttention, Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut rng = Rng::new(1);
    let mut head = LadAttention::new(DIM, LadConfig::new(PwlExp::accurate_default()));
    for _ in 0..n {
        let q = rng.normal_vec(DIM, 1.0);
        let k = rng.normal_vec(DIM, 1.0);
        let v = rng.normal_vec(DIM, 1.0);
        head.step(&q, &k, &v);
    }
    (
        head,
        rng.normal_vec(DIM, 1.0),
        rng.normal_vec(DIM, 1.0),
        rng.normal_vec(DIM, 1.0),
    )
}

fn prepared_kv(n: usize) -> (KvCache, Vec<f32>) {
    let mut rng = Rng::new(1);
    let mut kv = KvCache::new(DIM);
    for _ in 0..n {
        kv.push(&rng.normal_vec(DIM, 1.0), &rng.normal_vec(DIM, 1.0));
    }
    (kv, rng.normal_vec(DIM, 1.0))
}

fn bench_attention_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_step");
    for n in [128usize, 512] {
        group.bench_with_input(BenchmarkId::new("lad", n), &n, |b, &n| {
            let (head, q, k, v) = prepared_head(n);
            b.iter_batched(
                || (head.clone(), q.clone(), k.clone(), v.clone()),
                |(mut head, q, k, v)| black_box(head.step(&q, &k, &v)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, &n| {
            let (kv, q) = prepared_kv(n);
            b.iter(|| black_box(reference::exact_attention(&q, &kv)));
        });
        group.bench_with_input(BenchmarkId::new("pwl_direct", n), &n, |b, &n| {
            let (kv, q) = prepared_kv(n);
            let pwl = PwlExp::accurate_default();
            b.iter(|| black_box(reference::pwl_attention(&q, &kv, &pwl)));
        });
    }
    group.finish();
}

fn bench_cache_ops(c: &mut Criterion) {
    let mut rng = Rng::new(2);
    let k = rng.normal_vec(128, 1.0);
    let v = rng.normal_vec(128, 1.0);
    let q = rng.normal_vec(128, 1.0);
    c.bench_function("cache_insert_d128", |b| {
        let mut cache = IntermediateCache::new(128);
        b.iter(|| cache.insert(black_box(0.5), black_box(0.1), &k, &v));
    });
    c.bench_function("cache_evaluate_d128", |b| {
        let mut cache = IntermediateCache::new(128);
        cache.insert(0.5, 0.1, &k, &v);
        b.iter(|| black_box(cache.evaluate(&q, 0.7)));
    });
}

fn bench_pwl(c: &mut Criterion) {
    let pwl = PwlExp::accurate_default();
    c.bench_function("pwl_interval_of", |b| {
        b.iter(|| black_box(pwl.interval_of(black_box(-3.7))));
    });
    c.bench_function("pwl_eval", |b| {
        b.iter(|| black_box(pwl.eval(black_box(-3.7))));
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_attention_step, bench_cache_ops, bench_pwl
}
criterion_main!(kernels);
