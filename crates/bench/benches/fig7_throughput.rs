//! Fig. 7 — decoding throughput of the baselines and LAD accelerators:
//! (a) the attention layer, (b) the end-to-end model, over every model and
//! KV-cache length, each at its throughput-optimal batch size.
//!
//! Paper reference points (geomean over test cases): attention speedup over
//! vLLM-GPU of 5.8/6.2/6.2x (LAD-1.5/2.5/3.5) in group 1 and
//! 7.1/10.0/10.7x in group 2; end-to-end 1.6/1.7/1.7x and 2.2/2.3/2.3x.

use lad_accel::config::AccelConfig;
use lad_accel::gpu::GpuBaseline;
use lad_accel::perf::{evaluate_best_batch, Platform};
use lad_bench::{geomean, print_table, ratio, section, sweep_points};

fn main() {
    let platforms: Vec<Platform> = vec![
        Platform::Gpu(GpuBaseline::Vllm),
        Platform::Gpu(GpuBaseline::Qserve),
        Platform::Gpu(GpuBaseline::H2o),
        Platform::Gpu(GpuBaseline::LadGpu),
        Platform::Lad(AccelConfig::lad_1_5()),
        Platform::Lad(AccelConfig::lad_2_5()),
        Platform::Lad(AccelConfig::lad_3_5()),
    ];
    let points = sweep_points();

    for (title, attn) in [
        ("Fig.7(a): attention-layer", true),
        ("Fig.7(b): end-to-end", false),
    ] {
        section(&format!("{title} decoding throughput (tokens/s)"));
        let mut rows = Vec::new();
        // speedups[platform] -> (group1 ratios, group2 ratios)
        let mut speedups: Vec<(Vec<f64>, Vec<f64>)> =
            vec![(Vec::new(), Vec::new()); platforms.len()];
        for point in &points {
            let mut cells = vec![format!("{} n={}", point.model.name, point.n)];
            let vllm = evaluate_best_batch(
                &Platform::Gpu(GpuBaseline::Vllm),
                &point.model,
                point.n,
                &point.stats,
            );
            let vllm_tput = if attn {
                vllm.attn_tokens_per_s
            } else {
                vllm.e2e_tokens_per_s
            };
            for (i, platform) in platforms.iter().enumerate() {
                if let Platform::Gpu(baseline) = platform {
                    if !baseline.supports(&point.model) {
                        cells.push("NA".to_string());
                        continue;
                    }
                }
                let r = evaluate_best_batch(platform, &point.model, point.n, &point.stats);
                let tput = if attn {
                    r.attn_tokens_per_s
                } else {
                    r.e2e_tokens_per_s
                };
                cells.push(format!("{tput:.0}"));
                let bucket = if point.is_group2() {
                    &mut speedups[i].1
                } else {
                    &mut speedups[i].0
                };
                bucket.push(tput / vllm_tput);
            }
            rows.push(cells);
        }
        let mut headers = vec!["test case".to_string()];
        headers.extend(platforms.iter().map(|p| p.name()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(&header_refs, &rows);

        println!("\ngeomean speedup over vLLM-GPU:");
        let mut summary = Vec::new();
        for (platform, (g1, g2)) in platforms.iter().zip(&speedups) {
            summary.push(vec![
                platform.name(),
                ratio(geomean(g1)),
                ratio(geomean(g2)),
            ]);
        }
        print_table(
            &["platform", "group 1 (512-2048)", "group 2 (2560-4096)"],
            &summary,
        );
    }
    println!("\npaper: attention 5.8-6.2x (g1), 7.1-10.7x (g2); e2e 1.6-1.7x (g1), 2.2-2.3x (g2)");
}
