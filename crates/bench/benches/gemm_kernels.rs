//! Scalar vs SIMD microkernel sweep over the hot decode kernels.
//!
//! Three comparisons, each a ratio measured back to back in one process:
//!
//! * `gemm_f32`: the packed-panel f32 GEMM on the dominant MLP shape of the
//!   tiny bench preset (batch 8 x intermediate 512 over k = 256), scalar
//!   microkernel vs the AVX2 one. The two are required to be **bit
//!   identical** (the SIMD kernel vectorises across packed rows, never
//!   across `k`), and the SIMD side commits to a 1.5x floor.
//! * `kv_read_f16`: the attention score read `q . k_i` over a 4096-position
//!   head-dim-64 cache, f32 arenas (sequential exact dot) vs fp16 arenas
//!   (F16C convert + mul). Half the key bytes; 1.2x floor, bounded error.
//! * `gemm_i8`: the same MLP shape through the int8-weight kernel vs the f32
//!   SIMD kernel. Int8 quarters weight *bytes* (the win at memory-bound
//!   sizes); at this cache-resident shape with a single 8-row panel the
//!   widen-to-f32 pass cannot amortise, so the gate only guards against a
//!   pathological slowdown (0.7x floor — the first kernel cut measured
//!   0.42x from `vcvtsi2ss` dependency stalls, which this catches).
//!
//! The run is written to `BENCH_kernels.json` at the repo root as the
//! committed baseline; `bench_check` re-measures the gated ratios in quick
//! mode. On a host without AVX2+F16C the bench prints a notice and exits
//! without touching the baseline (the committed numbers come from a SIMD
//! box, and the floors are meaningless without one).
//!
//! ```sh
//! cargo bench --bench gemm_kernels
//! ```

use lad_bench::{print_table, section};
use lad_core::kv::{KvCache, KvPrecision};
use lad_math::gemm::{gemm_bt_into, GemmScratch};
use lad_math::quant::gemm_bt_q8_into;
use lad_math::{with_kernel, Kernel, Matrix, Q8Matrix, Rng};
use std::fmt::Write as _;
use std::time::Instant;

/// MLP GEMM shape of the tiny `gemm` preset: batch 8, intermediate 512,
/// hidden 256.
const M: usize = 8;
const N: usize = 512;
const K: usize = 256;

/// KV read shape: head dim 64, 4096 cached positions (paper group-2 length).
const KV_DIM: usize = 64;
const KV_POSITIONS: usize = 4096;

/// Committed acceptance floors (also enforced by `bench_check`).
const SIMD_GEMM_FLOOR: f64 = 1.5;
const F16_READ_FLOOR: f64 = 1.2;
const I8_GEMM_FLOOR: f64 = 0.7;

struct KernelPoint {
    kind: &'static str,
    shape: String,
    baseline_us: f64,
    variant_us: f64,
    speedup: f64,
    floor: f64,
    bit_exact: bool,
}

/// Best-of-5 mean microseconds per call over `iters` calls.
fn time_us(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm up: page in buffers, settle the dispatch OnceLock
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e6 / iters as f64);
    }
    best
}

fn bench_gemm_f32(rng: &mut Rng) -> KernelPoint {
    let a = rng.normal_vec(M * K, 1.0);
    let b_t = rng.normal_vec(N * K, 1.0);
    let mut c_scalar = vec![0.0f32; M * N];
    let mut c_simd = vec![0.0f32; M * N];
    let mut scratch = GemmScratch::default();
    let baseline_us = with_kernel(Kernel::Scalar, || {
        time_us(100, || {
            gemm_bt_into(M, N, K, &a, &b_t, &mut c_scalar, &mut scratch)
        })
    });
    let variant_us = with_kernel(Kernel::Simd, || {
        time_us(100, || {
            gemm_bt_into(M, N, K, &a, &b_t, &mut c_simd, &mut scratch)
        })
    });
    assert_eq!(
        c_scalar, c_simd,
        "SIMD f32 GEMM must be bit-identical to the scalar microkernel"
    );
    KernelPoint {
        kind: "gemm_f32",
        shape: format!("m={M} n={N} k={K}"),
        baseline_us,
        variant_us,
        speedup: baseline_us / variant_us,
        floor: SIMD_GEMM_FLOOR,
        bit_exact: true,
    }
}

fn bench_kv_read_f16(rng: &mut Rng) -> KernelPoint {
    let mut kv32 = KvCache::new(KV_DIM);
    let mut kv16 = KvCache::with_precision(KV_DIM, KvPrecision::F16);
    for _ in 0..KV_POSITIONS {
        let k = rng.normal_vec(KV_DIM, 1.0);
        let v = rng.normal_vec(KV_DIM, 1.0);
        kv32.push(&k, &v);
        kv16.push(&k, &v);
    }
    let q = rng.normal_vec(KV_DIM, 1.0);
    let mut s32 = Vec::with_capacity(KV_POSITIONS);
    let mut s16 = Vec::with_capacity(KV_POSITIONS);
    let baseline_us = time_us(200, || {
        s32.clear();
        kv32.score_keys_into(&q, &mut s32);
    });
    let variant_us = time_us(200, || {
        s16.clear();
        kv16.score_keys_into(&q, &mut s16);
    });
    // Bounded error, not bit-exact: fp16 keys carry 11 significant bits.
    let worst = s32
        .iter()
        .zip(&s16)
        .map(|(a, b)| (a - b).abs() / a.abs().max(1.0))
        .fold(0.0f64, f64::max)
        .max(0.0);
    assert!(worst < 1e-2, "fp16 score drift {worst} out of bounds");
    KernelPoint {
        kind: "kv_read_f16",
        shape: format!("dim={KV_DIM} positions={KV_POSITIONS}"),
        baseline_us,
        variant_us,
        speedup: baseline_us / variant_us,
        floor: F16_READ_FLOOR,
        bit_exact: false,
    }
}

fn bench_gemm_i8(rng: &mut Rng) -> KernelPoint {
    let a = rng.normal_vec(M * K, 1.0);
    let w = Matrix::from_flat(N, K, rng.normal_vec(N * K, 0.1));
    let q8 = Q8Matrix::quantize(&w);
    let mut c_f32 = vec![0.0f32; M * N];
    let mut c_i8 = vec![0.0f32; M * N];
    let mut scratch = GemmScratch::default();
    let (baseline_us, variant_us) = with_kernel(Kernel::Simd, || {
        let base = time_us(100, || {
            gemm_bt_into(M, N, K, &a, w.as_slice(), &mut c_f32, &mut scratch)
        });
        let var = time_us(100, || gemm_bt_q8_into(M, &a, &q8, &mut c_i8, &mut scratch));
        (base, var)
    });
    // The int8 path approximates the weights, not the arithmetic: outputs
    // stay within the per-row quantisation bound of the f32 result.
    let worst = c_f32
        .iter()
        .zip(&c_i8)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(worst < 0.5, "int8 GEMM drift {worst} out of bounds");
    KernelPoint {
        kind: "gemm_i8",
        shape: format!("m={M} n={N} k={K}"),
        baseline_us,
        variant_us,
        speedup: baseline_us / variant_us,
        floor: I8_GEMM_FLOOR,
        bit_exact: false,
    }
}

fn write_baseline(points: &[KernelPoint]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"gemm_kernels/scalar_vs_simd\",");
    let _ = writeln!(
        json,
        "  \"model\": \"microkernel shapes (MLP GEMM m={M} n={N} k={K}; KV read d={KV_DIM} n={KV_POSITIONS})\","
    );
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"kind\": \"{}\", \"shape\": \"{}\", \"baseline_us\": {:.3}, \
             \"variant_us\": {:.3}, \"speedup\": {:.3}, \"floor\": {:.2}, \
             \"bit_exact\": {}}}{comma}",
            p.kind,
            p.shape,
            p.baseline_us,
            p.variant_us,
            p.speedup,
            p.floor,
            u8::from(p.bit_exact),
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match std::fs::write(path, json) {
        Ok(()) => println!("\nbaseline written to BENCH_kernels.json"),
        Err(e) => println!("\ncould not write BENCH_kernels.json: {e}"),
    }
}

fn main() {
    if !Kernel::Simd.available() {
        println!(
            "gemm_kernels: AVX2+F16C not available on this host; skipping \
             (committed BENCH_kernels.json left untouched)"
        );
        return;
    }
    section("gemm_kernels: scalar vs SIMD microkernels (single-threaded)");
    let mut rng = Rng::new(0x51);
    let points = vec![
        bench_gemm_f32(&mut rng),
        bench_kv_read_f16(&mut rng),
        bench_gemm_i8(&mut rng),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.kind.to_string(),
                p.shape.clone(),
                format!("{:.2}", p.baseline_us),
                format!("{:.2}", p.variant_us),
                format!("{:.2}x", p.speedup),
                format!("{:.2}x", p.floor),
                if p.bit_exact { "yes" } else { "bounded" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "kernel",
            "shape",
            "baseline us",
            "variant us",
            "speedup",
            "floor",
            "bit-exact",
        ],
        &rows,
    );
    write_baseline(&points);
    for p in &points {
        assert!(
            p.speedup >= p.floor,
            "{}: speedup {:.2}x below the {:.2}x acceptance floor",
            p.kind,
            p.speedup,
            p.floor
        );
    }
}
