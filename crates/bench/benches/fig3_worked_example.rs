//! Fig. 3 — the LAD attention worked example: one decoding step computed via
//! the mode-based intermediate caches + corrections must agree with the
//! original attention computed directly over the full KV cache.
//!
//! The paper walks a 8-position example with the 5-interval partition and
//! checks the final result against the original attention's. This bench
//! replays that validation: a small head decodes a stream, and at every step
//! the LAD output (oracle identification) is compared against direct PWL
//! attention (must be identical) and exact softmax attention (must be
//! close).

use lad_bench::{print_table, section};
use lad_core::decoder::{LadAttention, LadConfig};
use lad_core::kv::KvCache;
use lad_core::reference;
use lad_math::pwl::PwlExp;
use lad_math::{vector, Rng};

fn main() {
    section("Fig.3: LAD step-by-step vs direct PWL and original attention");
    let d = 8;
    let pwl = PwlExp::paper_default();
    let mut cfg = LadConfig::oracle(pwl.clone());
    cfg.window = 1; // cache everything except the newest position, as Fig.3
    let mut head = LadAttention::new(d, cfg);
    let mut shadow = KvCache::new(d);
    let mut rng = Rng::new(0x0f19_0003);

    let mut rows = Vec::new();
    for step in 0..24 {
        let q = rng.normal_vec(d, 1.0);
        let k = rng.normal_vec(d, 1.0);
        let v = rng.normal_vec(d, 1.0);
        shadow.push(&k, &v);
        let out = head.step(&q, &k, &v);
        let direct = reference::pwl_attention(&q, &shadow, &pwl);
        let exact = reference::exact_attention(&q, &shadow);
        let vs_pwl = vector::relative_l2(&out.output, &direct);
        let vs_exact = vector::relative_l2(&out.output, &exact);
        rows.push(vec![
            format!("{step}"),
            format!("{}", out.stats.n),
            format!("{}", out.stats.active),
            format!("{}", out.stats.mode_updates),
            format!("{vs_pwl:.2e}"),
            format!("{vs_exact:.3}"),
        ]);
        assert!(vs_pwl < 1e-4, "cached computation diverged from Eq.3");
    }
    print_table(
        &["step", "n", "|J|", "|U|", "LAD vs PWL", "LAD vs exact"],
        &rows,
    );
    println!("\nvalidation: LAD(cached, Eq.4) == direct PWL (Eq.3) at every step;");
    println!("LAD vs exact softmax differs only by the PWL approximation error.");
    println!("(the coarse 5-interval Fig.3 partition is used; deployments use 16)");
}
