//! Ablations over the design choices DESIGN.md calls out:
//!
//! * collinearity threshold (Alg. 1's 0.98) — identification accuracy vs
//!   center count;
//! * interval count (Sec. III-A's non-uniform partition, uint4-bounded);
//! * latest-window size (Sec. III-E's 16);
//! * prefetch on/off (Sec. IV-D).

use lad_accel::config::AccelConfig;
use lad_accel::pipeline::attention_period;
use lad_accel::workload::workload_stats;
use lad_bench::{print_table, section};
use lad_core::decoder::{LadAttention, LadConfig};
use lad_core::kv::KvCache;
use lad_core::reference;
use lad_math::pwl::PwlExp;
use lad_math::{vector, Rng};

/// Runs a LAD head over a clustered-key stream and reports mean relative
/// error vs exact attention plus the center count.
fn run_quality(cfg: LadConfig, steps: usize, seed: u64) -> (f64, usize, f64) {
    let d = 16;
    let mut rng = Rng::new(seed);
    let dirs: Vec<Vec<f32>> = (0..6).map(|_| rng.normal_vec(d, 1.0)).collect();
    let mut head = LadAttention::new(d, cfg);
    let mut shadow = KvCache::new(d);
    let mut err_sum = 0.0f64;
    let mut fn_sum = 0usize;
    let mut cached_sum = 0usize;
    for i in 0..steps {
        let q = rng.normal_vec(d, 1.0);
        // Keys cluster around a few directions with small perturbations.
        let base = &dirs[i % dirs.len()];
        let mut k: Vec<f32> = base
            .iter()
            .map(|&x| x * (0.8 + 0.4 * rng.next_f32()))
            .collect();
        for slot in k.iter_mut() {
            *slot += 0.05 * rng.normal() as f32;
        }
        let v = rng.normal_vec(d, 1.0);
        shadow.push(&k, &v);
        let out = head.step(&q, &k, &v);
        let exact = reference::exact_attention(&q, &shadow);
        err_sum += f64::from(vector::relative_l2(&out.output, &exact));
        fn_sum += out.stats.false_negatives;
        cached_sum += out.stats.n.saturating_sub(out.stats.window);
    }
    let fn_rate = fn_sum as f64 / cached_sum.max(1) as f64;
    (
        err_sum / steps as f64,
        head.centers().centers().len(),
        fn_rate,
    )
}

fn main() {
    section("ablation: collinearity threshold (Alg.1)");
    let mut rows = Vec::new();
    for threshold in [0.90, 0.95, 0.98, 0.995, 0.999] {
        let mut cfg = LadConfig::new(PwlExp::accurate_default());
        cfg.collinearity_threshold = threshold;
        cfg.diagnostics = true;
        let (err, centers, fn_rate) = run_quality(cfg, 160, 42);
        rows.push(vec![
            format!("{threshold}"),
            format!("{err:.4}"),
            format!("{centers}"),
            format!("{:.2}%", fn_rate * 100.0),
        ]);
    }
    print_table(
        &[
            "threshold",
            "mean rel err vs exact",
            "centers",
            "false-negative rate",
        ],
        &rows,
    );
    println!("(paper: 0.98 is the empirical accuracy/traffic sweet spot)");

    section("ablation: interval count (Sec. III-A)");
    let mut rows = Vec::new();
    for intervals in [3usize, 5, 8, 12, 16] {
        let pwl = PwlExp::geometric(intervals, -12.0);
        let mse = pwl.mse(-12.0, 4000);
        let mut cfg = LadConfig::new(pwl);
        cfg.diagnostics = true;
        let (err, _, _) = run_quality(cfg, 160, 43);
        rows.push(vec![
            format!("{intervals}"),
            format!("{mse:.2e}"),
            format!("{err:.4}"),
        ]);
    }
    print_table(
        &["intervals", "exp PWL mse", "mean rel err vs exact"],
        &rows,
    );

    section("ablation: latest-window size (Sec. III-E)");
    let mut rows = Vec::new();
    for window in [4usize, 8, 16, 32, 64] {
        let mut cfg = LadConfig::new(PwlExp::accurate_default());
        cfg.window = window;
        cfg.diagnostics = true;
        let (err, _, fn_rate) = run_quality(cfg, 160, 44);
        rows.push(vec![
            format!("{window}"),
            format!("{err:.4}"),
            format!("{:.2}%", fn_rate * 100.0),
        ]);
    }
    print_table(
        &["window", "mean rel err vs exact", "false-negative rate"],
        &rows,
    );

    section("ablation: prefetch on/off (Sec. IV-D), LLaMA2-7B grid, LAD-2.5");
    let mut rows = Vec::new();
    for n in [1024usize, 2048, 4096] {
        let stats = workload_stats(n, 0x1ad);
        let cfg = AccelConfig::lad_2_5();
        let with = attention_period(&cfg, n, 128, &stats, 8 * 32, 1e9);
        let without = attention_period(&cfg, n, 128, &stats, 8 * 32, 0.0);
        rows.push(vec![
            format!("{n}"),
            format!("{:.1}", with.seconds * 1e6),
            format!("{:.1}", without.seconds * 1e6),
            format!("{:.2}x", without.seconds / with.seconds),
        ]);
    }
    print_table(
        &[
            "kv len",
            "prefetch on (us)",
            "prefetch off (us)",
            "slowdown w/o",
        ],
        &rows,
    );
}
