//! Table III — area and power of one LAD tile, per module and per
//! configuration.
//!
//! The model is seeded with the paper's synthesis anchors (TSMC 22 nm,
//! 1 GHz) and interpolates SRAM in capacity; this bench regenerates the
//! table and the paper's summary statistics.

use lad_accel::asic::{compute_modules, sram_module, tile_total};
use lad_accel::config::{AccelConfig, MIB};
use lad_bench::{print_table, section};

fn main() {
    section("Table III: area and power of one LAD tile");
    let mut rows = Vec::new();
    for module in compute_modules() {
        rows.push(vec![
            module.name.clone(),
            format!("{:.3}", module.area_mm2),
            format!("{:.2}", module.dynamic_w * 1e3),
            format!("{:.2}", module.static_w * 1e3),
        ]);
    }
    for cfg in AccelConfig::paper_configs() {
        let sram = sram_module(cfg.tile.sram_bytes);
        rows.push(vec![
            format!(
                "SRAM in {} ({:.1} MB)",
                cfg.name,
                cfg.tile.sram_bytes as f64 / MIB as f64
            ),
            format!("{:.3}", sram.area_mm2),
            format!("{:.2}", sram.dynamic_w * 1e3),
            format!("{:.2}", sram.static_w * 1e3),
        ]);
    }
    for cfg in AccelConfig::paper_configs() {
        let total = tile_total(cfg.tile.sram_bytes);
        rows.push(vec![
            cfg.name.clone(),
            format!("{:.3}", total.area_mm2),
            format!("{:.2}", total.dynamic_w * 1e3),
            format!("{:.2}", total.static_w * 1e3),
        ]);
    }
    print_table(
        &["module", "area (mm^2)", "dynamic (mW)", "static (mW)"],
        &rows,
    );

    // The paper's headline split.
    let modules = compute_modules();
    let total_area: f64 = modules.iter().map(|m| m.area_mm2).sum();
    let comp_area: f64 = modules
        .iter()
        .filter(|m| ["VPUs (x7)", "SFM"].contains(&m.name.as_str()))
        .map(|m| m.area_mm2)
        .sum();
    println!(
        "\nexcluding SRAM, computation modules take {:.1}% of area \
         (paper: 82.7% counting VPUs+SFM)",
        comp_area / total_area * 100.0
    );
}
