//! Backend zoo: quality per byte of KV traffic across attention policies.
//!
//! Exact attention, LAD, top-k selection (three k budgets) and H2O eviction
//! (three retention budgets) decode the same seeded prompt sets at two
//! generation lengths, and each cell scores greedy-decode agreement with the
//! exact reference against the KV bytes the backend's [`StepStats`] traffic
//! counters say it streamed (the counters `tests/differential.rs` pins to a
//! thread-local byte meter). The figure of merit is
//!
//! ```text
//! quality_per_mbyte = agreement / (KV megabytes moved)
//! qpb_ratio_vs_exact = quality_per_mbyte / exact's quality_per_mbyte
//! ```
//!
//! so a sparsity knob only wins where it sheds traffic faster than it sheds
//! agreement. The gated quantities are structural, not timed (the counters
//! are deterministic): on every (dataset, length) cell the best non-exact
//! backend must hold at least 0.95x of exact's quality-per-megabyte-moved,
//! somewhere in the sweep a sparse backend must **beat** exact by 1.2x, and
//! the H2O rows must actually evict. Greedy exact-match agreement is a
//! brutal metric — one flipped argmax diverges the rest of the stream — so
//! the long-prompt cells mostly show where each budget stops being free,
//! while the short-prompt cells show H2O winning per byte outright.
//!
//! The run is written to `BENCH_backends.json` at the repo root as the
//! committed baseline (validated and re-measured by `bench_check`).
//!
//! ```sh
//! cargo bench --bench backend_quality
//! ```

use lad_bench::{print_table, section};
use lad_eval::backends::{backend_quality_report, backend_zoo, BackendQualityRow};
use lad_eval::datasets::{alpaca_shaped, gsm8k_shaped};
use lad_eval::PromptSet;
use lad_model::config::ModelConfig;
use lad_model::transformer::Model;
use std::fmt::Write as _;

const PROMPTS_PER_SET: usize = 2;
const GEN_LENS: [usize; 2] = [32, 64];

/// Per-cell floor: the best non-exact backend must stay within 5% of exact
/// attention on quality per megabyte moved (LAD holds ~1.0x everywhere).
const QPB_FLOOR: f64 = 0.95;

/// Sweep-wide floor: somewhere in the sweep a sparse backend must beat
/// exact attention outright on quality per megabyte moved.
const HERO_FLOOR: f64 = 1.2;

fn model_cfg() -> ModelConfig {
    ModelConfig::tiny("backend-bench", 2, 256, 4)
}

/// Two dataset presets x two generation lengths: the dataset and
/// sequence-length axes of the sweep.
fn benches(vocab: u32) -> Vec<PromptSet> {
    let mut out = Vec::new();
    for gen_len in GEN_LENS {
        for mut set in [
            alpaca_shaped(vocab, PROMPTS_PER_SET, 23),
            gsm8k_shaped(vocab, PROMPTS_PER_SET, 24),
        ] {
            set.gen_len = gen_len;
            out.push(set);
        }
    }
    out
}

/// The exact-attention row of `rows` with the same (dataset, gen_len) cell
/// as `row`.
fn exact_peer<'a>(rows: &'a [BackendQualityRow], row: &BackendQualityRow) -> &'a BackendQualityRow {
    rows.iter()
        .find(|r| r.backend == "exact" && r.dataset == row.dataset && r.gen_len == row.gen_len)
        .expect("every cell has an exact row")
}

fn qpb_ratio(rows: &[BackendQualityRow], row: &BackendQualityRow) -> f64 {
    row.quality_per_mbyte_moved() / exact_peer(rows, row).quality_per_mbyte_moved()
}

fn write_baseline(rows: &[BackendQualityRow]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_backends.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"bench\": \"backend_quality/quality_per_byte_moved\","
    );
    let _ = writeln!(
        json,
        "  \"model\": \"tiny backend preset (2 layers, 256 hidden, 4 heads)\","
    );
    let _ = writeln!(json, "  \"prompts_per_set\": {PROMPTS_PER_SET},");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"kind\": \"{}\", \"dataset\": \"{}\", \"gen_len\": {}, \
             \"agreement\": {:.4}, \"mbytes_moved\": {:.4}, \"evictions\": {}, \
             \"quality_per_mbyte\": {:.4}, \"qpb_ratio_vs_exact\": {:.4}}}{comma}",
            row.backend,
            row.dataset,
            row.gen_len,
            row.agreement,
            row.bytes_moved as f64 / 1e6,
            row.evictions,
            row.quality_per_mbyte_moved(),
            qpb_ratio(rows, row),
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match std::fs::write(path, json) {
        Ok(()) => println!("\nbaseline written to BENCH_backends.json"),
        Err(e) => println!("\ncould not write BENCH_backends.json: {e}"),
    }
}

fn main() {
    let cfg = model_cfg();
    let model = Model::random(cfg.clone(), 7);
    let benches = benches(cfg.vocab as u32);
    let zoo = backend_zoo();

    section("backend_quality: agreement per KV megabyte moved (vs exact)");
    let rows = backend_quality_report(&model, &benches, &zoo);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.backend.clone(),
                row.dataset.clone(),
                format!("{}", row.gen_len),
                format!("{:.0}%", row.agreement * 100.0),
                format!("{:.2}", row.bytes_moved as f64 / 1e6),
                format!("{}", row.evictions),
                format!("{:.3}", row.quality_per_mbyte_moved()),
                format!("{:.2}", qpb_ratio(&rows, row)),
            ]
        })
        .collect();
    print_table(
        &[
            "backend",
            "dataset",
            "gen",
            "agreement",
            "MB moved",
            "evictions",
            "qual/MB",
            "vs exact",
        ],
        &table,
    );

    write_baseline(&rows);

    // Acceptance floors. Exact is its own reference on every cell; on every
    // cell the best non-exact backend must hold the per-cell floor;
    // somewhere a sparse backend must beat exact outright; and the H2O
    // family must have actually engaged its eviction machinery.
    let mut evictions = 0usize;
    let mut hero = f64::NEG_INFINITY;
    for bench in &benches {
        let cell: Vec<&BackendQualityRow> = rows
            .iter()
            .filter(|r| r.dataset == bench.name && r.gen_len == bench.gen_len)
            .collect();
        assert_eq!(cell.len(), zoo.len(), "every backend scored the cell");
        assert_eq!(cell[0].backend, "exact");
        assert_eq!(cell[0].agreement, 1.0, "exact is its own reference");
        let best = cell
            .iter()
            .skip(1)
            .map(|r| qpb_ratio(&rows, r))
            .fold(f64::NEG_INFINITY, f64::max);
        hero = hero.max(best);
        println!(
            "{}/g{}: best non-exact qpb ratio {best:.2}x (floor {QPB_FLOOR:.2}x)",
            bench.name, bench.gen_len
        );
        assert!(
            best >= QPB_FLOOR,
            "{}/g{}: every non-exact backend lost per byte moved ({best:.2}x)",
            bench.name,
            bench.gen_len
        );
        evictions += cell.iter().map(|r| r.evictions).sum::<usize>();
    }
    println!("sweep best qpb ratio {hero:.2}x (floor {HERO_FLOOR:.2}x)");
    assert!(
        hero >= HERO_FLOOR,
        "no sparse backend beat exact attention per byte moved anywhere ({hero:.2}x)"
    );
    assert!(
        evictions > 0,
        "the H2O rows never evicted — budgets too loose"
    );
}
