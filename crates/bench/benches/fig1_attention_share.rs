//! Fig. 1 — proportion of end-to-end decoding latency spent in the attention
//! layer, per model and KV-cache length, on the vLLM-GPU baseline.
//!
//! Paper reference points: ~42 % at KV length 2048, ~58 % for LLaMA2-7B at
//! 4096, rising monotonically with length.

use lad_accel::gpu::{gpu_step, GpuBaseline, GpuConfig};
use lad_bench::{kv_lengths, paper_models, print_table, section};

fn main() {
    section("Fig.1: attention share of end-to-end decode latency (vLLM on A100)");
    let gpu = GpuConfig::a100();
    let batch = 8;
    let lengths = kv_lengths();

    let mut rows = Vec::new();
    for model in paper_models() {
        let mut row = vec![model.name.clone()];
        for &n in &lengths {
            if n > model.max_seq {
                row.push("-".to_string());
                continue;
            }
            let step = gpu_step(&gpu, GpuBaseline::Vllm, &model, n, batch, None);
            let share = step.attn_seconds / (step.attn_seconds + step.linear_seconds);
            row.push(format!("{:.0}%", share * 100.0));
        }
        rows.push(row);
    }
    let mut headers = vec!["model"];
    let labels: Vec<String> = lengths.iter().map(|n| format!("n={n}")).collect();
    headers.extend(labels.iter().map(String::as_str));
    print_table(&headers, &rows);
    println!("\npaper: ~42% at 2048; 58% for LLaMA2-7B at 4096; monotone in n");
}
