//! The six-stage LAD attention pipeline (paper Sec. IV-C, Eq. 7) and the
//! per-layer attention-period model.
//!
//! Stages 1 and 4 move HBM traffic; stages 2/3 (EAS+APID), 5/6 (MD+AC) are
//! compute. The pipeline processes one head-sample per "slot"; its throughput
//! is set by the slowest stage. Prefetching during the preceding compute-bound
//! QKV period (Sec. IV-D) removes hit traffic from stage 4, bounded by SRAM
//! capacity and by the temporal locality of the active set.

use crate::config::AccelConfig;
use crate::traffic::AttentionTraffic;
use lad_core::stats::StatsSummary;
use serde::{Deserialize, Serialize};

/// Latest-window size used throughout (16 excluded + 1 ageing in).
pub const WINDOW_POSITIONS: usize = 17;

/// Fraction of tile SRAM available for KV prefetch (the rest holds weights
/// slices, the G tensor, intermediate caches and pipeline buffers).
pub const SRAM_PREFETCH_FRACTION: f64 = 0.7;

/// Cycles of the compute stages for one head-sample (paper Eq. 7):
/// `max((2|C| + n/128 + |M|)/2, n/12, |J|/2, (d + |J| + |U|d + 3|U|)/3)`.
pub fn compute_stage_cycles(cfg: &AccelConfig, n: usize, d: usize, stats: &StatsSummary) -> f64 {
    let c = stats.mean_centers;
    let m = stats.mean_large_mode;
    // MD and AC process the active FIFO, which holds corrections plus the
    // window positions.
    let j = stats.mean_active + WINDOW_POSITIONS as f64;
    // The update FIFO holds mode changes plus the position ageing in.
    let u = stats.mean_mode_updates + 1.0;
    let n = n as f64;
    let d = d as f64;
    let eas = (2.0 * c + n / 128.0 + m) / cfg.tile.eas_parallelism as f64;
    let apid = n / cfg.tile.apid_parallelism as f64;
    let md = j / cfg.tile.md_parallelism as f64;
    let ac = (d + j + u * d + 3.0 * u) / cfg.tile.ac_parallelism as f64;
    eas.max(apid).max(md).max(ac)
}

/// Result of modelling one attention period (one layer, all head-samples).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AttentionPeriod {
    /// Wall-clock seconds of the attention period.
    pub seconds: f64,
    /// Total HBM bytes moved per step for this layer (prefetch included).
    pub hbm_bytes: f64,
    /// Bytes moved during the attention period itself.
    pub period_bytes: f64,
    /// Bytes prefetched during the QKV period.
    pub prefetch_bytes: f64,
    /// The bottleneck stage latency in cycles per head-sample.
    pub bottleneck_cycles: f64,
    /// Traffic profile of a single head-sample.
    pub traffic: AttentionTraffic,
}

/// Models one layer's attention period.
///
/// * `head_samples` — batch × heads entering the pipeline this period.
/// * `qkv_spare_bytes` — HBM bytes the preceding compute-bound QKV period
///   can spare for prefetching (per head-sample).
pub fn attention_period(
    cfg: &AccelConfig,
    n: usize,
    d: usize,
    stats: &StatsSummary,
    head_samples: usize,
    qkv_spare_bytes: f64,
) -> AttentionPeriod {
    // -- Prefetch budget per head-sample.
    let kv_positions = stats.mean_active + WINDOW_POSITIONS as f64;
    // Temporal locality: only previously-active positions (plus the window,
    // whose addresses are static) are predictable.
    let predictable = stats.mean_active * stats.mean_hit_ratio + WINDOW_POSITIONS as f64;
    // SRAM capacity: prefetched KV for every in-flight head-sample of this
    // tile must fit.
    let hs_per_tile = (head_samples as f64 / cfg.tiles as f64).ceil().max(1.0);
    let sram_budget = SRAM_PREFETCH_FRACTION * cfg.tile.sram_bytes as f64 / hs_per_tile;
    let sram_positions = sram_budget / (4.0 * d as f64);
    // QKV-period bandwidth headroom.
    let spare_positions = qkv_spare_bytes / (4.0 * d as f64);
    let prefetch_positions = predictable
        .min(sram_positions)
        .min(spare_positions)
        .min(kv_positions)
        .max(0.0);

    let traffic = AttentionTraffic::from_stats(stats, n, d, WINDOW_POSITIONS, prefetch_positions);

    // -- Stage latencies (cycles per head-sample).
    let bytes_per_cycle = cfg.per_tile_bandwidth() / cfg.tile.clock_hz;
    let stage1 = traffic.stage1_bytes() / bytes_per_cycle;
    let stage4 = traffic.stage4_bytes() / bytes_per_cycle;
    let compute = compute_stage_cycles(cfg, n, d, stats);
    let bottleneck = stage1.max(stage4).max(compute);

    // -- Period time: head-samples stream through `tiles` parallel pipelines;
    // add a 5-stage fill.
    let slots = hs_per_tile + 5.0;
    let seconds = slots * bottleneck / cfg.tile.clock_hz;

    AttentionPeriod {
        seconds,
        hbm_bytes: traffic.total_bytes() * head_samples as f64,
        period_bytes: traffic.attention_period_bytes() * head_samples as f64,
        prefetch_bytes: traffic.prefetched_bytes * head_samples as f64,
        bottleneck_cycles: bottleneck,
        traffic,
    }
}

/// Recommends a tile count for a workload ("an appropriate number of LAD
/// tiles should be chosen based on the HBM bandwidth, ensuring that each
/// tile occupies adequate bandwidth to balance the latency of stages 1, 4
/// with that in Eq. 7", paper Sec. IV-C).
///
/// Every extra tile adds pipeline throughput until its HBM share starves the
/// memory stages; this returns the largest count whose memory-stage latency
/// stays within 2× of the Eq. 7 compute bottleneck (the slack the paper's
/// own 6-tile design sits at under long-KV workloads).
pub fn recommended_tiles(
    base: &AccelConfig,
    n: usize,
    d: usize,
    stats: &StatsSummary,
    max_tiles: usize,
) -> usize {
    const MEMORY_SLACK: f64 = 2.0;
    let compute = compute_stage_cycles(base, n, d, stats);
    let traffic = AttentionTraffic::from_stats(stats, n, d, WINDOW_POSITIONS, 0.0);
    let stage_bytes = traffic.stage1_bytes().max(traffic.stage4_bytes());
    let bytes_per_cycle = base.hbm.total_bandwidth() / base.tile.clock_hz;
    let limit = (MEMORY_SLACK * compute * bytes_per_cycle / stage_bytes).floor() as usize;
    limit.clamp(1, max_tiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(centers: f64, large: f64, active: f64, hit: f64, updates: f64) -> StatsSummary {
        StatsSummary {
            steps: 1,
            mean_centers: centers,
            mean_large_mode: large,
            mean_active: active,
            mean_hit_ratio: hit,
            mean_mode_updates: updates,
            ..StatsSummary::default()
        }
    }

    #[test]
    fn eq7_term_selection() {
        let cfg = AccelConfig::lad_2_5();
        // Huge |C| makes EAS the bottleneck.
        let eas_heavy = stats(10_000.0, 0.0, 0.0, 0.0, 0.0);
        let c = compute_stage_cycles(&cfg, 128, 128, &eas_heavy);
        assert!((c - (2.0 * 10_000.0 + 1.0) / 2.0).abs() < 1.0);
        // Huge n with tiny everything else makes APID dominate.
        let apid_heavy = stats(1.0, 0.0, 1.0, 0.0, 0.0);
        let c = compute_stage_cycles(&cfg, 120_000, 128, &apid_heavy);
        assert!((c - 10_000.0).abs() < 100.0);
        // Huge |U| makes AC dominate (u·d term).
        let ac_heavy = stats(1.0, 0.0, 1.0, 0.0, 500.0);
        let c = compute_stage_cycles(&cfg, 128, 128, &ac_heavy);
        assert!(c > 500.0 * 128.0 / 3.0);
    }

    #[test]
    fn period_time_scales_with_head_samples() {
        let cfg = AccelConfig::lad_2_5();
        let s = stats(64.0, 16.0, 50.0, 0.85, 2.0);
        let small = attention_period(&cfg, 2048, 128, &s, 32, 1e6);
        let large = attention_period(&cfg, 2048, 128, &s, 256, 1e6);
        assert!(large.seconds > small.seconds * 3.0);
    }

    #[test]
    fn bigger_sram_prefetches_more() {
        let s = stats(64.0, 16.0, 200.0, 0.9, 2.0);
        // Many head-samples so SRAM is the binding constraint.
        let small = attention_period(&AccelConfig::lad_1_5(), 4096, 128, &s, 2048, 1e9);
        let large = attention_period(&AccelConfig::lad_3_5(), 4096, 128, &s, 2048, 1e9);
        assert!(
            large.prefetch_bytes > small.prefetch_bytes,
            "small {} vs large {}",
            small.prefetch_bytes,
            large.prefetch_bytes
        );
        assert!(large.seconds <= small.seconds);
    }

    #[test]
    fn prefetch_never_exceeds_kv_traffic() {
        let cfg = AccelConfig::lad_3_5();
        let s = stats(8.0, 2.0, 10.0, 1.0, 1.0);
        let period = attention_period(&cfg, 512, 128, &s, 8, 1e12);
        assert!(period.prefetch_bytes <= period.traffic.active_bytes * 8.0 + 1e-9);
        assert!(period.period_bytes >= 0.0);
    }

    #[test]
    fn zero_spare_bandwidth_disables_prefetch() {
        let cfg = AccelConfig::lad_2_5();
        let s = stats(32.0, 8.0, 60.0, 0.9, 2.0);
        let period = attention_period(&cfg, 2048, 128, &s, 64, 0.0);
        assert_eq!(period.prefetch_bytes, 0.0);
    }

    #[test]
    fn recommended_tiles_balances_memory_against_compute() {
        let cfg = AccelConfig::lad_2_5();
        // Compute-heavy workloads (huge |U|) tolerate many tiles: per-tile
        // bandwidth matters less when Eq.7 dominates.
        let compute_heavy = stats(8.0, 2.0, 20.0, 0.8, 50.0);
        let many = recommended_tiles(&cfg, 1024, 128, &compute_heavy, 16);
        // Memory-heavy workloads (long n, tiny compute) starve sooner.
        let mem_heavy = stats(4.0, 0.0, 4.0, 0.8, 0.0);
        let few = recommended_tiles(&cfg, 8192, 128, &mem_heavy, 16);
        assert!(few <= many, "memory-heavy {few} vs compute-heavy {many}");
        assert!((1..=16).contains(&few));
        assert!((1..=16).contains(&many));
        // The paper's operating point lands in single digits (6 tiles).
        let paper = recommended_tiles(&cfg, 4096, 128, &stats(128.0, 40.0, 80.0, 0.85, 2.0), 16);
        assert!(
            (3..=10).contains(&paper),
            "paper-like workload -> {paper} tiles"
        );
    }

    #[test]
    fn hbm_bytes_conserved() {
        let cfg = AccelConfig::lad_2_5();
        let s = stats(32.0, 8.0, 60.0, 0.9, 2.0);
        let p = attention_period(&cfg, 2048, 128, &s, 64, 1e6);
        assert!((p.hbm_bytes - (p.period_bytes + p.prefetch_bytes)).abs() < 1e-6);
    }
}
