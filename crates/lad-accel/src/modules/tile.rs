//! The complete per-step LAD attention pipeline of one tile
//! (paper Sec. IV-C): EAS → APID → MD → AC over one head-sample, with the
//! `G` tensor, directional centers and SRAM-resident intermediate caches as
//! persistent state.
//!
//! This is the functional-verification artefact: the engine is wired from
//! the hardware module models and must reproduce the golden algorithmic
//! model ([`lad_core::decoder::LadAttention`]) and track exact attention.

use super::ac::{AcModule, CacheSram};
use super::apid::ApidModule;
use super::eas::EasModule;
use super::g_tensor::GTensor;
use super::md::MdModule;
use lad_math::pwl::PwlExp;

/// Result of one tile step.
#[derive(Debug, Clone, PartialEq)]
pub struct TileStepResult {
    /// The attention output.
    pub output: Vec<f32>,
    /// KV length after the append.
    pub n: usize,
    /// Cached positions that missed their mode interval (`|J|` without the
    /// window).
    pub active: usize,
    /// Update-FIFO length (mode changes + the ageing position).
    pub updates: usize,
    /// Keys/values streamed for identification and corrections.
    pub keys_read: usize,
    /// Per-stage cycles: (EAS, APID, MD, AC).
    pub stage_cycles: (u64, u64, u64, u64),
}

impl TileStepResult {
    /// The pipeline's compute bottleneck this step (max stage latency).
    pub fn bottleneck_cycles(&self) -> u64 {
        let (a, b, c, d) = self.stage_cycles;
        a.max(b).max(c).max(d)
    }
}

/// Per-head LAD attention state machine built from the hardware modules.
#[derive(Debug, Clone)]
pub struct TileEngine {
    pwl: PwlExp,
    dim: usize,
    window: usize,
    large_mode_min: usize,
    eas: EasModule,
    apid: ApidModule,
    md: MdModule,
    ac: AcModule,
    g: GTensor,
    centers: Vec<usize>,
    cached_upto: usize,
    sram: CacheSram,
    keys: Vec<Vec<f32>>,
    values: Vec<Vec<f32>>,
}

impl TileEngine {
    /// Creates an engine for head dimension `dim` with the paper-default
    /// policies (window 16, |cos| threshold 0.98, exact scores for the top
    /// two intervals).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or the partition exceeds 16 intervals (the
    /// `uint4` mode field).
    pub fn new(dim: usize, pwl: PwlExp) -> TileEngine {
        TileEngine::with_policies(dim, pwl, 16, 0.98)
    }

    /// Creates an engine with explicit window size and collinearity
    /// threshold.
    pub fn with_policies(
        dim: usize,
        pwl: PwlExp,
        window: usize,
        collinearity_threshold: f64,
    ) -> TileEngine {
        assert!(dim > 0, "TileEngine: dim must be positive");
        let intervals = pwl.num_intervals();
        TileEngine {
            eas: EasModule::new(dim, collinearity_threshold),
            apid: ApidModule::new(&pwl),
            md: MdModule::new(&pwl, dim),
            ac: AcModule::new(dim),
            g: GTensor::new(intervals),
            centers: Vec::new(),
            cached_upto: 0,
            sram: CacheSram::new(dim),
            keys: Vec::new(),
            values: Vec::new(),
            large_mode_min: intervals.saturating_sub(2),
            pwl,
            dim,
            window,
        }
    }

    /// Current KV length.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` before the first step.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The directional-center positions.
    pub fn centers(&self) -> &[usize] {
        &self.centers
    }

    /// The `G` tensor (diagnostics).
    pub fn g_tensor(&self) -> &GTensor {
        &self.g
    }

    /// The interval partition in use.
    pub fn partition(&self) -> &PwlExp {
        &self.pwl
    }

    /// Executes one decoding step through the hardware pipeline.
    ///
    /// # Panics
    ///
    /// Panics if any slice's length differs from the head dimension.
    pub fn step(&mut self, query: &[f32], key: &[f32], value: &[f32]) -> TileStepResult {
        assert_eq!(query.len(), self.dim, "tile: query dim mismatch");
        assert_eq!(key.len(), self.dim, "tile: key dim mismatch");
        assert_eq!(value.len(), self.dim, "tile: value dim mismatch");
        self.keys.push(key.to_vec());
        self.values.push(value.to_vec());
        let n = self.keys.len();
        let scale = 1.0 / (self.dim as f32).sqrt();
        let q_scaled: Vec<f32> = query.iter().map(|&x| x * scale).collect();

        // Large-mode set M: cached positions in the top intervals.
        let large_modes: Vec<usize> = (0..self.cached_upto)
            .filter(|&i| self.g.mode(i) >= self.large_mode_min)
            .collect();

        // -- Stage 2: EAS (scores + center update; registers the new key).
        let eas = self.eas.execute(
            &q_scaled,
            &self.keys,
            &mut self.g,
            &mut self.centers,
            &large_modes,
        );

        // -- Stage 3: APID.
        let apid = self
            .apid
            .identify(&eas.scores, eas.max_score, &mut self.g, self.cached_upto);
        let cached_active = apid
            .active
            .iter()
            .filter(|&&j| j < self.cached_upto)
            .count();

        // The position ageing into the caches this step.
        let aged = (n > self.cached_upto + self.window).then_some(self.cached_upto);

        // -- Stage 5: MD.
        let md = self.md.process(
            &q_scaled,
            &self.keys,
            &apid.active,
            eas.max_score,
            &mut self.g,
            self.cached_upto,
            aged,
        );

        // -- Stage 6: AC.
        let ac = self.ac.execute(
            &q_scaled,
            eas.max_score,
            &mut self.sram,
            &md.corrections,
            &md.updates,
            &self.keys,
            &self.values,
        );

        if aged.is_some() {
            self.cached_upto += 1;
        }

        TileStepResult {
            output: ac.output,
            n,
            active: cached_active,
            updates: md.updates.len(),
            keys_read: eas.keys_read + md.keys_read,
            stage_cycles: (eas.cycles, apid.cycles, md.cycles, ac.cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_core::decoder::{LadAttention, LadConfig};
    use lad_core::kv::KvCache;
    use lad_core::reference;
    use lad_math::{vector, Rng};

    /// Clustered key stream with smoothly-evolving queries, the regime LAD
    /// targets.
    fn stream(seed: u64, steps: usize, d: usize) -> Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> {
        let mut rng = Rng::new(seed);
        let dirs: Vec<Vec<f32>> = (0..5).map(|_| rng.normal_vec(d, 1.0)).collect();
        let mut q = rng.normal_vec(d, 1.0);
        (0..steps)
            .map(|i| {
                for slot in q.iter_mut() {
                    *slot = 0.99 * *slot + 0.1 * rng.normal() as f32;
                }
                let mut k: Vec<f32> = dirs[i % 5]
                    .iter()
                    .map(|&x| x * (0.8 + 0.4 * rng.next_f32()))
                    .collect();
                for slot in k.iter_mut() {
                    *slot += 0.03 * rng.normal() as f32;
                }
                (q.clone(), k, rng.normal_vec(d, 1.0))
            })
            .collect()
    }

    #[test]
    fn first_step_returns_the_value() {
        let mut tile = TileEngine::new(4, PwlExp::accurate_default());
        let result = tile.step(&[1.0; 4], &[0.5; 4], &[1.0, 2.0, 3.0, 4.0]);
        for (got, want) in result.output.iter().zip([1.0, 2.0, 3.0, 4.0]) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
        assert_eq!(result.n, 1);
        assert_eq!(result.active, 0);
    }

    #[test]
    fn tracks_exact_attention() {
        let d = 16;
        let mut tile = TileEngine::new(d, PwlExp::accurate_default());
        let mut shadow = KvCache::new(d);
        let mut worst = 0.0f32;
        for (q, k, v) in stream(11, 120, d) {
            shadow.push(&k, &v);
            let result = tile.step(&q, &k, &v);
            let exact = reference::exact_attention(&q, &shadow);
            worst = worst.max(vector::relative_l2(&result.output, &exact));
        }
        assert!(worst < 0.12, "worst relative error {worst}");
    }

    #[test]
    fn matches_golden_algorithmic_model() {
        // The hardware pipeline and the lad-core decoder implement the same
        // algorithm; outputs must agree closely on the same stream.
        let d = 16;
        let pwl = PwlExp::accurate_default();
        let mut tile = TileEngine::new(d, pwl.clone());
        let mut golden = LadAttention::new(d, LadConfig::new(pwl));
        let mut agree = 0usize;
        let steps = stream(12, 100, d);
        let total = steps.len();
        for (q, k, v) in steps {
            let hw = tile.step(&q, &k, &v);
            let sw = golden.step(&q, &k, &v);
            if vector::relative_l2(&hw.output, &sw.output) < 0.05 {
                agree += 1;
            }
        }
        // fp ordering and m-definition differences cause occasional small
        // divergences; the vast majority of steps must agree tightly.
        assert!(agree * 10 >= total * 9, "only {agree}/{total} steps agree");
    }

    #[test]
    fn kv_reads_become_sublinear() {
        let d = 16;
        let mut tile = TileEngine::new(d, PwlExp::accurate_default());
        let mut last = None;
        for (q, k, v) in stream(13, 150, d) {
            last = Some(tile.step(&q, &k, &v));
        }
        let last = last.unwrap();
        assert_eq!(last.n, 150);
        assert!(
            last.keys_read < last.n,
            "read {} keys at n={}",
            last.keys_read,
            last.n
        );
    }

    #[test]
    fn stage_cycles_follow_eq7_terms() {
        let d = 16;
        let mut tile = TileEngine::new(d, PwlExp::accurate_default());
        let mut result = None;
        for (q, k, v) in stream(14, 130, d) {
            result = Some(tile.step(&q, &k, &v));
        }
        let result = result.unwrap();
        let (eas, apid, md, ac) = result.stage_cycles;
        // APID processes n positions 12 at a time.
        assert_eq!(apid, (result.n as u64).div_ceil(12));
        // MD handles the active FIFO (cached actives + the 17 window
        // positions), two per cycle.
        let fifo = result.active as u64 + 17;
        assert_eq!(md, fifo.div_ceil(2));
        // EAS cycles scale with the center count.
        assert!(eas as usize >= tile.centers().len());
        // AC covers at least the mode-based numerator columns.
        assert!(ac >= (d as u64).div_ceil(3));
        assert!(result.bottleneck_cycles() >= md);
    }

    #[test]
    fn cache_admission_follows_window() {
        let d = 8;
        let mut tile = TileEngine::with_policies(d, PwlExp::accurate_default(), 4, 0.98);
        for (i, (q, k, v)) in stream(15, 20, d).into_iter().enumerate() {
            let result = tile.step(&q, &k, &v);
            let n = i + 1;
            if n <= 5 {
                assert_eq!(result.active, 0, "nothing cached before the window fills");
            }
        }
        // cached_upto advanced to n - window.
        assert_eq!(tile.cached_upto, 20 - 4);
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn dim_checked() {
        TileEngine::new(4, PwlExp::accurate_default()).step(&[1.0; 3], &[0.0; 4], &[0.0; 4]);
    }
}
