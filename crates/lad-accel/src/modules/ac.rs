//! Attention Computation module (paper Sec. IV-B(5), Alg. 2).
//!
//! Owns a `(d+1)`-dimensional accumulator and a reduction module (element-
//! wise sum of four `(d+1)`-vectors per cycle), fed by three computation
//! components (parallelism 3). Eight sub-tasks:
//!
//! * **AC.1** — mode-based numerator `q·A − max_s·B + C` (3 columns/cycle);
//! * **AC.2** — mode-based denominator `q·D − max_s·E + F`;
//! * **AC.3** — correction factors `cf = α·s − max_s·α + β`, accumulating
//!   `cf·V[j]` and `cf` (3 corrections/cycle);
//! * **AC.4** — `output = numerator · (1/denominator)`;
//! * **AC.5** — rank-1 updates of `A` per update-FIFO entry (column-wise);
//! * **AC.6–AC.8** — `basic_update`s of `(B,E)`, `(C,F)` and `D`.
//!
//! Together these realise the `(d + |J| + |U|·d + 3|U|)/3` term of Eq. 7.

use super::md::Correction;
use super::vpu::Vpu;

/// SRAM-resident intermediate caches of one head-sample, laid out as the AC
/// module accesses them: `A` row-major with `a[k·d + c] = Σ a*·k[k]·v[c]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSram {
    dim: usize,
    a: Vec<f32>,
    b: Vec<f32>,
    c: Vec<f32>,
    d_vec: Vec<f32>,
    e: f32,
    f: f32,
}

impl CacheSram {
    /// Zeroed caches for head dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> CacheSram {
        assert!(dim > 0, "CacheSram: dim must be positive");
        CacheSram {
            dim,
            a: vec![0.0; dim * dim],
            b: vec![0.0; dim],
            c: vec![0.0; dim],
            d_vec: vec![0.0; dim],
            e: 0.0,
            f: 0.0,
        }
    }

    /// Head dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Column `p` of `A` (the k-dimension varies), gathered for a VPU dot.
    fn a_column(&self, p: usize) -> Vec<f32> {
        (0..self.dim).map(|k| self.a[k * self.dim + p]).collect()
    }

    /// fp16 byte footprint: `(d² + 3d + 2) · 2`.
    pub fn fp16_bytes(&self) -> usize {
        (self.dim * self.dim + 3 * self.dim + 2) * 2
    }
}

/// Result of one AC pass.
#[derive(Debug, Clone, PartialEq)]
pub struct AcResult {
    /// The attention output vector.
    pub output: Vec<f32>,
    /// Denominator after corrections (diagnostic).
    pub denominator: f32,
    /// Module cycles.
    pub cycles: u64,
}

/// The AC module: three computation components and the accumulator.
#[derive(Debug, Clone)]
pub struct AcModule {
    components: [Vpu; 3],
    acc: Vec<f32>,
}

impl AcModule {
    /// Creates the module for head dimension `width`.
    pub fn new(width: usize) -> AcModule {
        AcModule {
            components: [Vpu::new(width), Vpu::new(width), Vpu::new(width)],
            acc: vec![0.0; width + 1],
        }
    }

    /// Executes AC.1–AC.8 for one decoding step.
    ///
    /// `corrections` is the MD module's FIFO; `updates` indexes into it
    /// (the update FIFO). `keys`/`values` is the KV cache.
    // The argument list mirrors the hardware module's port list.
    #[allow(clippy::too_many_arguments)]
    pub fn execute(
        &mut self,
        q_scaled: &[f32],
        max_score: f32,
        sram: &mut CacheSram,
        corrections: &[Correction],
        updates: &[usize],
        keys: &[Vec<f32>],
        values: &[Vec<f32>],
    ) -> AcResult {
        let d = sram.dim();
        assert_eq!(q_scaled.len(), d, "AC: query dim mismatch");
        let mut cycles = 0u64;

        // -- AC.1: mode-based numerator, three columns per cycle.
        for p in 0..d {
            let component = &mut self.components[p % 3];
            component.load_vec1(q_scaled);
            let qa = component.dot(&sram.a_column(p));
            self.acc[p] = qa - max_score * sram.b[p] + sram.c[p];
        }
        cycles += (d as u64).div_ceil(3);

        // -- AC.2: mode-based denominator.
        self.components[0].load_vec1(q_scaled);
        let qd = self.components[0].dot(&sram.d_vec);
        self.acc[d] = qd - max_score * sram.e + sram.f;
        cycles += 1;

        // -- AC.3: corrections, three per cycle through the reduction module.
        for chunk in corrections.chunks(3) {
            for (m, corr) in chunk.iter().enumerate() {
                let cf = corr.alpha_s - max_score * corr.alpha + corr.beta;
                let component = &mut self.components[m];
                component.load_vec1(&values[corr.position]);
                let rv = component.scale(cf, &values[corr.position]);
                // Reduction module: acc += rv, acc[d] += rs.
                for (slot, v) in self.acc[..d].iter_mut().zip(&rv) {
                    *slot += v;
                }
                self.acc[d] += cf;
            }
            cycles += 1;
        }

        // -- AC.4: output = numerator * (1 / denominator).
        let denominator = self.acc[d];
        let inv = 1.0 / denominator;
        let output = self.components[0].scale(inv, &self.acc[..d]);
        cycles += 1;

        // -- AC.5: update A column-by-column for the update FIFO.
        if !updates.is_empty() {
            // Alg. 2's column loop: `r` indexes both V[u, r] and A[:, r].
            #[allow(clippy::needless_range_loop)]
            for r in 0..d {
                for chunk in updates.chunks(3) {
                    for (m, &u) in chunk.iter().enumerate() {
                        let corr = &corrections[u];
                        let factor = corr.alpha * values[corr.position][r];
                        let component = &mut self.components[m];
                        let rv = component.scale(factor, &keys[corr.position]);
                        for (k, v) in rv.iter().enumerate() {
                            sram.a[k * d + r] += v;
                        }
                    }
                }
            }
            cycles += d as u64 * (updates.len() as u64).div_ceil(3);

            // -- AC.6: basic_update(alpha, B, E, V).
            for &u in updates {
                let corr = &corrections[u];
                for (slot, v) in sram.b.iter_mut().zip(&values[corr.position]) {
                    *slot += corr.alpha * v;
                }
                sram.e += corr.alpha;
            }
            // -- AC.7: basic_update(beta, C, F, V).
            for &u in updates {
                let corr = &corrections[u];
                for (slot, v) in sram.c.iter_mut().zip(&values[corr.position]) {
                    *slot += corr.beta * v;
                }
                sram.f += corr.beta;
            }
            // -- AC.8: basic_update(alpha, D, NULL, K).
            for &u in updates {
                let corr = &corrections[u];
                for (slot, k) in sram.d_vec.iter_mut().zip(&keys[corr.position]) {
                    *slot += corr.alpha * k;
                }
            }
            cycles += 3 * (updates.len() as u64).div_ceil(3);
        }

        AcResult {
            output,
            denominator,
            cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_math::Rng;

    fn correction(position: usize, score: f32, alpha: f32, beta: f32) -> Correction {
        Correction {
            position,
            score,
            alpha,
            beta,
            alpha_s: alpha * score,
            interval: 0,
        }
    }

    #[test]
    fn empty_cache_single_window_position_returns_value() {
        // One window position with mode-0 coefficients: the correction IS
        // the full PWL weight, so output == value.
        let d = 4;
        let mut ac = AcModule::new(d);
        let mut sram = CacheSram::new(d);
        let keys = vec![vec![1.0; d]];
        let values = vec![vec![2.0, -1.0, 0.5, 3.0]];
        // cf = alpha*(s - m) + beta with alpha=0.6, beta=0.9, s=m -> cf=0.9.
        let corr = correction(0, 0.0, 0.6, 0.9);
        let result = ac.execute(&[0.5; 4], 0.0, &mut sram, &[corr], &[], &keys, &values);
        for (got, want) in result.output.iter().zip(&values[0]) {
            assert!((got - want).abs() < 1e-5, "{got} vs {want}");
        }
        assert!((result.denominator - 0.9).abs() < 1e-6);
    }

    #[test]
    fn update_fifo_inserts_into_caches() {
        // An aged position (mode 0 -> id) must land in the caches exactly as
        // Eq.5 prescribes: A = a·kᵀv, B = a·v, C = b·v, D = a·k, E = a, F = b.
        let d = 2;
        let mut ac = AcModule::new(d);
        let mut sram = CacheSram::new(d);
        let keys = vec![vec![1.0, -2.0]];
        let values = vec![vec![0.5, 4.0]];
        let corr = correction(0, 0.0, 0.3, 0.05);
        ac.execute(&[0.0; 2], 0.0, &mut sram, &[corr], &[0], &keys, &values);
        // A[k][c] = 0.3 * k[k] * v[c].
        assert!((sram.a[0] - 0.3 * 1.0 * 0.5).abs() < 1e-6);
        assert!((sram.a[1] - 0.3 * 1.0 * 4.0).abs() < 1e-6);
        assert!((sram.a[2] - 0.3 * -2.0 * 0.5).abs() < 1e-6);
        assert!((sram.a[3] - 0.3 * -2.0 * 4.0).abs() < 1e-6);
        assert!((sram.b[1] - 1.2).abs() < 1e-6);
        assert!((sram.c[0] - 0.025).abs() < 1e-6);
        assert!((sram.d_vec[1] + 0.6).abs() < 1e-6);
        assert!((sram.e - 0.3).abs() < 1e-6);
        assert!((sram.f - 0.05).abs() < 1e-6);
    }

    #[test]
    fn cached_evaluation_matches_direct_sum() {
        // Build caches through updates, then check AC.1/AC.2 against the
        // explicit weighted sum.
        let d = 3;
        let mut rng = Rng::new(5);
        let keys: Vec<Vec<f32>> = (0..4).map(|_| rng.normal_vec(d, 1.0)).collect();
        let values: Vec<Vec<f32>> = (0..4).map(|_| rng.normal_vec(d, 1.0)).collect();
        let coeffs = [(0.4f32, 0.1f32), (0.2, 0.3), (0.7, 0.0), (0.1, 0.05)];

        let mut ac = AcModule::new(d);
        let mut sram = CacheSram::new(d);
        for (i, &(a, b)) in coeffs.iter().enumerate() {
            let corr = correction(i, 0.0, a, b);
            ac.execute(&[0.0; 3], 0.0, &mut sram, &[corr], &[0], &keys, &values);
        }

        let q = [0.3f32, -0.5, 0.8];
        let m = 0.25f32;
        let result = ac.execute(&q, m, &mut sram, &[], &[], &keys, &values);
        // Expected: sum over positions of (a(q·k − m) + b)·v / denominator.
        let mut num = [0.0f32; 3];
        let mut den = 0.0f32;
        for (i, &(a, b)) in coeffs.iter().enumerate() {
            let s: f32 = q.iter().zip(&keys[i]).map(|(x, y)| x * y).sum();
            let w = a * (s - m) + b;
            den += w;
            for (slot, v) in num.iter_mut().zip(&values[i]) {
                *slot += w * v;
            }
        }
        assert!((result.denominator - den).abs() < 1e-4);
        for (got, want) in result.output.iter().zip(num.iter().map(|x| x / den)) {
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
    }

    #[test]
    fn cycle_model_matches_eq7_term() {
        let d = 12;
        let mut ac = AcModule::new(d);
        let mut sram = CacheSram::new(d);
        let mut rng = Rng::new(6);
        let keys: Vec<Vec<f32>> = (0..9).map(|_| rng.normal_vec(d, 1.0)).collect();
        let values: Vec<Vec<f32>> = (0..9).map(|_| rng.normal_vec(d, 1.0)).collect();
        let corrections: Vec<Correction> = (0..9).map(|i| correction(i, 0.1, 0.2, 0.05)).collect();
        let updates = vec![0usize, 3, 7];
        let result = ac.execute(
            &vec![0.1; d],
            0.0,
            &mut sram,
            &corrections,
            &updates,
            &keys,
            &values,
        );
        // d/3 + 1 + |J|/3 + 1 + d*ceil(|U|/3) + 3*ceil(|U|/3)
        let expected = (12u64.div_ceil(3)) + 1 + (9u64.div_ceil(3)) + 1 + 12 + 3;
        assert_eq!(result.cycles, expected);
    }

    #[test]
    fn zero_corrections_pure_cache_path() {
        let d = 2;
        let mut ac = AcModule::new(d);
        let mut sram = CacheSram::new(d);
        let keys = vec![vec![1.0, 0.0]];
        let values = vec![vec![5.0, -5.0]];
        ac.execute(
            &[0.0; 2],
            0.0,
            &mut sram,
            &[correction(0, 0.0, 0.5, 0.5)],
            &[0],
            &keys,
            &values,
        );
        // Pure cache evaluation with no corrections.
        let result = ac.execute(&[2.0, 0.0], 0.0, &mut sram, &[], &[], &keys, &values);
        // w = 0.5*(q·k) + 0.5 = 1.5 -> output = v.
        assert!((result.denominator - 1.5).abs() < 1e-5);
        assert!((result.output[0] - 5.0).abs() < 1e-4);
    }
}
