//! The `G` tensor (paper Sec. IV-C).
//!
//! All small per-position bookkeeping is coalesced into a tensor of shape
//! `n × 4` with 16-bit elements: `norm` (fp16), `dnorm` (fp16), `cid`
//! (uint16) and `mode:cnt` packed as `uint4:uint12`. Stage 1 of the
//! attention pipeline streams it from HBM; this model stores the same fields
//! with the same precision limits so storage-induced quantisation is
//! faithful.

use lad_math::F16;

/// Maximum value of the packed `uint12` counter.
pub const CNT_MAX: u16 = 0x0FFF;

/// Maximum value of the packed `uint4` mode.
pub const MODE_MAX: u8 = 0x0F;

/// One position's packed record.
#[derive(Debug, Clone, Copy, PartialEq)]
struct GRow {
    norm: F16,
    dnorm: F16,
    cid: u16,
    /// `mode << 12 | cnt[mode]`-style packing is modelled by keeping the full
    /// counter array in a side table (hardware keeps per-interval counters in
    /// SRAM; the G tensor carries the mode's counter only).
    mode: u8,
}

/// The coalesced per-position bookkeeping tensor plus the per-interval
/// counter table the MD module reads.
#[derive(Debug, Clone, PartialEq)]
pub struct GTensor {
    intervals: usize,
    rows: Vec<GRow>,
    counters: Vec<Vec<u16>>,
}

impl GTensor {
    /// Creates an empty tensor for a partition with `intervals` intervals.
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is 0 or exceeds the `uint4` mode field.
    pub fn new(intervals: usize) -> GTensor {
        assert!(
            intervals > 0 && intervals <= MODE_MAX as usize + 1,
            "GTensor: intervals must fit the uint4 mode field"
        );
        GTensor {
            intervals,
            rows: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no positions are registered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Registers a new position with the given key norm, center id and
    /// signed norm ratio; mode defaults to 0 (paper Sec. IV-B(3)).
    pub fn push(&mut self, norm: f32, cid: usize, dnorm: f32) {
        self.rows.push(GRow {
            norm: F16::from_f32(norm),
            dnorm: F16::from_f32(dnorm),
            cid: cid as u16,
            mode: 0,
        });
        self.counters.push(vec![0; self.intervals]);
    }

    /// fp16-rounded key norm of `position`.
    pub fn norm(&self, position: usize) -> f32 {
        self.rows[position].norm.to_f32()
    }

    /// fp16-rounded signed norm ratio of `position`.
    pub fn dnorm(&self, position: usize) -> f32 {
        self.rows[position].dnorm.to_f32()
    }

    /// Center id of `position`.
    pub fn cid(&self, position: usize) -> usize {
        self.rows[position].cid as usize
    }

    /// Mode interval of `position`.
    pub fn mode(&self, position: usize) -> usize {
        self.rows[position].mode as usize
    }

    /// Counter of `interval` at `position`.
    pub fn counter(&self, position: usize, interval: usize) -> u16 {
        self.counters[position][interval]
    }

    /// Increments `interval`'s counter (uint12 saturation) and returns the
    /// new value.
    pub fn bump_counter(&mut self, position: usize, interval: usize) -> u16 {
        let slot = &mut self.counters[position][interval];
        if *slot < CNT_MAX {
            *slot += 1;
        }
        *slot
    }

    /// Overwrites the mode field (the MD module's update-mode signal).
    ///
    /// # Panics
    ///
    /// Panics if `mode` exceeds the interval count.
    pub fn set_mode(&mut self, position: usize, mode: usize) {
        assert!(mode < self.intervals, "set_mode: interval out of range");
        self.rows[position].mode = mode as u8;
    }

    /// HBM footprint in bytes: `n × 4` 16-bit fields.
    pub fn hbm_bytes(&self) -> usize {
        self.rows.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_field_access() {
        let mut g = GTensor::new(16);
        g.push(3.0, 0, 1.0);
        g.push(1.5, 0, -0.5);
        assert_eq!(g.len(), 2);
        assert_eq!(g.norm(0), 3.0);
        assert_eq!(g.dnorm(1), -0.5);
        assert_eq!(g.cid(1), 0);
        assert_eq!(g.mode(0), 0);
    }

    #[test]
    fn norms_are_fp16_quantised() {
        let mut g = GTensor::new(16);
        let exact = 1.0f32 / 3.0;
        g.push(exact, 0, exact);
        assert_eq!(g.norm(0), F16::from_f32(exact).to_f32());
        assert_ne!(g.norm(0), exact);
    }

    #[test]
    fn counters_saturate_at_uint12() {
        let mut g = GTensor::new(4);
        g.push(1.0, 0, 1.0);
        for _ in 0..5000 {
            g.bump_counter(0, 2);
        }
        assert_eq!(g.counter(0, 2), CNT_MAX);
    }

    #[test]
    fn mode_updates() {
        let mut g = GTensor::new(16);
        g.push(1.0, 0, 1.0);
        g.set_mode(0, 13);
        assert_eq!(g.mode(0), 13);
    }

    #[test]
    fn hbm_bytes_is_8n() {
        let mut g = GTensor::new(16);
        for _ in 0..100 {
            g.push(1.0, 0, 1.0);
        }
        assert_eq!(g.hbm_bytes(), 800);
    }

    #[test]
    #[should_panic(expected = "uint4")]
    fn too_many_intervals_rejected() {
        GTensor::new(17);
    }
}
