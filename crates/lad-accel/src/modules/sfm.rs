//! Special Function Module (paper Sec. IV-B(6)).
//!
//! `d` adders plus special scalar components (reciprocal / square root via
//! Taylor expansion, Sec. V-A). Handles the operators outside linear and
//! attention layers: LayerNorm delegates the vector scaling to a VPU and
//! keeps the scalar `γ/√V[X]` and the `X − E[X]` / `+β` element-wise adds;
//! RoPE delegates the two element-wise multiplies to VPUs and adds the
//! results.

use super::vpu::Vpu;

/// Result of an SFM operation.
#[derive(Debug, Clone, PartialEq)]
pub struct SfmResult {
    /// Output vector.
    pub output: Vec<f32>,
    /// Cycles spent in the SFM and its delegated VPU ops.
    pub cycles: u64,
}

/// The SFM: `d` adders and scalar special-function units.
#[derive(Debug, Clone, PartialEq)]
pub struct SfmModule {
    width: usize,
}

impl SfmModule {
    /// Creates an SFM with `width` adders.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> SfmModule {
        assert!(width > 0, "SfmModule: width must be positive");
        SfmModule { width }
    }

    /// Reciprocal square root via a two-term Taylor refinement around a
    /// table seed — the paper's Takagi-style scalar unit. Accurate to ~1e-6
    /// relative over the normalisation range.
    pub fn rsqrt(&self, x: f32) -> f32 {
        assert!(x > 0.0, "rsqrt: input must be positive");
        // Table seed: exponent halving via bit manipulation.
        let seed = f32::from_bits(0x5f37_59df_u32.wrapping_sub(x.to_bits() >> 1));
        // Two Newton refinements (each a Taylor step of 1/sqrt).
        let mut y = seed;
        for _ in 0..2 {
            y *= 1.5 - 0.5 * x * y * y;
        }
        y
    }

    /// LayerNorm-(γ, β): the SFM computes `E[X]`, `X − E[X]` and the scalar
    /// `γ/√(V[X]+eps)`; the vector scaling runs on the delegated VPU; the
    /// SFM adds `β`.
    ///
    /// # Panics
    ///
    /// Panics if vector widths mismatch.
    pub fn layer_norm(&self, x: &[f32], gamma: f32, beta: f32, vpu: &mut Vpu) -> SfmResult {
        assert_eq!(x.len(), self.width, "layer_norm: width mismatch");
        let n = x.len() as f32;
        // Adder tree: mean (1 cycle).
        let mean = x.iter().sum::<f32>() / n;
        // Element-wise subtract (1 cycle on the d adders).
        let centered: Vec<f32> = x.iter().map(|v| v - mean).collect();
        // Variance via VPU dot (1 cycle) + scalar ops (2 cycles).
        vpu.load_vec1(&centered);
        let var = vpu.dot(&centered) / n;
        let scale = gamma * self.rsqrt(var + 1e-5);
        // Vector scaling on the VPU (1 cycle), then +β on the adders (1).
        let scaled = vpu.scale(scale, &centered);
        let output: Vec<f32> = scaled.iter().map(|v| v + beta).collect();
        SfmResult { output, cycles: 6 }
    }

    /// RoPE: element-wise multiplies with the `cos` and rotated-`sin`
    /// vectors on VPUs, summed on the SFM adders.
    ///
    /// The rotation uses the pair convention of [`lad_model::layers::rope`]:
    /// consecutive pairs `(x[2i], x[2i+1])` rotate by `position · θᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the SFM width or is odd.
    pub fn rope(&self, x: &[f32], position: usize, base: f32, vpu: &mut Vpu) -> SfmResult {
        assert_eq!(x.len(), self.width, "rope: width mismatch");
        assert!(x.len().is_multiple_of(2), "rope: width must be even");
        let d = x.len();
        let mut cos_vec = vec![0.0f32; d];
        let mut sin_vec = vec![0.0f32; d];
        let mut swapped = vec![0.0f32; d];
        for i in 0..d / 2 {
            let theta = (position as f32) * base.powf(-2.0 * i as f32 / d as f32);
            let (sin, cos) = theta.sin_cos();
            cos_vec[2 * i] = cos;
            cos_vec[2 * i + 1] = cos;
            sin_vec[2 * i] = -sin;
            sin_vec[2 * i + 1] = sin;
            swapped[2 * i] = x[2 * i + 1];
            swapped[2 * i + 1] = x[2 * i];
        }
        // Two element-wise multiplies on the VPU (2 cycles).
        vpu.load_vec1(x);
        let term_cos = vpu.elementwise(&cos_vec);
        vpu.load_vec1(&swapped);
        let term_sin = vpu.elementwise(&sin_vec);
        // Sum on the SFM adders (1 cycle).
        let output: Vec<f32> = term_cos.iter().zip(&term_sin).map(|(a, b)| a + b).collect();
        SfmResult { output, cycles: 3 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_math::Rng;
    use lad_model::layers::{rope as golden_rope, LayerNorm, ROPE_BASE};

    #[test]
    fn rsqrt_is_accurate() {
        let sfm = SfmModule::new(4);
        for x in [0.01f32, 0.5, 1.0, 3.7, 100.0, 1e4] {
            let got = sfm.rsqrt(x);
            let want = 1.0 / x.sqrt();
            assert!(((got - want) / want).abs() < 1e-4, "x={x}: {got} vs {want}");
        }
    }

    #[test]
    fn layer_norm_matches_golden_model() {
        let d = 8;
        let sfm = SfmModule::new(d);
        let mut vpu = Vpu::new(d);
        let golden = LayerNorm::new(d);
        let mut rng = Rng::new(3);
        for _ in 0..20 {
            let x = rng.normal_vec(d, 2.0);
            let hw = sfm.layer_norm(&x, 1.0, 0.0, &mut vpu);
            let sw = golden.forward(&x);
            for (a, b) in hw.output.iter().zip(&sw) {
                assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
            assert_eq!(hw.cycles, 6);
        }
    }

    #[test]
    fn layer_norm_applies_gamma_beta() {
        let d = 4;
        let sfm = SfmModule::new(d);
        let mut vpu = Vpu::new(d);
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let plain = sfm.layer_norm(&x, 1.0, 0.0, &mut vpu).output;
        let scaled = sfm.layer_norm(&x, 2.0, 0.5, &mut vpu).output;
        for (p, s) in plain.iter().zip(&scaled) {
            assert!((s - (2.0 * p + 0.5)).abs() < 1e-4);
        }
    }

    #[test]
    fn rope_matches_golden_model() {
        let d = 8;
        let sfm = SfmModule::new(d);
        let mut vpu = Vpu::new(d);
        let mut rng = Rng::new(4);
        for pos in [0usize, 1, 17, 100] {
            let x = rng.normal_vec(d, 1.0);
            let hw = sfm.rope(&x, pos, ROPE_BASE, &mut vpu);
            let sw = golden_rope(&x, pos, ROPE_BASE);
            for (a, b) in hw.output.iter().zip(&sw) {
                assert!((a - b).abs() < 1e-4, "pos {pos}: {a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rsqrt_rejects_nonpositive() {
        SfmModule::new(2).rsqrt(0.0);
    }
}
