//! Functional cycle-level models of the LAD tile's hardware modules
//! (paper Sec. IV-B, Fig. 4/5, Alg. 2).
//!
//! The paper implements the tile in Verilog and functionally verifies the
//! RTL; offline, this module tree is the substitute: each hardware block is
//! modelled at the register-transfer level of *behaviour* — same dataflow,
//! same per-cycle parallelism, same lookup tables and FIFOs — with cycle
//! counting that reproduces the Eq. 7 latency terms. A [`tile::TileEngine`]
//! chains EAS → APID → MD → AC for a complete decoding step, and the test
//! suite verifies it against the golden algorithmic model in [`lad_core`].
//!
//! | block | paper | role |
//! |---|---|---|
//! | [`g_tensor`] | Sec. IV-C | the coalesced `norm/dnorm/cid/mode/cnt` tensor |
//! | [`vpu`] | Fig. 5(b) | vector processing unit (DP / EM / S ops) |
//! | [`sfm`] | Sec. IV-B(6) | special function module (LayerNorm, RoPE) |
//! | [`eas`] | Sec. IV-B(2) | attention scores + center updates (EAS.1–5) |
//! | [`apid`] | Sec. IV-B(3) | active-position identification, bound LUTs |
//! | [`md`] | Sec. IV-B(4) | accurate scores, interval comparators, α/β |
//! | [`ac`] | Sec. IV-B(5), Alg. 2 | attention computation + cache updates |
//! | [`tile`] | Sec. IV-C | the full per-step pipeline |

pub mod ac;
pub mod apid;
pub mod eas;
pub mod g_tensor;
pub mod md;
pub mod sfm;
pub mod tile;
pub mod vpu;

pub use g_tensor::GTensor;
pub use tile::{TileEngine, TileStepResult};
pub use vpu::Vpu;
