//! Active Position Identification module (paper Sec. IV-B(3)).
//!
//! Two pre-populated lookup tables hold the lower and upper bounds of every
//! interval. For each position the module looks up its mode interval's
//! bounds, compares `s[i] − max_s` against them and, on a miss, appends the
//! position to the active-position FIFO; on a hit it increments the mode's
//! counter. Positions not yet admitted to the intermediate caches (the
//! latest window) are in the FIFO by default with mode 0. Identification
//! parallelism is 12 positions per cycle sharing one LUT pair — the `n/12`
//! term of Eq. 7.

use super::g_tensor::GTensor;
use lad_math::pwl::PwlExp;
use lad_math::F16;

/// Result of one identification pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ApidResult {
    /// The active-position FIFO, position order (cached misses + the whole
    /// uncached window).
    pub active: Vec<usize>,
    /// Module cycles (`ceil(n / 12)`).
    pub cycles: u64,
}

/// The APID module with its interval-bound LUTs.
#[derive(Debug, Clone, PartialEq)]
pub struct ApidModule {
    lower: Vec<F16>,
    upper: Vec<F16>,
    parallelism: u64,
}

impl ApidModule {
    /// Builds the LUTs from a partition. Parallelism degree 12 per the
    /// paper.
    pub fn new(pwl: &PwlExp) -> ApidModule {
        let mut lower = Vec::with_capacity(pwl.num_intervals());
        let mut upper = Vec::with_capacity(pwl.num_intervals());
        for i in 0..pwl.num_intervals() {
            let (lo, hi) = pwl.interval_bounds(i);
            lower.push(if lo.is_finite() {
                F16::from_f32(lo as f32)
            } else {
                F16::NEG_INFINITY
            });
            upper.push(F16::from_f32(hi as f32));
        }
        ApidModule {
            lower,
            upper,
            parallelism: 12,
        }
    }

    /// Number of intervals in the LUTs.
    pub fn intervals(&self) -> usize {
        self.lower.len()
    }

    /// Identifies active positions. Positions `>= cached_upto` are the
    /// uncached window: active by default, no counter bump here (the MD
    /// module counts them with their true interval).
    pub fn identify(
        &self,
        scores: &[f32],
        max_score: f32,
        g: &mut GTensor,
        cached_upto: usize,
    ) -> ApidResult {
        let n = scores.len();
        assert_eq!(g.len(), n, "APID: G tensor must cover every position");
        let mut active = Vec::new();
        for (i, &s) in scores.iter().enumerate() {
            if i >= cached_upto {
                active.push(i);
                continue;
            }
            let mode = g.mode(i);
            let shifted = s - max_score;
            let lo = self.lower[mode].to_f32();
            let hi = self.upper[mode].to_f32();
            if shifted < lo || shifted > hi {
                active.push(i);
            } else {
                g.bump_counter(i, mode);
            }
        }
        ApidResult {
            active,
            cycles: (n as u64).div_ceil(self.parallelism),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> GTensor {
        let mut g = GTensor::new(5);
        for _ in 0..n {
            g.push(1.0, 0, 1.0);
        }
        g
    }

    #[test]
    fn window_positions_are_default_active() {
        let pwl = PwlExp::paper_default();
        let apid = ApidModule::new(&pwl);
        let mut g = setup(5);
        // Scores all deep in interval 0 == mode, cached_upto = 3.
        let result = apid.identify(&[-20.0; 5], 0.0, &mut g, 3);
        assert_eq!(result.active, vec![3, 4]);
    }

    #[test]
    fn mode_miss_marks_active_and_hit_bumps_counter() {
        let pwl = PwlExp::paper_default();
        let apid = ApidModule::new(&pwl);
        let mut g = setup(2);
        g.set_mode(0, 4); // [-1, 0]
        g.set_mode(1, 4);
        // Position 0 inside its mode, position 1 far outside.
        let result = apid.identify(&[-0.5, -7.0], 0.0, &mut g, 2);
        assert_eq!(result.active, vec![1]);
        assert_eq!(g.counter(0, 4), 1);
        assert_eq!(g.counter(1, 4), 0);
    }

    #[test]
    fn cycles_are_n_over_12() {
        let pwl = PwlExp::paper_default();
        let apid = ApidModule::new(&pwl);
        let mut g = setup(100);
        let result = apid.identify(&vec![-20.0; 100], 0.0, &mut g, 100);
        assert_eq!(result.cycles, 9);
        assert_eq!(apid.intervals(), 5);
    }

    #[test]
    fn unbounded_interval_lower_bound_is_neg_infinity() {
        let pwl = PwlExp::paper_default();
        let apid = ApidModule::new(&pwl);
        let mut g = setup(1);
        // Mode 0 covers (-inf, -10]: any very negative score is a hit.
        let result = apid.identify(&[-1.0e4], 0.0, &mut g, 1);
        assert!(result.active.is_empty());
        assert_eq!(g.counter(0, 0), 1);
    }

    #[test]
    fn boundary_scores_are_hits() {
        let pwl = PwlExp::paper_default();
        let apid = ApidModule::new(&pwl);
        let mut g = setup(1);
        g.set_mode(0, 3); // [-3, -1]
                          // Exactly on the bound: inclusive check, not active.
        let result = apid.identify(&[-3.0], 0.0, &mut g, 1);
        assert!(result.active.is_empty());
    }
}
