//! Vector processing unit (paper Fig. 5(b)).
//!
//! A VPU carries `d` multipliers and an adder tree. Its first vector operand
//! is latched into `d` registers (reducing SRAM reads across a vector-matrix
//! product); the multiplexers then select between register-sourced (`DP`,
//! `EM`) and broadcast-scalar (`S`) operation. Every operation consumes one
//! cycle, which the unit counts.

/// Functional VPU model with cycle accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Vpu {
    width: usize,
    regs: Vec<f32>,
    cycles: u64,
}

impl Vpu {
    /// Creates a VPU with `width` multipliers.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Vpu {
        assert!(width > 0, "Vpu: width must be positive");
        Vpu {
            width,
            regs: vec![0.0; width],
            cycles: 0,
        }
    }

    /// Number of multipliers.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets the cycle counter (start of a new period).
    pub fn reset_cycles(&mut self) {
        self.cycles = 0;
    }

    /// Latches `i_vec1` into the operand registers (free: overlaps the
    /// preceding op's write-back in hardware).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != width`.
    pub fn load_vec1(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.width, "Vpu::load_vec1: width mismatch");
        self.regs.copy_from_slice(v);
    }

    /// `DP`: dot product of the latched registers with `i_vec2`, through the
    /// adder tree to `o_scal`. One cycle.
    ///
    /// # Panics
    ///
    /// Panics if `i_vec2.len() != width`.
    pub fn dot(&mut self, i_vec2: &[f32]) -> f32 {
        assert_eq!(i_vec2.len(), self.width, "Vpu::dot: width mismatch");
        self.cycles += 1;
        self.regs.iter().zip(i_vec2).map(|(a, b)| a * b).sum()
    }

    /// `EM`: element-wise product of the latched registers with `i_vec2`,
    /// out through `o_vec`. One cycle.
    ///
    /// # Panics
    ///
    /// Panics if `i_vec2.len() != width`.
    pub fn elementwise(&mut self, i_vec2: &[f32]) -> Vec<f32> {
        assert_eq!(i_vec2.len(), self.width, "Vpu::elementwise: width mismatch");
        self.cycles += 1;
        self.regs.iter().zip(i_vec2).map(|(a, b)| a * b).collect()
    }

    /// `S`: broadcast `i_scal` to all multipliers and scale `i_vec2`. One
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics if `i_vec2.len() != width`.
    pub fn scale(&mut self, i_scal: f32, i_vec2: &[f32]) -> Vec<f32> {
        assert_eq!(i_vec2.len(), self.width, "Vpu::scale: width mismatch");
        self.cycles += 1;
        i_vec2.iter().map(|v| v * i_scal).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_via_registers() {
        let mut vpu = Vpu::new(4);
        vpu.load_vec1(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(vpu.dot(&[1.0, 1.0, 1.0, 1.0]), 10.0);
        // Registers persist across ops (the whole point of latching).
        assert_eq!(vpu.dot(&[0.0, 0.0, 0.0, 2.0]), 8.0);
        assert_eq!(vpu.cycles(), 2);
    }

    #[test]
    fn elementwise_and_scale() {
        let mut vpu = Vpu::new(3);
        vpu.load_vec1(&[2.0, -1.0, 0.5]);
        assert_eq!(vpu.elementwise(&[3.0, 3.0, 4.0]), vec![6.0, -3.0, 2.0]);
        // Scale ignores the registers entirely (mux port 1).
        assert_eq!(vpu.scale(0.5, &[2.0, 4.0, 8.0]), vec![1.0, 2.0, 4.0]);
        assert_eq!(vpu.cycles(), 2);
    }

    #[test]
    fn cycle_counter_resets() {
        let mut vpu = Vpu::new(2);
        vpu.load_vec1(&[1.0, 1.0]);
        vpu.dot(&[1.0, 1.0]);
        vpu.reset_cycles();
        assert_eq!(vpu.cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_checked() {
        Vpu::new(4).dot(&[1.0; 3]);
    }
}
