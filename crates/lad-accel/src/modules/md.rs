//! Mode Discrepancy module (paper Sec. IV-B(4)).
//!
//! For every position in the active FIFO, the module computes the *accurate*
//! attention score `s[j] = <q, K[j,:]>` (reading the key from the KV cache),
//! converts `s[j] − max_s` to an interval index with a comparator array over
//! the interval lower bounds, increments the matching counter, and raises
//! the update-mode signal when the incremented counter exceeds the mode's.
//! Coefficient LUTs (2·I fp16 entries) produce `α = a[id] − a[mode]`,
//! `β = b[id] − b[mode]` and `α·s` for the AC module.
//!
//! The update-mode signal is ignored for the uncached window positions
//! except the earliest one (the position ageing into the caches this step)
//! — that one is forced into the update FIFO so AC adds its key/value to
//! the intermediate caches. Parallelism degree 2 (two VPUs), the `|J|/2`
//! term of Eq. 7.

use super::g_tensor::GTensor;
use super::vpu::Vpu;
use lad_math::pwl::PwlExp;
use lad_math::F16;

/// One active position's correction record (MD → AC).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correction {
    /// Position index in the KV cache.
    pub position: usize,
    /// Accurate score `<q, k_j>`.
    pub score: f32,
    /// `a[id] − a[mode]`.
    pub alpha: f32,
    /// `b[id] − b[mode]`.
    pub beta: f32,
    /// Pre-multiplied `α · s` (the `_α` operand of AC.3).
    pub alpha_s: f32,
    /// The interval the score actually fell in.
    pub interval: usize,
}

/// Result of one MD pass.
#[derive(Debug, Clone, PartialEq)]
pub struct MdResult {
    /// Correction records for every active position, FIFO order.
    pub corrections: Vec<Correction>,
    /// The update FIFO: corrections (by index into `corrections`) whose
    /// positions' cache contributions must be rewritten by AC.5–AC.8.
    pub updates: Vec<usize>,
    /// Module cycles (`ceil(|J| / 2)`).
    pub cycles: u64,
    /// Keys read from the KV cache.
    pub keys_read: usize,
}

/// The MD module with its comparator array and coefficient LUTs.
#[derive(Debug, Clone)]
pub struct MdModule {
    lower: Vec<f32>,
    coeff_a: Vec<F16>,
    coeff_b: Vec<F16>,
    lanes: [Vpu; 2],
}

impl MdModule {
    /// Builds the LUTs from a partition for head dimension `width`.
    pub fn new(pwl: &PwlExp, width: usize) -> MdModule {
        let mut lower = Vec::new();
        let mut coeff_a = Vec::new();
        let mut coeff_b = Vec::new();
        for i in 0..pwl.num_intervals() {
            let (lo, _) = pwl.interval_bounds(i);
            lower.push(if lo.is_finite() {
                lo as f32
            } else {
                f32::NEG_INFINITY
            });
            let (a, b) = pwl.coeffs(i);
            coeff_a.push(F16::from_f32(a as f32));
            coeff_b.push(F16::from_f32(b as f32));
        }
        MdModule {
            lower,
            coeff_a,
            coeff_b,
            lanes: [Vpu::new(width), Vpu::new(width)],
        }
    }

    /// The comparator array: index of the interval with the largest lower
    /// bound not exceeding `shifted`.
    pub fn interval_of(&self, shifted: f32) -> usize {
        let mut id = 0usize;
        for (i, &lo) in self.lower.iter().enumerate() {
            if lo <= shifted {
                id = i;
            }
        }
        id
    }

    /// Processes the active FIFO.
    ///
    /// `aged_position` is the earliest window position crossing into the
    /// caches this step (`None` before the window fills); its update-mode
    /// signal is forced. Window positions are those `>= cached_upto`.
    #[allow(clippy::too_many_arguments)]
    pub fn process(
        &mut self,
        q_scaled: &[f32],
        keys: &[Vec<f32>],
        active: &[usize],
        max_score: f32,
        g: &mut GTensor,
        cached_upto: usize,
        aged_position: Option<usize>,
    ) -> MdResult {
        for lane in &mut self.lanes {
            lane.reset_cycles();
        }
        let mut corrections = Vec::with_capacity(active.len());
        let mut updates = Vec::new();
        for (idx, &j) in active.iter().enumerate() {
            let lane = &mut self.lanes[idx % 2];
            lane.load_vec1(q_scaled);
            let score = lane.dot(&keys[j]);
            let shifted = score - max_score;
            let id = self.interval_of(shifted);
            let mode = g.mode(j);
            let a_id = self.coeff_a[id].to_f32();
            let b_id = self.coeff_b[id].to_f32();
            let alpha = a_id - self.coeff_a[mode].to_f32();
            let beta = b_id - self.coeff_b[mode].to_f32();
            corrections.push(Correction {
                position: j,
                score,
                alpha,
                beta,
                alpha_s: alpha * score,
                interval: id,
            });

            let count = g.bump_counter(j, id);
            let is_window = j >= cached_upto;
            let is_aged = aged_position == Some(j);
            let exceeds_mode = id != mode && count > g.counter(j, mode);
            // Update-mode signal: ignored inside the window except for the
            // ageing position, which is forced into the update FIFO.
            if (!is_window && exceeds_mode) || is_aged {
                g.set_mode(j, id);
                updates.push(idx);
            }
        }
        MdResult {
            cycles: (active.len() as u64).div_ceil(2),
            keys_read: active.len(),
            corrections,
            updates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> MdModule {
        MdModule::new(&PwlExp::paper_default(), 2)
    }

    fn g_with(n: usize, modes: &[usize]) -> GTensor {
        let mut g = GTensor::new(5);
        for i in 0..n {
            g.push(1.0, 0, 1.0);
            if i < modes.len() {
                g.set_mode(i, modes[i]);
            }
        }
        g
    }

    #[test]
    fn comparator_array_matches_partition() {
        let md = module();
        let pwl = PwlExp::paper_default();
        for shifted in [-50.0f32, -10.0, -7.95, -5.34, -2.0, -0.5, 0.0] {
            assert_eq!(
                md.interval_of(shifted),
                pwl.interval_of(f64::from(shifted)),
                "shifted {shifted}"
            );
        }
    }

    #[test]
    fn false_positive_yields_zero_coefficients() {
        let mut md = module();
        // Score falls inside the mode interval (mode 1 = [-10,-6]).
        let keys = vec![vec![-8.0f32, 0.0]];
        let mut g = g_with(1, &[1]);
        let result = md.process(&[1.0, 0.0], &keys, &[0], 0.0, &mut g, 1, None);
        let c = result.corrections[0];
        assert_eq!(c.interval, 1);
        assert_eq!(c.alpha, 0.0);
        assert_eq!(c.beta, 0.0);
        assert!(result.updates.is_empty());
    }

    #[test]
    fn mode_change_requires_counter_majority() {
        let mut md = module();
        let keys = vec![vec![-2.0f32, 0.0]]; // interval 3
        let mut g = g_with(1, &[1]);
        // Mode 1 has 3 prior hits.
        for _ in 0..3 {
            g.bump_counter(0, 1);
        }
        // Three misses into interval 3: only the 4th record exceeds.
        for expected_updates in [0usize, 0, 0, 1] {
            let result = md.process(&[1.0, 0.0], &keys, &[0], 0.0, &mut g, 1, None);
            assert_eq!(result.updates.len(), expected_updates);
        }
        assert_eq!(g.mode(0), 3);
    }

    #[test]
    fn window_updates_ignored_except_aged() {
        let mut md = module();
        let keys = vec![vec![-2.0f32, 0.0], vec![-2.0, 0.0]];
        let mut g = g_with(2, &[0, 0]);
        // Both positions are in the window (cached_upto = 0); position 0 is
        // ageing in.
        let result = md.process(&[1.0, 0.0], &keys, &[0, 1], 0.0, &mut g, 0, Some(0));
        assert_eq!(result.updates, vec![0]);
        // The aged position's mode became its actual interval; the other
        // window position keeps default mode 0.
        assert_eq!(g.mode(0), 3);
        assert_eq!(g.mode(1), 0);
        // Both got their true-interval counters bumped.
        assert_eq!(g.counter(0, 3), 1);
        assert_eq!(g.counter(1, 3), 1);
    }

    #[test]
    fn alpha_beta_are_coefficient_differences() {
        let mut md = module();
        let pwl = PwlExp::paper_default();
        let keys = vec![vec![-5.34f32, 0.0]]; // interval 2 (paper Fig.3 step 4)
        let mut g = g_with(1, &[3]);
        let result = md.process(&[1.0, 0.0], &keys, &[0], 0.0, &mut g, 1, None);
        let c = result.corrections[0];
        let (a2, b2) = pwl.coeffs(2);
        let (a3, b3) = pwl.coeffs(3);
        assert!((f64::from(c.alpha) - (a2 - a3)).abs() < 1e-3);
        assert!((f64::from(c.beta) - (b2 - b3)).abs() < 1e-3);
        assert!((c.alpha_s - c.alpha * c.score).abs() < 1e-6);
    }

    #[test]
    fn cycles_are_half_the_fifo() {
        let mut md = module();
        let keys: Vec<Vec<f32>> = (0..9).map(|_| vec![-2.0, 0.0]).collect();
        let mut g = g_with(9, &[]);
        let active: Vec<usize> = (0..9).collect();
        let result = md.process(&[1.0, 0.0], &keys, &active, 0.0, &mut g, 9, None);
        assert_eq!(result.cycles, 5);
        assert_eq!(result.keys_read, 9);
    }
}
