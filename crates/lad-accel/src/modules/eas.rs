//! Efficient Attention Score module (paper Sec. IV-B(2)).
//!
//! Five sub-tasks per decoding step:
//!
//! * **EAS.1** — dot products between the query and the directional-center
//!   keys (one center per cycle per VPU lane).
//! * **EAS.2** — rescaling `s[i] ← s[cid[i]] · dnorm[i]` for all positions
//!   (128 positions per cycle — scalar multiplies, not VPU work).
//! * **EAS.3** — accurate scores for the large-mode set `M` (Sec. III-F),
//!   overwriting the approximations.
//! * **EAS.4** — the L2 norm of the newest key.
//! * **EAS.5** — cosine similarities between the newest key and every center,
//!   then the center-updater's combinational decision (Alg. 1 lines 10–17).
//!
//! The module has parallelism degree 2 (two VPUs, two positions per cycle);
//! its cycle count realises the `(2|C| + n/128 + |M|)/2` term of Eq. 7.
//! The running maximum score is tracked across EAS.1–EAS.3.

use super::g_tensor::GTensor;
use super::vpu::Vpu;

/// Output of one EAS pass.
#[derive(Debug, Clone, PartialEq)]
pub struct EasResult {
    /// Per-position attention scores (centers and `M` exact, rest
    /// approximated through `cid`/`dnorm`).
    pub scores: Vec<f32>,
    /// Which scores are exact.
    pub exact: Vec<bool>,
    /// Maximum score identified during EAS.1–EAS.3.
    pub max_score: f32,
    /// Module cycles for this pass (Eq. 7 EAS term).
    pub cycles: u64,
    /// Keys streamed from HBM (centers + large-mode positions).
    pub keys_read: usize,
}

/// The EAS module: two VPU lanes plus the center-updater registers.
#[derive(Debug, Clone)]
pub struct EasModule {
    lanes: [Vpu; 2],
    collinearity_threshold: f32,
}

impl EasModule {
    /// Creates the module for head dimension `width` with the Alg. 1
    /// collinearity threshold.
    pub fn new(width: usize, collinearity_threshold: f64) -> EasModule {
        EasModule {
            lanes: [Vpu::new(width), Vpu::new(width)],
            collinearity_threshold: collinearity_threshold as f32,
        }
    }

    /// Executes EAS.1–EAS.5 for one decoding step.
    ///
    /// `keys` is the full key cache with the newest key last; `g` holds
    /// bookkeeping for all *previous* keys and is extended with the newest
    /// one (EAS.4/5). `centers` is the ordered center-position list, extended
    /// when the new key founds a center. `large_modes` lists the positions
    /// whose scores must be exact.
    ///
    /// # Panics
    ///
    /// Panics if `g.len() + 1 != keys.len()`.
    pub fn execute(
        &mut self,
        q_scaled: &[f32],
        keys: &[Vec<f32>],
        g: &mut GTensor,
        centers: &mut Vec<usize>,
        large_modes: &[usize],
    ) -> EasResult {
        assert_eq!(
            g.len() + 1,
            keys.len(),
            "EAS: exactly one unregistered key expected"
        );
        let n = keys.len();
        let new_idx = n - 1;
        for lane in &mut self.lanes {
            lane.reset_cycles();
        }

        // -- EAS.4: L2 norm of the newest key (lane 0).
        self.lanes[0].load_vec1(&keys[new_idx]);
        let norm_sq = self.lanes[0].dot(&keys[new_idx]);
        let new_norm = norm_sq.sqrt();

        // -- EAS.5: cosine against every center; two per cycle.
        let mut max_cos = 0.0f32;
        let mut max_pos = 0usize;
        if new_norm > 0.0 {
            for (i, &c) in centers.iter().enumerate() {
                let lane = &mut self.lanes[i % 2];
                lane.load_vec1(&keys[new_idx]);
                let dot = lane.dot(&keys[c]);
                let center_norm = g.norm(c);
                if center_norm == 0.0 {
                    continue;
                }
                let cos = dot / (new_norm * center_norm);
                if cos.abs() > max_cos.abs() {
                    max_cos = cos;
                    max_pos = c;
                }
            }
        }
        // Center-updater combinational logic (Alg. 1 lines 10-17).
        if max_cos > self.collinearity_threshold {
            g.push(new_norm, max_pos, new_norm / g.norm(max_pos));
        } else if max_cos < -self.collinearity_threshold {
            g.push(new_norm, max_pos, -new_norm / g.norm(max_pos));
        } else {
            g.push(new_norm, new_idx, 1.0);
            centers.push(new_idx);
        }

        // -- EAS.1: exact scores of the centers, two per cycle.
        let mut center_score = vec![0.0f32; n];
        let mut scores = vec![0.0f32; n];
        let mut exact = vec![false; n];
        let mut max_score = f32::NEG_INFINITY;
        for (i, &c) in centers.iter().enumerate() {
            let lane = &mut self.lanes[i % 2];
            lane.load_vec1(q_scaled);
            let s = lane.dot(&keys[c]);
            center_score[c] = s;
            scores[c] = s;
            exact[c] = true;
            max_score = max_score.max(s);
        }

        // -- EAS.2: rescale every non-center position via cid/dnorm.
        for i in 0..n {
            if !exact[i] {
                scores[i] = center_score[g.cid(i)] * g.dnorm(i);
                max_score = max_score.max(scores[i]);
            }
        }

        // -- EAS.3: accurate scores for the large-mode set.
        let mut keys_read = centers.len();
        for &m in large_modes {
            if !exact[m] {
                let lane = &mut self.lanes[keys_read % 2];
                lane.load_vec1(q_scaled);
                scores[m] = lane.dot(&keys[m]);
                exact[m] = true;
                max_score = max_score.max(scores[m]);
                keys_read += 1;
            }
        }

        // Cycle model: VPU lanes did EAS.1 + EAS.3 + EAS.4/5; EAS.2 is
        // 128 scalar rescales per cycle, divided over the 2-lane datapath.
        let vpu_cycles = self.lanes.iter().map(Vpu::cycles).max().unwrap_or(0);
        let rescale_cycles = (n as u64).div_ceil(128).div_ceil(2);
        EasResult {
            scores,
            exact,
            max_score,
            cycles: vpu_cycles + rescale_cycles,
            keys_read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_math::Rng;

    fn setup(keys: &[Vec<f32>], threshold: f64) -> (EasModule, GTensor, Vec<usize>) {
        let d = keys[0].len();
        let mut eas = EasModule::new(d, threshold);
        let mut g = GTensor::new(16);
        let mut centers = Vec::new();
        // Register all but the last key by running EAS with a dummy query.
        let q = vec![0.0; d];
        for i in 0..keys.len() - 1 {
            eas.execute(&q, &keys[..=i], &mut g, &mut centers, &[]);
        }
        (eas, g, centers)
    }

    #[test]
    fn collinear_keys_share_centers() {
        let keys = vec![
            vec![1.0, 0.0],
            vec![3.0, 0.0],
            vec![0.0, 2.0],
            vec![-2.0, 0.0],
        ];
        let (mut eas, mut g, mut centers) = setup(&keys, 0.98);
        eas.execute(&[1.0, 0.0], &keys, &mut g, &mut centers, &[]);
        assert_eq!(centers, vec![0, 2]);
        assert_eq!(g.cid(1), 0);
        assert!((g.dnorm(1) - 3.0).abs() < 1e-3);
        // Anti-collinear key 3: negative dnorm.
        assert!((g.dnorm(3) + 2.0).abs() < 1e-3);
    }

    #[test]
    fn scores_reconstruct_exactly_for_collinear_keys() {
        let keys = vec![vec![2.0, 0.0], vec![4.0, 0.0], vec![-1.0, 0.0]];
        let (mut eas, mut g, mut centers) = setup(&keys, 0.98);
        let result = eas.execute(&[0.5, 0.0], &keys, &mut g, &mut centers, &[]);
        assert!((result.scores[0] - 1.0).abs() < 1e-3);
        assert!((result.scores[1] - 2.0).abs() < 1e-2);
        assert!((result.scores[2] + 0.5).abs() < 1e-2);
        assert!((result.max_score - 2.0).abs() < 1e-2);
    }

    #[test]
    fn large_mode_positions_get_exact_scores() {
        // An almost-collinear pair: approx score differs from exact; listing
        // the position in M must force exactness.
        let keys = vec![vec![1.0, 0.0], vec![1.0, 0.15], vec![0.0, 1.0]];
        let q = vec![0.0f32, 1.0];
        let (mut eas, mut g, mut centers) = setup(&keys, 0.95);
        // key 1 cos to key 0 = 1/sqrt(1.0225) ~ 0.989 > 0.95 -> grouped.
        let approx = eas.execute(&q, &keys, &mut g, &mut centers, &[]);
        assert!(!approx.exact[1]);
        assert!(
            (approx.scores[1] - 0.0).abs() < 1e-3,
            "approx misses the y component"
        );

        let (mut eas, mut g, mut centers) = setup(&keys, 0.95);
        let exact = eas.execute(&q, &keys, &mut g, &mut centers, &[1]);
        assert!(exact.exact[1]);
        assert!((exact.scores[1] - 0.15).abs() < 1e-3);
        assert_eq!(exact.keys_read, centers.len() + 1);
    }

    #[test]
    fn cycle_count_tracks_eq7_shape() {
        let mut rng = Rng::new(8);
        let d = 16;
        let keys: Vec<Vec<f32>> = (0..65).map(|_| rng.normal_vec(d, 1.0)).collect();
        let (mut eas, mut g, mut centers) = setup(&keys, 0.98);
        let before = centers.len() as u64;
        let result = eas.execute(&rng.normal_vec(d, 1.0), &keys, &mut g, &mut centers, &[]);
        // EAS.1 (~|C|/2) + EAS.5 (~|C|/2) + EAS.4 + rescale.
        let expected_min = before; // 2|C|/2
        assert!(
            result.cycles >= expected_min && result.cycles <= expected_min + 4,
            "cycles {} vs |C| {}",
            result.cycles,
            before
        );
    }

    #[test]
    fn new_key_registered_in_g() {
        let keys = vec![vec![1.0, 1.0]];
        let mut eas = EasModule::new(2, 0.98);
        let mut g = GTensor::new(16);
        let mut centers = Vec::new();
        eas.execute(&[1.0, 0.0], &keys, &mut g, &mut centers, &[]);
        assert_eq!(g.len(), 1);
        assert!((g.norm(0) - 2.0f32.sqrt()).abs() < 1e-3);
        assert_eq!(centers, vec![0]);
    }

    #[test]
    #[should_panic(expected = "one unregistered key")]
    fn requires_incremental_registration() {
        let keys = vec![vec![1.0], vec![2.0]];
        EasModule::new(1, 0.98).execute(&[1.0], &keys, &mut GTensor::new(4), &mut Vec::new(), &[]);
    }
}
