//! Event-level HBM channel simulation (the Ramulator-substitute's detailed
//! tier — `DESIGN.md`).
//!
//! The analytic model in [`crate::hbm`] answers "how long does this many
//! bytes take at peak"; this simulator answers "what bandwidth does this
//! *access pattern* actually achieve": requests are split into bursts,
//! address-interleaved across channels, and queued per channel with a fixed
//! service time per burst plus a row-miss penalty when a burst targets a
//! different row than its channel's open row. Scattered small reads (active
//! positions) therefore achieve less of the peak than streaming reads
//! (weights) — the effect behind LAD-GPU's gather inefficiency and the
//! attention pipeline's stage-4 behaviour.

use crate::hbm::HbmConfig;
use serde::{Deserialize, Serialize};

/// One memory request: a contiguous read/write of `bytes` at `address`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Byte address (determines channel interleaving and row locality).
    pub address: u64,
    /// Request size in bytes.
    pub bytes: u32,
}

impl Request {
    /// Convenience constructor.
    pub fn new(address: u64, bytes: u32) -> Request {
        Request { address, bytes }
    }
}

/// Outcome of simulating a request stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Wall-clock seconds to drain every channel queue.
    pub seconds: f64,
    /// Useful bytes moved.
    pub useful_bytes: u64,
    /// Bytes actually transferred (burst padding included).
    pub transferred_bytes: u64,
    /// Row-buffer hit fraction over all bursts.
    pub row_hit_ratio: f64,
    /// Achieved fraction of the stack's peak bandwidth.
    pub bandwidth_utilization: f64,
}

/// Channel-level HBM simulator.
#[derive(Debug, Clone)]
pub struct HbmSim {
    cfg: HbmConfig,
    /// Open row per channel (None = precharged).
    open_rows: Vec<Option<u64>>,
    /// Busy-until time per channel (seconds).
    busy_until: Vec<f64>,
    /// Row-buffer size in bytes.
    row_bytes: u64,
    /// Extra service time for a row miss, as a multiple of the burst time.
    row_miss_penalty: f64,
}

impl HbmSim {
    /// Creates a simulator over an HBM configuration. Rows are 1 KiB; a row
    /// miss costs two extra burst times (activate + precharge), a typical
    /// HBM2 ratio at 64 B bursts.
    pub fn new(cfg: HbmConfig) -> HbmSim {
        let channels = cfg.channels();
        HbmSim {
            cfg,
            open_rows: vec![None; channels],
            busy_until: vec![0.0; channels],
            row_bytes: 1024,
            row_miss_penalty: 2.0,
        }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &HbmConfig {
        &self.cfg
    }

    /// Resets all channel state.
    pub fn reset(&mut self) {
        self.open_rows.iter_mut().for_each(|r| *r = None);
        self.busy_until.iter_mut().for_each(|t| *t = 0.0);
    }

    fn burst_seconds(&self) -> f64 {
        self.cfg.burst_bytes as f64 / self.cfg.channel_bandwidth
    }

    /// Simulates a batch of requests issued at time 0 and returns the
    /// outcome. Channel state (open rows) persists across calls;
    /// [`HbmSim::reset`] clears it.
    pub fn run(&mut self, requests: &[Request]) -> SimOutcome {
        let burst = self.cfg.burst_bytes as u64;
        let burst_s = self.burst_seconds();
        let channels = self.cfg.channels() as u64;
        let mut useful = 0u64;
        let mut transferred = 0u64;
        let mut hits = 0u64;
        let mut bursts = 0u64;

        let start = self.busy_until.iter().copied().fold(0.0f64, f64::max);
        for req in requests {
            useful += u64::from(req.bytes);
            let first = req.address / burst;
            let last = (req.address + u64::from(req.bytes).max(1) - 1) / burst;
            for b in first..=last {
                // Address mapping: 256 B chunks interleave across channels
                // (column bits below the channel bits), so streams keep each
                // channel inside one row for many bursts while scattered
                // accesses land on random rows — the usual HBM2 layout.
                let chunk = b / 4;
                let ch = (chunk % channels) as usize;
                let local_chunk = chunk / channels;
                let row = local_chunk * 4 * burst / self.row_bytes;
                let hit = self.open_rows[ch] == Some(row);
                let service = if hit {
                    burst_s
                } else {
                    burst_s * (1.0 + self.row_miss_penalty)
                };
                self.open_rows[ch] = Some(row);
                self.busy_until[ch] = self.busy_until[ch].max(start) + service;
                transferred += burst;
                bursts += 1;
                if hit {
                    hits += 1;
                }
            }
        }
        let end = self.busy_until.iter().copied().fold(start, f64::max);
        let seconds = end - start;
        SimOutcome {
            seconds,
            useful_bytes: useful,
            transferred_bytes: transferred,
            row_hit_ratio: if bursts == 0 {
                1.0
            } else {
                hits as f64 / bursts as f64
            },
            bandwidth_utilization: if seconds == 0.0 {
                0.0
            } else {
                useful as f64 / seconds / self.cfg.total_bandwidth()
            },
        }
    }

    /// A streaming read of `bytes` starting at `address`.
    pub fn stream(&mut self, address: u64, bytes: u64) -> SimOutcome {
        self.run(&[Request::new(address, bytes as u32)])
    }

    /// A gather of `count` reads of `bytes` each at pseudo-random addresses
    /// (seeded) — the active-position access pattern.
    pub fn gather(&mut self, count: usize, bytes: u32, seed: u64) -> SimOutcome {
        let mut rng = lad_math::Rng::new(seed);
        let requests: Vec<Request> = (0..count)
            .map(|_| Request::new(rng.next_below(1 << 30) * 64, bytes))
            .collect();
        self.run(&requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> HbmSim {
        HbmSim::new(HbmConfig::paper())
    }

    #[test]
    fn streaming_achieves_near_peak() {
        let mut sim = sim();
        let outcome = sim.stream(0, 64 * 1024 * 1024);
        assert!(
            outcome.bandwidth_utilization > 0.3,
            "stream utilization {}",
            outcome.bandwidth_utilization
        );
        // Streams enjoy high row-buffer locality.
        assert!(
            outcome.row_hit_ratio > 0.9,
            "hits {}",
            outcome.row_hit_ratio
        );
        assert_eq!(outcome.useful_bytes, 64 * 1024 * 1024);
    }

    #[test]
    fn scattered_gathers_achieve_less() {
        let mut s1 = sim();
        let stream = s1.stream(0, 4 * 1024 * 1024);
        let mut s2 = sim();
        // Same useful volume in 64 B scattered pieces.
        let gather = s2.gather(65536, 64, 9);
        assert!(
            gather.bandwidth_utilization < stream.bandwidth_utilization,
            "gather {} vs stream {}",
            gather.bandwidth_utilization,
            stream.bandwidth_utilization
        );
        // Scattered accesses mostly miss the row buffers.
        assert!(gather.row_hit_ratio < 0.2, "hits {}", gather.row_hit_ratio);
    }

    #[test]
    fn padding_accounted_for_small_requests() {
        let mut sim = sim();
        let outcome = sim.run(&[Request::new(0, 16), Request::new(1024, 16)]);
        assert_eq!(outcome.useful_bytes, 32);
        assert_eq!(outcome.transferred_bytes, 128);
    }

    #[test]
    fn requests_spanning_bursts_split() {
        let mut sim = sim();
        // 100 bytes starting at 32 spans bursts 0 and 1 and part of 2.
        let outcome = sim.run(&[Request::new(32, 100)]);
        assert_eq!(outcome.transferred_bytes, 192);
    }

    #[test]
    fn channel_parallelism_speeds_up_streams() {
        // A stream across all channels beats the same bytes forced onto one
        // channel (requests 80 channels apart always map to channel 0).
        let mut wide = sim();
        let wide_out = wide.stream(0, 1024 * 1024);
        let mut narrow = sim();
        let stride = 80 * 256; // channels * chunk size
        let requests: Vec<Request> = (0..16384u64)
            .map(|i| Request::new(i * stride, 64))
            .collect();
        let narrow_out = narrow.run(&requests);
        assert!(narrow_out.seconds > wide_out.seconds * 10.0);
    }

    #[test]
    fn reset_clears_row_state() {
        let mut sim = sim();
        sim.stream(0, 4096);
        sim.reset();
        let outcome = sim.stream(0, 4096);
        // First burst after reset misses its row again.
        assert!(outcome.row_hit_ratio < 1.0);
    }

    #[test]
    fn analytic_model_brackets_simulation() {
        // The analytic peak-bandwidth estimate must lower-bound simulated
        // time for streams (which add row misses), and the padded analytic
        // estimate must not exceed the simulated gather time by much.
        let hbm = HbmConfig::paper();
        let mut s = sim();
        let bytes = 8 * 1024 * 1024u64;
        let stream = s.stream(0, bytes);
        let analytic = bytes as f64 / hbm.total_bandwidth();
        assert!(stream.seconds >= analytic);
        assert!(stream.seconds < analytic * 2.0);
    }
}
