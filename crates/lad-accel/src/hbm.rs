//! HBM2 model (substitute for Ramulator — see `DESIGN.md`).
//!
//! The paper configures 5 HBM2 cubes × 16 channels × 19.2 GB/s = 1.5 TB/s,
//! intentionally matching the A100's 1555 GB/s for a fair comparison, and
//! simulates accesses with Ramulator plus 3.9 pJ/bit energy. The paper only
//! consumes Ramulator's achieved bandwidth and energy, so this model captures
//! channel-level parallelism and burst-granularity efficiency: many small
//! scattered reads (active positions) achieve less than peak bandwidth, large
//! streaming reads approach it.

use serde::{Deserialize, Serialize};

/// HBM stack parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmConfig {
    /// Number of HBM cubes.
    pub cubes: usize,
    /// Channels per cube.
    pub channels_per_cube: usize,
    /// Per-channel bandwidth (bytes/s).
    pub channel_bandwidth: f64,
    /// Access (burst) granularity in bytes — transfers are rounded up to it.
    pub burst_bytes: usize,
    /// Access energy (pJ per bit), paper: 3.9 pJ/bit.
    pub pj_per_bit: f64,
}

impl HbmConfig {
    /// The paper's configuration: 5 cubes × 16 channels × 19.2 GB/s,
    /// 3.9 pJ/bit, 64 B bursts.
    pub fn paper() -> HbmConfig {
        HbmConfig {
            cubes: 5,
            channels_per_cube: 16,
            channel_bandwidth: 19.2e9,
            burst_bytes: 64,
            pj_per_bit: 3.9,
        }
    }

    /// Total channel count.
    pub fn channels(&self) -> usize {
        self.cubes * self.channels_per_cube
    }

    /// Aggregate peak bandwidth (bytes/s). Paper: 1.536 TB/s.
    pub fn total_bandwidth(&self) -> f64 {
        self.channels() as f64 * self.channel_bandwidth
    }

    /// Bandwidth efficiency of accesses of a given size: the fraction of a
    /// burst actually carrying useful data.
    pub fn efficiency(&self, access_bytes: usize) -> f64 {
        if access_bytes == 0 {
            return 1.0;
        }
        let bursts = access_bytes.div_ceil(self.burst_bytes);
        access_bytes as f64 / (bursts * self.burst_bytes) as f64
    }

    /// Seconds to transfer a stream of `count` accesses of `access_bytes`
    /// each at full-stack bandwidth, accounting for burst padding.
    pub fn transfer_seconds(&self, access_bytes: usize, count: usize) -> f64 {
        let bursts = access_bytes.div_ceil(self.burst_bytes).max(1);
        (bursts * self.burst_bytes * count) as f64 / self.total_bandwidth()
    }

    /// Seconds to stream `bytes` contiguously at a bandwidth share
    /// (`share_bytes_per_s`, e.g. one tile's slice).
    pub fn stream_seconds_at(&self, bytes: f64, share_bytes_per_s: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        bytes / share_bytes_per_s
    }

    /// Energy in joules to move `bytes` (useful bytes; burst padding also
    /// burns energy, so pass padded counts for scattered accesses).
    pub fn energy_joules(&self, bytes: f64) -> f64 {
        bytes * 8.0 * self.pj_per_bit * 1e-12
    }

    /// Padded byte count for `count` scattered accesses of `access_bytes`.
    pub fn padded_bytes(&self, access_bytes: usize, count: usize) -> f64 {
        (access_bytes.div_ceil(self.burst_bytes).max(1) * self.burst_bytes * count) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidth_matches_a100() {
        let hbm = HbmConfig::paper();
        assert_eq!(hbm.channels(), 80);
        let tb = hbm.total_bandwidth() / 1e12;
        // 1.536 TB/s ~ A100's 1555 GB/s.
        assert!((tb - 1.536).abs() < 1e-6, "got {tb}");
    }

    #[test]
    fn efficiency_penalises_small_accesses() {
        let hbm = HbmConfig::paper();
        assert_eq!(hbm.efficiency(64), 1.0);
        assert_eq!(hbm.efficiency(128), 1.0);
        assert_eq!(hbm.efficiency(32), 0.5);
        assert!((hbm.efficiency(96) - 0.75).abs() < 1e-12);
        assert_eq!(hbm.efficiency(0), 1.0);
    }

    #[test]
    fn transfer_time_scales_with_padding() {
        let hbm = HbmConfig::paper();
        let aligned = hbm.transfer_seconds(64, 1000);
        let padded = hbm.transfer_seconds(65, 1000);
        assert!((padded / aligned - 2.0).abs() < 1e-9);
    }

    #[test]
    fn energy_matches_pj_per_bit() {
        let hbm = HbmConfig::paper();
        // 1 GB at 3.9 pJ/bit = 1e9 * 8 * 3.9e-12 J = 31.2 mJ.
        let e = hbm.energy_joules(1e9);
        assert!((e - 0.0312).abs() < 1e-6, "got {e}");
    }

    #[test]
    fn padded_bytes_rounds_up() {
        let hbm = HbmConfig::paper();
        assert_eq!(hbm.padded_bytes(100, 2), 256.0);
        assert_eq!(hbm.padded_bytes(64, 3), 192.0);
    }
}
