//! Paged KV-cache block manager (the vLLM memory-management model the
//! paper's GPU baseline relies on, Sec. V-A).
//!
//! vLLM allocates KV cache in fixed-size blocks (16 tokens each) from a
//! device-memory pool, eliminating per-sequence over-reservation at the cost
//! of last-block internal fragmentation. This model reproduces that
//! behaviour: sequences grow one token at a time, blocks are allocated on
//! demand, freed on sequence completion, and capacity questions ("what batch
//! fits at length n?") account for fragmentation exactly as the paged pool
//! does.

use lad_model::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// Tokens per KV block (vLLM's default).
pub const BLOCK_TOKENS: usize = 16;

/// A paged KV-cache pool for one model on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockPool {
    /// Bytes of KV cache one block holds (all layers, one sequence).
    block_bytes: usize,
    /// Total blocks in the pool.
    total_blocks: usize,
    /// Free block count.
    free_blocks: usize,
    /// Live sequences: token counts.
    sequences: Vec<usize>,
}

impl BlockPool {
    /// Builds a pool for `model` given the device bytes available for KV
    /// cache (device memory minus weights and activations).
    ///
    /// # Panics
    ///
    /// Panics if `kv_budget_bytes` holds less than one block.
    pub fn new(model: &ModelConfig, kv_budget_bytes: usize) -> BlockPool {
        // Per token per layer: 2 tensors × hidden × 2 bytes.
        let token_bytes = model.layers * 2 * model.hidden * 2;
        let block_bytes = token_bytes * BLOCK_TOKENS;
        let total_blocks = kv_budget_bytes / block_bytes;
        assert!(total_blocks > 0, "BlockPool: budget below one block");
        BlockPool {
            block_bytes,
            total_blocks,
            free_blocks: total_blocks,
            sequences: Vec::new(),
        }
    }

    /// Pool capacity in blocks.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Currently free blocks.
    pub fn free_blocks(&self) -> usize {
        self.free_blocks
    }

    /// Live sequence count.
    pub fn live_sequences(&self) -> usize {
        self.sequences.len()
    }

    fn blocks_for(tokens: usize) -> usize {
        tokens.div_ceil(BLOCK_TOKENS)
    }

    /// Admits a sequence with `prompt_tokens` already present. Returns its
    /// id, or `None` if the pool cannot hold it.
    pub fn admit(&mut self, prompt_tokens: usize) -> Option<usize> {
        let needed = BlockPool::blocks_for(prompt_tokens.max(1));
        if needed > self.free_blocks {
            return None;
        }
        self.free_blocks -= needed;
        self.sequences.push(prompt_tokens.max(1));
        Some(self.sequences.len() - 1)
    }

    /// Appends one token to sequence `id`. Returns `false` (preemption
    /// needed) when a new block was required but the pool is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn append_token(&mut self, id: usize) -> bool {
        let tokens = self.sequences[id];
        let needs_block = tokens.is_multiple_of(BLOCK_TOKENS);
        if needs_block {
            if self.free_blocks == 0 {
                return false;
            }
            self.free_blocks -= 1;
        }
        self.sequences[id] += 1;
        true
    }

    /// Releases every block of all sequences (end of a batch).
    pub fn release_all(&mut self) {
        self.free_blocks = self.total_blocks;
        self.sequences.clear();
    }

    /// Bytes wasted to last-block internal fragmentation right now.
    pub fn fragmentation_bytes(&self) -> usize {
        self.sequences
            .iter()
            .map(|&tokens| {
                let used = tokens % BLOCK_TOKENS;
                if used == 0 {
                    0
                } else {
                    (BLOCK_TOKENS - used) * self.block_bytes / BLOCK_TOKENS
                }
            })
            .sum()
    }

    /// Largest batch of equal-length sequences (`tokens` each, growing to
    /// `max_tokens`) the pool can sustain without preemption.
    pub fn max_batch(&self, max_tokens: usize) -> usize {
        let per_seq = BlockPool::blocks_for(max_tokens);
        if per_seq == 0 {
            return 0;
        }
        self.total_blocks / per_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(budget_mb: usize) -> BlockPool {
        BlockPool::new(&ModelConfig::llama2_7b(), budget_mb * 1024 * 1024)
    }

    #[test]
    fn block_sizing_matches_model() {
        let p = pool(1024);
        // LLaMA2-7B: 32 layers x 2 x 4096 x 2 B = 512 KiB per token;
        // 16-token blocks = 8 MiB each -> 128 blocks in 1 GiB.
        assert_eq!(p.total_blocks(), 128);
    }

    #[test]
    fn admission_and_growth() {
        let mut p = pool(64); // 8 blocks
        let id = p.admit(17).expect("fits"); // 2 blocks
        assert_eq!(p.free_blocks(), 6);
        // Tokens 18..32 stay in block 2; token 33 needs block 3.
        for _ in 0..15 {
            assert!(p.append_token(id));
        }
        assert_eq!(p.free_blocks(), 6);
        assert!(p.append_token(id));
        assert_eq!(p.free_blocks(), 5);
    }

    #[test]
    fn exhaustion_signals_preemption() {
        let mut p = pool(64); // 8 blocks
        let id = p.admit(8 * BLOCK_TOKENS).expect("fills the pool");
        assert_eq!(p.free_blocks(), 0);
        assert!(!p.append_token(id), "growth without blocks must fail");
        // The failed append did not corrupt the count.
        assert_eq!(p.free_blocks(), 0);
    }

    #[test]
    fn admit_rejects_oversized_prompts() {
        let mut p = pool(64);
        assert!(p.admit(9 * BLOCK_TOKENS).is_none());
        assert_eq!(p.free_blocks(), 8);
    }

    #[test]
    fn fragmentation_is_bounded_by_one_block_per_sequence() {
        let mut p = pool(1024);
        for prompt in [1usize, 15, 16, 17, 31] {
            p.admit(prompt).unwrap();
        }
        let max_waste = p.live_sequences() * 8 * 1024 * 1024;
        assert!(p.fragmentation_bytes() < max_waste);
        // A 16-token sequence wastes nothing.
        let mut q = pool(64);
        q.admit(16).unwrap();
        assert_eq!(q.fragmentation_bytes(), 0);
    }

    #[test]
    fn max_batch_accounts_for_block_granularity() {
        let p = pool(1024); // 128 blocks
                            // 2048 tokens = 128 blocks per sequence -> batch 1.
        assert_eq!(p.max_batch(2048), 1);
        // 17 tokens round up to 2 blocks -> 64 sequences.
        assert_eq!(p.max_batch(17), 64);
    }

    #[test]
    fn release_returns_everything() {
        let mut p = pool(64);
        p.admit(100).unwrap();
        p.release_all();
        assert_eq!(p.free_blocks(), p.total_blocks());
        assert_eq!(p.live_sequences(), 0);
    }
}
