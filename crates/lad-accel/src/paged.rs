//! Paged KV-cache block manager (the vLLM memory-management model the
//! paper's GPU baseline relies on, Sec. V-A).
//!
//! vLLM allocates KV cache in fixed-size blocks (16 tokens each) from a
//! device-memory pool, eliminating per-sequence over-reservation at the cost
//! of last-block internal fragmentation. This model reproduces that
//! behaviour: sequences grow one token at a time, blocks are allocated on
//! demand, freed per sequence on completion (or all at once at the end of a
//! batch), and capacity questions ("what batch fits at length n?") account
//! for fragmentation exactly as the paged pool does.
//!
//! Sequence ids are stable slot indices: [`BlockPool::release`] frees a
//! slot onto an internal free list and a later [`BlockPool::admit`] may
//! reuse it, but an id never moves while its sequence is live, so a
//! scheduler can hold ids across arbitrary admit/release interleavings.

use lad_model::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// Tokens per KV block (vLLM's default).
pub const BLOCK_TOKENS: usize = 16;

/// A paged KV-cache pool for one model on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockPool {
    /// Bytes of KV cache one block holds (all layers, one sequence).
    block_bytes: usize,
    /// Total blocks in the pool.
    total_blocks: usize,
    /// Free block count.
    free_blocks: usize,
    /// Sequence slots: token count of each live sequence, `None` for a
    /// released slot awaiting reuse. Slot index == sequence id.
    slots: Vec<Option<usize>>,
    /// Released slot indices available for reuse (LIFO).
    free_ids: Vec<usize>,
}

impl BlockPool {
    /// Builds a pool for `model` given the device bytes available for KV
    /// cache (device memory minus weights and activations).
    ///
    /// # Panics
    ///
    /// Panics if `kv_budget_bytes` holds less than one block.
    pub fn new(model: &ModelConfig, kv_budget_bytes: usize) -> BlockPool {
        // Per token per layer: 2 tensors × hidden × 2 bytes.
        let token_bytes = model.layers * 2 * model.hidden * 2;
        let block_bytes = token_bytes * BLOCK_TOKENS;
        let total_blocks = kv_budget_bytes / block_bytes;
        assert!(total_blocks > 0, "BlockPool: budget below one block");
        BlockPool {
            block_bytes,
            total_blocks,
            free_blocks: total_blocks,
            slots: Vec::new(),
            free_ids: Vec::new(),
        }
    }

    /// Pool capacity in blocks.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Currently free blocks.
    pub fn free_blocks(&self) -> usize {
        self.free_blocks
    }

    /// Live sequence count.
    pub fn live_sequences(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Token count of live sequence `id`, `None` if the slot is released.
    pub fn sequence_tokens(&self, id: usize) -> Option<usize> {
        self.slots.get(id).copied().flatten()
    }

    /// Blocks needed to hold `tokens` tokens.
    pub fn blocks_for(tokens: usize) -> usize {
        tokens.div_ceil(BLOCK_TOKENS)
    }

    /// Admits a sequence with `prompt_tokens` already present. Returns its
    /// id (a stable slot index, possibly reusing a released slot), or
    /// `None` if the pool cannot hold it.
    ///
    /// Zero-token prompts are rejected (`None`): the pool's token count
    /// always equals exactly what the caller admitted plus its
    /// [`BlockPool::append_token`] calls, so a caller with no tokens has
    /// nothing to admit yet.
    pub fn admit(&mut self, prompt_tokens: usize) -> Option<usize> {
        if prompt_tokens == 0 {
            return None;
        }
        let needed = BlockPool::blocks_for(prompt_tokens);
        if needed > self.free_blocks {
            return None;
        }
        self.free_blocks -= needed;
        match self.free_ids.pop() {
            Some(id) => {
                debug_assert!(self.slots[id].is_none(), "free list held a live slot");
                self.slots[id] = Some(prompt_tokens);
                Some(id)
            }
            None => {
                self.slots.push(Some(prompt_tokens));
                Some(self.slots.len() - 1)
            }
        }
    }

    /// Appends one token to sequence `id`. Returns `false` (preemption
    /// needed) when a new block was required but the pool is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already released.
    pub fn append_token(&mut self, id: usize) -> bool {
        let tokens = self.slots[id].expect("BlockPool::append_token: released sequence");
        let needs_block = tokens.is_multiple_of(BLOCK_TOKENS);
        if needs_block {
            if self.free_blocks == 0 {
                return false;
            }
            self.free_blocks -= 1;
        }
        self.slots[id] = Some(tokens + 1);
        true
    }

    /// Truncates sequence `id` to `keep_tokens`, returning the blocks the
    /// discarded tail no longer needs — the speculative-decoding rollback:
    /// a verify round reserves room for every draft row up front and gives
    /// the rejected rows' blocks back here.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or released, if `keep_tokens == 0`
    /// (release the sequence instead), or if `keep_tokens` exceeds the
    /// sequence's current token count (truncation never grows).
    pub fn truncate(&mut self, id: usize, keep_tokens: usize) {
        let tokens = self.slots[id].expect("BlockPool::truncate: released sequence");
        assert!(
            keep_tokens > 0,
            "BlockPool::truncate: cannot keep zero tokens"
        );
        assert!(
            keep_tokens <= tokens,
            "BlockPool::truncate: keep {keep_tokens} exceeds current {tokens}"
        );
        self.free_blocks += BlockPool::blocks_for(tokens) - BlockPool::blocks_for(keep_tokens);
        debug_assert!(self.free_blocks <= self.total_blocks);
        self.slots[id] = Some(keep_tokens);
    }

    /// Releases exactly the blocks of sequence `id` (retirement or
    /// preemption) and recycles its slot for a later [`BlockPool::admit`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already released (double free).
    pub fn release(&mut self, id: usize) {
        let tokens = self.slots[id].expect("BlockPool::release: double free");
        self.free_blocks += BlockPool::blocks_for(tokens);
        debug_assert!(self.free_blocks <= self.total_blocks);
        self.slots[id] = None;
        self.free_ids.push(id);
    }

    /// Releases every block of all sequences (end of a batch).
    pub fn release_all(&mut self) {
        self.free_blocks = self.total_blocks;
        self.slots.clear();
        self.free_ids.clear();
    }

    /// Bytes wasted to last-block internal fragmentation right now.
    pub fn fragmentation_bytes(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(|&tokens| {
                let used = tokens % BLOCK_TOKENS;
                if used == 0 {
                    0
                } else {
                    (BLOCK_TOKENS - used) * self.block_bytes / BLOCK_TOKENS
                }
            })
            .sum()
    }

    /// Largest batch of equal-length sequences (`tokens` each, growing to
    /// `max_tokens`) the pool can admit **right now** without preemption —
    /// computed from the free blocks, so live sequences reduce the answer.
    pub fn max_batch(&self, max_tokens: usize) -> usize {
        let per_seq = BlockPool::blocks_for(max_tokens);
        if per_seq == 0 {
            return 0;
        }
        self.free_blocks / per_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(budget_mb: usize) -> BlockPool {
        BlockPool::new(&ModelConfig::llama2_7b(), budget_mb * 1024 * 1024)
    }

    #[test]
    fn block_sizing_matches_model() {
        let p = pool(1024);
        // LLaMA2-7B: 32 layers x 2 x 4096 x 2 B = 512 KiB per token;
        // 16-token blocks = 8 MiB each -> 128 blocks in 1 GiB.
        assert_eq!(p.total_blocks(), 128);
    }

    #[test]
    fn admission_and_growth() {
        let mut p = pool(64); // 8 blocks
        let id = p.admit(17).expect("fits"); // 2 blocks
        assert_eq!(p.free_blocks(), 6);
        // Tokens 18..32 stay in block 2; token 33 needs block 3.
        for _ in 0..15 {
            assert!(p.append_token(id));
        }
        assert_eq!(p.free_blocks(), 6);
        assert!(p.append_token(id));
        assert_eq!(p.free_blocks(), 5);
    }

    #[test]
    fn truncate_frees_whole_tail_blocks_only() {
        let mut p = pool(64); // 8 blocks
        let id = p.admit(33).expect("fits"); // 3 blocks
        assert_eq!(p.free_blocks(), 5);
        // 33 -> 17 drops block 3 but keeps block 2.
        p.truncate(id, 17);
        assert_eq!(p.sequence_tokens(id), Some(17));
        assert_eq!(p.free_blocks(), 6);
        // 17 -> 16 vacates block 2.
        p.truncate(id, 16);
        assert_eq!(p.free_blocks(), 7);
        // 16 -> 1 stays inside block 1: no block movement.
        p.truncate(id, 1);
        assert_eq!(p.free_blocks(), 7);
        // keep == current is a no-op.
        p.truncate(id, 1);
        assert_eq!(p.free_blocks(), 7);
        // Growth resumes from the truncated length.
        assert!(p.append_token(id));
        assert_eq!(p.sequence_tokens(id), Some(2));
        assert_eq!(p.free_blocks(), 7);
    }

    #[test]
    fn truncate_then_release_returns_everything() {
        let mut p = pool(64);
        let id = p.admit(100).unwrap(); // 7 blocks
        p.truncate(id, 20); // 2 blocks
        assert_eq!(p.free_blocks(), 6);
        p.release(id);
        assert_eq!(p.free_blocks(), p.total_blocks());
    }

    #[test]
    #[should_panic(expected = "released sequence")]
    fn truncate_released_sequence_panics() {
        let mut p = pool(64);
        let id = p.admit(16).unwrap();
        p.release(id);
        p.truncate(id, 8);
    }

    #[test]
    #[should_panic(expected = "cannot keep zero")]
    fn truncate_to_zero_panics() {
        let mut p = pool(64);
        let id = p.admit(16).unwrap();
        p.truncate(id, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds current")]
    fn truncate_past_current_length_panics() {
        let mut p = pool(64);
        let id = p.admit(16).unwrap();
        p.truncate(id, 17);
    }

    #[test]
    fn exhaustion_signals_preemption() {
        let mut p = pool(64); // 8 blocks
        let id = p.admit(8 * BLOCK_TOKENS).expect("fills the pool");
        assert_eq!(p.free_blocks(), 0);
        assert!(!p.append_token(id), "growth without blocks must fail");
        // The failed append did not corrupt the count.
        assert_eq!(p.free_blocks(), 0);
    }

    #[test]
    fn admit_rejects_oversized_prompts() {
        let mut p = pool(64);
        assert!(p.admit(9 * BLOCK_TOKENS).is_none());
        assert_eq!(p.free_blocks(), 8);
    }

    #[test]
    fn admit_rejects_zero_token_prompts() {
        let mut p = pool(64);
        assert!(p.admit(0).is_none(), "zero-token prompt must be rejected");
        assert_eq!(p.free_blocks(), 8);
        assert_eq!(p.live_sequences(), 0);
    }

    #[test]
    fn fragmentation_is_bounded_by_one_block_per_sequence() {
        let mut p = pool(1024);
        for prompt in [1usize, 15, 16, 17, 31] {
            p.admit(prompt).unwrap();
        }
        let max_waste = p.live_sequences() * 8 * 1024 * 1024;
        assert!(p.fragmentation_bytes() < max_waste);
        // A 16-token sequence wastes nothing.
        let mut q = pool(64);
        q.admit(16).unwrap();
        assert_eq!(q.fragmentation_bytes(), 0);
    }

    #[test]
    fn max_batch_accounts_for_block_granularity() {
        let p = pool(1024); // 128 blocks
                            // 2048 tokens = 128 blocks per sequence -> batch 1.
        assert_eq!(p.max_batch(2048), 1);
        // 17 tokens round up to 2 blocks -> 64 sequences.
        assert_eq!(p.max_batch(17), 64);
    }

    #[test]
    fn max_batch_shrinks_with_live_sequences() {
        // Regression: max_batch used to divide total_blocks, over-reporting
        // capacity whenever the pool was non-empty.
        let mut p = pool(1024); // 128 blocks
        assert_eq!(p.max_batch(17), 64);
        let a = p.admit(40 * BLOCK_TOKENS).unwrap(); // 40 blocks live
        assert_eq!(p.free_blocks(), 88);
        assert_eq!(p.max_batch(17), 44, "capacity must come from free blocks");
        let b = p.admit(88 * BLOCK_TOKENS).unwrap(); // pool now full
        assert_eq!(p.max_batch(17), 0);
        assert_eq!(p.max_batch(1), 0);
        p.release(a);
        assert_eq!(p.max_batch(2048), 0, "40 free blocks cannot host 128");
        p.release(b);
        assert_eq!(p.max_batch(2048), 1);
    }

    #[test]
    fn release_returns_everything() {
        let mut p = pool(64);
        p.admit(100).unwrap();
        p.release_all();
        assert_eq!(p.free_blocks(), p.total_blocks());
        assert_eq!(p.live_sequences(), 0);
    }

    #[test]
    fn release_returns_exactly_one_sequences_blocks() {
        let mut p = pool(64); // 8 blocks
        let a = p.admit(17).unwrap(); // 2 blocks
        let b = p.admit(16).unwrap(); // 1 block
        let c = p.admit(33).unwrap(); // 3 blocks
        assert_eq!(p.free_blocks(), 2);
        p.release(b);
        assert_eq!(p.free_blocks(), 3);
        assert_eq!(p.live_sequences(), 2);
        assert_eq!(p.sequence_tokens(b), None);
        assert_eq!(p.sequence_tokens(a), Some(17));
        // a and c are untouched; their fragmentation is still counted.
        let frag_two = p.fragmentation_bytes();
        p.release(a);
        assert!(p.fragmentation_bytes() < frag_two);
        p.release(c);
        assert_eq!(p.free_blocks(), p.total_blocks());
        assert_eq!(p.fragmentation_bytes(), 0);
    }

    #[test]
    fn released_slots_are_reused_with_stable_live_ids() {
        let mut p = pool(64);
        let a = p.admit(16).unwrap();
        let b = p.admit(16).unwrap();
        p.release(a);
        // b's id survives a's release; the freed slot is recycled.
        assert_eq!(p.sequence_tokens(b), Some(16));
        let c = p.admit(32).unwrap();
        assert_eq!(c, a, "released slot should be reused");
        assert_eq!(p.sequence_tokens(c), Some(32));
        assert_eq!(p.live_sequences(), 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_release_panics() {
        let mut p = pool(64);
        let id = p.admit(16).unwrap();
        p.release(id);
        p.release(id);
    }

    #[test]
    #[should_panic(expected = "released sequence")]
    fn append_to_released_sequence_panics() {
        let mut p = pool(64);
        let id = p.admit(16).unwrap();
        p.release(id);
        p.append_token(id);
    }

    #[test]
    fn interleaved_admit_release_keeps_accounting_consistent() {
        let mut p = pool(1024); // 128 blocks
        let mut live = Vec::new();
        for round in 0..6usize {
            for k in 0..4usize {
                if let Some(id) = p.admit(round * 13 + k * 7 + 1) {
                    live.push(id);
                }
            }
            if round % 2 == 0 && !live.is_empty() {
                p.release(live.swap_remove(round % live.len().max(1)));
            }
            // free + used == total at every point.
            let used: usize = live
                .iter()
                .map(|&id| BlockPool::blocks_for(p.sequence_tokens(id).unwrap()))
                .sum();
            assert_eq!(p.free_blocks() + used, p.total_blocks());
            assert_eq!(p.live_sequences(), live.len());
        }
    }
}
