//! Paged KV-cache block manager (the vLLM memory-management model the
//! paper's GPU baseline relies on, Sec. V-A).
//!
//! vLLM allocates KV cache in fixed-size blocks (16 tokens each) from a
//! device-memory pool, eliminating per-sequence over-reservation at the cost
//! of last-block internal fragmentation. This model reproduces that
//! behaviour: sequences grow one token at a time, blocks are allocated on
//! demand, freed per sequence on completion (or all at once at the end of a
//! batch), and capacity questions ("what batch fits at length n?") account
//! for fragmentation exactly as the paged pool does.
//!
//! Sequence ids are stable slot indices: [`BlockPool::release`] frees a
//! slot onto an internal free list and a later [`BlockPool::admit`] may
//! reuse it, but an id never moves while its sequence is live, so a
//! scheduler can hold ids across arbitrary admit/release interleavings.

use lad_model::config::ModelConfig;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Tokens per KV block (vLLM's default).
pub const BLOCK_TOKENS: usize = 16;

/// Registry handles for the pool's live gauges, resolved once per process.
/// They are module-level (not per-`BlockPool`) so the pool type stays a
/// plain serialisable value; with several pools alive the gauges show the
/// most recently mutated one (last-writer-wins, the usual gauge semantics).
struct KvObs {
    blocks_total: lad_obs::metrics::Gauge,
    blocks_free: lad_obs::metrics::Gauge,
    blocks_used: lad_obs::metrics::Gauge,
    live_sequences: lad_obs::metrics::Gauge,
    fragmentation_bytes: lad_obs::metrics::Gauge,
    dead_tokens: lad_obs::metrics::Gauge,
    blocks_reclaimed: lad_obs::metrics::Counter,
}

fn kv_obs() -> &'static KvObs {
    static OBS: OnceLock<KvObs> = OnceLock::new();
    OBS.get_or_init(|| KvObs {
        blocks_total: lad_obs::metrics::gauge("kv.blocks_total"),
        blocks_free: lad_obs::metrics::gauge("kv.blocks_free"),
        blocks_used: lad_obs::metrics::gauge("kv.blocks_used"),
        live_sequences: lad_obs::metrics::gauge("kv.live_sequences"),
        fragmentation_bytes: lad_obs::metrics::gauge("kv.fragmentation_bytes"),
        dead_tokens: lad_obs::metrics::gauge("kv.dead_tokens"),
        blocks_reclaimed: lad_obs::metrics::counter("kv.blocks_reclaimed"),
    })
}

/// Per-sequence paged state: token count, per-token liveness, and which of
/// the sequence's blocks have been reclaimed by eviction.
///
/// Evicting attention backends (H2O, streaming) mark positions dead via
/// [`BlockPool::mark_dead`]; a block whose 16 tokens are all dead *and* all
/// materialised (no partial tail block) is returned to the pool while the
/// sequence keeps running — the paged analogue of H2O freeing device memory
/// mid-decode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SeqState {
    /// Tokens admitted plus appended (dead ones included).
    tokens: usize,
    /// Per-token eviction flag (`true` = every head dropped it).
    dead: Vec<bool>,
    /// Per-block reclaimed flag; a reclaimed block has been handed back to
    /// the pool while the sequence stays live.
    reclaimed: Vec<bool>,
}

impl SeqState {
    fn new(tokens: usize) -> SeqState {
        SeqState {
            tokens,
            dead: vec![false; tokens],
            reclaimed: vec![false; BlockPool::blocks_for(tokens)],
        }
    }

    /// Blocks this sequence currently holds from the pool.
    fn blocks_held(&self) -> usize {
        BlockPool::blocks_for(self.tokens) - self.reclaimed.iter().filter(|&&r| r).count()
    }
}

/// A paged KV-cache pool for one model on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockPool {
    /// Bytes of KV cache one block holds (all layers, one sequence).
    block_bytes: usize,
    /// Total blocks in the pool.
    total_blocks: usize,
    /// Free block count.
    free_blocks: usize,
    /// Sequence slots: paged state of each live sequence, `None` for a
    /// released slot awaiting reuse. Slot index == sequence id.
    slots: Vec<Option<SeqState>>,
    /// Released slot indices available for reuse (LIFO).
    free_ids: Vec<usize>,
}

impl BlockPool {
    /// Builds a pool for `model` given the device bytes available for KV
    /// cache (device memory minus weights and activations).
    ///
    /// # Panics
    ///
    /// Panics if `kv_budget_bytes` holds less than one block.
    pub fn new(model: &ModelConfig, kv_budget_bytes: usize) -> BlockPool {
        // Per token per layer: 2 tensors × hidden × 2 bytes.
        let token_bytes = model.layers * 2 * model.hidden * 2;
        let block_bytes = token_bytes * BLOCK_TOKENS;
        let total_blocks = kv_budget_bytes / block_bytes;
        assert!(total_blocks > 0, "BlockPool: budget below one block");
        BlockPool {
            block_bytes,
            total_blocks,
            free_blocks: total_blocks,
            slots: Vec::new(),
            free_ids: Vec::new(),
        }
    }

    /// Pool capacity in blocks.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Currently free blocks.
    pub fn free_blocks(&self) -> usize {
        self.free_blocks
    }

    /// Live sequence count.
    pub fn live_sequences(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Token count of live sequence `id` (dead tokens included), `None` if
    /// the slot is released.
    pub fn sequence_tokens(&self, id: usize) -> Option<usize> {
        self.slots.get(id)?.as_ref().map(|s| s.tokens)
    }

    /// Tokens of live sequence `id` not yet marked dead, `None` if released.
    pub fn live_tokens(&self, id: usize) -> Option<usize> {
        let state = self.slots.get(id)?.as_ref()?;
        Some(state.tokens - state.dead.iter().filter(|&&d| d).count())
    }

    /// Whether position `pos` of sequence `id` has been marked dead.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range/released or `pos` is out of range.
    pub fn is_dead(&self, id: usize, pos: usize) -> bool {
        let state = self.slots[id]
            .as_ref()
            .expect("BlockPool::is_dead: released sequence");
        state.dead[pos]
    }

    /// Blocks sequence `id` currently holds from the pool (reclaimed blocks
    /// excluded), `None` if released.
    pub fn blocks_held(&self, id: usize) -> Option<usize> {
        Some(self.slots.get(id)?.as_ref()?.blocks_held())
    }

    /// Blocks needed to hold `tokens` tokens.
    pub fn blocks_for(tokens: usize) -> usize {
        tokens.div_ceil(BLOCK_TOKENS)
    }

    /// Admits a sequence with `prompt_tokens` already present. Returns its
    /// id (a stable slot index, possibly reusing a released slot), or
    /// `None` if the pool cannot hold it.
    ///
    /// Zero-token prompts are rejected (`None`): the pool's token count
    /// always equals exactly what the caller admitted plus its
    /// [`BlockPool::append_token`] calls, so a caller with no tokens has
    /// nothing to admit yet.
    pub fn admit(&mut self, prompt_tokens: usize) -> Option<usize> {
        if prompt_tokens == 0 {
            return None;
        }
        let needed = BlockPool::blocks_for(prompt_tokens);
        if needed > self.free_blocks {
            return None;
        }
        self.free_blocks -= needed;
        let id = match self.free_ids.pop() {
            Some(id) => {
                debug_assert!(self.slots[id].is_none(), "free list held a live slot");
                self.slots[id] = Some(SeqState::new(prompt_tokens));
                id
            }
            None => {
                self.slots.push(Some(SeqState::new(prompt_tokens)));
                self.slots.len() - 1
            }
        };
        self.publish_gauges();
        Some(id)
    }

    /// Marks position `pos` of sequence `id` dead (evicted by every
    /// attention head). When this completes a fully-materialised,
    /// fully-dead block, the block is handed back to the pool immediately;
    /// returns `true` exactly when that happened. Idempotent per position.
    ///
    /// The sequence's *partial tail block* is never reclaimed even if all
    /// its tokens die — the sequence is still appending into it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range/released or `pos >= sequence_tokens`.
    pub fn mark_dead(&mut self, id: usize, pos: usize) -> bool {
        let state = self.slots[id]
            .as_mut()
            .expect("BlockPool::mark_dead: released sequence");
        assert!(
            pos < state.tokens,
            "BlockPool::mark_dead: position {pos} beyond sequence length {}",
            state.tokens
        );
        if state.dead[pos] {
            return false;
        }
        state.dead[pos] = true;
        let block = pos / BLOCK_TOKENS;
        let start = block * BLOCK_TOKENS;
        let end = start + BLOCK_TOKENS;
        let fully_covered = end <= state.tokens;
        let reclaimed =
            fully_covered && !state.reclaimed[block] && state.dead[start..end].iter().all(|&d| d);
        if reclaimed {
            state.reclaimed[block] = true;
            self.free_blocks += 1;
            debug_assert!(self.free_blocks <= self.total_blocks);
            kv_obs().blocks_reclaimed.inc(1);
        }
        self.publish_gauges();
        reclaimed
    }

    /// Appends one token to sequence `id`. Returns `false` (preemption
    /// needed) when a new block was required but the pool is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already released.
    pub fn append_token(&mut self, id: usize) -> bool {
        let tokens = self.slots[id]
            .as_ref()
            .expect("BlockPool::append_token: released sequence")
            .tokens;
        let needs_block = tokens.is_multiple_of(BLOCK_TOKENS);
        if needs_block {
            if self.free_blocks == 0 {
                return false;
            }
            self.free_blocks -= 1;
        }
        let state = self.slots[id].as_mut().expect("checked live above");
        state.tokens = tokens + 1;
        state.dead.push(false);
        if needs_block {
            state.reclaimed.push(false);
        }
        self.publish_gauges();
        true
    }

    /// Truncates sequence `id` to `keep_tokens`, returning the blocks the
    /// discarded tail no longer needs — the speculative-decoding rollback:
    /// a verify round reserves room for every draft row up front and gives
    /// the rejected rows' blocks back here.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or released, if `keep_tokens == 0`
    /// (release the sequence instead), or if `keep_tokens` exceeds the
    /// sequence's current token count (truncation never grows).
    pub fn truncate(&mut self, id: usize, keep_tokens: usize) {
        let state = self.slots[id]
            .as_mut()
            .expect("BlockPool::truncate: released sequence");
        let tokens = state.tokens;
        assert!(
            keep_tokens > 0,
            "BlockPool::truncate: cannot keep zero tokens"
        );
        assert!(
            keep_tokens <= tokens,
            "BlockPool::truncate: keep {keep_tokens} exceeds current {tokens}"
        );
        let keep_blocks = BlockPool::blocks_for(keep_tokens);
        // The dropped tail only returns blocks the sequence still holds —
        // reclaimed ones already went back to the pool via `mark_dead`.
        let freed = state.reclaimed[keep_blocks..]
            .iter()
            .filter(|&&r| !r)
            .count();
        state.tokens = keep_tokens;
        state.dead.truncate(keep_tokens);
        state.reclaimed.truncate(keep_blocks);
        // A reclaimed block that just became the partial tail must be taken
        // back: the sequence will append into it again.
        let mut rematerialized = 0;
        if !keep_tokens.is_multiple_of(BLOCK_TOKENS) && state.reclaimed[keep_blocks - 1] {
            state.reclaimed[keep_blocks - 1] = false;
            rematerialized = 1;
        }
        assert!(
            self.free_blocks + freed >= rematerialized,
            "BlockPool::truncate: cannot re-materialise the reclaimed tail block"
        );
        self.free_blocks = self.free_blocks + freed - rematerialized;
        debug_assert!(self.free_blocks <= self.total_blocks);
        self.publish_gauges();
    }

    /// Releases exactly the blocks of sequence `id` (retirement or
    /// preemption) and recycles its slot for a later [`BlockPool::admit`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already released (double free).
    pub fn release(&mut self, id: usize) {
        let held = self.slots[id]
            .as_ref()
            .expect("BlockPool::release: double free")
            .blocks_held();
        self.free_blocks += held;
        debug_assert!(self.free_blocks <= self.total_blocks);
        self.slots[id] = None;
        self.free_ids.push(id);
        self.publish_gauges();
    }

    /// Releases every block of all sequences (end of a batch).
    pub fn release_all(&mut self) {
        self.free_blocks = self.total_blocks;
        self.slots.clear();
        self.free_ids.clear();
        self.publish_gauges();
    }

    /// Bytes wasted to last-block internal fragmentation right now.
    pub fn fragmentation_bytes(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(|state| {
                let used = state.tokens % BLOCK_TOKENS;
                if used == 0 {
                    0
                } else {
                    (BLOCK_TOKENS - used) * self.block_bytes / BLOCK_TOKENS
                }
            })
            .sum()
    }

    /// Publishes the pool's occupancy, fragmentation and dead-token state
    /// to the process metrics registry. One relaxed load and out while
    /// metrics are disabled; called by every mutating method, and callable
    /// directly to refresh the gauges from a specific pool.
    pub fn publish_gauges(&self) {
        if !lad_obs::metrics::metrics_enabled() {
            return;
        }
        let obs = kv_obs();
        obs.blocks_total.set(self.total_blocks as i64);
        obs.blocks_free.set(self.free_blocks as i64);
        obs.blocks_used
            .set((self.total_blocks - self.free_blocks) as i64);
        obs.live_sequences.set(self.live_sequences() as i64);
        obs.fragmentation_bytes
            .set(self.fragmentation_bytes() as i64);
        let dead: usize = self
            .slots
            .iter()
            .flatten()
            .map(|s| s.dead.iter().filter(|&&d| d).count())
            .sum();
        obs.dead_tokens.set(dead as i64);
    }

    /// Largest batch of equal-length sequences (`tokens` each, growing to
    /// `max_tokens`) the pool can admit **right now** without preemption —
    /// computed from the free blocks, so live sequences reduce the answer.
    pub fn max_batch(&self, max_tokens: usize) -> usize {
        let per_seq = BlockPool::blocks_for(max_tokens);
        if per_seq == 0 {
            return 0;
        }
        self.free_blocks / per_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(budget_mb: usize) -> BlockPool {
        BlockPool::new(&ModelConfig::llama2_7b(), budget_mb * 1024 * 1024)
    }

    #[test]
    fn block_sizing_matches_model() {
        let p = pool(1024);
        // LLaMA2-7B: 32 layers x 2 x 4096 x 2 B = 512 KiB per token;
        // 16-token blocks = 8 MiB each -> 128 blocks in 1 GiB.
        assert_eq!(p.total_blocks(), 128);
    }

    #[test]
    fn admission_and_growth() {
        let mut p = pool(64); // 8 blocks
        let id = p.admit(17).expect("fits"); // 2 blocks
        assert_eq!(p.free_blocks(), 6);
        // Tokens 18..32 stay in block 2; token 33 needs block 3.
        for _ in 0..15 {
            assert!(p.append_token(id));
        }
        assert_eq!(p.free_blocks(), 6);
        assert!(p.append_token(id));
        assert_eq!(p.free_blocks(), 5);
    }

    #[test]
    fn truncate_frees_whole_tail_blocks_only() {
        let mut p = pool(64); // 8 blocks
        let id = p.admit(33).expect("fits"); // 3 blocks
        assert_eq!(p.free_blocks(), 5);
        // 33 -> 17 drops block 3 but keeps block 2.
        p.truncate(id, 17);
        assert_eq!(p.sequence_tokens(id), Some(17));
        assert_eq!(p.free_blocks(), 6);
        // 17 -> 16 vacates block 2.
        p.truncate(id, 16);
        assert_eq!(p.free_blocks(), 7);
        // 16 -> 1 stays inside block 1: no block movement.
        p.truncate(id, 1);
        assert_eq!(p.free_blocks(), 7);
        // keep == current is a no-op.
        p.truncate(id, 1);
        assert_eq!(p.free_blocks(), 7);
        // Growth resumes from the truncated length.
        assert!(p.append_token(id));
        assert_eq!(p.sequence_tokens(id), Some(2));
        assert_eq!(p.free_blocks(), 7);
    }

    #[test]
    fn truncate_then_release_returns_everything() {
        let mut p = pool(64);
        let id = p.admit(100).unwrap(); // 7 blocks
        p.truncate(id, 20); // 2 blocks
        assert_eq!(p.free_blocks(), 6);
        p.release(id);
        assert_eq!(p.free_blocks(), p.total_blocks());
    }

    #[test]
    #[should_panic(expected = "released sequence")]
    fn truncate_released_sequence_panics() {
        let mut p = pool(64);
        let id = p.admit(16).unwrap();
        p.release(id);
        p.truncate(id, 8);
    }

    #[test]
    #[should_panic(expected = "cannot keep zero")]
    fn truncate_to_zero_panics() {
        let mut p = pool(64);
        let id = p.admit(16).unwrap();
        p.truncate(id, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds current")]
    fn truncate_past_current_length_panics() {
        let mut p = pool(64);
        let id = p.admit(16).unwrap();
        p.truncate(id, 17);
    }

    #[test]
    fn exhaustion_signals_preemption() {
        let mut p = pool(64); // 8 blocks
        let id = p.admit(8 * BLOCK_TOKENS).expect("fills the pool");
        assert_eq!(p.free_blocks(), 0);
        assert!(!p.append_token(id), "growth without blocks must fail");
        // The failed append did not corrupt the count.
        assert_eq!(p.free_blocks(), 0);
    }

    #[test]
    fn admit_rejects_oversized_prompts() {
        let mut p = pool(64);
        assert!(p.admit(9 * BLOCK_TOKENS).is_none());
        assert_eq!(p.free_blocks(), 8);
    }

    #[test]
    fn admit_rejects_zero_token_prompts() {
        let mut p = pool(64);
        assert!(p.admit(0).is_none(), "zero-token prompt must be rejected");
        assert_eq!(p.free_blocks(), 8);
        assert_eq!(p.live_sequences(), 0);
    }

    #[test]
    fn fragmentation_is_bounded_by_one_block_per_sequence() {
        let mut p = pool(1024);
        for prompt in [1usize, 15, 16, 17, 31] {
            p.admit(prompt).unwrap();
        }
        let max_waste = p.live_sequences() * 8 * 1024 * 1024;
        assert!(p.fragmentation_bytes() < max_waste);
        // A 16-token sequence wastes nothing.
        let mut q = pool(64);
        q.admit(16).unwrap();
        assert_eq!(q.fragmentation_bytes(), 0);
    }

    #[test]
    fn max_batch_accounts_for_block_granularity() {
        let p = pool(1024); // 128 blocks
                            // 2048 tokens = 128 blocks per sequence -> batch 1.
        assert_eq!(p.max_batch(2048), 1);
        // 17 tokens round up to 2 blocks -> 64 sequences.
        assert_eq!(p.max_batch(17), 64);
    }

    #[test]
    fn max_batch_shrinks_with_live_sequences() {
        // Regression: max_batch used to divide total_blocks, over-reporting
        // capacity whenever the pool was non-empty.
        let mut p = pool(1024); // 128 blocks
        assert_eq!(p.max_batch(17), 64);
        let a = p.admit(40 * BLOCK_TOKENS).unwrap(); // 40 blocks live
        assert_eq!(p.free_blocks(), 88);
        assert_eq!(p.max_batch(17), 44, "capacity must come from free blocks");
        let b = p.admit(88 * BLOCK_TOKENS).unwrap(); // pool now full
        assert_eq!(p.max_batch(17), 0);
        assert_eq!(p.max_batch(1), 0);
        p.release(a);
        assert_eq!(p.max_batch(2048), 0, "40 free blocks cannot host 128");
        p.release(b);
        assert_eq!(p.max_batch(2048), 1);
    }

    #[test]
    fn release_returns_everything() {
        let mut p = pool(64);
        p.admit(100).unwrap();
        p.release_all();
        assert_eq!(p.free_blocks(), p.total_blocks());
        assert_eq!(p.live_sequences(), 0);
    }

    #[test]
    fn release_returns_exactly_one_sequences_blocks() {
        let mut p = pool(64); // 8 blocks
        let a = p.admit(17).unwrap(); // 2 blocks
        let b = p.admit(16).unwrap(); // 1 block
        let c = p.admit(33).unwrap(); // 3 blocks
        assert_eq!(p.free_blocks(), 2);
        p.release(b);
        assert_eq!(p.free_blocks(), 3);
        assert_eq!(p.live_sequences(), 2);
        assert_eq!(p.sequence_tokens(b), None);
        assert_eq!(p.sequence_tokens(a), Some(17));
        // a and c are untouched; their fragmentation is still counted.
        let frag_two = p.fragmentation_bytes();
        p.release(a);
        assert!(p.fragmentation_bytes() < frag_two);
        p.release(c);
        assert_eq!(p.free_blocks(), p.total_blocks());
        assert_eq!(p.fragmentation_bytes(), 0);
    }

    #[test]
    fn released_slots_are_reused_with_stable_live_ids() {
        let mut p = pool(64);
        let a = p.admit(16).unwrap();
        let b = p.admit(16).unwrap();
        p.release(a);
        // b's id survives a's release; the freed slot is recycled.
        assert_eq!(p.sequence_tokens(b), Some(16));
        let c = p.admit(32).unwrap();
        assert_eq!(c, a, "released slot should be reused");
        assert_eq!(p.sequence_tokens(c), Some(32));
        assert_eq!(p.live_sequences(), 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_release_panics() {
        let mut p = pool(64);
        let id = p.admit(16).unwrap();
        p.release(id);
        p.release(id);
    }

    #[test]
    #[should_panic(expected = "released sequence")]
    fn append_to_released_sequence_panics() {
        let mut p = pool(64);
        let id = p.admit(16).unwrap();
        p.release(id);
        p.append_token(id);
    }

    #[test]
    fn mark_dead_reclaims_only_full_interior_blocks() {
        let mut p = pool(64); // 8 blocks
        let id = p.admit(40).unwrap(); // 3 blocks (16 + 16 + 8)
        assert_eq!(p.free_blocks(), 5);
        // Kill block 0 one token at a time: only the 16th flip reclaims.
        for pos in 0..15 {
            assert!(!p.mark_dead(id, pos));
            assert_eq!(p.free_blocks(), 5);
        }
        assert!(p.mark_dead(id, 15), "16th dead token reclaims block 0");
        assert_eq!(p.free_blocks(), 6);
        assert_eq!(p.blocks_held(id), Some(2));
        assert_eq!(p.live_tokens(id), Some(24));
        // Idempotent: re-marking a dead position changes nothing.
        assert!(!p.mark_dead(id, 3));
        assert_eq!(p.free_blocks(), 6);
        // The partial tail block (tokens 32..40) is never reclaimed.
        for pos in 32..40 {
            assert!(!p.mark_dead(id, pos));
        }
        assert_eq!(p.free_blocks(), 6);
        assert!(p.is_dead(id, 15) && !p.is_dead(id, 16));
    }

    #[test]
    fn append_into_dead_tail_completes_and_reclaims_block() {
        let mut p = pool(64);
        let id = p.admit(24).unwrap(); // 2 blocks, tail half full
        for pos in 16..24 {
            assert!(!p.mark_dead(id, pos), "partial tail must not reclaim");
        }
        // Growing the tail to 32 tokens materialises the block fully; the
        // live appends keep it un-reclaimed until they die too.
        for _ in 0..8 {
            assert!(p.append_token(id));
        }
        assert_eq!(p.free_blocks(), 6);
        for pos in 24..31 {
            assert!(!p.mark_dead(id, pos));
        }
        assert!(p.mark_dead(id, 31), "fully-dead full block reclaims");
        assert_eq!(p.free_blocks(), 7);
        assert_eq!(p.blocks_held(id), Some(1));
    }

    #[test]
    fn release_returns_only_held_blocks_after_reclaim() {
        let mut p = pool(64); // 8 blocks
        let id = p.admit(48).unwrap(); // 3 blocks
        for pos in 16..32 {
            p.mark_dead(id, pos);
        }
        assert_eq!(p.free_blocks(), 6, "interior block reclaimed");
        p.release(id);
        assert_eq!(p.free_blocks(), p.total_blocks(), "no double count");
    }

    #[test]
    fn truncate_skips_already_reclaimed_tail_blocks() {
        let mut p = pool(64); // 8 blocks
        let id = p.admit(48).unwrap(); // 3 blocks
        for pos in 32..48 {
            p.mark_dead(id, pos);
        }
        assert_eq!(p.free_blocks(), 6, "tail block 2 reclaimed by eviction");
        // Dropping the dead tail must not free block 2 a second time.
        p.truncate(id, 32);
        assert_eq!(p.free_blocks(), 6);
        assert_eq!(p.blocks_held(id), Some(2));
        p.release(id);
        assert_eq!(p.free_blocks(), p.total_blocks());
    }

    #[test]
    fn truncate_rematerializes_reclaimed_partial_tail() {
        let mut p = pool(64); // 8 blocks
        let id = p.admit(48).unwrap(); // 3 blocks
        for pos in 16..32 {
            p.mark_dead(id, pos);
        }
        assert_eq!(p.free_blocks(), 6);
        // Truncating into the middle of reclaimed block 1 makes it the
        // partial tail again: the pool must take one block back for it.
        p.truncate(id, 24);
        assert_eq!(p.blocks_held(id), Some(2));
        // Block 2 was freed by the truncation, block 1 re-materialised:
        // net 6 + 1 - 1 = 6 free.
        assert_eq!(p.free_blocks(), 6);
        assert!(p.append_token(id), "tail block is writable again");
        assert_eq!(p.sequence_tokens(id), Some(25));
        p.release(id);
        assert_eq!(p.free_blocks(), p.total_blocks());
    }

    #[test]
    fn eviction_mix_keeps_shadow_accounting_consistent() {
        // Randomised admit/append/mark_dead/truncate/release mix; after
        // every op, free + sum(blocks_held) == total and blocks_held matches
        // a from-scratch recount of each sequence's dead map.
        let mut p = pool(256); // 32 blocks
        let mut shadow: Vec<(usize, Vec<bool>)> = Vec::new(); // (id, dead)
        let mut rng = 0x2545f491u64;
        let mut next = |m: usize| {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((rng >> 33) as usize) % m.max(1)
        };
        for step in 0..600 {
            match next(5) {
                0 => {
                    let prompt = next(60) + 1;
                    if let Some(id) = p.admit(prompt) {
                        shadow.push((id, vec![false; prompt]));
                    }
                }
                1 if !shadow.is_empty() => {
                    let idx = next(shadow.len());
                    let (id, dead) = &mut shadow[idx];
                    if p.append_token(*id) {
                        dead.push(false);
                    }
                }
                2 if !shadow.is_empty() => {
                    let idx = next(shadow.len());
                    let (id, dead) = &mut shadow[idx];
                    let pos = next(dead.len());
                    p.mark_dead(*id, pos);
                    dead[pos] = true;
                }
                3 if !shadow.is_empty() => {
                    let idx = next(shadow.len());
                    let (id, dead) = &mut shadow[idx];
                    let keep = next(dead.len()) + 1;
                    // Skip the one unrepresentable case: re-materialising a
                    // reclaimed tail block from an empty pool.
                    let keep_blocks = BlockPool::blocks_for(keep);
                    let tail_reclaimed = !keep.is_multiple_of(BLOCK_TOKENS)
                        && (keep_blocks * BLOCK_TOKENS <= dead.len())
                        && dead[(keep_blocks - 1) * BLOCK_TOKENS..keep_blocks * BLOCK_TOKENS]
                            .iter()
                            .all(|&d| d);
                    if !(tail_reclaimed && p.free_blocks() == 0) {
                        p.truncate(*id, keep);
                        dead.truncate(keep);
                        if tail_reclaimed {
                            // The impl re-materialised the tail: mirror by
                            // keeping the dead flags (they stay dead).
                        }
                    }
                }
                4 if !shadow.is_empty() => {
                    let idx = next(shadow.len());
                    let (id, _) = shadow.swap_remove(idx);
                    p.release(id);
                }
                _ => {}
            }
            // Shadow recount.
            let mut held_total = 0;
            for (id, dead) in &shadow {
                let tokens = dead.len();
                assert_eq!(p.sequence_tokens(*id), Some(tokens), "step {step}");
                let blocks = BlockPool::blocks_for(tokens);
                let mut held = 0;
                for b in 0..blocks {
                    let start = b * BLOCK_TOKENS;
                    let end = start + BLOCK_TOKENS;
                    let reclaimed = end <= tokens && dead[start..end].iter().all(|&d| d);
                    if !reclaimed {
                        held += 1;
                    }
                }
                assert_eq!(p.blocks_held(*id), Some(held), "step {step} seq {id}");
                let live = tokens - dead.iter().filter(|&&d| d).count();
                assert_eq!(p.live_tokens(*id), Some(live), "step {step} seq {id}");
                held_total += held;
            }
            assert_eq!(
                p.free_blocks() + held_total,
                p.total_blocks(),
                "step {step}: pool accounting diverged from shadow recount"
            );
        }
    }

    #[test]
    fn interleaved_admit_release_keeps_accounting_consistent() {
        let mut p = pool(1024); // 128 blocks
        let mut live = Vec::new();
        for round in 0..6usize {
            for k in 0..4usize {
                if let Some(id) = p.admit(round * 13 + k * 7 + 1) {
                    live.push(id);
                }
            }
            if round % 2 == 0 && !live.is_empty() {
                p.release(live.swap_remove(round % live.len().max(1)));
            }
            // free + used == total at every point.
            let used: usize = live
                .iter()
                .map(|&id| BlockPool::blocks_for(p.sequence_tokens(id).unwrap()))
                .sum();
            assert_eq!(p.free_blocks() + used, p.total_blocks());
            assert_eq!(p.live_sequences(), live.len());
        }
    }
}
