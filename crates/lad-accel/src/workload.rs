//! Workload statistics provider.
//!
//! Performance evaluation needs the LAD execution statistics (|J|, |U|, |C|,
//! hit ratio) at a given KV-cache length. This module produces them from the
//! calibrated trace generator ([`lad_trace`]), warmed up past the
//! mode-learning transient, and caches nothing — generation is fast and
//! deterministic.

use lad_core::stats::StatsSummary;
use lad_math::pwl::PwlExp;
use lad_trace::{analyze, AnalysisConfig, ScoreTrace, TraceConfig};

/// Steps generated per workload point (the last half is summarised).
const TRACE_STEPS: usize = 96;

/// Paper-calibrated stability (top-1 interval probability) at KV length `n`.
///
/// Fig. 2(b): top-1 dominance rises with the KV cache length, from ~74 % on
/// short caches past 90 % at 4096. `1 − 3.4/√n` hits 0.85 at 512 and 0.947
/// at 4096, and makes the active-position count grow as `√n` — the
/// sub-linear growth the paper's Sec. III-B analysis relies on.
pub fn stability_for(n: usize) -> f64 {
    (1.0 - 3.4 / (n as f64).sqrt()).clamp(0.5, 0.98)
}

/// Mean LAD step statistics for a decode reaching KV length `n`, from the
/// paper-calibrated trace generator (stability scaled per [`stability_for`]).
///
/// # Panics
///
/// Panics if `n <= TRACE_STEPS` (the trace needs a prompt).
pub fn workload_stats(n: usize, seed: u64) -> StatsSummary {
    workload_stats_with(n, seed, |cfg| {
        cfg.stability = stability_for(n);
    })
}

/// Like [`workload_stats`] but lets the caller adjust the trace
/// configuration (e.g. stability for ablations) before generation.
pub fn workload_stats_with(
    n: usize,
    seed: u64,
    adjust: impl FnOnce(&mut TraceConfig),
) -> StatsSummary {
    assert!(
        n > TRACE_STEPS,
        "workload_stats: n must exceed {TRACE_STEPS}"
    );
    let mut cfg = TraceConfig::calibrated(n - TRACE_STEPS, TRACE_STEPS);
    cfg.seed = seed;
    adjust(&mut cfg);
    let pwl = cfg.pwl.clone();
    let trace = ScoreTrace::generate(&cfg);
    let stats = analyze(&trace, &pwl, &AnalysisConfig::new(&pwl));
    // Skip the mode-learning transient: summarise the second half.
    StatsSummary::from_steps(&stats[stats.len() / 2..])
}

/// The default interval partition used by workload generation.
pub fn default_partition() -> PwlExp {
    PwlExp::accurate_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_deterministic() {
        let a = workload_stats(1024, 3);
        let b = workload_stats(1024, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn active_grows_sublinearly() {
        // |J| grows with n but much slower than n — the core LAD premise.
        let s512 = workload_stats(512, 1);
        let s4096 = workload_stats(4096, 1);
        assert!(s4096.mean_active > s512.mean_active);
        let growth = s4096.mean_active / s512.mean_active;
        assert!(growth < 8.0, "growth {growth} not sublinear");
        // Active fraction shrinks.
        assert!(s4096.mean_active_fraction <= s512.mean_active_fraction * 1.2);
    }

    #[test]
    fn hit_ratio_is_paper_like() {
        let s = workload_stats(2048, 2);
        assert!(s.mean_hit_ratio > 0.75, "hit {}", s.mean_hit_ratio);
    }

    #[test]
    fn centers_track_model() {
        let s = workload_stats(4096, 4);
        // CentersModel::calibrated: ~2·sqrt(4096) = 128.
        assert!((s.mean_centers - 128.0).abs() < 16.0, "{}", s.mean_centers);
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn tiny_n_rejected() {
        workload_stats(64, 0);
    }
}
