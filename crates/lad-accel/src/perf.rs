//! End-to-end performance and energy evaluation of every platform
//! (paper Sec. V-C/V-D: Fig. 7, 8, 9, 10).
//!
//! A [`Platform`] is either a GPU software baseline, the ideal accelerator
//! (same compute and HBM as LAD, no locality optimisation), or a LAD
//! configuration. [`evaluate`] models one decode step at a KV length;
//! [`evaluate_best_batch`] additionally searches the memory-feasible batch
//! sizes for the highest throughput, as the paper does.

use crate::asic;
use crate::config::AccelConfig;
use crate::gpu::{self, GpuBaseline, GpuConfig};
use crate::pipeline::{self, AttentionPeriod};
use crate::traffic::AttentionTraffic;
use lad_core::stats::StatsSummary;
use lad_model::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// Device memory assumed for batch-size feasibility on every platform
/// (A100-40GB; the LAD HBM stack is 5 cubes × 8 GB = 40 GB).
pub const DEVICE_MEM_BYTES: f64 = 40e9;

/// An evaluation target.
#[derive(Debug, Clone, PartialEq)]
pub enum Platform {
    /// A GPU software baseline on the A100.
    Gpu(GpuBaseline),
    /// Ideal accelerator: LAD's compute and HBM, dense attention.
    Ideal(AccelConfig),
    /// A LAD accelerator configuration.
    Lad(AccelConfig),
}

impl Platform {
    /// Display name for experiment tables.
    pub fn name(&self) -> String {
        match self {
            Platform::Gpu(GpuBaseline::Vllm) => "vLLM-GPU".to_string(),
            Platform::Gpu(GpuBaseline::Qserve) => "Qserve-GPU".to_string(),
            Platform::Gpu(GpuBaseline::H2o) => "H2O-GPU".to_string(),
            Platform::Gpu(GpuBaseline::LadGpu) => "LAD-GPU".to_string(),
            Platform::Ideal(_) => "Ideal".to_string(),
            Platform::Lad(cfg) => cfg.name.clone(),
        }
    }
}

/// Energy breakdown of one decode step (paper Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// HBM access energy (J).
    pub hbm_j: f64,
    /// SRAM energy (J).
    pub sram_j: f64,
    /// Compute-module energy (J).
    pub compute_j: f64,
}

impl EnergyBreakdown {
    /// Total energy (J).
    pub fn total(&self) -> f64 {
        self.hbm_j + self.sram_j + self.compute_j
    }
}

/// Result of evaluating one platform at one workload point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfResult {
    /// Platform name.
    pub platform: String,
    /// Batch size used.
    pub batch: usize,
    /// Attention-layer seconds per decode step (all layers).
    pub attn_seconds: f64,
    /// Linear-layer seconds per decode step (all layers).
    pub linear_seconds: f64,
    /// End-to-end seconds per decode step.
    pub e2e_seconds: f64,
    /// Attention-layer throughput (tokens/s across the batch).
    pub attn_tokens_per_s: f64,
    /// End-to-end decode throughput (tokens/s across the batch).
    pub e2e_tokens_per_s: f64,
    /// Attention-layer energy per decode step (J).
    pub attn_energy_j: f64,
    /// End-to-end energy per decode step (J).
    pub e2e_energy_j: f64,
    /// End-to-end energy breakdown (LAD/ideal platforms; zeros for GPU).
    pub energy: EnergyBreakdown,
    /// Attention-layer energy breakdown (LAD/ideal; zeros for GPU).
    pub attn_energy: EnergyBreakdown,
    /// Normalised HBM breakdown (centers, active, others) of the attention
    /// traffic (LAD platforms; zeros otherwise).
    pub hbm_breakdown: (f64, f64, f64),
}

/// Linear-layer time on an accelerator: weights stream once per step, the
/// batch's MACs run on the VPUs.
fn accel_linear_seconds(cfg: &AccelConfig, weight_bytes: f64, batch: usize) -> f64 {
    let mem = weight_bytes / cfg.hbm.total_bandwidth();
    let compute = batch as f64 * (weight_bytes / 2.0) / cfg.peak_macs();
    mem.max(compute)
}

/// Evaluates one platform at one workload point with a fixed batch size.
pub fn evaluate(
    platform: &Platform,
    model: &ModelConfig,
    n: usize,
    stats: &StatsSummary,
    batch: usize,
) -> PerfResult {
    match platform {
        Platform::Gpu(baseline) => evaluate_gpu(*baseline, model, n, stats, batch),
        Platform::Ideal(cfg) => evaluate_accel(cfg, model, n, stats, batch, true),
        Platform::Lad(cfg) => evaluate_accel(cfg, model, n, stats, batch, false),
    }
}

fn evaluate_gpu(
    baseline: GpuBaseline,
    model: &ModelConfig,
    n: usize,
    stats: &StatsSummary,
    batch: usize,
) -> PerfResult {
    let gpu = GpuConfig::a100();
    let d = model.head_dim();
    let traffic = AttentionTraffic::from_stats(stats, n, d, pipeline::WINDOW_POSITIONS, 0.0);
    let step = gpu::gpu_step(&gpu, baseline, model, n, batch, Some(&traffic));
    let attn_energy = gpu.power_w * step.attn_seconds;
    let e2e_energy = gpu.power_w * step.e2e_seconds;
    PerfResult {
        platform: Platform::Gpu(baseline).name(),
        batch,
        attn_seconds: step.attn_seconds,
        linear_seconds: step.linear_seconds,
        e2e_seconds: step.e2e_seconds,
        attn_tokens_per_s: batch as f64 / step.attn_seconds,
        e2e_tokens_per_s: batch as f64 / step.e2e_seconds,
        attn_energy_j: attn_energy,
        e2e_energy_j: e2e_energy,
        energy: EnergyBreakdown::default(),
        attn_energy: EnergyBreakdown::default(),
        hbm_breakdown: (0.0, 0.0, 0.0),
    }
}

fn evaluate_accel(
    cfg: &AccelConfig,
    model: &ModelConfig,
    n: usize,
    stats: &StatsSummary,
    batch: usize,
    ideal: bool,
) -> PerfResult {
    let d = model.head_dim();
    let head_samples = batch * model.heads;
    let hidden = model.hidden as f64;

    // -- Linear layers: QKV period (prefetch window) + the rest.
    let qkv_bytes = 3.0 * hidden * hidden * 2.0;
    let rest_bytes = model.layer_weight_bytes() as f64 - qkv_bytes;
    let qkv_seconds = accel_linear_seconds(cfg, qkv_bytes, batch);
    let rest_seconds = accel_linear_seconds(cfg, rest_bytes, batch);
    let linear_layer_seconds = qkv_seconds + rest_seconds;

    // Spare HBM bytes during the QKV period, per head-sample.
    let qkv_spare =
        ((qkv_seconds * cfg.hbm.total_bandwidth() - qkv_bytes).max(0.0)) / head_samples as f64;

    // -- Attention period.
    let attn: AttentionPeriod = if ideal {
        // Dense attention at peak bandwidth.
        let bytes = AttentionTraffic::dense_bytes(n, d) * head_samples as f64;
        AttentionPeriod {
            seconds: bytes / cfg.hbm.total_bandwidth(),
            hbm_bytes: bytes,
            period_bytes: bytes,
            prefetch_bytes: 0.0,
            bottleneck_cycles: 0.0,
            traffic: AttentionTraffic::default(),
        }
    } else {
        pipeline::attention_period(cfg, n, d, stats, head_samples, qkv_spare)
    };

    let layers = model.layers as f64;
    let attn_seconds = attn.seconds * layers;
    let linear_seconds = linear_layer_seconds * layers;
    // 2 % overhead for SFM operators (norms, RoPE) and scheduling.
    let e2e_seconds = (attn_seconds + linear_seconds) * 1.02;

    // -- Energy.
    let weight_bytes = model.layer_weight_bytes() as f64 * layers;
    // Attention-layer energy counts only attention-period traffic; the
    // prefetched bytes move during the QKV period and are attributed there
    // (they still appear in the end-to-end total). This is why larger SRAM
    // lowers attention HBM energy but not e2e HBM energy (paper Fig. 10).
    let attn_period_bytes = attn.period_bytes * layers;
    let attn_bytes = attn.hbm_bytes * layers;
    let tile = asic::tile_total(cfg.tile.sram_bytes);
    let sram = asic::sram_module(cfg.tile.sram_bytes);
    let tiles = cfg.tiles as f64;

    let onchip = |seconds: f64| -> (f64, f64) {
        // (sram_j, compute_j): dynamic while busy, static always.
        let sram_j = (sram.dynamic_w + sram.static_w) * seconds * tiles;
        let compute_j =
            ((tile.dynamic_w - sram.dynamic_w) + (tile.static_w - sram.static_w)) * seconds * tiles;
        (sram_j, compute_j)
    };

    let (attn_sram_j, attn_compute_j) = onchip(attn_seconds);
    let attn_energy = EnergyBreakdown {
        hbm_j: cfg.hbm.energy_joules(attn_period_bytes),
        sram_j: attn_sram_j,
        compute_j: attn_compute_j,
    };
    let (e2e_sram_j, e2e_compute_j) = onchip(e2e_seconds);
    let energy = EnergyBreakdown {
        hbm_j: cfg.hbm.energy_joules(attn_bytes + weight_bytes),
        sram_j: e2e_sram_j,
        compute_j: e2e_compute_j,
    };

    PerfResult {
        platform: if ideal {
            "Ideal".to_string()
        } else {
            cfg.name.clone()
        },
        batch,
        attn_seconds,
        linear_seconds,
        e2e_seconds,
        attn_tokens_per_s: batch as f64 / attn_seconds,
        e2e_tokens_per_s: batch as f64 / e2e_seconds,
        attn_energy_j: attn_energy.total(),
        e2e_energy_j: energy.total(),
        energy,
        attn_energy,
        hbm_breakdown: if ideal {
            (0.0, 0.0, 1.0)
        } else {
            attn.traffic.breakdown()
        },
    }
}

/// Maximum memory-feasible batch size at KV length `n` (40 GB device).
pub fn feasible_batch(model: &ModelConfig, n: usize) -> usize {
    let weights = model.param_count() as f64 * 2.0;
    let kv_per_sample = (model.layers * model.layer_kv_bytes(n)) as f64;
    let free = (DEVICE_MEM_BYTES * 0.9 - weights).max(0.0);
    ((free / kv_per_sample).floor() as usize).max(1)
}

/// Largest batch size the search considers. Serving systems decode at
/// moderate batch sizes (latency SLOs, continuous batching slots); the
/// paper's intro example uses 32 and its long-KV test cases are
/// capacity-limited well below that. 16 is the operating point that
/// reproduces the paper's throughput ratios.
pub const MAX_BATCH: usize = 16;

/// Evaluates at the throughput-optimal batch size (powers of two up to the
/// memory limit and [`MAX_BATCH`]), as the paper's methodology prescribes.
pub fn evaluate_best_batch(
    platform: &Platform,
    model: &ModelConfig,
    n: usize,
    stats: &StatsSummary,
) -> PerfResult {
    let max_b = feasible_batch(model, n).min(MAX_BATCH);
    let mut best: Option<PerfResult> = None;
    let mut b = 1usize;
    while b <= max_b {
        let result = evaluate(platform, model, n, stats, b);
        if best
            .as_ref()
            .is_none_or(|r| result.e2e_tokens_per_s > r.e2e_tokens_per_s)
        {
            best = Some(result);
        }
        b *= 2;
    }
    best.expect("batch 1 always evaluated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::workload_stats;

    fn llama() -> ModelConfig {
        ModelConfig::llama2_7b()
    }

    #[test]
    fn lad_beats_vllm_attention_and_gap_grows() {
        let model = llama();
        let speedup = |n: usize| {
            let stats = workload_stats(n, 7);
            let v = evaluate_best_batch(&Platform::Gpu(GpuBaseline::Vllm), &model, n, &stats);
            let l = evaluate_best_batch(&Platform::Lad(AccelConfig::lad_3_5()), &model, n, &stats);
            l.attn_tokens_per_s / v.attn_tokens_per_s
        };
        let s1024 = speedup(1024);
        let s4096 = speedup(4096);
        assert!(s1024 > 2.0, "speedup(1024) = {s1024}");
        assert!(s4096 > s1024, "no growth: {s1024} -> {s4096}");
        assert!(s4096 > 5.0, "speedup(4096) = {s4096}");
    }

    #[test]
    fn lad_end_to_end_speedup_is_paper_shaped() {
        // Group 2 (n >= 2560): ~2.2-2.3x end-to-end in the paper.
        let model = llama();
        let n = 4096;
        let stats = workload_stats(n, 7);
        let v = evaluate_best_batch(&Platform::Gpu(GpuBaseline::Vllm), &model, n, &stats);
        let l = evaluate_best_batch(&Platform::Lad(AccelConfig::lad_3_5()), &model, n, &stats);
        let speedup = l.e2e_tokens_per_s / v.e2e_tokens_per_s;
        assert!((1.5..4.5).contains(&speedup), "e2e speedup {speedup}");
    }

    #[test]
    fn lad_energy_efficiency_is_an_order_of_magnitude() {
        let model = llama();
        let n = 4096;
        let stats = workload_stats(n, 7);
        let batch = feasible_batch(&model, n).min(8);
        let v = evaluate(&Platform::Gpu(GpuBaseline::Vllm), &model, n, &stats, batch);
        let l = evaluate(
            &Platform::Lad(AccelConfig::lad_3_5()),
            &model,
            n,
            &stats,
            batch,
        );
        // Attention energy-per-token ratio (paper: 36-52x in group 2).
        let attn_eff = v.attn_energy_j / l.attn_energy_j;
        assert!(attn_eff > 10.0, "attention energy efficiency {attn_eff}");
        // End-to-end ratio (paper: 13-14x in group 2).
        let e2e_eff = v.e2e_energy_j / l.e2e_energy_j;
        assert!(e2e_eff > 4.0, "e2e energy efficiency {e2e_eff}");
        assert!(attn_eff > e2e_eff, "attention should dominate the gains");
    }

    #[test]
    fn lad_is_faster_than_ideal_only_on_attention() {
        let model = llama();
        let n = 4096;
        let stats = workload_stats(n, 7);
        let batch = 8;
        let ideal = evaluate(
            &Platform::Ideal(AccelConfig::lad_3_5()),
            &model,
            n,
            &stats,
            batch,
        );
        let lad = evaluate(
            &Platform::Lad(AccelConfig::lad_3_5()),
            &model,
            n,
            &stats,
            batch,
        );
        assert!(lad.attn_seconds < ideal.attn_seconds);
        // Linear layers are identical.
        assert!((lad.linear_seconds - ideal.linear_seconds).abs() / ideal.linear_seconds < 1e-9);
        // Paper Fig. 8: LAD ~0.5-0.8x of ideal latency.
        let ratio = lad.e2e_seconds / ideal.e2e_seconds;
        assert!((0.3..0.95).contains(&ratio), "latency ratio {ratio}");
    }

    #[test]
    fn hbm_and_sram_dominate_lad_energy() {
        // Paper Fig. 10: HBM and SRAM consume the majority of LAD's energy.
        let model = llama();
        let stats = workload_stats(2048, 7);
        let l = evaluate(
            &Platform::Lad(AccelConfig::lad_2_5()),
            &model,
            2048,
            &stats,
            8,
        );
        let total = l.energy.total();
        assert!(
            (l.energy.hbm_j + l.energy.sram_j) / total > 0.5,
            "hbm {} sram {} compute {}",
            l.energy.hbm_j,
            l.energy.sram_j,
            l.energy.compute_j
        );
    }

    #[test]
    fn larger_sram_cuts_attention_hbm_energy_not_e2e() {
        // Paper Fig. 10: bigger SRAM -> more prefetch -> less attention-
        // period HBM energy, but e2e HBM energy is flat (all active
        // positions are fetched eventually).
        let model = llama();
        let n = 4096;
        let stats = workload_stats(n, 7);
        let batch = 8;
        let small = evaluate(
            &Platform::Lad(AccelConfig::lad_1_5()),
            &model,
            n,
            &stats,
            batch,
        );
        let large = evaluate(
            &Platform::Lad(AccelConfig::lad_3_5()),
            &model,
            n,
            &stats,
            batch,
        );
        assert!(
            large.attn_energy.hbm_j <= small.attn_energy.hbm_j,
            "attn hbm: small {} large {}",
            small.attn_energy.hbm_j,
            large.attn_energy.hbm_j
        );
        let rel = (large.energy.hbm_j - small.energy.hbm_j).abs() / small.energy.hbm_j;
        assert!(rel < 1e-9, "e2e hbm energy should be flat, rel diff {rel}");
    }

    #[test]
    fn best_batch_prefers_larger_batches_when_feasible() {
        let model = llama();
        let stats = workload_stats(512, 7);
        let r = evaluate_best_batch(&Platform::Gpu(GpuBaseline::Vllm), &model, 512, &stats);
        assert!(r.batch > 1, "batch {}", r.batch);
        assert!(r.batch <= feasible_batch(&model, 512));
    }

    #[test]
    fn breakdown_only_for_lad() {
        let model = llama();
        let stats = workload_stats(1024, 7);
        let g = evaluate(&Platform::Gpu(GpuBaseline::Vllm), &model, 1024, &stats, 4);
        assert_eq!(g.hbm_breakdown, (0.0, 0.0, 0.0));
        let l = evaluate(
            &Platform::Lad(AccelConfig::lad_1_5()),
            &model,
            1024,
            &stats,
            4,
        );
        let (c, a, o) = l.hbm_breakdown;
        assert!((c + a + o - 1.0).abs() < 1e-9);
    }
}
