//! Per-step HBM traffic accounting for LAD attention (paper Sec. IV-C,
//! Fig. 8 left).
//!
//! One head-sample's decoding step moves:
//!
//! * the `G` tensor (`n × 4` 16-bit scalars: `norm`, `dnorm`, `cid`,
//!   `mode`+`cnt`) — read in stage 1, written back after stage 6;
//! * the keys of the directional centers `C` and large-mode set `M`
//!   (identification reads);
//! * the keys and values of active positions `J` and the latest window
//!   (correction and window computation reads) — partially prefetched;
//! * the six intermediate caches (read in stage 4, written in stage 1);
//! * the new token's key/value append.
//!
//! The Fig. 8 breakdown groups these as *key centers*, *active positions*
//! and *others*.

use lad_core::stats::StatsSummary;
use serde::{Deserialize, Serialize};

/// Mean per-step, per-head-sample HBM byte counts of LAD attention.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AttentionTraffic {
    /// `G` tensor read + write: `2 · 8n`.
    pub g_bytes: f64,
    /// Identification key reads: `2d · (|C| + |M|)` bytes (fp16 keys).
    pub centers_bytes: f64,
    /// Active + window KV reads: `4d · (|J| + window)` bytes.
    pub active_bytes: f64,
    /// Portion of `active_bytes` prefetched during the compute-bound QKV
    /// period (hits); the remainder is read during the attention period.
    pub prefetched_bytes: f64,
    /// Intermediate caches read + write: `2 · (d² + 3d + 2) · 2`.
    pub cache_bytes: f64,
    /// New key/value append: `4d`.
    pub kv_write_bytes: f64,
}

impl AttentionTraffic {
    /// Builds the traffic profile from mean step statistics at sequence
    /// length `n`, head dimension `d` and window size `window`.
    ///
    /// `prefetch_positions` is how many of the `|J| + window` positions the
    /// scheduler managed to prefetch (bounded by SRAM and by temporal
    /// locality — see [`crate::pipeline`]).
    pub fn from_stats(
        stats: &StatsSummary,
        n: usize,
        d: usize,
        window: usize,
        prefetch_positions: f64,
    ) -> AttentionTraffic {
        let kv_positions = stats.mean_active + window as f64;
        let prefetched = prefetch_positions.min(kv_positions);
        AttentionTraffic {
            g_bytes: 2.0 * 8.0 * n as f64,
            centers_bytes: 2.0 * d as f64 * (stats.mean_centers + stats.mean_large_mode),
            active_bytes: 4.0 * d as f64 * kv_positions,
            prefetched_bytes: 4.0 * d as f64 * prefetched,
            cache_bytes: 2.0 * 2.0 * (d * d + 3 * d + 2) as f64,
            kv_write_bytes: 4.0 * d as f64,
        }
    }

    /// All bytes that cross HBM for this step (prefetched traffic included —
    /// prefetching moves bytes in time, it does not remove them).
    pub fn total_bytes(&self) -> f64 {
        self.g_bytes
            + self.centers_bytes
            + self.active_bytes
            + self.cache_bytes
            + self.kv_write_bytes
    }

    /// Bytes that must move *during the attention period* (stage 1 + stage 4
    /// reads minus prefetched hits).
    pub fn attention_period_bytes(&self) -> f64 {
        self.total_bytes() - self.prefetched_bytes
    }

    /// Stage-1 bytes: `G` read/write, identification keys, cache write-back.
    pub fn stage1_bytes(&self) -> f64 {
        self.g_bytes + self.centers_bytes + self.cache_bytes / 2.0 + self.kv_write_bytes
    }

    /// Stage-4 bytes during the attention period: cache read plus KV misses.
    pub fn stage4_bytes(&self) -> f64 {
        self.cache_bytes / 2.0 + (self.active_bytes - self.prefetched_bytes).max(0.0)
    }

    /// The Fig. 8 breakdown: (key centers, active positions, others),
    /// normalised so the three sum to 1.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let total = self.total_bytes();
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        let centers = self.centers_bytes / total;
        let active = self.active_bytes / total;
        (centers, active, 1.0 - centers - active)
    }

    /// Baseline traffic: a dense attention pass reads the full KV cache
    /// (`4nd`) and appends the new pair.
    pub fn dense_bytes(n: usize, d: usize) -> f64 {
        4.0 * n as f64 * d as f64 + 4.0 * d as f64
    }

    /// Traffic reduction factor vs. the dense baseline.
    pub fn reduction_factor(&self, n: usize, d: usize) -> f64 {
        AttentionTraffic::dense_bytes(n, d) / self.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(centers: f64, large: f64, active: f64) -> StatsSummary {
        StatsSummary {
            steps: 1,
            mean_centers: centers,
            mean_large_mode: large,
            mean_active: active,
            ..StatsSummary::default()
        }
    }

    #[test]
    fn byte_formulas() {
        let t = AttentionTraffic::from_stats(&stats(10.0, 5.0, 20.0), 1024, 128, 17, 0.0);
        assert_eq!(t.g_bytes, 2.0 * 8.0 * 1024.0);
        assert_eq!(t.centers_bytes, 2.0 * 128.0 * 15.0);
        assert_eq!(t.active_bytes, 4.0 * 128.0 * 37.0);
        assert_eq!(t.cache_bytes, 4.0 * (128 * 128 + 3 * 128 + 2) as f64);
        assert_eq!(t.kv_write_bytes, 512.0);
        assert_eq!(t.prefetched_bytes, 0.0);
    }

    #[test]
    fn prefetch_clamps_to_kv_positions() {
        let t = AttentionTraffic::from_stats(&stats(1.0, 0.0, 10.0), 256, 64, 17, 1000.0);
        assert_eq!(t.prefetched_bytes, t.active_bytes);
        assert!(t.attention_period_bytes() < t.total_bytes());
    }

    #[test]
    fn totals_are_consistent() {
        let t = AttentionTraffic::from_stats(&stats(8.0, 2.0, 30.0), 2048, 128, 17, 20.0);
        let sum = t.g_bytes + t.centers_bytes + t.active_bytes + t.cache_bytes + t.kv_write_bytes;
        assert!((t.total_bytes() - sum).abs() < 1e-9);
        assert!((t.attention_period_bytes() - (sum - t.prefetched_bytes)).abs() < 1e-9);
        // Stage split covers everything once.
        assert!((t.stage1_bytes() + t.stage4_bytes() + t.prefetched_bytes - sum).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_to_one() {
        let t = AttentionTraffic::from_stats(&stats(16.0, 4.0, 50.0), 4096, 128, 17, 0.0);
        let (c, a, o) = t.breakdown();
        assert!((c + a + o - 1.0).abs() < 1e-12);
        assert!(c > 0.0 && a > 0.0 && o > 0.0);
    }

    #[test]
    fn reduction_grows_with_sequence_length() {
        // With sub-linear |J|, the reduction factor must grow with n.
        let short = AttentionTraffic::from_stats(&stats(32.0, 8.0, 30.0), 512, 128, 17, 0.0);
        let long = AttentionTraffic::from_stats(&stats(128.0, 16.0, 80.0), 4096, 128, 17, 0.0);
        assert!(long.reduction_factor(4096, 128) > short.reduction_factor(512, 128));
        assert!(long.reduction_factor(4096, 128) > 5.0);
    }
}
