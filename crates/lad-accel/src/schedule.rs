//! End-to-end scheduling simulation (paper Sec. IV-D, Fig. 6).
//!
//! QKV-projection and attention periods interleave: every compute-bound QKV
//! period prefetches the upcoming attention period's predictable KV reads
//! (previous step's active positions + the latest window), and the attention
//! pipeline pauses at period boundaries with its in-flight head-samples
//! retained in SRAM (so the pipeline fill is paid once per layer, not per
//! pause). This module builds the explicit per-period timeline of one decode
//! step — the event-level counterpart of the analytic model in
//! [`crate::perf`], which the tests cross-validate against it.

use crate::config::AccelConfig;
use crate::pipeline::{self, AttentionPeriod};
use lad_core::stats::StatsSummary;
use lad_model::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// What a scheduled period does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeriodKind {
    /// QKV projections (compute-bound; hosts prefetch traffic).
    Qkv,
    /// The attention pipeline.
    Attention,
    /// Output projection + MLP + SFM operators.
    Rest,
}

/// One scheduled period of the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Period {
    /// Period kind.
    pub kind: PeriodKind,
    /// Layer index.
    pub layer: usize,
    /// Start time (s) within the decode step.
    pub start: f64,
    /// End time (s).
    pub end: f64,
    /// HBM bytes moved during the period (weights, KV, prefetch).
    pub hbm_bytes: f64,
}

impl Period {
    /// Period duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.end - self.start
    }
}

/// The simulated timeline of one decode step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// All periods in execution order.
    pub periods: Vec<Period>,
    /// End-to-end seconds.
    pub total_seconds: f64,
    /// Seconds spent in attention periods.
    pub attention_seconds: f64,
    /// Seconds spent in linear (QKV + rest) periods.
    pub linear_seconds: f64,
    /// Total HBM bytes of the step.
    pub hbm_bytes: f64,
    /// Bytes prefetched under QKV periods.
    pub prefetch_bytes: f64,
}

impl Timeline {
    /// Attention share of the end-to-end latency.
    pub fn attention_share(&self) -> f64 {
        self.attention_seconds / self.total_seconds
    }

    /// Checks the timeline is gapless and ordered (diagnostic invariant).
    pub fn is_contiguous(&self) -> bool {
        let mut cursor = 0.0f64;
        for p in &self.periods {
            if (p.start - cursor).abs() > 1e-12 || p.end < p.start {
                return false;
            }
            cursor = p.end;
        }
        (cursor - self.total_seconds).abs() < 1e-9
    }
}

fn linear_period_seconds(cfg: &AccelConfig, weight_bytes: f64, batch: usize) -> f64 {
    let mem = weight_bytes / cfg.hbm.total_bandwidth();
    let compute = batch as f64 * (weight_bytes / 2.0) / cfg.peak_macs();
    mem.max(compute)
}

/// Simulates one decode step of `model` at KV length `n` and batch size
/// `batch` on a LAD accelerator, producing the per-period timeline.
pub fn simulate_step(
    cfg: &AccelConfig,
    model: &ModelConfig,
    n: usize,
    stats: &StatsSummary,
    batch: usize,
) -> Timeline {
    let d = model.head_dim();
    let head_samples = batch * model.heads;
    let hidden = model.hidden as f64;
    let qkv_bytes = 3.0 * hidden * hidden * 2.0;
    let rest_bytes = model.layer_weight_bytes() as f64 - qkv_bytes;
    let qkv_seconds = linear_period_seconds(cfg, qkv_bytes, batch);
    let rest_seconds = linear_period_seconds(cfg, rest_bytes, batch);
    let qkv_spare =
        ((qkv_seconds * cfg.hbm.total_bandwidth() - qkv_bytes).max(0.0)) / head_samples as f64;

    let attn: AttentionPeriod =
        pipeline::attention_period(cfg, n, d, stats, head_samples, qkv_spare);

    let mut periods = Vec::with_capacity(model.layers * 3);
    let mut cursor = 0.0f64;
    let mut attention_seconds = 0.0;
    let mut linear_seconds = 0.0;
    let mut hbm_bytes = 0.0;
    let mut prefetch_bytes = 0.0;
    for layer in 0..model.layers {
        // QKV period: weights stream + this layer's attention prefetch.
        let qkv = Period {
            kind: PeriodKind::Qkv,
            layer,
            start: cursor,
            end: cursor + qkv_seconds,
            hbm_bytes: qkv_bytes + attn.prefetch_bytes,
        };
        cursor = qkv.end;
        linear_seconds += qkv.seconds();
        hbm_bytes += qkv.hbm_bytes;
        prefetch_bytes += attn.prefetch_bytes;
        periods.push(qkv);

        // Attention period: the pipeline resumes with retained in-flight
        // head-samples.
        let attention = Period {
            kind: PeriodKind::Attention,
            layer,
            start: cursor,
            end: cursor + attn.seconds,
            hbm_bytes: attn.period_bytes,
        };
        cursor = attention.end;
        attention_seconds += attention.seconds();
        hbm_bytes += attention.hbm_bytes;
        periods.push(attention);

        // Rest of the layer: output projection + MLP (+2 % SFM operators).
        let rest = Period {
            kind: PeriodKind::Rest,
            layer,
            start: cursor,
            end: cursor + rest_seconds * 1.02,
            hbm_bytes: rest_bytes,
        };
        cursor = rest.end;
        linear_seconds += rest.seconds();
        hbm_bytes += rest.hbm_bytes;
        periods.push(rest);
    }

    Timeline {
        periods,
        total_seconds: cursor,
        attention_seconds,
        linear_seconds,
        hbm_bytes,
        prefetch_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{evaluate, Platform};
    use crate::workload::workload_stats;

    fn setup() -> (AccelConfig, ModelConfig, StatsSummary) {
        (
            AccelConfig::lad_2_5(),
            ModelConfig::llama2_7b(),
            workload_stats(2048, 5),
        )
    }

    #[test]
    fn timeline_is_contiguous_and_complete() {
        let (cfg, model, stats) = setup();
        let timeline = simulate_step(&cfg, &model, 2048, &stats, 8);
        assert!(timeline.is_contiguous());
        assert_eq!(timeline.periods.len(), model.layers * 3);
        // Every layer contributes one period of each kind, in order.
        for (i, p) in timeline.periods.iter().enumerate() {
            let expected = match i % 3 {
                0 => PeriodKind::Qkv,
                1 => PeriodKind::Attention,
                _ => PeriodKind::Rest,
            };
            assert_eq!(p.kind, expected);
            assert_eq!(p.layer, i / 3);
        }
    }

    #[test]
    fn matches_analytic_model() {
        // The event timeline and the analytic perf model must agree on the
        // end-to-end latency (they share the period sub-models).
        let (cfg, model, stats) = setup();
        let timeline = simulate_step(&cfg, &model, 2048, &stats, 8);
        let analytic = evaluate(&Platform::Lad(cfg), &model, 2048, &stats, 8);
        let rel = (timeline.total_seconds - analytic.e2e_seconds).abs() / analytic.e2e_seconds;
        assert!(rel < 0.02, "timeline vs analytic differ by {rel}");
        let rel_attn =
            (timeline.attention_seconds - analytic.attn_seconds).abs() / analytic.attn_seconds;
        assert!(rel_attn < 1e-9, "attention mismatch {rel_attn}");
    }

    #[test]
    fn prefetch_rides_qkv_periods() {
        let (cfg, model, stats) = setup();
        let timeline = simulate_step(&cfg, &model, 2048, &stats, 8);
        assert!(timeline.prefetch_bytes > 0.0, "prefetch should engage");
        // QKV periods carry more than their weight bytes.
        let qkv_weight = 3.0 * (model.hidden * model.hidden) as f64 * 2.0;
        for p in timeline
            .periods
            .iter()
            .filter(|p| p.kind == PeriodKind::Qkv)
        {
            assert!(p.hbm_bytes >= qkv_weight);
        }
    }

    #[test]
    fn attention_share_grows_mildly_with_kv() {
        let (cfg, model, _) = setup();
        let share = |n: usize| {
            let stats = workload_stats(n, 5);
            simulate_step(&cfg, &model, n, &stats, 8).attention_share()
        };
        let s512 = share(512);
        let s4096 = share(4096);
        assert!(s4096 > s512);
        // Paper Fig. 8: LAD's attention share grows only a few percent.
        assert!(s4096 - s512 < 0.12, "share grew {s512} -> {s4096}");
    }

    #[test]
    fn hbm_bytes_account_for_everything() {
        let (cfg, model, stats) = setup();
        let timeline = simulate_step(&cfg, &model, 2048, &stats, 4);
        let period_sum: f64 = timeline.periods.iter().map(|p| p.hbm_bytes).sum();
        assert!((period_sum - timeline.hbm_bytes).abs() < 1.0);
        // At least the full weight set moves every step.
        let weights = (model.layer_weight_bytes() * model.layers) as f64;
        assert!(timeline.hbm_bytes > weights);
    }
}
