//! LAD accelerator simulator and baselines (paper Sec. IV–V).
//!
//! Models the LAD accelerator — six tiles with EAS/APID/MD/AC pipeline
//! modules, VPUs and SRAM on a shared HBM2 stack — together with the GPU
//! software baselines and the ideal accelerator the paper compares against.
//!
//! | module | paper artefact |
//! |---|---|
//! | [`config`] | tile/accelerator configurations (LAD-1.5/2.5/3.5) |
//! | [`hbm`] | HBM2 bandwidth + energy model (Ramulator substitute) |
//! | [`asic`] | per-module area/power (Table III, DC+CACTI substitute) |
//! | [`traffic`] | per-step HBM byte accounting (Fig. 8 left) |
//! | [`pipeline`] | the 6-stage attention pipeline and Eq. 7 |
//! | [`gpu`] | A100 rooflines: vLLM / Qserve / H2O / LAD-GPU |
//! | [`workload`] | calibrated trace statistics per KV length |
//! | [`perf`] | end-to-end evaluation: Fig. 7 / 8 / 9 / 10 |
//!
//! # Example
//!
//! ```
//! use lad_accel::config::AccelConfig;
//! use lad_accel::perf::{evaluate_best_batch, Platform};
//! use lad_accel::gpu::GpuBaseline;
//! use lad_accel::workload::workload_stats;
//! use lad_model::config::ModelConfig;
//!
//! let model = ModelConfig::llama2_7b();
//! let stats = workload_stats(2048, 1);
//! let gpu = evaluate_best_batch(&Platform::Gpu(GpuBaseline::Vllm), &model, 2048, &stats);
//! let lad = evaluate_best_batch(&Platform::Lad(AccelConfig::lad_2_5()), &model, 2048, &stats);
//! assert!(lad.attn_tokens_per_s > gpu.attn_tokens_per_s);
//! ```

pub mod asic;
pub mod config;
pub mod gpu;
pub mod hbm;
pub mod hbm_sim;
pub mod modules;
pub mod paged;
pub mod perf;
pub mod pipeline;
pub mod schedule;
pub mod traffic;
pub mod workload;

pub use config::AccelConfig;
pub use gpu::{GpuBaseline, GpuConfig};
pub use hbm::HbmConfig;
pub use perf::{evaluate, evaluate_best_batch, PerfResult, Platform};
pub use traffic::AttentionTraffic;
