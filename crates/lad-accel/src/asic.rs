//! On-chip area and power model (paper Table III).
//!
//! The paper synthesised the tile at TSMC 22 nm / 1 GHz with Synopsys DC and
//! modelled SRAM with CACTI; neither tool is available offline, so this
//! module is seeded with the paper's own Table III per-module numbers and
//! interpolates SRAM parameters linearly in capacity (CACTI is near-linear in
//! this range). Regenerating Table III from this model is the
//! `table3_area_power` bench.

use crate::config::MIB;
use serde::{Deserialize, Serialize};

/// Area and power of one hardware module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModulePower {
    /// Module name as it appears in Table III.
    pub name: String,
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Dynamic power in watts (at full activity).
    pub dynamic_w: f64,
    /// Static (leakage) power in watts.
    pub static_w: f64,
}

impl ModulePower {
    fn new(name: &str, area_mm2: f64, dynamic_mw: f64, static_mw: f64) -> ModulePower {
        ModulePower {
            name: name.to_string(),
            area_mm2,
            dynamic_w: dynamic_mw * 1e-3,
            static_w: static_mw * 1e-3,
        }
    }
}

/// The fixed computation modules of one tile (Table III, upper sections).
pub fn compute_modules() -> Vec<ModulePower> {
    vec![
        ModulePower::new("EAS module", 0.003, 1.37, 0.78),
        ModulePower::new("APID module", 0.006, 2.31, 0.99),
        ModulePower::new("MD module", 0.001, 1.06, 0.34),
        ModulePower::new("AC module", 0.087, 92.20, 20.20),
        ModulePower::new("VPUs (x7)", 0.398, 291.78, 77.60),
        ModulePower::new("SFM", 0.069, 43.29, 16.90),
    ]
}

/// SRAM parameters interpolated from the paper's CACTI anchors
/// (1.5 / 2.5 / 3.5 MB).
pub fn sram_module(sram_bytes: usize) -> ModulePower {
    // Anchor points: (capacity MB, area mm², dynamic mW, static mW).
    const ANCHORS: [(f64, f64, f64, f64); 3] = [
        (1.5, 1.596, 733.33, 118.25),
        (2.5, 2.231, 841.97, 193.58),
        (3.5, 3.187, 1202.82, 276.55),
    ];
    let mb = sram_bytes as f64 / MIB as f64;
    let interp = |f: fn(&(f64, f64, f64, f64)) -> f64| -> f64 {
        if mb <= ANCHORS[0].0 {
            // Scale below the smallest anchor proportionally.
            f(&ANCHORS[0]) * mb / ANCHORS[0].0
        } else if mb >= ANCHORS[2].0 {
            // Extrapolate from the top segment.
            let (x0, x1) = (ANCHORS[1].0, ANCHORS[2].0);
            let (y0, y1) = (f(&ANCHORS[1]), f(&ANCHORS[2]));
            y1 + (mb - x1) * (y1 - y0) / (x1 - x0)
        } else {
            let (lo, hi) = if mb <= ANCHORS[1].0 {
                (ANCHORS[0], ANCHORS[1])
            } else {
                (ANCHORS[1], ANCHORS[2])
            };
            let t = (mb - lo.0) / (hi.0 - lo.0);
            f(&lo) * (1.0 - t) + f(&hi) * t
        }
    };
    ModulePower::new(
        &format!("SRAM ({mb:.1} MB)"),
        interp(|a| a.1),
        interp(|a| a.2),
        interp(|a| a.3),
    )
}

/// Full per-module breakdown of one tile (compute modules + SRAM).
pub fn tile_breakdown(sram_bytes: usize) -> Vec<ModulePower> {
    let mut modules = compute_modules();
    modules.push(sram_module(sram_bytes));
    modules
}

/// Aggregate area/power of one tile.
pub fn tile_total(sram_bytes: usize) -> ModulePower {
    let breakdown = tile_breakdown(sram_bytes);
    ModulePower {
        name: "LAD tile".to_string(),
        area_mm2: breakdown.iter().map(|m| m.area_mm2).sum(),
        dynamic_w: breakdown.iter().map(|m| m.dynamic_w).sum(),
        static_w: breakdown.iter().map(|m| m.static_w).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reproduce_table_iii_tiles() {
        // (sram MB, tile area, tile dynamic mW, tile static mW) from Table III.
        for (mb, area, dyn_mw, stat_mw) in [
            (1.5, 2.160, 1165.34, 235.06),
            (2.5, 2.795, 1273.98, 310.39),
            (3.5, 3.751, 1634.83, 393.36),
        ] {
            let total = tile_total((mb * MIB as f64) as usize);
            assert!((total.area_mm2 - area).abs() < 0.01, "{mb} area");
            assert!((total.dynamic_w * 1e3 - dyn_mw).abs() < 1.0, "{mb} dyn");
            assert!((total.static_w * 1e3 - stat_mw).abs() < 1.0, "{mb} static");
        }
    }

    #[test]
    fn sram_dominates_tile_area() {
        // Paper Sec. V-D: "The SRAM accounts for the majority of the on-chip
        // area and power."
        let total = tile_total(3 * MIB / 2);
        let sram = sram_module(3 * MIB / 2);
        assert!(sram.area_mm2 / total.area_mm2 > 0.5);
        assert!(sram.dynamic_w / total.dynamic_w > 0.5);
    }

    #[test]
    fn compute_modules_split_matches_paper() {
        // Excluding SRAM, computation modules (VPUs+SFM+AC) take up ~82.7 %
        // of the non-SRAM area.
        let modules = compute_modules();
        let total_area: f64 = modules.iter().map(|m| m.area_mm2).sum();
        let compute_area: f64 = modules
            .iter()
            .filter(|m| ["VPUs (x7)", "SFM"].contains(&m.name.as_str()))
            .map(|m| m.area_mm2)
            .sum();
        assert!((compute_area / total_area - 0.827).abs() < 0.01);
    }

    #[test]
    fn interpolation_is_monotonic() {
        let mut last_area = 0.0;
        for mb in [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0] {
            let sram = sram_module((mb * MIB as f64) as usize);
            assert!(sram.area_mm2 > last_area, "{mb} MB");
            last_area = sram.area_mm2;
        }
    }

    #[test]
    fn midpoint_interpolation() {
        let sram = sram_module(2 * MIB);
        // Halfway between the 1.5 and 2.5 MB anchors.
        assert!((sram.area_mm2 - (1.596 + 2.231) / 2.0).abs() < 1e-6);
    }
}
