//! Accelerator configuration (paper Sec. IV-A, V-A).
//!
//! A LAD accelerator integrates several **LAD tiles** sharing one HBM stack.
//! Each tile carries the attention-pipeline modules (EAS/APID/MD/AC), 7 VPUs,
//! an SFM and a private SRAM. The paper evaluates three configurations,
//! LAD-1.5/2.5/3.5, differing only in per-tile SRAM capacity.

use crate::hbm::HbmConfig;
use serde::{Deserialize, Serialize};

/// Per-tile microarchitecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileConfig {
    /// On-chip SRAM bytes.
    pub sram_bytes: usize,
    /// Number of vector processing units (7 in the paper).
    pub vpus: usize,
    /// Multipliers per VPU (the head dimension, 128).
    pub vpu_width: usize,
    /// Clock frequency in Hz (1 GHz).
    pub clock_hz: f64,
    /// EAS parallelism degree (positions/cycle).
    pub eas_parallelism: usize,
    /// APID parallelism degree.
    pub apid_parallelism: usize,
    /// MD parallelism degree.
    pub md_parallelism: usize,
    /// AC parallelism degree.
    pub ac_parallelism: usize,
}

impl TileConfig {
    /// The paper's tile with the given SRAM capacity in bytes.
    pub fn paper(sram_bytes: usize) -> TileConfig {
        TileConfig {
            sram_bytes,
            vpus: 7,
            vpu_width: 128,
            clock_hz: 1.0e9,
            eas_parallelism: 2,
            apid_parallelism: 12,
            md_parallelism: 2,
            ac_parallelism: 3,
        }
    }

    /// Peak multiply-accumulate throughput of one tile (MAC/s).
    pub fn peak_macs(&self) -> f64 {
        (self.vpus * self.vpu_width) as f64 * self.clock_hz
    }
}

/// A complete accelerator: several tiles on one HBM stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelConfig {
    /// Configuration name (for experiment tables).
    pub name: String,
    /// Number of LAD tiles (6 in the paper).
    pub tiles: usize,
    /// Per-tile parameters.
    pub tile: TileConfig,
    /// HBM stack.
    pub hbm: HbmConfig,
}

/// One mebibyte.
pub const MIB: usize = 1024 * 1024;

impl AccelConfig {
    /// LAD-1.5: six tiles with 1.5 MB SRAM each.
    pub fn lad_1_5() -> AccelConfig {
        AccelConfig::paper("LAD-1.5", 3 * MIB / 2)
    }

    /// LAD-2.5: six tiles with 2.5 MB SRAM each.
    pub fn lad_2_5() -> AccelConfig {
        AccelConfig::paper("LAD-2.5", 5 * MIB / 2)
    }

    /// LAD-3.5: six tiles with 3.5 MB SRAM each.
    pub fn lad_3_5() -> AccelConfig {
        AccelConfig::paper("LAD-3.5", 7 * MIB / 2)
    }

    /// The three paper configurations, small to large.
    pub fn paper_configs() -> Vec<AccelConfig> {
        vec![
            AccelConfig::lad_1_5(),
            AccelConfig::lad_2_5(),
            AccelConfig::lad_3_5(),
        ]
    }

    fn paper(name: &str, sram_bytes: usize) -> AccelConfig {
        AccelConfig {
            name: name.to_string(),
            tiles: 6,
            tile: TileConfig::paper(sram_bytes),
            hbm: HbmConfig::paper(),
        }
    }

    /// Aggregate peak MAC throughput across tiles.
    pub fn peak_macs(&self) -> f64 {
        self.tile.peak_macs() * self.tiles as f64
    }

    /// HBM bandwidth share of a single tile (bytes/s).
    pub fn per_tile_bandwidth(&self) -> f64 {
        self.hbm.total_bandwidth() / self.tiles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_differ_only_in_sram() {
        let configs = AccelConfig::paper_configs();
        assert_eq!(configs.len(), 3);
        assert_eq!(configs[0].tile.sram_bytes, 3 * MIB / 2);
        assert_eq!(configs[2].tile.sram_bytes, 7 * MIB / 2);
        for c in &configs {
            assert_eq!(c.tiles, 6);
            assert_eq!(c.tile.vpus, 7);
            assert_eq!(c.tile.apid_parallelism, 12);
        }
    }

    #[test]
    fn peak_throughput() {
        let cfg = AccelConfig::lad_2_5();
        // 6 tiles × 7 VPUs × 128 MACs × 1 GHz = 5.376 TMAC/s.
        assert!((cfg.peak_macs() - 5.376e12).abs() < 1e9);
        assert!((cfg.tile.peak_macs() - 896e9).abs() < 1e6);
    }

    #[test]
    fn bandwidth_share() {
        let cfg = AccelConfig::lad_1_5();
        let share = cfg.per_tile_bandwidth();
        assert!((share * 6.0 - cfg.hbm.total_bandwidth()).abs() < 1.0);
    }
}
