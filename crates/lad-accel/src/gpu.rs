//! GPU roofline baselines (substitute for the A100 + vLLM/Qserve/H2O/Triton
//! stack — see `DESIGN.md`).
//!
//! Decode-time attention is memory-bound: a bandwidth roofline with
//! per-baseline traffic and efficiency factors reproduces the behaviour the
//! paper's speedup ratios rest on. Linear layers are modelled as
//! `max(weight-streaming, compute)` — memory-bound at realistic batch sizes.

use crate::traffic::AttentionTraffic;
use lad_model::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// GPU platform parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Platform name.
    pub name: String,
    /// Peak HBM bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Peak fp16 tensor throughput (FLOP/s).
    pub fp16_flops: f64,
    /// Average board power during decode (W, nvidia-smi style).
    pub power_w: f64,
    /// Device memory capacity (bytes).
    pub mem_bytes: f64,
    /// Achieved fraction of peak bandwidth for streaming reads.
    pub stream_efficiency: f64,
    /// Achieved fraction of peak bandwidth for irregular gathers.
    pub gather_efficiency: f64,
    /// Fixed per-layer kernel overhead (s).
    pub kernel_overhead_s: f64,
}

impl GpuConfig {
    /// NVIDIA A100-40GB PCIe (paper Sec. V-A).
    ///
    /// `stream_efficiency` 0.65 reflects what vLLM decode kernels achieve of
    /// the 1555 GB/s peak in practice (paged KV gathers, skinny GEMMs,
    /// launch gaps) — the calibration that makes the end-to-end ratios land
    /// in the paper's range.
    pub fn a100() -> GpuConfig {
        GpuConfig {
            name: "A100-40GB".to_string(),
            bandwidth: 1.555e12,
            fp16_flops: 312e12,
            power_w: 250.0,
            mem_bytes: 40e9,
            stream_efficiency: 0.65,
            gather_efficiency: 0.15,
            kernel_overhead_s: 5e-6,
        }
    }
}

/// The GPU software baselines of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GpuBaseline {
    /// vLLM with paged KV-cache management (the primary baseline).
    Vllm,
    /// Qserve A16W16KV4: 4-bit KV cache, dequantisation overhead.
    Qserve,
    /// H2O: 10 % heavy + 10 % recent positions kept.
    H2o,
    /// The LAD algorithm in Triton kernels (irregular ops, no prefetch).
    LadGpu,
}

impl GpuBaseline {
    /// Whether the open-source implementation supports this model family
    /// (paper: Qserve only LLaMA, H2O only OPT).
    pub fn supports(&self, model: &ModelConfig) -> bool {
        match self {
            GpuBaseline::Qserve => model.name.starts_with("LLaMA"),
            GpuBaseline::H2o => model.name.starts_with("OPT"),
            _ => true,
        }
    }
}

/// Attention-layer time for one decode step of one layer (all heads, batch
/// `batch`). For [`GpuBaseline::LadGpu`], pass the per-head LAD traffic
/// profile.
pub fn attention_seconds(
    gpu: &GpuConfig,
    baseline: GpuBaseline,
    model: &ModelConfig,
    n: usize,
    batch: usize,
    lad_traffic: Option<&AttentionTraffic>,
) -> f64 {
    let kv_bytes = model.layer_kv_bytes(n) as f64 * batch as f64;
    match baseline {
        GpuBaseline::Vllm => {
            kv_bytes / (gpu.bandwidth * gpu.stream_efficiency) + gpu.kernel_overhead_s
        }
        GpuBaseline::Qserve => {
            // KV4: a quarter of the bytes, dequantisation adds ~20 % time.
            kv_bytes / 4.0 / (gpu.bandwidth * gpu.stream_efficiency) * 1.2
                + 2.0 * gpu.kernel_overhead_s
        }
        GpuBaseline::H2o => {
            // 20 % of positions kept, score bookkeeping adds ~30 %.
            kv_bytes * 0.2 / (gpu.bandwidth * gpu.stream_efficiency) * 1.3
                + 2.0 * gpu.kernel_overhead_s
        }
        GpuBaseline::LadGpu => {
            let traffic = lad_traffic.expect("LadGpu needs a traffic profile");
            let bytes = traffic.total_bytes() * (model.heads * batch) as f64;
            // Irregular per-head access patterns gather poorly, and the
            // multi-stage algorithm needs several kernel launches per layer.
            bytes / (gpu.bandwidth * gpu.gather_efficiency) + 12.0 * gpu.kernel_overhead_s
        }
    }
}

/// Linear-layer time for one decode step of one layer (batch `batch`):
/// weights stream once per batch; compute is `2 · batch · params` FLOPs.
pub fn linear_seconds(gpu: &GpuConfig, model: &ModelConfig, batch: usize) -> f64 {
    let weight_bytes = model.layer_weight_bytes() as f64;
    let params = weight_bytes / 2.0;
    let mem = weight_bytes / (gpu.bandwidth * gpu.stream_efficiency);
    let compute = 2.0 * batch as f64 * params / (gpu.fp16_flops * 0.6);
    mem.max(compute) + gpu.kernel_overhead_s
}

/// Maximum batch size fitting in device memory at sequence length `n`
/// (weights + per-sample KV caches).
pub fn max_batch(gpu: &GpuConfig, model: &ModelConfig, n: usize) -> usize {
    let weights = model.param_count() as f64 * 2.0;
    let kv_per_sample = (model.layers * model.layer_kv_bytes(n)) as f64;
    let free = (gpu.mem_bytes * 0.9 - weights).max(0.0);
    (free / kv_per_sample).floor() as usize
}

/// One decode step, end to end (all layers).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GpuStep {
    /// Attention seconds across all layers.
    pub attn_seconds: f64,
    /// Linear seconds across all layers.
    pub linear_seconds: f64,
    /// End-to-end seconds (attention + linear + 5 % framework overhead).
    pub e2e_seconds: f64,
}

/// Models one decode step on the GPU.
pub fn gpu_step(
    gpu: &GpuConfig,
    baseline: GpuBaseline,
    model: &ModelConfig,
    n: usize,
    batch: usize,
    lad_traffic: Option<&AttentionTraffic>,
) -> GpuStep {
    let layers = model.layers as f64;
    let attn = attention_seconds(gpu, baseline, model, n, batch, lad_traffic) * layers;
    let linear = linear_seconds(gpu, model, batch) * layers;
    GpuStep {
        attn_seconds: attn,
        linear_seconds: linear,
        e2e_seconds: (attn + linear) * 1.05,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_core::stats::StatsSummary;

    fn llama() -> ModelConfig {
        ModelConfig::llama2_7b()
    }

    #[test]
    fn attention_share_grows_with_kv_len() {
        // Fig. 1: the attention proportion rises with sequence length and
        // crosses ~50 % around 4096 for LLaMA2-7B.
        let gpu = GpuConfig::a100();
        let model = llama();
        // Fixed batch across lengths, as the Fig. 1 measurement sweeps only
        // the KV length.
        let share = |n: usize| {
            let step = gpu_step(&gpu, GpuBaseline::Vllm, &model, n, 8, None);
            step.attn_seconds / (step.attn_seconds + step.linear_seconds)
        };
        assert!(share(4096) > share(2048));
        assert!(share(2048) > share(1024));
        assert!(share(4096) > 0.5, "share(4096) = {}", share(4096));
        assert!(
            (0.30..0.60).contains(&share(2048)),
            "share(2048) = {}",
            share(2048)
        );
    }

    #[test]
    fn qserve_and_h2o_cut_attention_time() {
        let gpu = GpuConfig::a100();
        let model = llama();
        let v = attention_seconds(&gpu, GpuBaseline::Vllm, &model, 4096, 8, None);
        let q = attention_seconds(&gpu, GpuBaseline::Qserve, &model, 4096, 8, None);
        let h = attention_seconds(&gpu, GpuBaseline::H2o, &model, 4096, 8, None);
        assert!(q < v && h < v);
    }

    #[test]
    fn lad_gpu_only_wins_at_long_kv() {
        // Paper: "LAD-GPU only shows slightly better performance than
        // vLLM-GPU in especially long KV cache scenarios".
        let gpu = GpuConfig::a100();
        let model = llama();
        let lad_time = |n: usize, active: f64, centers: f64| {
            let stats = StatsSummary {
                steps: 1,
                mean_active: active,
                mean_centers: centers,
                mean_large_mode: centers * 0.3,
                ..StatsSummary::default()
            };
            let traffic = AttentionTraffic::from_stats(&stats, n, 128, 17, 0.0);
            attention_seconds(&gpu, GpuBaseline::LadGpu, &model, n, 8, Some(&traffic))
        };
        let vllm = |n: usize| attention_seconds(&gpu, GpuBaseline::Vllm, &model, n, 8, None);
        // Short sequences: LAD's irregular ops lose.
        assert!(lad_time(512, 30.0, 45.0) > vllm(512));
        // Long sequences: the traffic reduction wins, modestly.
        let ratio = vllm(4096) / lad_time(4096, 80.0, 128.0);
        assert!(ratio > 1.0 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn linear_is_memory_bound_at_small_batch() {
        let gpu = GpuConfig::a100();
        let model = llama();
        // Identical time for batch 1 and 8 -> weight streaming dominates.
        let t1 = linear_seconds(&gpu, &model, 1);
        let t8 = linear_seconds(&gpu, &model, 8);
        assert!((t1 - t8).abs() / t1 < 0.01);
        // Very large batch becomes compute-bound.
        assert!(linear_seconds(&gpu, &model, 512) > t1 * 2.0);
    }

    #[test]
    fn max_batch_shrinks_with_sequence_length() {
        let gpu = GpuConfig::a100();
        let model = llama();
        let b512 = max_batch(&gpu, &model, 512);
        let b4096 = max_batch(&gpu, &model, 4096);
        assert!(b512 > b4096);
        assert!(b4096 >= 4, "b4096 = {b4096}");
        // 13B at 4096 barely fits any batch on 40 GB.
        let b13 = max_batch(&gpu, &ModelConfig::llama2_13b(), 4096);
        assert!(b13 <= 4, "b13 = {b13}");
    }

    #[test]
    fn baseline_support_matrix() {
        assert!(GpuBaseline::Qserve.supports(&ModelConfig::llama2_7b()));
        assert!(!GpuBaseline::Qserve.supports(&ModelConfig::opt_2_7b()));
        assert!(GpuBaseline::H2o.supports(&ModelConfig::opt_6_7b()));
        assert!(!GpuBaseline::H2o.supports(&ModelConfig::llama2_13b()));
        assert!(GpuBaseline::Vllm.supports(&ModelConfig::opt_2_7b()));
    }
}
