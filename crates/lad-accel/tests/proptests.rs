//! Property-based tests of the accelerator models.

use lad_accel::config::AccelConfig;
use lad_accel::hbm::HbmConfig;
use lad_accel::hbm_sim::{HbmSim, Request};
use lad_accel::modules::{GTensor, TileEngine, Vpu};
use lad_accel::paged::{BlockPool, BLOCK_TOKENS};
use lad_accel::pipeline::{attention_period, compute_stage_cycles};
use lad_accel::traffic::AttentionTraffic;
use lad_core::stats::StatsSummary;
use lad_math::pwl::PwlExp;
use lad_math::Rng;
use proptest::prelude::*;

fn stats_strategy() -> impl Strategy<Value = StatsSummary> {
    (
        0.0f64..200.0,
        0.0f64..50.0,
        0.0f64..300.0,
        0.0f64..1.0,
        0.0f64..10.0,
    )
        .prop_map(|(centers, large, active, hit, updates)| StatsSummary {
            steps: 1,
            mean_centers: centers,
            mean_large_mode: large,
            mean_active: active,
            mean_hit_ratio: hit,
            mean_mode_updates: updates,
            ..StatsSummary::default()
        })
}

proptest! {
    /// Eq.7 cycles are monotone in every workload quantity.
    #[test]
    fn eq7_is_monotone(stats in stats_strategy(), n in 64usize..8192) {
        let cfg = AccelConfig::lad_2_5();
        let base = compute_stage_cycles(&cfg, n, 128, &stats);
        let mut more_active = stats.clone();
        more_active.mean_active += 50.0;
        prop_assert!(compute_stage_cycles(&cfg, n, 128, &more_active) >= base);
        let mut more_updates = stats.clone();
        more_updates.mean_mode_updates += 5.0;
        prop_assert!(compute_stage_cycles(&cfg, n, 128, &more_updates) >= base);
        prop_assert!(compute_stage_cycles(&cfg, n + 1024, 128, &stats) >= base);
    }

    /// Traffic accounting conserves bytes and keeps the breakdown a
    /// partition of unity.
    #[test]
    fn traffic_conservation(stats in stats_strategy(), n in 64usize..8192,
                            prefetch in 0.0f64..500.0) {
        let t = AttentionTraffic::from_stats(&stats, n, 128, 17, prefetch);
        prop_assert!(t.prefetched_bytes <= t.active_bytes + 1e-9);
        prop_assert!(t.attention_period_bytes() <= t.total_bytes() + 1e-9);
        let (c, a, o) = t.breakdown();
        prop_assert!((c + a + o - 1.0).abs() < 1e-9);
        prop_assert!(c >= 0.0 && a >= 0.0 && o >= 0.0);
        // Stage split + prefetch covers the total exactly once.
        let covered = t.stage1_bytes() + t.stage4_bytes() + t.prefetched_bytes;
        prop_assert!((covered - t.total_bytes()).abs() < 1e-6);
    }

    /// The attention-period model is monotone in head-sample count and never
    /// benefits from *less* spare prefetch bandwidth.
    #[test]
    fn attention_period_monotonicity(stats in stats_strategy(), n in 128usize..4096,
                                     hs in 8usize..512) {
        let cfg = AccelConfig::lad_2_5();
        let base = attention_period(&cfg, n, 128, &stats, hs, 1e6);
        let bigger = attention_period(&cfg, n, 128, &stats, hs * 2, 1e6);
        prop_assert!(bigger.seconds >= base.seconds);
        let no_prefetch = attention_period(&cfg, n, 128, &stats, hs, 0.0);
        prop_assert!(no_prefetch.seconds >= base.seconds - 1e-12);
        prop_assert!(no_prefetch.prefetch_bytes == 0.0);
    }

    /// The HBM simulator never reports more than peak bandwidth, and
    /// transferred >= useful bytes.
    #[test]
    fn hbm_sim_is_physical(requests in prop::collection::vec(
        (0u64..1 << 24, 1u32..2048), 1..64)) {
        let mut sim = HbmSim::new(HbmConfig::paper());
        let reqs: Vec<Request> = requests
            .iter()
            .map(|&(a, b)| Request::new(a, b))
            .collect();
        let outcome = sim.run(&reqs);
        prop_assert!(outcome.bandwidth_utilization <= 1.0 + 1e-9);
        prop_assert!(outcome.transferred_bytes >= outcome.useful_bytes);
        prop_assert!(outcome.seconds > 0.0);
        prop_assert!((0.0..=1.0).contains(&outcome.row_hit_ratio));
    }

    /// VPU operations match their mathematical definitions on arbitrary
    /// vectors.
    #[test]
    fn vpu_semantics(seed in 0u64..1000, width in 1usize..32, scalar in -4.0f32..4.0) {
        let mut rng = Rng::new(seed);
        let a = rng.normal_vec(width, 1.0);
        let b = rng.normal_vec(width, 1.0);
        let mut vpu = Vpu::new(width);
        vpu.load_vec1(&a);
        let dot = vpu.dot(&b);
        let want: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        prop_assert!((dot - want).abs() < 1e-3);
        let em = vpu.elementwise(&b);
        for ((x, y), z) in a.iter().zip(&b).zip(&em) {
            prop_assert!((x * y - z).abs() < 1e-5);
        }
        let s = vpu.scale(scalar, &b);
        for (y, z) in b.iter().zip(&s) {
            prop_assert!((y * scalar - z).abs() < 1e-4);
        }
        prop_assert_eq!(vpu.cycles(), 3);
    }

    /// The tile engine stays finite and consistent on arbitrary short
    /// streams (robustness / failure-injection style).
    #[test]
    fn tile_engine_is_robust(seed in 0u64..200) {
        let d = 8;
        let mut rng = Rng::new(seed);
        let mut tile = TileEngine::new(d, PwlExp::accurate_default());
        for step in 0..40 {
            // Adversarial inputs: occasional zero keys and huge values.
            let q = rng.normal_vec(d, 1.0);
            let k = if step % 7 == 3 {
                vec![0.0; d]
            } else {
                rng.normal_vec(d, if step % 5 == 0 { 10.0 } else { 1.0 })
            };
            let v = rng.normal_vec(d, 4.0);
            let result = tile.step(&q, &k, &v);
            prop_assert_eq!(result.n, step + 1);
            prop_assert!(result.output.iter().all(|x| x.is_finite()),
                "non-finite output at step {}", step);
            prop_assert!(result.active <= result.n);
        }
    }

    /// The G tensor's packed fields round-trip within fp16 precision.
    #[test]
    fn g_tensor_fp16_bounds(norm in 1e-3f32..1e3, dnorm in -100.0f32..100.0) {
        let mut g = GTensor::new(16);
        g.push(norm, 0, dnorm);
        prop_assert!((g.norm(0) - norm).abs() <= norm * 2.0f32.powi(-10));
        let bound = dnorm.abs().max(1e-3) * 2.0f32.powi(-10);
        prop_assert!((g.dnorm(0) - dnorm).abs() <= bound);
    }

    /// The paged block pool stays consistent with a naive shadow recount
    /// under arbitrary admit / append / release interleavings: free blocks
    /// never exceed the total, accounting balances exactly, ids stay stable,
    /// and fragmentation matches the per-sequence recomputation. (op 0 =
    /// admit, 1 = append, 2 = release, 3 = truncate; `arg` picks the prompt
    /// length, the live sequence acted on, or the truncation point.)
    #[test]
    fn block_pool_accounting_is_consistent(ops in prop::collection::vec(
        (0u8..4, 1usize..64), 1..100)) {
        let model = lad_model::config::ModelConfig::tiny("pool-prop", 2, 32, 2);
        let block_bytes = model.layers * 2 * model.hidden * 2 * BLOCK_TOKENS;
        let total = 24usize;
        let mut pool = BlockPool::new(&model, total * block_bytes);
        // Shadow: (id, tokens) of every sequence we believe is live.
        let mut shadow: Vec<(usize, usize)> = Vec::new();

        for &(op, arg) in &ops {
            match op {
                0 => {
                    let need = BlockPool::blocks_for(arg);
                    let had = pool.free_blocks();
                    match pool.admit(arg) {
                        Some(id) => {
                            prop_assert!(need <= had, "admit over-committed");
                            prop_assert!(!shadow.iter().any(|&(l, _)| l == id),
                                "admit reused a live id");
                            shadow.push((id, arg));
                        }
                        None => prop_assert!(need > had, "admit refused despite space"),
                    }
                }
                1 if !shadow.is_empty() => {
                    let pick = arg % shadow.len();
                    let (id, tokens) = shadow[pick];
                    let needs_block = tokens % BLOCK_TOKENS == 0;
                    let had = pool.free_blocks();
                    if pool.append_token(id) {
                        shadow[pick].1 += 1;
                        prop_assert!(!needs_block || had >= 1);
                    } else {
                        prop_assert!(needs_block && had == 0, "append refused despite space");
                    }
                }
                2 if !shadow.is_empty() => {
                    let (id, _) = shadow.swap_remove(arg % shadow.len());
                    pool.release(id);
                    prop_assert!(pool.sequence_tokens(id).is_none());
                }
                3 if !shadow.is_empty() => {
                    let pick = arg % shadow.len();
                    let (id, tokens) = shadow[pick];
                    let keep = (arg % tokens) + 1;
                    pool.truncate(id, keep);
                    shadow[pick].1 = keep;
                }
                _ => {}
            }

            // Invariants after every operation.
            let used: usize = shadow.iter().map(|&(_, t)| BlockPool::blocks_for(t)).sum();
            prop_assert!(pool.free_blocks() <= pool.total_blocks());
            prop_assert_eq!(pool.free_blocks() + used, pool.total_blocks());
            prop_assert_eq!(pool.live_sequences(), shadow.len());
            for &(id, tokens) in &shadow {
                prop_assert_eq!(pool.sequence_tokens(id), Some(tokens));
            }
            let frag: usize = shadow.iter().map(|&(_, t)| {
                let partial = t % BLOCK_TOKENS;
                if partial == 0 { 0 } else { (BLOCK_TOKENS - partial) * block_bytes / BLOCK_TOKENS }
            }).sum();
            prop_assert_eq!(pool.fragmentation_bytes(), frag);
            prop_assert_eq!(pool.max_batch(BLOCK_TOKENS), pool.free_blocks());
        }

        // Releasing everything restores the full pool.
        for (id, _) in shadow.drain(..) {
            pool.release(id);
        }
        prop_assert_eq!(pool.free_blocks(), pool.total_blocks());
        prop_assert_eq!(pool.fragmentation_bytes(), 0);
    }

    /// Speculative-decoding rollback keeps the pool consistent: each round a
    /// sequence optimistically appends room for `k` draft rows plus the
    /// bonus token, then the verifier accepts an arbitrary prefix and the
    /// rejected tail is truncated away. Across arbitrary accept/reject
    /// interleavings (including mid-speculation preemption by release) the
    /// pool must match a shadow recount with no leaked or double-freed
    /// blocks.
    #[test]
    fn block_pool_survives_speculative_rollback(rounds in prop::collection::vec(
        (1usize..9, 0usize..9, 0u8..8), 1..80)) {
        let model = lad_model::config::ModelConfig::tiny("spec-prop", 2, 32, 2);
        let block_bytes = model.layers * 2 * model.hidden * 2 * BLOCK_TOKENS;
        let total = 24usize;
        let mut pool = BlockPool::new(&model, total * block_bytes);
        // Shadow: (id, committed tokens) of every live sequence.
        let mut shadow: Vec<(usize, usize)> = Vec::new();

        for &(k, accept, ctl) in &rounds {
            // ctl 0 admits a fresh sequence; ctl 1 preempts one mid-stream;
            // anything else runs a speculative round on an existing one.
            if ctl == 0 || shadow.is_empty() {
                if let Some(id) = pool.admit(k * 5 + 1) {
                    shadow.push((id, k * 5 + 1));
                }
            } else if ctl == 1 {
                let (id, _) = shadow.swap_remove(accept % shadow.len());
                pool.release(id);
            } else {
                let pick = accept % shadow.len();
                let (id, committed) = shadow[pick];
                // Reserve k draft rows + 1 bonus token up front, counting
                // how many appends the pool actually granted.
                let mut reserved = 0usize;
                for _ in 0..=k {
                    if pool.append_token(id) { reserved += 1; } else { break; }
                }
                if reserved == 0 {
                    continue; // exhausted: a real engine would fall back.
                }
                // Verifier accepts a prefix; the first row always commits.
                let kept = (accept % reserved) + 1;
                if kept < reserved {
                    pool.truncate(id, committed + kept);
                }
                shadow[pick].1 = committed + kept;
            }

            // Shadow recount after every round.
            let used: usize = shadow.iter().map(|&(_, t)| BlockPool::blocks_for(t)).sum();
            prop_assert_eq!(pool.free_blocks() + used, pool.total_blocks());
            prop_assert_eq!(pool.live_sequences(), shadow.len());
            for &(id, tokens) in &shadow {
                prop_assert_eq!(pool.sequence_tokens(id), Some(tokens));
            }
        }

        for (id, _) in shadow.drain(..) {
            pool.release(id);
        }
        prop_assert_eq!(pool.free_blocks(), pool.total_blocks());
        prop_assert_eq!(pool.fragmentation_bytes(), 0);
    }
}
