//! Cross-model consistency: the independent hardware models (paged KV pool,
//! channel-level HBM simulator, analytic rooflines, event schedule) must
//! agree with each other where their domains overlap.

use lad_accel::config::AccelConfig;
use lad_accel::gpu::{max_batch, GpuConfig};
use lad_accel::hbm::HbmConfig;
use lad_accel::hbm_sim::HbmSim;
use lad_accel::paged::{BlockPool, BLOCK_TOKENS};
use lad_accel::perf::{evaluate, feasible_batch, Platform};
use lad_accel::schedule::simulate_step;
use lad_accel::workload::workload_stats;
use lad_model::config::ModelConfig;

#[test]
fn paged_pool_agrees_with_analytic_capacity() {
    // The block-granular pool and the byte-level feasibility formula must
    // agree on batch capacity within one block of rounding.
    let gpu = GpuConfig::a100();
    let model = ModelConfig::llama2_7b();
    for n in [512usize, 1024, 2048, 4096] {
        let analytic = max_batch(&gpu, &model, n);
        let weights = model.param_count() as f64 * 2.0;
        let budget = (gpu.mem_bytes * 0.9 - weights).max(0.0) as usize;
        let pool = BlockPool::new(&model, budget);
        let paged = pool.max_batch(n);
        // Paged allocation can only lose capacity to block rounding.
        assert!(
            paged <= analytic + 1,
            "n={n}: paged {paged} vs analytic {analytic}"
        );
        let per_seq_blocks = n.div_ceil(BLOCK_TOKENS);
        let max_loss = pool.total_blocks() / per_seq_blocks.max(1) / 8 + 1;
        assert!(
            analytic <= paged + max_loss,
            "n={n}: analytic {analytic} vs paged {paged}"
        );
    }
}

#[test]
fn channel_sim_brackets_roofline_efficiencies() {
    // The A100 roofline assumes ~0.65 stream efficiency and ~0.15 gather
    // efficiency; the channel-level HBM model must produce utilisations on
    // the same side of each other (streams ≫ gathers).
    let mut sim = HbmSim::new(HbmConfig::paper());
    let stream = sim.stream(0, 32 * 1024 * 1024);
    let mut sim = HbmSim::new(HbmConfig::paper());
    // 64 B gathers at random addresses — the active-position pattern.
    let gather = sim.gather(100_000, 64, 11);
    assert!(
        stream.bandwidth_utilization > 2.0 * gather.bandwidth_utilization,
        "stream {} vs gather {}",
        stream.bandwidth_utilization,
        gather.bandwidth_utilization
    );
    // Gathers still achieve a usable fraction (channel parallelism works).
    assert!(gather.bandwidth_utilization > 0.05);
}

#[test]
fn schedule_and_analytic_agree_across_the_grid() {
    let cfg = AccelConfig::lad_3_5();
    for model in [ModelConfig::llama2_7b(), ModelConfig::opt_6_7b()] {
        for n in [512usize, 2048] {
            let stats = workload_stats(n, 9);
            let batch = feasible_batch(&model, n).min(8);
            let timeline = simulate_step(&cfg, &model, n, &stats, batch);
            let analytic = evaluate(&Platform::Lad(cfg.clone()), &model, n, &stats, batch);
            let rel = (timeline.total_seconds - analytic.e2e_seconds).abs() / analytic.e2e_seconds;
            assert!(
                rel < 0.02,
                "{} n={n}: timeline {} vs analytic {}",
                model.name,
                timeline.total_seconds,
                analytic.e2e_seconds
            );
        }
    }
}

#[test]
fn attention_energy_never_exceeds_e2e() {
    // Simple physical invariant across every platform and point.
    let model = ModelConfig::llama2_13b();
    let stats = workload_stats(2048, 9);
    for platform in [
        Platform::Gpu(lad_accel::gpu::GpuBaseline::Vllm),
        Platform::Ideal(AccelConfig::lad_1_5()),
        Platform::Lad(AccelConfig::lad_2_5()),
    ] {
        let r = evaluate(&platform, &model, 2048, &stats, 4);
        assert!(r.attn_energy_j <= r.e2e_energy_j, "{}", r.platform);
        assert!(r.attn_seconds <= r.e2e_seconds, "{}", r.platform);
        assert!(r.e2e_tokens_per_s > 0.0 && r.e2e_energy_j.is_finite());
    }
}
