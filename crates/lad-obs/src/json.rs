//! Minimal JSON parsing and escaping.
//!
//! The build environment has no `serde_json`, but the observability layer
//! needs to *verify* the documents it emits (Chrome traces, JSONL event
//! streams) and the bench regression gate needs to *read* the committed
//! `BENCH_*.json` baselines. This is a small recursive-descent parser over
//! the JSON grammar — objects, arrays, strings (with escapes), numbers,
//! booleans, null — plus the string-escaping helper the exporters use.
//! It favours clear errors over speed; none of this is on a hot path.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order not preserved).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be followed
                        // by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired high surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.error("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte;
                    // the input is a &str so they are valid by construction.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.error("truncated UTF-8 sequence"));
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }
}

fn utf8_width(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"results": [{"speedup": 1.25, "ok": true}, {"speedup": 2}], "n": 2}"#;
        let v = parse(doc).unwrap();
        let results = v.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("speedup").unwrap().as_f64(), Some(1.25));
        assert_eq!(results[1].get("speedup").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn parses_committed_bench_baseline_shape() {
        // The exact format `gemm_batch` writes (and `bench_check` reads).
        let doc = "{\n  \"bench\": \"gemm_batch/per_sample_vs_batched\",\n  \"results\": [\n    \
                   {\"kind\": \"exact\", \"batch\": 8, \"speedup\": 4.931}\n  ]\n}\n";
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("bench").unwrap().as_str(),
            Some("gemm_batch/per_sample_vs_batched")
        );
        let r = &v.get("results").unwrap().as_array().unwrap()[0];
        assert_eq!(r.get("batch").unwrap().as_u64(), Some(8));
        assert!(r.get("speedup").unwrap().as_f64().unwrap() > 4.0);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1F600}è";
        let quoted = format!("\"{}\"", escape(original));
        assert_eq!(parse(&quoted).unwrap(), Value::String(original.into()));
    }

    #[test]
    fn surrogate_pair_decodes() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("\u{1F600}".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\": }",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\ud800x\"",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Number(1.5).as_u64(), None);
        assert_eq!(Value::Number(-2.0).as_u64(), None);
        assert_eq!(Value::Number(7.0).as_u64(), Some(7));
    }
}
