//! Request-scoped structured event timeline.
//!
//! Where spans answer *"where did this tick's time go"*, the timeline
//! answers *"what happened to request 17"*: every scheduler action that
//! touches a request — admission, prefill chunk, decode tick, speculative
//! draft/verify/rollback, preemption, eviction reclaim, retirement — is
//! recorded as a `Copy` [`TimelineEvent`] carrying the request id, the
//! engine step and a kind-specific value, into one process-wide
//! overwrite-oldest ring.
//!
//! The recorder follows the span recorder's zero-cost-when-off contract:
//! disabled ([`set_timeline_enabled`], the default) a [`record`] is a
//! single relaxed load of a sharded flag; enabled it is one uncontended
//! mutex push of a 40-byte struct into a preallocated ring (allocation
//! happens once, on the first enabled record). Overflow overwrites the
//! oldest events and counts them ([`total_dropped_events`]).
//!
//! The analysis side reconstructs per-request chains and checks their
//! integrity: [`validate_chains`] walks each request's events through the
//! scheduler's state machine (admit → work → retire, with preemption
//! looping back to a re-admit), [`timeline_jsonl`] /
//! [`validate_timeline_jsonl`] round-trip the events through the flat JSONL
//! format, and [`tail_for`] peeks a request's most recent events for the
//! engine's SLO flight recorder without disturbing the ring.

use crate::json::{self, Value};
use crate::{now_ns, ShardedFlag};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Events the timeline ring holds before overwriting the oldest.
pub const TIMELINE_CAPACITY: usize = 1 << 16;

static TIMELINE_ENABLED: ShardedFlag = ShardedFlag::new();
static TOTAL_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Turns timeline recording on or off, process-wide.
pub fn set_timeline_enabled(on: bool) {
    TIMELINE_ENABLED.set(on);
}

/// Whether timeline recording is currently enabled (this thread's shard
/// view).
#[inline]
pub fn timeline_enabled() -> bool {
    TIMELINE_ENABLED.get()
}

/// Timeline events overwritten by ring overflow since process start
/// (monotonic; the per-drain figure is returned by [`drain_timeline`]).
pub fn total_dropped_events() -> u64 {
    TOTAL_DROPPED.load(Ordering::Relaxed)
}

/// What happened to the request at this point of its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineKind {
    /// The request joined the active batch (`value` = prompt tokens of this
    /// incarnation).
    Admit,
    /// A prefill sub-step consumed prompt tokens (`value` = tokens).
    PrefillChunk,
    /// A decode tick committed generated tokens (`value` = tokens).
    DecodeTick,
    /// A speculative drafter proposed tokens (`value` = draft length).
    SpecDraft,
    /// A verify round scored drafted rows (`value` = accepted drafts).
    SpecVerify,
    /// Rejected speculative rows were rolled back (`value` = rows dropped).
    SpecRollback,
    /// The request was preempted and re-queued (`value` = cumulative
    /// preemption count).
    Preempt,
    /// Attention evictions returned whole KV blocks (`value` = blocks
    /// freed by this reclaim).
    EvictionReclaim,
    /// The request retired (`value` = total generated tokens).
    Retire,
}

impl TimelineKind {
    /// Stable snake-case code used by the JSONL export.
    pub fn code(self) -> &'static str {
        match self {
            TimelineKind::Admit => "admit",
            TimelineKind::PrefillChunk => "prefill_chunk",
            TimelineKind::DecodeTick => "decode_tick",
            TimelineKind::SpecDraft => "spec_draft",
            TimelineKind::SpecVerify => "spec_verify",
            TimelineKind::SpecRollback => "spec_rollback",
            TimelineKind::Preempt => "preempt",
            TimelineKind::EvictionReclaim => "eviction_reclaim",
            TimelineKind::Retire => "retire",
        }
    }

    /// Parses a [`code`](TimelineKind::code) back to the kind.
    pub fn from_code(code: &str) -> Option<TimelineKind> {
        Some(match code {
            "admit" => TimelineKind::Admit,
            "prefill_chunk" => TimelineKind::PrefillChunk,
            "decode_tick" => TimelineKind::DecodeTick,
            "spec_draft" => TimelineKind::SpecDraft,
            "spec_verify" => TimelineKind::SpecVerify,
            "spec_rollback" => TimelineKind::SpecRollback,
            "preempt" => TimelineKind::Preempt,
            "eviction_reclaim" => TimelineKind::EvictionReclaim,
            "retire" => TimelineKind::Retire,
            _ => return None,
        })
    }
}

/// One request-scoped event. `Copy`, fixed-size, no heap references — the
/// record path moves it into the ring and nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Caller-chosen request id (the serving [`Request::id`] domain).
    pub request: u64,
    /// Lifecycle stage.
    pub kind: TimelineKind,
    /// Monotonic timestamp, nanoseconds since the recorder epoch.
    pub t_ns: u64,
    /// Engine step (tick) the event happened on.
    pub step: u64,
    /// Kind-specific payload (see [`TimelineKind`]).
    pub value: u64,
}

/// Fixed-capacity overwrite-oldest ring. One global instance: the serving
/// engine is the only writer in practice, and a single mutex keeps events
/// totally ordered without a merge step at drain time.
struct TimelineRing {
    buf: Vec<TimelineEvent>,
    start: usize,
    dropped: u64,
}

static RING: Mutex<TimelineRing> = Mutex::new(TimelineRing {
    buf: Vec::new(),
    start: 0,
    dropped: 0,
});

impl TimelineRing {
    fn push(&mut self, ev: TimelineEvent) {
        if self.buf.capacity() == 0 {
            // One-time allocation on the first enabled record; every later
            // push moves into existing storage.
            self.buf.reserve_exact(TIMELINE_CAPACITY);
        }
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.buf.capacity();
            self.dropped += 1;
            TOTAL_DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn ordered(&self) -> Vec<TimelineEvent> {
        let mut events = self.buf.clone();
        events.rotate_left(self.start);
        events
    }
}

/// Records one event (no-op while the timeline is disabled).
#[inline]
pub fn record(request: u64, kind: TimelineKind, step: u64, value: u64) {
    if !timeline_enabled() {
        return;
    }
    let ev = TimelineEvent {
        request,
        kind,
        t_ns: now_ns(),
        step,
        value,
    };
    RING.lock().unwrap().push(ev);
}

/// Takes every buffered event in record order plus the number of events
/// lost to overflow since the previous drain, resetting the ring (capacity
/// is kept for the next run).
pub fn drain_timeline() -> (Vec<TimelineEvent>, u64) {
    let mut ring = RING.lock().unwrap();
    let events = ring.ordered();
    let dropped = ring.dropped;
    ring.buf.clear();
    ring.start = 0;
    ring.dropped = 0;
    (events, dropped)
}

/// Peeks the most recent `k` events of `request` without disturbing the
/// ring — the flight recorder's last-K window.
pub fn tail_for(request: u64, k: usize) -> Vec<TimelineEvent> {
    let ring = RING.lock().unwrap();
    let ordered = ring.ordered();
    drop(ring);
    let mut tail: Vec<TimelineEvent> = ordered
        .into_iter()
        .rev()
        .filter(|ev| ev.request == request)
        .take(k)
        .collect();
    tail.reverse();
    tail
}

/// Per-request chain summary produced by [`validate_chains`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainSummary {
    /// Total events observed for the request.
    pub events: usize,
    /// Admissions observed (1 + preemptions for a retired request).
    pub admits: usize,
    /// Preemptions observed.
    pub preemptions: usize,
    /// Whether the chain ended with a [`TimelineKind::Retire`].
    pub retired: bool,
}

/// Walks every request's events (in stream order) through the scheduler
/// lifecycle state machine and returns one [`ChainSummary`] per request.
///
/// The rules, matching the engine's actual transitions:
///
/// * a request's first event must be `admit`; work events (`prefill_chunk`,
///   `decode_tick`, `spec_*`, `eviction_reclaim`) require an open
///   incarnation;
/// * `preempt` closes the incarnation — the next event must be a re-`admit`;
/// * `spec_verify` requires a `spec_draft` in the same incarnation, and
///   `spec_rollback` a preceding `spec_verify`;
/// * `retire` is terminal: nothing may follow it;
/// * timestamps and steps are non-decreasing per request.
///
/// A chain that has not retired yet (request still in flight at drain time)
/// is *not* an error; callers assert `retired` for the requests they know
/// completed. Structural violations return `Err`.
pub fn validate_chains(events: &[TimelineEvent]) -> Result<BTreeMap<u64, ChainSummary>, String> {
    #[derive(Default)]
    struct ChainState {
        summary: ChainSummary,
        admitted: bool,
        drafted: bool,
        verified: bool,
        last_t: u64,
        last_step: u64,
    }
    let mut chains: BTreeMap<u64, ChainState> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let st = chains.entry(ev.request).or_default();
        let err = |msg: String| format!("event {i} (request {}): {msg}", ev.request);
        if st.summary.retired {
            return Err(err(format!("{} after retire", ev.kind.code())));
        }
        if st.summary.events > 0 {
            if ev.t_ns < st.last_t {
                return Err(err(format!(
                    "timestamp went backwards ({} -> {})",
                    st.last_t, ev.t_ns
                )));
            }
            if ev.step < st.last_step {
                return Err(err(format!(
                    "step went backwards ({} -> {})",
                    st.last_step, ev.step
                )));
            }
        }
        st.last_t = ev.t_ns;
        st.last_step = ev.step;
        st.summary.events += 1;
        match ev.kind {
            TimelineKind::Admit => {
                if st.admitted {
                    return Err(err("admit while already admitted".into()));
                }
                st.admitted = true;
                st.summary.admits += 1;
                st.drafted = false;
                st.verified = false;
            }
            TimelineKind::Preempt => {
                if !st.admitted {
                    return Err(err("preempt without admission".into()));
                }
                st.admitted = false;
                st.summary.preemptions += 1;
            }
            TimelineKind::Retire => {
                if !st.admitted {
                    return Err(err("retire without admission".into()));
                }
                st.summary.retired = true;
            }
            TimelineKind::SpecDraft => {
                if !st.admitted {
                    return Err(err("spec_draft without admission".into()));
                }
                st.drafted = true;
            }
            TimelineKind::SpecVerify => {
                if !st.admitted {
                    return Err(err("spec_verify without admission".into()));
                }
                if !st.drafted {
                    return Err(err("spec_verify without a draft this incarnation".into()));
                }
                st.verified = true;
            }
            TimelineKind::SpecRollback => {
                if !st.verified {
                    return Err(err("spec_rollback without a verify".into()));
                }
            }
            TimelineKind::PrefillChunk
            | TimelineKind::DecodeTick
            | TimelineKind::EvictionReclaim => {
                if !st.admitted {
                    return Err(err(format!("{} without admission", ev.kind.code())));
                }
            }
        }
    }
    Ok(chains
        .into_iter()
        .map(|(req, st)| (req, st.summary))
        .collect())
}

/// Renders events as flat JSONL: one object per line with `request`,
/// `kind` (the [`TimelineKind::code`]), `t_ns`, `step` and `value`.
pub fn timeline_jsonl(events: &[TimelineEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = writeln!(
            out,
            "{{\"request\":{},\"kind\":\"{}\",\"t_ns\":{},\"step\":{},\"value\":{}}}",
            ev.request,
            ev.kind.code(),
            ev.t_ns,
            ev.step,
            ev.value
        );
    }
    out
}

/// Parses a [`timeline_jsonl`] stream back into events, checking the
/// per-line schema, then runs [`validate_chains`] over the whole stream.
/// Returns the per-request chain summaries.
pub fn validate_timeline_jsonl(text: &str) -> Result<BTreeMap<u64, ChainSummary>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let v = json::parse(line).map_err(|e| err(&e.to_string()))?;
        let request = v
            .get("request")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("missing/invalid request"))?;
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .and_then(TimelineKind::from_code)
            .ok_or_else(|| err("missing/unknown kind"))?;
        let t_ns = v
            .get("t_ns")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("missing/invalid t_ns"))?;
        let step = v
            .get("step")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("missing/invalid step"))?;
        let value = v
            .get("value")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("missing/invalid value"))?;
        events.push(TimelineEvent {
            request,
            kind,
            t_ns,
            step,
            value,
        });
    }
    if events.is_empty() {
        return Err("no events".into());
    }
    validate_chains(&events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(request: u64, kind: TimelineKind, t_ns: u64, step: u64, value: u64) -> TimelineEvent {
        TimelineEvent {
            request,
            kind,
            t_ns,
            step,
            value,
        }
    }

    /// A complete two-request stream: request 1 is preempted and re-admitted,
    /// request 2 speculates.
    fn sample_stream() -> Vec<TimelineEvent> {
        use TimelineKind::*;
        vec![
            ev(1, Admit, 10, 0, 8),
            ev(2, Admit, 11, 0, 6),
            ev(1, PrefillChunk, 20, 1, 4),
            ev(2, PrefillChunk, 21, 1, 6),
            ev(1, DecodeTick, 30, 2, 1),
            ev(2, SpecDraft, 31, 2, 3),
            ev(2, SpecVerify, 32, 2, 2),
            ev(2, SpecRollback, 33, 2, 1),
            ev(1, Preempt, 40, 3, 1),
            ev(2, DecodeTick, 41, 3, 1),
            ev(1, Admit, 50, 4, 9),
            ev(1, PrefillChunk, 60, 5, 9),
            ev(2, EvictionReclaim, 61, 5, 1),
            ev(1, DecodeTick, 70, 6, 1),
            ev(2, Retire, 71, 6, 12),
            ev(1, Retire, 80, 7, 10),
        ]
    }

    #[test]
    fn kind_codes_round_trip() {
        use TimelineKind::*;
        for kind in [
            Admit,
            PrefillChunk,
            DecodeTick,
            SpecDraft,
            SpecVerify,
            SpecRollback,
            Preempt,
            EvictionReclaim,
            Retire,
        ] {
            assert_eq!(TimelineKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(TimelineKind::from_code("nonsense"), None);
    }

    #[test]
    fn valid_chains_summarise() {
        let chains = validate_chains(&sample_stream()).unwrap();
        assert_eq!(chains.len(), 2);
        let r1 = &chains[&1];
        assert!(r1.retired);
        assert_eq!(r1.admits, 2);
        assert_eq!(r1.preemptions, 1);
        let r2 = &chains[&2];
        assert!(r2.retired);
        assert_eq!(r2.admits, 1);
        assert_eq!(r2.preemptions, 0);
    }

    #[test]
    fn chain_violations_are_rejected() {
        use TimelineKind::*;
        // Work before admission.
        assert!(validate_chains(&[ev(1, DecodeTick, 1, 0, 1)]).is_err());
        // Double admission.
        assert!(validate_chains(&[ev(1, Admit, 1, 0, 4), ev(1, Admit, 2, 1, 4)]).is_err());
        // Events after retire.
        assert!(validate_chains(&[
            ev(1, Admit, 1, 0, 4),
            ev(1, Retire, 2, 1, 3),
            ev(1, DecodeTick, 3, 2, 1),
        ])
        .is_err());
        // Preempt leaves the request un-admitted.
        assert!(validate_chains(&[
            ev(1, Admit, 1, 0, 4),
            ev(1, Preempt, 2, 1, 1),
            ev(1, DecodeTick, 3, 2, 1),
        ])
        .is_err());
        // Verify without a draft.
        assert!(validate_chains(&[ev(1, Admit, 1, 0, 4), ev(1, SpecVerify, 2, 1, 0)]).is_err());
        // Rollback without a verify.
        assert!(validate_chains(&[ev(1, Admit, 1, 0, 4), ev(1, SpecRollback, 2, 1, 1)]).is_err());
        // Backwards time within a request.
        assert!(validate_chains(&[ev(1, Admit, 5, 0, 4), ev(1, DecodeTick, 3, 1, 1)]).is_err());
        // Backwards step within a request.
        assert!(validate_chains(&[ev(1, Admit, 1, 5, 4), ev(1, DecodeTick, 2, 3, 1)]).is_err());
        // A draft does not survive a preemption into the next incarnation.
        assert!(validate_chains(&[
            ev(1, Admit, 1, 0, 4),
            ev(1, SpecDraft, 2, 1, 2),
            ev(1, Preempt, 3, 1, 1),
            ev(1, Admit, 4, 2, 6),
            ev(1, SpecVerify, 5, 3, 1),
        ])
        .is_err());
    }

    #[test]
    fn unretired_chains_are_not_errors() {
        use TimelineKind::*;
        let chains = validate_chains(&[ev(1, Admit, 1, 0, 4), ev(1, DecodeTick, 2, 1, 1)]).unwrap();
        assert!(!chains[&1].retired);
    }

    #[test]
    fn jsonl_round_trips_through_validator() {
        let stream = sample_stream();
        let text = timeline_jsonl(&stream);
        assert_eq!(text.lines().count(), stream.len());
        let chains = validate_timeline_jsonl(&text).unwrap();
        assert!(chains[&1].retired && chains[&2].retired);
        let first = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("request").unwrap().as_u64(), Some(1));
        assert_eq!(first.get("kind").unwrap().as_str(), Some("admit"));
    }

    #[test]
    fn jsonl_validator_rejects_schema_violations() {
        assert!(validate_timeline_jsonl("").is_err());
        assert!(validate_timeline_jsonl("not json\n").is_err());
        assert!(validate_timeline_jsonl(
            "{\"request\":1,\"kind\":\"warp\",\"t_ns\":1,\"step\":0,\"value\":0}\n"
        )
        .is_err());
        assert!(validate_timeline_jsonl(
            "{\"request\":1,\"kind\":\"admit\",\"step\":0,\"value\":0}\n"
        )
        .is_err());
    }

    #[test]
    fn ring_records_drains_and_tails() {
        // The ring and flag are process-global: this is the only test in
        // this module that touches them, keeping the harness's parallel
        // test threads out of each other's way.
        let (_, _) = drain_timeline();
        record(9, TimelineKind::Admit, 0, 4); // disabled: dropped
        set_timeline_enabled(true);
        record(7, TimelineKind::Admit, 0, 4);
        record(7, TimelineKind::PrefillChunk, 1, 4);
        record(8, TimelineKind::Admit, 1, 2);
        record(7, TimelineKind::DecodeTick, 2, 1);
        record(7, TimelineKind::Retire, 3, 5);
        set_timeline_enabled(false);
        let tail = tail_for(7, 2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].kind, TimelineKind::DecodeTick);
        assert_eq!(tail[1].kind, TimelineKind::Retire);
        let (events, dropped) = drain_timeline();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
        assert!(events.iter().all(|e| e.request != 9));
        let chains = validate_chains(&events).unwrap();
        assert!(chains[&7].retired);
        assert!(!chains[&8].retired);
        // Drained: the ring is empty again.
        assert!(drain_timeline().0.is_empty());
    }
}
