//! Log-bucket (power-of-two) latency histograms.
//!
//! A [`Histogram`] is a constant-size 64-bucket array: bucket 0 holds the
//! value 0, bucket `i` (1..=63) holds values in `[2^(i-1), 2^i - 1]` (the
//! last bucket is open-ended). That makes `record` a leading-zeros count and
//! an increment — no allocation, no branching on data — and two histograms
//! merge by element-wise addition, so per-head and per-worker histograms
//! aggregate exactly (count-preserving, commutative, associative; the
//! property tests pin all three).

use serde::{Deserialize, Serialize};

/// Number of buckets in every [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A mergeable power-of-two-bucket histogram of `u64` samples (typically
/// span durations in nanoseconds).
///
/// # Example
///
/// ```
/// use lad_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [100u64, 200, 400, 800, 100_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.p50() >= 200 && h.p50() <= 511);
/// assert!(h.p99() >= 100_000 / 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    total: u64,
    /// Saturating sum of every recorded value.
    sum: u64,
    /// Smallest recorded value (`u64::MAX` while empty).
    min: u64,
    /// Largest recorded value (0 while empty).
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index `value` falls into (the last bucket is open-ended,
    /// absorbing everything from `2^62` up).
    pub fn bucket_index(value: u64) -> usize {
        ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive `[low, high]` value range of bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= HISTOGRAM_BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
        match index {
            0 => (0, 0),
            63 => (1 << 62, u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self` (count-preserving; commutative and
    /// associative up to sum saturation, which is itself associative).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Saturating sum of every recorded value.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// An upper bound on the `q`-quantile (`q` clamped to `[0, 1]`): the
    /// high edge of the bucket holding the `ceil(q·count)`-th smallest
    /// sample, clamped to the observed maximum. Returns 0 when empty.
    ///
    /// Guarantees, for any recorded multiset: the true `q`-quantile value
    /// `v` satisfies `bucket_low(v) <= quantile(q) <= max()`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= target {
                let (_, high) = Self::bucket_bounds(i);
                return high.min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile upper bound.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_tile_the_u64_line() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
            if i > 0 {
                let (_, prev_hi) = Histogram::bucket_bounds(i - 1);
                assert_eq!(lo, prev_hi + 1, "buckets must tile without gaps");
            }
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        for v in [5u64, 0, 1000, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1012);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 253.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_of_a_known_stream() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // p50's sample is 50 (bucket [32,63]); upper bound 63.
        assert_eq!(h.p50(), 63);
        // p95's sample is 95 (bucket [64,127]); clamped to max 100.
        assert_eq!(h.p95(), 100);
        assert_eq!(h.p99(), 100);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn merge_is_count_preserving() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [1000u64, 2000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.min(), 1);
        assert_eq!(merged.max(), 2000);
    }

    /// Power-of-two buckets bound the quantile estimate's relative error:
    /// for any multiset of samples >= 1, the reported `quantile(q)` is the
    /// high edge of the bucket holding the true q-th sample (clamped to the
    /// observed max), so `true <= estimate < 2 * true`. Pinned here over
    /// a deterministic pseudo-random stream spanning five decades, against
    /// exact quantiles from the sorted samples.
    #[test]
    fn quantile_relative_error_is_bounded_by_bucket_width() {
        let mut h = Histogram::new();
        let mut samples = Vec::new();
        let mut x = 0x2545f4914f6cdd1du64;
        for _ in 0..10_000 {
            // xorshift64*; scale into [1, ~1e9] with a skewed distribution
            // so every quantile lands in a different bucket regime.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let v = 1 + (x.wrapping_mul(0x2545f4914f6cdd1d) >> 34);
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for q in [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999] {
            let target = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let truth = samples[target - 1];
            let est = h.quantile(q);
            assert!(
                est >= truth,
                "q={q}: estimate {est} under-reports true quantile {truth}"
            );
            assert!(
                est < 2 * truth,
                "q={q}: estimate {est} exceeds the 2x bucket bound of {truth}"
            );
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }
}
