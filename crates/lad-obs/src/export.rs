//! Trace exporters and validators.
//!
//! Two formats, both built from the [`ThreadEvents`] streams returned by
//! [`crate::drain`]:
//!
//! * **Chrome trace-event JSON** ([`chrome_trace`]): an object with a
//!   `traceEvents` array of `B`/`E`/`i` events plus `thread_name` metadata,
//!   one track per recording thread, timestamps in microseconds. Loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! * **Flat JSONL** ([`jsonl`]): one JSON object per line per event, raw
//!   nanosecond timestamps — trivially greppable / parseable downstream.
//!
//! The matching validators ([`validate_chrome_trace`], [`validate_jsonl`])
//! re-parse the emitted text with [`crate::json`] and check the structural
//! invariants CI relies on: valid JSON, required fields with the right
//! types, non-negative durations, and properly nested B/E pairs per track.

use crate::json::{self, Value};
use crate::{EventKind, ThreadEvents};
use std::fmt::Write as _;

/// Process id used for every track (the recorder is single-process).
const TRACE_PID: u64 = 1;

/// Renders Chrome trace-event JSON from drained per-thread streams.
///
/// Each thread becomes one track: a `thread_name` metadata record followed
/// by its events in time order. Ring overflow can leave a stream unbalanced
/// (a span's `B` overwritten while its `E` survived, or a drain taken while
/// spans were still open); those are repaired so the output always nests —
/// orphaned `E` events are dropped and unclosed `B` events get a synthetic
/// `E` at the thread's last timestamp. A thread that lost events to ring
/// overflow additionally emits an `obs.dropped_events` counter (`C`)
/// sample, so silent loss is visible in the trace itself.
pub fn chrome_trace(threads: &[ThreadEvents]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |out: &mut String, record: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(record);
    };
    for t in threads {
        emit(
            &mut out,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{TRACE_PID},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.tid,
                json::escape(&t.label)
            ),
        );
        let last_ts = t.events.iter().map(|e| e.t_ns).max().unwrap_or(0);
        let mut open: Vec<&'static str> = Vec::new();
        for ev in &t.events {
            match ev.kind {
                EventKind::Begin => {
                    open.push(ev.name);
                    emit(&mut out, &event_record("B", ev.name, ev.t_ns, t.tid, false));
                }
                EventKind::End => {
                    // Drop ends whose begin was lost to ring overflow.
                    if open.pop().is_some() {
                        emit(&mut out, &event_record("E", ev.name, ev.t_ns, t.tid, false));
                    }
                }
                EventKind::Instant => {
                    emit(&mut out, &event_record("i", ev.name, ev.t_ns, t.tid, true));
                }
            }
        }
        // Close any spans still open at drain time.
        while let Some(name) = open.pop() {
            emit(&mut out, &event_record("E", name, last_ts, t.tid, false));
        }
        // Surface silent event loss as a Chrome counter sample on the
        // thread's track (rendered as a counter lane in Perfetto).
        if t.dropped > 0 {
            emit(
                &mut out,
                &format!(
                    "{{\"name\":\"obs.dropped_events\",\"ph\":\"C\",\"ts\":{},\
                     \"pid\":{TRACE_PID},\"tid\":{},\"args\":{{\"dropped\":{}}}}}",
                    micros(last_ts),
                    t.tid,
                    t.dropped
                ),
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

fn event_record(ph: &str, name: &str, t_ns: u64, tid: u64, instant_scope: bool) -> String {
    let scope = if instant_scope { ",\"s\":\"t\"" } else { "" };
    format!(
        "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":{TRACE_PID},\"tid\":{tid}{scope}}}",
        json::escape(name),
        micros(t_ns)
    )
}

/// Formats nanoseconds as a decimal-microsecond literal (`1234567` ns →
/// `1234.567`), keeping full nanosecond precision in the trace.
fn micros(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1000, t_ns % 1000)
}

/// Renders the flat JSONL stream: one object per event, in thread order
/// then time order, with raw nanosecond timestamps. Every line carries the
/// full schema: `tid` (number), `thread` (string), `name` (string), `kind`
/// (`"B"`/`"E"`/`"I"`), `t_ns` (number).
pub fn jsonl(threads: &[ThreadEvents]) -> String {
    let mut out = String::new();
    for t in threads {
        for ev in &t.events {
            let _ = writeln!(
                out,
                "{{\"tid\":{},\"thread\":\"{}\",\"name\":\"{}\",\"kind\":\"{}\",\"t_ns\":{}}}",
                t.tid,
                json::escape(&t.label),
                json::escape(ev.name),
                ev.kind.code(),
                ev.t_ns
            );
        }
        // Ring overflow on this thread: one trailing marker carrying the
        // drop count, timestamped at the thread's last surviving event so
        // per-tid monotonicity holds.
        if t.dropped > 0 {
            let last_ts = t.events.iter().map(|e| e.t_ns).max().unwrap_or(0);
            let _ = writeln!(
                out,
                "{{\"tid\":{},\"thread\":\"{}\",\"name\":\"obs.dropped_events\",\
                 \"kind\":\"I\",\"t_ns\":{last_ts},\"dropped\":{}}}",
                t.tid,
                json::escape(&t.label),
                t.dropped
            );
        }
    }
    out
}

/// Checks that `trace` is a loadable Chrome trace: a valid JSON object with
/// a `traceEvents` array whose events have the required fields and types,
/// with B/E properly nested per `(pid, tid)` track (matching names, ends
/// never before begins — i.e. all durations non-negative) and every track
/// fully closed.
pub fn validate_chrome_trace(trace: &str) -> Result<(), String> {
    let doc = json::parse(trace).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    // Per-(pid, tid) stack of (name, begin ts).
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<(String, f64)>> =
        std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let pid = ev
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = ev
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        if ph == "M" {
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if ts < 0.0 {
            return Err(format!("event {i} ({name}): negative timestamp {ts}"));
        }
        let stack = stacks.entry((pid, tid)).or_default();
        match ph {
            "B" => stack.push((name.to_owned(), ts)),
            "E" => {
                let (open_name, begin_ts) = stack.pop().ok_or_else(|| {
                    format!("event {i} ({name}): E without open B on track {tid}")
                })?;
                if open_name != name {
                    return Err(format!(
                        "event {i}: E '{name}' closes B '{open_name}' on track {tid}"
                    ));
                }
                if ts < begin_ts {
                    return Err(format!(
                        "event {i} ({name}): negative duration ({begin_ts} -> {ts})"
                    ));
                }
            }
            "i" => {}
            // Counter samples (dropped-event lanes) must carry an args
            // object with at least one numeric series.
            "C" => {
                let args = ev
                    .get("args")
                    .ok_or_else(|| format!("event {i} ({name}): counter without args"))?;
                if !matches!(args, Value::Object(pairs) if pairs
                    .iter()
                    .all(|(_, v)| v.as_f64().is_some())
                    && !pairs.is_empty())
                {
                    return Err(format!(
                        "event {i} ({name}): counter args must be a non-empty numeric object"
                    ));
                }
            }
            other => return Err(format!("event {i} ({name}): unexpected phase '{other}'")),
        }
    }
    for ((_, tid), stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!("track {tid}: span '{name}' never closed"));
        }
    }
    Ok(())
}

/// Checks every non-empty line of `text` against the JSONL event schema:
/// valid JSON object with `tid` (non-negative number), `thread` (string),
/// `name` (non-empty string), `kind` (`"B"`/`"E"`/`"I"`), `t_ns`
/// (non-negative number), and per-tid non-decreasing timestamps.
pub fn validate_jsonl(text: &str) -> Result<(), String> {
    let mut last_ts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut lines = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let v = json::parse(line).map_err(|e| err(&e.to_string()))?;
        let tid = v
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("missing/invalid tid"))?;
        v.get("thread")
            .and_then(Value::as_str)
            .ok_or_else(|| err("missing/invalid thread"))?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| err("missing/invalid name"))?;
        if name.is_empty() {
            return Err(err("empty name"));
        }
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| err("missing/invalid kind"))?;
        if !matches!(kind, "B" | "E" | "I") {
            return Err(err(&format!("kind '{kind}' not one of B/E/I")));
        }
        let t_ns = v
            .get("t_ns")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("missing/invalid t_ns"))?;
        if let Some(&prev) = last_ts.get(&tid) {
            if t_ns < prev {
                return Err(err(&format!(
                    "timestamp went backwards on tid {tid} ({prev} -> {t_ns})"
                )));
            }
        }
        last_ts.insert(tid, t_ns);
    }
    if lines == 0 {
        return Err("no events".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn thread(tid: u64, label: &str, events: Vec<Event>) -> ThreadEvents {
        ThreadEvents {
            label: label.to_owned(),
            tid,
            dropped: 0,
            events,
        }
    }

    fn ev(name: &'static str, kind: EventKind, t_ns: u64) -> Event {
        Event { name, kind, t_ns }
    }

    #[test]
    fn chrome_trace_of_balanced_spans_validates() {
        let threads = vec![
            thread(
                0,
                "main",
                vec![
                    ev("step", EventKind::Begin, 1_000),
                    ev("identify", EventKind::Begin, 1_100),
                    ev("identify", EventKind::End, 1_900),
                    ev("mark", EventKind::Instant, 1_950),
                    ev("step", EventKind::End, 2_500),
                ],
            ),
            thread(
                3,
                "lad-pool-2",
                vec![
                    ev("pool.task", EventKind::Begin, 1_200),
                    ev("pool.task", EventKind::End, 1_800),
                ],
            ),
        ];
        let trace = chrome_trace(&threads);
        validate_chrome_trace(&trace).unwrap();
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("lad-pool-2"));
        // ns -> us conversion keeps sub-microsecond precision.
        assert!(trace.contains("\"ts\":1.100"));
    }

    #[test]
    fn chrome_trace_repairs_unbalanced_streams() {
        // Orphaned E (begin lost to ring overflow) and an unclosed B.
        let threads = vec![thread(
            0,
            "main",
            vec![
                ev("lost", EventKind::End, 500),
                ev("open", EventKind::Begin, 600),
                ev("inner", EventKind::Begin, 700),
                ev("inner", EventKind::End, 800),
            ],
        )];
        let trace = chrome_trace(&threads);
        validate_chrome_trace(&trace).unwrap();
        // The orphan is dropped, the unclosed span is synthetically ended.
        assert_eq!(trace.matches("\"ph\":\"E\"").count(), 2);
    }

    #[test]
    fn validator_rejects_bad_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // E without B.
        let orphan = r#"{"traceEvents":[{"name":"x","ph":"E","ts":1.0,"pid":1,"tid":0}]}"#;
        assert!(validate_chrome_trace(orphan).is_err());
        // Mismatched close.
        let crossed = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":0},
            {"name":"b","ph":"E","ts":2.0,"pid":1,"tid":0}]}"#;
        assert!(validate_chrome_trace(crossed).is_err());
        // Negative duration.
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5.0,"pid":1,"tid":0},
            {"name":"a","ph":"E","ts":2.0,"pid":1,"tid":0}]}"#;
        assert!(validate_chrome_trace(backwards).is_err());
        // Never closed.
        let open = r#"{"traceEvents":[{"name":"a","ph":"B","ts":1.0,"pid":1,"tid":0}]}"#;
        assert!(validate_chrome_trace(open).is_err());
    }

    #[test]
    fn jsonl_round_trips_through_validator() {
        let threads = vec![thread(
            2,
            "lad-pool-1",
            vec![
                ev("pool.task", EventKind::Begin, 10),
                ev("pool.steal", EventKind::Instant, 15),
                ev("pool.task", EventKind::End, 20),
            ],
        )];
        let text = jsonl(&threads);
        assert_eq!(text.lines().count(), 3);
        validate_jsonl(&text).unwrap();
        let first = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("tid").unwrap().as_u64(), Some(2));
        assert_eq!(first.get("thread").unwrap().as_str(), Some("lad-pool-1"));
        assert_eq!(first.get("kind").unwrap().as_str(), Some("B"));
        assert_eq!(first.get("t_ns").unwrap().as_u64(), Some(10));
    }

    #[test]
    fn dropped_events_surface_in_both_exporters() {
        let mut t = thread(
            1,
            "main",
            vec![
                ev("step", EventKind::Begin, 100),
                ev("step", EventKind::End, 200),
            ],
        );
        t.dropped = 17;
        let threads = vec![t];

        let trace = chrome_trace(&threads);
        validate_chrome_trace(&trace).unwrap();
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.contains("\"dropped\":17"));

        let text = jsonl(&threads);
        validate_jsonl(&text).unwrap();
        let last = json::parse(text.lines().last().unwrap()).unwrap();
        assert_eq!(
            last.get("name").unwrap().as_str(),
            Some("obs.dropped_events")
        );
        assert_eq!(last.get("dropped").unwrap().as_u64(), Some(17));
        // The marker reuses the last surviving timestamp, so per-tid
        // monotonicity holds.
        assert_eq!(last.get("t_ns").unwrap().as_u64(), Some(200));
    }

    #[test]
    fn counter_events_require_numeric_args() {
        let no_args = r#"{"traceEvents":[{"name":"c","ph":"C","ts":1.0,"pid":1,"tid":0}]}"#;
        assert!(validate_chrome_trace(no_args).is_err());
        let bad_args =
            r#"{"traceEvents":[{"name":"c","ph":"C","ts":1.0,"pid":1,"tid":0,"args":{"d":"x"}}]}"#;
        assert!(validate_chrome_trace(bad_args).is_err());
        let good =
            r#"{"traceEvents":[{"name":"c","ph":"C","ts":1.0,"pid":1,"tid":0,"args":{"d":3}}]}"#;
        validate_chrome_trace(good).unwrap();
    }

    #[test]
    fn jsonl_validator_rejects_schema_violations() {
        assert!(validate_jsonl("").is_err());
        assert!(validate_jsonl("not json\n").is_err());
        assert!(validate_jsonl(
            "{\"tid\":0,\"thread\":\"t\",\"name\":\"x\",\"kind\":\"Q\",\"t_ns\":1}\n"
        )
        .is_err());
        assert!(
            validate_jsonl("{\"tid\":0,\"thread\":\"t\",\"kind\":\"B\",\"t_ns\":1}\n").is_err()
        );
        // Backwards time on one tid.
        let backwards = "{\"tid\":0,\"thread\":\"t\",\"name\":\"x\",\"kind\":\"I\",\"t_ns\":5}\n\
                         {\"tid\":0,\"thread\":\"t\",\"name\":\"x\",\"kind\":\"I\",\"t_ns\":3}\n";
        assert!(validate_jsonl(backwards).is_err());
        // ...but independent tids may interleave freely.
        let interleaved = "{\"tid\":0,\"thread\":\"a\",\"name\":\"x\",\"kind\":\"I\",\"t_ns\":5}\n\
                           {\"tid\":1,\"thread\":\"b\",\"name\":\"x\",\"kind\":\"I\",\"t_ns\":3}\n";
        validate_jsonl(interleaved).unwrap();
    }
}
