//! # lad-obs — zero-cost-when-off observability
//!
//! A lightweight span/event recorder for the LAD decode hot paths, plus the
//! analysis side: log-bucket latency [`Histogram`]s, a per-stage
//! [`StageBreakdown`] table, and Chrome-trace / JSONL exporters
//! ([`export`]).
//!
//! ## The zero-cost-when-off contract
//!
//! Recording is toggled at runtime by [`set_enabled`]. While **disabled**
//! (the default), the entire record path collapses to a single relaxed load
//! of a sharded atomic flag:
//!
//! * [`span`] and [`instant`] perform **no allocation**, take **no lock**,
//!   and never read the clock;
//! * decode output is **bit-identical** to an uninstrumented build — the
//!   recorder can never influence results, only observe them (the top-level
//!   differential harness pins this);
//! * nothing is ever registered, so a process that never enables the
//!   recorder holds no ring buffers at all.
//!
//! While **enabled**, each recording thread owns a fixed-capacity ring
//! buffer of [`Event`]s (allocated once, on the thread's first record) and a
//! record costs one `Instant` read plus an uncontended mutex push into that
//! ring — no allocation after the ring exists. Overflow overwrites the
//! oldest events and is reported as a drop count at [`drain`] time.
//!
//! ## Quickstart
//!
//! ```
//! lad_obs::set_enabled(true);
//! {
//!     let _step = lad_obs::span("demo.step");
//!     lad_obs::instant("demo.marker");
//! } // span closes here
//! lad_obs::set_enabled(false);
//! let threads = lad_obs::drain();
//! assert_eq!(threads.len(), 1);
//! assert_eq!(threads[0].events.len(), 3); // B, I, E
//! let trace = lad_obs::export::chrome_trace(&threads);
//! assert!(trace.contains("demo.step"));
//! ```

pub mod breakdown;
pub mod export;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod timeline;

pub use breakdown::{StageBreakdown, StageStat};
pub use histogram::{Histogram, HISTOGRAM_BUCKETS};

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of flag shards. Each recording thread reads its own shard, so the
/// disabled-path check never bounces a shared cache line between workers.
pub(crate) const FLAG_SHARDS: usize = 8;

/// Events a per-thread ring buffer holds before overwriting the oldest.
const RING_CAPACITY: usize = 1 << 16;

/// One cache-line-padded shard of a global enable flag.
#[repr(align(64))]
struct FlagShard(AtomicBool);

/// A process-wide boolean sharded over cache-line-padded atomics, so that
/// checking it from many threads never bounces a shared line. The span
/// recorder, the metrics registry and the timeline each own one.
pub(crate) struct ShardedFlag([FlagShard; FLAG_SHARDS]);

impl ShardedFlag {
    pub(crate) const fn new() -> ShardedFlag {
        #[allow(clippy::declare_interior_mutable_const)] // array template
        const OFF: FlagShard = FlagShard(AtomicBool::new(false));
        ShardedFlag([OFF; FLAG_SHARDS])
    }

    pub(crate) fn set(&self, on: bool) {
        for shard in &self.0 {
            shard.0.store(on, Ordering::SeqCst);
        }
    }

    #[inline]
    pub(crate) fn get(&self) -> bool {
        self.0[shard_index()].0.load(Ordering::Relaxed)
    }
}

static ENABLED: ShardedFlag = ShardedFlag::new();

thread_local! {
    /// This thread's shard index (assigned round-robin on first use) — a
    /// plain const-initialised cell, so reading it is a TLS load, not a
    /// lazy-init check with registration machinery.
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

pub(crate) fn shard_index() -> usize {
    SHARD.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            idx = NEXT.fetch_add(1, Ordering::Relaxed) % FLAG_SHARDS;
            s.set(idx);
        }
        idx
    })
}

/// Turns recording on or off, process-wide. Spans already open keep their
/// guard and still record their end event, so traces stay balanced.
pub fn set_enabled(on: bool) {
    ENABLED.set(on);
}

/// Whether recording is currently enabled (this thread's shard view).
#[inline]
pub fn enabled() -> bool {
    ENABLED.get()
}

/// Cumulative count of span events lost to ring overflow, process-wide.
/// Unlike the per-drain [`ThreadEvents::dropped`] field this never resets,
/// so the metrics exposition can report silent event loss as a counter.
static TOTAL_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Span events overwritten by ring overflow since process start (monotonic;
/// per-drain figures live in [`ThreadEvents::dropped`]).
pub fn total_dropped_events() -> u64 {
    TOTAL_DROPPED.load(Ordering::Relaxed)
}

/// Monotonic nanoseconds since the recorder's process-wide epoch (the first
/// call to any timestamped operation).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point-in-time marker.
    Instant,
}

impl EventKind {
    /// One-letter code used by the JSONL export (`B`/`E`/`I`).
    pub fn code(self) -> &'static str {
        match self {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "I",
        }
    }
}

/// One recorded event. `Copy` and static-str-named so the record path moves
/// 24 bytes into the ring and nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Static span/marker name (no allocation on record).
    pub name: &'static str,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Monotonic timestamp, nanoseconds since the recorder epoch.
    pub t_ns: u64,
}

/// Fixed-capacity overwrite-oldest event buffer.
struct RingBuf {
    buf: Vec<Event>,
    /// Index of the oldest event once the buffer has wrapped.
    start: usize,
    /// Events overwritten since the last drain.
    dropped: u64,
}

impl RingBuf {
    fn with_capacity(cap: usize) -> RingBuf {
        RingBuf {
            buf: Vec::with_capacity(cap),
            start: 0,
            dropped: 0,
        }
    }

    /// Appends without ever growing the backing storage.
    fn push(&mut self, ev: Event) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.buf.capacity();
            self.dropped += 1;
            TOTAL_DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Takes every buffered event in record order, resetting the ring.
    fn take_ordered(&mut self) -> (Vec<Event>, u64) {
        let mut events = std::mem::take(&mut self.buf);
        events.rotate_left(self.start);
        let dropped = self.dropped;
        self.start = 0;
        self.dropped = 0;
        // The ring keeps its capacity for the next recording run.
        self.buf = Vec::with_capacity(events.capacity().max(RING_CAPACITY));
        (events, dropped)
    }
}

/// A registered recording thread: its label and its ring.
struct RingHandle {
    label: String,
    tid: u64,
    buf: Mutex<RingBuf>,
}

static REGISTRY: Mutex<Vec<Arc<RingHandle>>> = Mutex::new(Vec::new());

thread_local! {
    static RING: OnceLock<Arc<RingHandle>> = const { OnceLock::new() };
}

fn register_current_thread() -> Arc<RingHandle> {
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let label = std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let handle = Arc::new(RingHandle {
        label,
        tid,
        buf: Mutex::new(RingBuf::with_capacity(RING_CAPACITY)),
    });
    REGISTRY.lock().unwrap().push(Arc::clone(&handle));
    handle
}

/// Pushes `ev` into this thread's ring (registering the thread on its first
/// record). Silently drops events during thread teardown.
fn record(ev: Event) {
    let _ = RING.try_with(|cell| {
        let ring = cell.get_or_init(register_current_thread);
        ring.buf.lock().unwrap().push(ev);
    });
}

/// RAII span guard returned by [`span`]; records the end event on drop.
///
/// When the recorder is disabled at open time the guard is disarmed: its
/// drop is a no-op and nothing was recorded.
#[must_use = "a span measures the scope it lives in — bind it to a variable"]
pub struct SpanGuard {
    name: &'static str,
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            record(Event {
                name: self.name,
                kind: EventKind::End,
                t_ns: now_ns(),
            });
        }
    }
}

/// Opens a named span covering the guard's lifetime. `name` must be a
/// static string — the record path never allocates.
///
/// Disabled recorder: one relaxed atomic load, nothing else.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, armed: false };
    }
    record(Event {
        name,
        kind: EventKind::Begin,
        t_ns: now_ns(),
    });
    SpanGuard { name, armed: true }
}

/// Records a point-in-time marker (no-op while disabled).
#[inline]
pub fn instant(name: &'static str) {
    if !enabled() {
        return;
    }
    record(Event {
        name,
        kind: EventKind::Instant,
        t_ns: now_ns(),
    });
}

/// The drained events of one recording thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadEvents {
    /// Thread name at registration (`lad-pool-0`, `main`, …).
    pub label: String,
    /// Stable per-thread ordinal, used as the trace track id.
    pub tid: u64,
    /// Events overwritten by ring overflow since the previous drain.
    pub dropped: u64,
    /// Buffered events, in record order.
    pub events: Vec<Event>,
}

/// Drains every registered thread's ring, returning per-thread event
/// streams sorted by track id. Rings stay registered (and keep recording if
/// the recorder is enabled); empty rings are skipped.
pub fn drain() -> Vec<ThreadEvents> {
    let registry = REGISTRY.lock().unwrap();
    let mut out = Vec::new();
    for handle in registry.iter() {
        let (events, dropped) = handle.buf.lock().unwrap().take_ordered();
        if events.is_empty() && dropped == 0 {
            continue;
        }
        out.push(ThreadEvents {
            label: handle.label.clone(),
            tid: handle.tid,
            dropped,
            events,
        });
    }
    out.sort_by_key(|t| t.tid);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = RingBuf::with_capacity(4);
        for i in 0..6u64 {
            ring.push(Event {
                name: "x",
                kind: EventKind::Instant,
                t_ns: i,
            });
        }
        let (events, dropped) = ring.take_ordered();
        assert_eq!(dropped, 2);
        let ts: Vec<u64> = events.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![2, 3, 4, 5]);
        // The ring is reusable after a drain.
        let (events, dropped) = ring.take_ordered();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn event_kind_codes() {
        assert_eq!(EventKind::Begin.code(), "B");
        assert_eq!(EventKind::End.code(), "E");
        assert_eq!(EventKind::Instant.code(), "I");
    }

    #[test]
    fn shard_index_is_stable_per_thread() {
        let a = shard_index();
        let b = shard_index();
        assert_eq!(a, b);
        assert!(a < FLAG_SHARDS);
    }
}
