//! Process-wide metrics registry: sharded counters, gauges and log-bucket
//! histograms behind one name table, with Prometheus-text and JSON
//! exposition.
//!
//! The registry follows the span recorder's zero-cost-when-off contract:
//! while metrics are **disabled** (the default, toggled by
//! [`set_metrics_enabled`]) every record path — [`Counter::inc`],
//! [`Gauge::set`], [`MetricHistogram::record`] — collapses to one relaxed
//! load of a cache-line-sharded flag and returns. While **enabled**:
//!
//! * a counter increment is one relaxed `fetch_add` on this thread's shard
//!   of a padded atomic array (no lock, no allocation, no line bouncing
//!   between workers);
//! * a gauge update is one relaxed atomic store;
//! * a histogram record takes one uncontended mutex around the existing
//!   [`Histogram`] bucket increment.
//!
//! Handles are looked up by `&'static str` name ([`counter`], [`gauge`],
//! [`histogram`]) and are cheap `Arc` clones: the same name always resolves
//! to the same underlying metric, so independently-constructed engines,
//! pools and KV caches aggregate into one exposition naturally. Look
//! handles up once at construction time, not on hot paths.
//!
//! [`snapshot`] captures every registered metric (plus the recorder's and
//! timeline's cumulative `dropped_events` counters) into a
//! [`MetricsSnapshot`], which renders as Prometheus text
//! ([`prometheus_text`]) or JSON ([`json_text`]); [`validate_prometheus`]
//! re-parses the text form and checks the structural rules CI relies on.

use crate::histogram::Histogram;
use crate::{json, shard_index, ShardedFlag, FLAG_SHARDS};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

static METRICS_ENABLED: ShardedFlag = ShardedFlag::new();

/// Turns metric recording on or off, process-wide. Registered metrics keep
/// their accumulated values across toggles (counters are monotonic, like
/// Prometheus counters).
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.set(on);
}

/// Whether metric recording is currently enabled (this thread's shard
/// view).
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.get()
}

/// One cache-line-padded counter shard.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

struct CounterCore {
    name: &'static str,
    shards: [PaddedU64; FLAG_SHARDS],
}

struct GaugeCore {
    name: &'static str,
    value: AtomicI64,
}

struct HistogramCore {
    name: &'static str,
    hist: Mutex<Histogram>,
}

/// A monotonically-increasing counter handle (cheap to clone; all clones of
/// one name share the same cells).
#[derive(Clone)]
pub struct Counter(Arc<CounterCore>);

impl Counter {
    /// Adds `n` to this thread's shard. No-op while metrics are disabled.
    #[inline]
    pub fn inc(&self, n: u64) {
        if !metrics_enabled() {
            return;
        }
        self.0.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Sum across shards (readable regardless of the enable flag).
    pub fn value(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.0.name
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({} = {})", self.name(), self.value())
    }
}

/// A last-writer-wins instantaneous value handle (occupancy, queue depth).
#[derive(Clone)]
pub struct Gauge(Arc<GaugeCore>);

impl Gauge {
    /// Stores `v`. No-op while metrics are disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if !metrics_enabled() {
            return;
        }
        self.0.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative). No-op while metrics are disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !metrics_enabled() {
            return;
        }
        self.0.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.0.name
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({} = {})", self.name(), self.value())
    }
}

/// A registered log-bucket [`Histogram`] handle.
#[derive(Clone)]
pub struct MetricHistogram(Arc<HistogramCore>);

impl MetricHistogram {
    /// Records one sample. No-op while metrics are disabled. The mutex is
    /// uncontended in the single-recorder case and never allocates.
    #[inline]
    pub fn record(&self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        self.0.hist.lock().unwrap().record(v);
    }

    /// A copy of the accumulated histogram.
    pub fn snapshot(&self) -> Histogram {
        self.0.hist.lock().unwrap().clone()
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.0.name
    }
}

impl std::fmt::Debug for MetricHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricHistogram({})", self.name())
    }
}

enum Entry {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

impl Entry {
    fn name(&self) -> &'static str {
        match self {
            Entry::Counter(c) => c.name,
            Entry::Gauge(g) => g.name,
            Entry::Histogram(h) => h.name,
        }
    }
}

static REGISTRY: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

/// Registry mutations are append-only scans, so a panic inside a lookup
/// (the kind-mismatch path) leaves consistent state — recover the guard
/// instead of propagating the poison.
fn lock_registry() -> std::sync::MutexGuard<'static, Vec<Entry>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Looks up (or registers) the counter named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &'static str) -> Counter {
    let mut reg = lock_registry();
    for e in reg.iter() {
        if e.name() == name {
            match e {
                Entry::Counter(c) => return Counter(Arc::clone(c)),
                _ => panic!("metric '{name}' is already registered as a non-counter"),
            }
        }
    }
    #[allow(clippy::declare_interior_mutable_const)] // array template
    const ZERO: PaddedU64 = PaddedU64(AtomicU64::new(0));
    let core = Arc::new(CounterCore {
        name,
        shards: [ZERO; FLAG_SHARDS],
    });
    reg.push(Entry::Counter(Arc::clone(&core)));
    Counter(core)
}

/// Looks up (or registers) the gauge named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &'static str) -> Gauge {
    let mut reg = lock_registry();
    for e in reg.iter() {
        if e.name() == name {
            match e {
                Entry::Gauge(g) => return Gauge(Arc::clone(g)),
                _ => panic!("metric '{name}' is already registered as a non-gauge"),
            }
        }
    }
    let core = Arc::new(GaugeCore {
        name,
        value: AtomicI64::new(0),
    });
    reg.push(Entry::Gauge(Arc::clone(&core)));
    Gauge(core)
}

/// Looks up (or registers) the histogram named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &'static str) -> MetricHistogram {
    let mut reg = lock_registry();
    for e in reg.iter() {
        if e.name() == name {
            match e {
                Entry::Histogram(h) => return MetricHistogram(Arc::clone(h)),
                _ => panic!("metric '{name}' is already registered as a non-histogram"),
            }
        }
    }
    let core = Arc::new(HistogramCore {
        name,
        hist: Mutex::new(Histogram::new()),
    });
    reg.push(Entry::Histogram(Arc::clone(&core)));
    MetricHistogram(core)
}

/// One captured metric value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter total (summed across shards).
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(i64),
    /// Histogram digest: count, quantile upper bounds and extrema.
    Histogram {
        count: u64,
        sum: u64,
        p50: u64,
        p95: u64,
        p99: u64,
        max: u64,
    },
}

/// A point-in-time capture of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub entries: Vec<(&'static str, MetricValue)>,
}

impl MetricsSnapshot {
    /// The captured value of `name`, if registered at capture time.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// Convenience: the counter total of `name` (0 when absent or not a
    /// counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: the gauge value of `name` (0 when absent or not a
    /// gauge).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }
}

/// Captures every registered metric plus the two built-in event-loss
/// counters: `obs.dropped_events` (span ring overflow, process cumulative)
/// and `timeline.dropped_events` (timeline ring overflow).
pub fn snapshot() -> MetricsSnapshot {
    let reg = lock_registry();
    let mut entries: Vec<(&'static str, MetricValue)> = Vec::with_capacity(reg.len() + 2);
    for e in reg.iter() {
        let value = match e {
            Entry::Counter(c) => {
                MetricValue::Counter(c.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum())
            }
            Entry::Gauge(g) => MetricValue::Gauge(g.value.load(Ordering::Relaxed)),
            Entry::Histogram(h) => {
                let hist = h.hist.lock().unwrap();
                MetricValue::Histogram {
                    count: hist.count(),
                    sum: hist.sum(),
                    p50: hist.p50(),
                    p95: hist.p95(),
                    p99: hist.p99(),
                    max: hist.max(),
                }
            }
        };
        entries.push((e.name(), value));
    }
    drop(reg);
    entries.push((
        "obs.dropped_events",
        MetricValue::Counter(crate::total_dropped_events()),
    ));
    entries.push((
        "timeline.dropped_events",
        MetricValue::Counter(crate::timeline::total_dropped_events()),
    ));
    entries.sort_by_key(|(name, _)| *name);
    entries.dedup_by(|a, b| a.0 == b.0);
    MetricsSnapshot { entries }
}

/// Maps a dotted metric name to a Prometheus-legal one (`serve.admit` →
/// `serve_admit`): every character outside `[A-Za-z0-9_:]` becomes `_`, and
/// a leading digit gets a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders a snapshot as Prometheus exposition text: one `# TYPE` line per
/// metric, counters/gauges as single samples, histograms as summaries
/// (`{quantile="…"}` samples plus `_count` and `_sum`).
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.entries {
        let name = sanitize_name(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram {
                count,
                sum,
                p50,
                p95,
                p99,
                ..
            } => {
                let _ = writeln!(out, "# TYPE {name} summary");
                let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {p50}");
                let _ = writeln!(out, "{name}{{quantile=\"0.95\"}} {p95}");
                let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {p99}");
                let _ = writeln!(out, "{name}_count {count}");
                let _ = writeln!(out, "{name}_sum {sum}");
            }
        }
    }
    out
}

/// Renders a snapshot as one JSON object: `{"metrics": [{"name", "kind",
/// …}, …]}`, parseable by [`crate::json`].
pub fn json_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"metrics\":[");
    for (i, (name, value)) in snap.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        let name = json::escape(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"kind\":\"counter\",\"value\":{v}}}"
                );
            }
            MetricValue::Gauge(v) => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"kind\":\"gauge\",\"value\":{v}}}"
                );
            }
            MetricValue::Histogram {
                count,
                sum,
                p50,
                p95,
                p99,
                max,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"kind\":\"histogram\",\"count\":{count},\
                     \"sum\":{sum},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"max\":{max}}}"
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Checks `text` against the Prometheus exposition rules the repo relies
/// on: every non-comment line is `name[{labels}] value` with a legal metric
/// name and a numeric value; every sample's base name was declared by a
/// preceding `# TYPE` line (modulo the summary `_count`/`_sum` suffixes);
/// and no `(name, labels)` pair repeats.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    fn legal_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut declared: Vec<String> = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("TYPE") => {
                    let name = parts.next().ok_or_else(|| err("# TYPE without a name"))?;
                    if !legal_name(name) {
                        return Err(err(&format!("illegal metric name '{name}'")));
                    }
                    let kind = parts.next().ok_or_else(|| err("# TYPE without a kind"))?;
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "summary" | "histogram" | "untyped"
                    ) {
                        return Err(err(&format!("unknown metric kind '{kind}'")));
                    }
                    declared.push(name.to_owned());
                }
                Some("HELP") => {}
                _ => return Err(err("unknown comment directive (expected # TYPE or # HELP)")),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find('}') {
            Some(close) => {
                let (head, tail) = line.split_at(close + 1);
                (head, tail.trim())
            }
            None => {
                let mut it = line.splitn(2, ' ');
                let head = it.next().unwrap_or_default();
                (head, it.next().unwrap_or_default().trim())
            }
        };
        let base = match name_part.find('{') {
            Some(open) => {
                let labels = &name_part[open..];
                if !labels.ends_with('}') {
                    return Err(err("unterminated label block"));
                }
                let inner = &labels[1..labels.len() - 1];
                for pair in inner.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| err(&format!("label '{pair}' is not key=\"value\"")))?;
                    if !legal_name(k) {
                        return Err(err(&format!("illegal label name '{k}'")));
                    }
                    if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                        return Err(err(&format!("label value {v} is not quoted")));
                    }
                }
                &name_part[..open]
            }
            None => name_part,
        };
        if !legal_name(base) {
            return Err(err(&format!("illegal metric name '{base}'")));
        }
        if value_part.is_empty() || value_part.parse::<f64>().is_err() {
            return Err(err(&format!("sample value '{value_part}' is not numeric")));
        }
        let root = base
            .strip_suffix("_count")
            .or_else(|| base.strip_suffix("_sum"))
            .unwrap_or(base);
        if !declared.iter().any(|d| d == base || d == root) {
            return Err(err(&format!("sample '{base}' has no preceding # TYPE")));
        }
        let key = name_part.to_owned();
        if seen.contains(&key) {
            return Err(err(&format!("duplicate sample '{key}'")));
        }
        seen.push(key);
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable flag is process-global, so tests that toggle it must not
    /// interleave (the harness runs `#[test]`s on parallel threads).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn flag_guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_shard_and_sum() {
        let _g = flag_guard();
        let c = counter("test.counter_shard_sum");
        set_metrics_enabled(true);
        c.inc(3);
        let c2 = counter("test.counter_shard_sum");
        c2.inc(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| counter("test.counter_shard_sum").inc(10));
            }
        });
        set_metrics_enabled(false);
        assert_eq!(c.value(), 47);
        // Disabled increments are dropped.
        c.inc(100);
        assert_eq!(c.value(), 47);
    }

    #[test]
    fn gauges_are_last_writer_wins() {
        let _g = flag_guard();
        let g = gauge("test.gauge");
        set_metrics_enabled(true);
        g.set(5);
        g.add(-2);
        set_metrics_enabled(false);
        g.set(99);
        assert_eq!(g.value(), 3);
    }

    #[test]
    fn histograms_record_behind_the_flag() {
        let _g = flag_guard();
        let h = histogram("test.hist");
        set_metrics_enabled(true);
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        set_metrics_enabled(false);
        h.record(1_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.max(), 30);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let _c = counter("test.kind_clash");
        let _g = gauge("test.kind_clash");
    }

    #[test]
    fn snapshot_includes_builtin_drop_counters() {
        let snap = snapshot();
        assert!(snap.get("obs.dropped_events").is_some());
        assert!(snap.get("timeline.dropped_events").is_some());
    }

    #[test]
    fn expositions_render_and_validate() {
        let _g = flag_guard();
        let c = counter("test.expo_counter");
        let g = gauge("test.expo_gauge");
        let h = histogram("test.expo_hist");
        set_metrics_enabled(true);
        c.inc(7);
        g.set(-3);
        for v in 1..=100u64 {
            h.record(v);
        }
        set_metrics_enabled(false);
        let snap = snapshot();
        let prom = prometheus_text(&snap);
        validate_prometheus(&prom).unwrap();
        assert!(prom.contains("# TYPE test_expo_counter counter"));
        assert!(prom.contains("test_expo_gauge -3"));
        assert!(prom.contains("test_expo_hist{quantile=\"0.5\"}"));
        assert!(prom.contains("test_expo_hist_count 100"));
        let json_out = json_text(&snap);
        let doc = json::parse(&json_out).unwrap();
        let metrics = doc.get("metrics").and_then(|m| m.as_array()).unwrap();
        assert!(metrics
            .iter()
            .any(|m| m.get("name").and_then(|n| n.as_str()) == Some("test.expo_counter")));
    }

    #[test]
    fn prometheus_validator_rejects_bad_text() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("9bad_name 1\n").is_err());
        // Sample without a preceding TYPE declaration.
        assert!(validate_prometheus("orphan 1\n").is_err());
        // Non-numeric value.
        assert!(validate_prometheus("# TYPE a counter\na abc\n").is_err());
        // Duplicate sample.
        assert!(validate_prometheus("# TYPE a counter\na 1\na 2\n").is_err());
        // Unquoted label value.
        assert!(validate_prometheus("# TYPE a summary\na{quantile=0.5} 1\n").is_err());
        // Unknown kind.
        assert!(validate_prometheus("# TYPE a widget\na 1\n").is_err());
    }

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(
            sanitize_name("serve.bytes_moved.h2o"),
            "serve_bytes_moved_h2o"
        );
        assert_eq!(sanitize_name("2fast"), "_2fast");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let _g = flag_guard();
        let c = counter("test.lookup_counter");
        let g = gauge("test.lookup_gauge");
        set_metrics_enabled(true);
        c.inc(2);
        g.set(11);
        set_metrics_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.counter("test.lookup_counter"), 2);
        assert_eq!(snap.gauge("test.lookup_gauge"), 11);
        assert_eq!(snap.counter("test.absent"), 0);
    }
}
