//! Per-stage latency aggregation.
//!
//! A [`StageBreakdown`] folds the raw span streams from [`crate::drain`]
//! into one log-bucket [`Histogram`] per span name ("stage"), merged across
//! every thread. This is the bridge between the event recorder and
//! `StatsSummary`: the decoder records spans while running, and the summary
//! carries the resulting breakdown so per-stage p50/p95/p99 are available
//! without re-parsing a trace file.

use crate::histogram::Histogram;
use crate::{EventKind, ThreadEvents};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One named stage and its duration histogram (nanoseconds).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageStat {
    /// Span name the durations were recorded under.
    pub name: String,
    /// Span durations, in nanoseconds.
    pub hist: Histogram,
}

/// Per-stage latency histograms, in first-seen stage order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageBreakdown {
    stages: Vec<StageStat>,
}

impl StageBreakdown {
    /// An empty breakdown.
    pub const fn new() -> StageBreakdown {
        StageBreakdown { stages: Vec::new() }
    }

    /// Builds a breakdown from drained per-thread event streams.
    ///
    /// Spans are matched per thread with a B/E stack, exactly as the RAII
    /// guards nested them. Unmatched events (a begin or end lost to ring
    /// overflow) are skipped; instants carry no duration and are ignored.
    pub fn from_events(threads: &[ThreadEvents]) -> StageBreakdown {
        let mut out = StageBreakdown::new();
        for t in threads {
            let mut open: Vec<(&'static str, u64)> = Vec::new();
            for ev in &t.events {
                match ev.kind {
                    EventKind::Begin => open.push((ev.name, ev.t_ns)),
                    EventKind::End => {
                        if let Some((name, begin)) = open.pop() {
                            out.record(name, ev.t_ns.saturating_sub(begin));
                        }
                    }
                    EventKind::Instant => {}
                }
            }
        }
        out
    }

    /// Records one duration sample for `stage`, creating it on first use.
    pub fn record(&mut self, stage: &str, duration_ns: u64) {
        self.stage_mut(stage).record(duration_ns);
    }

    fn stage_mut(&mut self, stage: &str) -> &mut Histogram {
        if let Some(i) = self.stages.iter().position(|s| s.name == stage) {
            return &mut self.stages[i].hist;
        }
        self.stages.push(StageStat {
            name: stage.to_owned(),
            hist: Histogram::new(),
        });
        &mut self.stages.last_mut().unwrap().hist
    }

    /// The histogram for `stage`, if any samples were recorded.
    pub fn get(&self, stage: &str) -> Option<&Histogram> {
        self.stages
            .iter()
            .find(|s| s.name == stage)
            .map(|s| &s.hist)
    }

    /// All stages, in first-seen order.
    pub fn stages(&self) -> &[StageStat] {
        &self.stages
    }

    /// `true` when no stage has any samples.
    pub fn is_empty(&self) -> bool {
        self.stages.iter().all(|s| s.hist.is_empty())
    }

    /// Folds `other`'s histograms into `self`, matching stages by name and
    /// appending stages `self` has not seen.
    pub fn merge(&mut self, other: &StageBreakdown) {
        for stage in &other.stages {
            self.stage_mut(&stage.name).merge(&stage.hist);
        }
    }

    /// Renders the human-readable stage table: count, p50/p95/p99 and the
    /// cumulative total per stage. Durations are printed in the most
    /// readable unit per cell.
    pub fn render(&self) -> String {
        let name_w = self
            .stages
            .iter()
            .map(|s| s.name.len())
            .chain(std::iter::once("stage".len()))
            .max()
            .unwrap_or(5);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>10}  {:>9}  {:>9}  {:>9}  {:>10}",
            "stage", "count", "p50", "p95", "p99", "total"
        );
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(name_w + 2 + 10 + 2 + 9 + 2 + 9 + 2 + 9 + 2 + 10)
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>10}  {:>9}  {:>9}  {:>9}  {:>10}",
                s.name,
                s.hist.count(),
                fmt_ns(s.hist.p50()),
                fmt_ns(s.hist.p95()),
                fmt_ns(s.hist.p99()),
                fmt_ns(s.hist.sum()),
            );
        }
        out
    }
}

/// Formats a nanosecond duration with a readable unit (`ns`, `us`, `ms`,
/// `s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn ev(name: &'static str, kind: EventKind, t_ns: u64) -> Event {
        Event { name, kind, t_ns }
    }

    #[test]
    fn from_events_matches_nested_spans_per_thread() {
        let threads = vec![
            ThreadEvents {
                label: "main".into(),
                tid: 0,
                dropped: 0,
                events: vec![
                    ev("step", EventKind::Begin, 0),
                    ev("identify", EventKind::Begin, 100),
                    ev("identify", EventKind::End, 400),
                    ev("mark", EventKind::Instant, 450),
                    ev("step", EventKind::End, 1_000),
                ],
            },
            ThreadEvents {
                label: "lad-pool-0".into(),
                tid: 1,
                dropped: 0,
                events: vec![
                    ev("identify", EventKind::Begin, 0),
                    ev("identify", EventKind::End, 500),
                ],
            },
        ];
        let bd = StageBreakdown::from_events(&threads);
        assert_eq!(bd.get("step").unwrap().count(), 1);
        assert_eq!(bd.get("step").unwrap().sum(), 1_000);
        // "identify" merged across both threads.
        assert_eq!(bd.get("identify").unwrap().count(), 2);
        assert_eq!(bd.get("identify").unwrap().sum(), 800);
        // Instants contribute no stage.
        assert!(bd.get("mark").is_none());
    }

    #[test]
    fn unmatched_events_are_skipped() {
        let threads = vec![ThreadEvents {
            label: "main".into(),
            tid: 0,
            dropped: 3,
            events: vec![
                ev("lost", EventKind::End, 10),
                ev("open", EventKind::Begin, 20),
            ],
        }];
        let bd = StageBreakdown::from_events(&threads);
        assert!(bd.is_empty());
    }

    #[test]
    fn merge_matches_by_name_and_appends_new_stages() {
        let mut a = StageBreakdown::new();
        a.record("identify", 100);
        let mut b = StageBreakdown::new();
        b.record("identify", 300);
        b.record("window", 50);
        a.merge(&b);
        assert_eq!(a.get("identify").unwrap().count(), 2);
        assert_eq!(a.get("window").unwrap().count(), 1);
        assert_eq!(a.stages().len(), 2);
    }

    #[test]
    fn render_lists_every_stage_with_quantiles() {
        let mut bd = StageBreakdown::new();
        for v in [1_000u64, 2_000, 4_000] {
            bd.record("lad.identify", v);
        }
        bd.record("pool.park", 2_500_000);
        let table = bd.render();
        assert!(table.contains("stage"));
        assert!(table.contains("p95"));
        assert!(table.contains("lad.identify"));
        assert!(table.contains("pool.park"));
        assert!(
            table.contains("ms"),
            "park total should render in ms: {table}"
        );
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_340_000), "2.34ms");
        assert_eq!(fmt_ns(3_100_000_000), "3.100s");
    }
}
