//! End-to-end recorder test: spans recorded on several threads drain into
//! per-thread streams that export to a valid Chrome trace, a valid JSONL
//! stream, and a populated stage breakdown.
//!
//! This lives in its own integration-test binary because the recorder's
//! enable flag and thread registry are process-global; sharing a process
//! with other recorder tests would race on them.

use lad_obs::export::{chrome_trace, jsonl, validate_chrome_trace, validate_jsonl};
use lad_obs::{EventKind, StageBreakdown};

#[test]
fn recorder_end_to_end() {
    // Disabled (the default): spans are free no-ops and nothing registers.
    {
        let _s = lad_obs::span("never.recorded");
        lad_obs::instant("never.recorded");
    }
    assert!(
        lad_obs::drain().is_empty(),
        "disabled recorder must buffer nothing"
    );

    lad_obs::set_enabled(true);
    assert!(lad_obs::enabled());
    {
        let _step = lad_obs::span("test.step");
        for _ in 0..3 {
            let _inner = lad_obs::span("test.inner");
            lad_obs::instant("test.marker");
        }
    }
    let workers: Vec<_> = (0..2)
        .map(|i| {
            std::thread::Builder::new()
                .name(format!("obs-worker-{i}"))
                .spawn(|| {
                    let _w = lad_obs::span("test.worker");
                    lad_obs::instant("test.worker-mark");
                })
                .unwrap()
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    lad_obs::set_enabled(false);

    // Disabled again: recording stops even though rings stay registered.
    lad_obs::instant("after.disable");

    let threads = lad_obs::drain();
    assert_eq!(threads.len(), 3, "main + two workers should have recorded");
    let main = &threads[0];
    assert_eq!(main.dropped, 0);
    assert_eq!(
        main.events
            .iter()
            .filter(|e| e.kind == EventKind::Begin)
            .count(),
        main.events
            .iter()
            .filter(|e| e.kind == EventKind::End)
            .count(),
    );
    assert!(threads.iter().any(|t| t.label.starts_with("obs-worker-")));
    assert!(!threads
        .iter()
        .any(|t| t.events.iter().any(|e| e.name == "after.disable")));

    // Both exporters emit documents their validators accept.
    let trace = chrome_trace(&threads);
    validate_chrome_trace(&trace).expect("chrome trace must validate");
    assert!(trace.contains("test.step"));
    let lines = jsonl(&threads);
    validate_jsonl(&lines).expect("jsonl must validate");

    // The breakdown sees every span with real durations.
    let bd = StageBreakdown::from_events(&threads);
    assert_eq!(bd.get("test.step").unwrap().count(), 1);
    assert_eq!(bd.get("test.inner").unwrap().count(), 3);
    assert_eq!(bd.get("test.worker").unwrap().count(), 2);
    assert!(bd.get("test.step").unwrap().sum() >= bd.get("test.inner").unwrap().sum());
    let table = bd.render();
    assert!(table.contains("test.step") && table.contains("p99"));

    // A second drain finds the rings empty.
    assert!(lad_obs::drain().is_empty());
}
