//! Property tests of the log-bucket histogram: the algebraic laws that make
//! per-head / per-worker histograms safe to aggregate, plus quantile and
//! bucket-shape guarantees.

use lad_obs::{Histogram, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Sample durations spanning sub-ns ticks to multi-second outliers.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..5_000_000_000, 0..64)
}

proptest! {
    /// merge is commutative: a ⊕ b == b ⊕ a, field for field.
    #[test]
    fn merge_is_commutative(xs in samples(), ys in samples()) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(xs in samples(), ys in samples(), zs in samples()) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging preserves counts, per bucket and in total, and a merged
    /// histogram equals the histogram of the concatenated stream.
    #[test]
    fn merge_preserves_counts(xs in samples(), ys in samples()) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.count(), a.count() + b.count());
        for i in 0..HISTOGRAM_BUCKETS {
            prop_assert_eq!(merged.buckets()[i], a.buckets()[i] + b.buckets()[i]);
        }
        let mut concat = xs.clone();
        concat.extend_from_slice(&ys);
        prop_assert_eq!(merged, hist_of(&concat));
    }

    /// Bucketing is monotone: a larger value never lands in a smaller
    /// bucket, and every value falls inside its bucket's bounds.
    #[test]
    fn bucket_index_is_monotone_and_consistent(x in 0u64..=u64::MAX, y in 0u64..=u64::MAX) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(Histogram::bucket_index(lo) <= Histogram::bucket_index(hi));
        let i = Histogram::bucket_index(x);
        let (blo, bhi) = Histogram::bucket_bounds(i);
        prop_assert!(blo <= x && x <= bhi, "value {x} outside bucket {i} [{blo}, {bhi}]");
    }

    /// quantile(q) brackets the true q-quantile: it is at least the low
    /// edge of the true quantile's bucket and at most the observed max,
    /// and it is monotone in q.
    #[test]
    fn quantile_brackets_true_quantile(xs in samples(), q in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        prop_assume!(!xs.is_empty());
        let h = hist_of(&xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.quantile(q);
        let (true_lo, _) = Histogram::bucket_bounds(Histogram::bucket_index(truth));
        prop_assert!(est >= true_lo, "estimate {est} below bucket floor {true_lo} of true {truth}");
        prop_assert!(est <= h.max(), "estimate {est} above max {}", h.max());
        let (qa, qb) = if q <= q2 { (q, q2) } else { (q2, q) };
        prop_assert!(h.quantile(qa) <= h.quantile(qb));
    }

    /// min/max/sum/mean agree with the raw stream (sum saturates, but these
    /// inputs cannot overflow: 64 samples < 2^33 each).
    #[test]
    fn summary_fields_match_stream(xs in samples()) {
        prop_assume!(!xs.is_empty());
        let h = hist_of(&xs);
        prop_assert_eq!(h.min(), *xs.iter().min().unwrap());
        prop_assert_eq!(h.max(), *xs.iter().max().unwrap());
        let sum: u64 = xs.iter().sum();
        prop_assert_eq!(h.sum(), sum);
        prop_assert!((h.mean() - sum as f64 / xs.len() as f64).abs() < 1e-6);
    }
}
