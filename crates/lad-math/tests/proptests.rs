//! Property-based tests of the numerical substrate.

use lad_math::pwl::{fit_exp_segment, PwlExp};
use lad_math::softmax::{mse, softmax, softmax_pwl};
use lad_math::{Matrix, F16};
use proptest::prelude::*;

proptest! {
    /// Finite f32 values convert to f16 with bounded error: half-ULP
    /// relative for normals, absolute 2^-25 for the subnormal range.
    #[test]
    fn f16_conversion_error_is_bounded(x in -60000.0f32..60000.0) {
        let h = F16::from_f32(x).to_f32();
        let bound = (x.abs() * 2.0f32.powi(-11)).max(2.0f32.powi(-25));
        prop_assert!((h - x).abs() <= bound, "x={x} h={h}");
    }

    /// f16 -> f32 -> f16 is the identity on non-NaN bit patterns.
    #[test]
    fn f16_roundtrip_identity(bits in 0u16..=u16::MAX) {
        let h = F16::from_bits(bits);
        prop_assume!(!h.is_nan());
        prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits);
    }

    /// f16 conversion is monotone: x <= y implies f16(x) <= f16(y).
    #[test]
    fn f16_conversion_is_monotone(x in -1e4f32..1e4, y in -1e4f32..1e4) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }

    /// Least-squares exp fits have residuals bounded by the interval width
    /// squared times the curvature at the right edge.
    #[test]
    fn pwl_fit_residual_bound(lo in -12.0f64..-0.2, width in 0.01f64..3.0) {
        let hi = (lo + width).min(0.0);
        let seg = fit_exp_segment(lo, hi);
        let w = hi - lo;
        let bound = w * w * hi.exp();
        for i in 0..=20 {
            let x = lo + w * (i as f64) / 20.0;
            prop_assert!((seg.eval(x) - x.exp()).abs() <= bound + 1e-12,
                "x={x} err={}", (seg.eval(x) - x.exp()).abs());
        }
    }

    /// interval_of always returns an interval whose bounds contain x.
    #[test]
    fn pwl_interval_contains_point(x in -40.0f64..0.0) {
        let pwl = PwlExp::accurate_default();
        let idx = pwl.interval_of(x);
        let (lo, hi) = pwl.interval_bounds(idx);
        prop_assert!(x >= lo - 1e-12 && x <= hi + 1e-12, "x={x} -> [{lo},{hi}]");
    }

    /// PWL softmax stays within distribution-like bounds and close to exact.
    #[test]
    fn pwl_softmax_is_close(scores in prop::collection::vec(-8.0f32..8.0, 2..40)) {
        let pwl = PwlExp::accurate_default();
        let exact = softmax(&scores);
        let approx = softmax_pwl(&scores, &pwl);
        prop_assert!((approx.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(mse(&exact, &approx) < 1e-5);
    }

    /// Softmax output is a probability distribution ordered like its input.
    #[test]
    fn softmax_is_distribution(scores in prop::collection::vec(-50.0f32..50.0, 1..32)) {
        let p = softmax(&scores);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        for (a, pa) in scores.iter().zip(&p) {
            for (b, pb) in scores.iter().zip(&p) {
                if a > b {
                    prop_assert!(pa >= &(pb - 1e-6));
                }
            }
        }
    }

    /// vecmat equals matvec on the transpose for arbitrary matrices.
    #[test]
    fn vecmat_transpose_duality(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = lad_math::Rng::new(seed);
        let m = Matrix::from_flat(rows, cols, rng.normal_vec(rows * cols, 1.0));
        let x = rng.normal_vec(rows, 1.0);
        let a = m.vecmat(&x);
        let b = m.transpose().matvec(&x);
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-4);
        }
    }

    /// The blocked GEMM kernel equals the naive triple loop bit-for-bit on
    /// arbitrary shapes, including ragged tails around the MR register block.
    #[test]
    fn blocked_gemm_equals_naive_exactly(
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..48,
        seed in 0u64..1000,
    ) {
        let mut rng = lad_math::Rng::new(seed);
        let a = rng.normal_vec(m * k, 1.0);
        let b_t = rng.normal_vec(n * k, 1.0);
        let mut blocked = vec![0.0f32; m * n];
        let mut naive = vec![0.0f32; m * n];
        lad_math::gemm::gemm_bt(m, n, k, &a, &b_t, &mut blocked);
        lad_math::gemm::gemm_bt_naive(m, n, k, &a, &b_t, &mut naive);
        prop_assert_eq!(blocked, naive);
    }

    /// Matrix::matmul (through the blocked kernel) equals a locally computed
    /// naive ascending-k product bit-for-bit.
    #[test]
    fn matmul_equals_naive_exactly(
        m in 1usize..10,
        n in 1usize..10,
        k in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mut rng = lad_math::Rng::new(seed);
        let a = Matrix::from_flat(m, k, rng.normal_vec(m * k, 1.0));
        let b = Matrix::from_flat(k, n, rng.normal_vec(k * n, 1.0));
        let c = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for l in 0..k {
                    acc += a.get(i, l) * b.get(l, j);
                }
                prop_assert_eq!(c.get(i, j), acc);
            }
        }
    }

    /// Every row of a batched activation × weightᵀ product is bit-identical
    /// to the per-sample matvec — the step-synchronous batch engine's
    /// correctness contract.
    #[test]
    fn batched_projection_rows_equal_matvec(
        batch in 1usize..12,
        out_dim in 1usize..16,
        in_dim in 1usize..32,
        seed in 0u64..1000,
    ) {
        let mut rng = lad_math::Rng::new(seed);
        let acts = Matrix::from_flat(batch, in_dim, rng.normal_vec(batch * in_dim, 1.0));
        let w = Matrix::from_flat(out_dim, in_dim, rng.normal_vec(out_dim * in_dim, 1.0));
        let batched = acts.matmul_bt(&w);
        for s in 0..batch {
            prop_assert_eq!(batched.row(s), &w.matvec(acts.row(s))[..]);
        }
    }

    /// Rank-1 updates commute with explicit outer-product construction.
    #[test]
    fn rank1_matches_outer_product(dim in 1usize..6, seed in 0u64..1000, scale in -2.0f32..2.0) {
        let mut rng = lad_math::Rng::new(seed);
        let a = rng.normal_vec(dim, 1.0);
        let b = rng.normal_vec(dim, 1.0);
        let mut m = Matrix::zeros(dim, dim);
        m.rank1_update(scale, &a, &b);
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                prop_assert!((m.get(i, j) - scale * ai * bj).abs() < 1e-5);
            }
        }
    }
}
