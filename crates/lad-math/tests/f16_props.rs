//! Property tests hardening `lad_math::f16` before it carries the KV cache:
//! round-trip identity and monotonicity across the whole encoding space,
//! including subnormals, signed zeros, ±infinity and NaN payloads.

use lad_math::F16;
use proptest::prelude::*;

/// Smallest positive f16 subnormal (2^-24) — the bottom of the encodable
/// magnitude range.
const MIN_SUBNORMAL: f32 = 5.960_464_5e-8;
/// Largest f16 subnormal magnitude (just below 2^-14).
const MAX_SUBNORMAL: f32 = 6.097_555e-5;

proptest! {
    /// Every non-NaN bit pattern — normals, subnormals, signed zeros and
    /// ±inf — survives f16 -> f32 -> f16 with identical bits.
    #[test]
    fn roundtrip_identity_all_non_nan_bits(bits in 0u16..=u16::MAX) {
        let h = F16::from_bits(bits);
        prop_assume!(!h.is_nan());
        prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits);
    }

    /// Conversion from f32 is idempotent: re-encoding an already-quantised
    /// value never moves it again (no double-rounding drift in the KV arena).
    #[test]
    fn conversion_is_idempotent(x in -70000.0f32..70000.0) {
        let once = F16::from_f32(x);
        let twice = F16::from_f32(once.to_f32());
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    /// Monotone over the full finite range: x <= y implies f16(x) <= f16(y).
    #[test]
    fn monotone_over_finite_range(x in -65504.0f32..65504.0, y in -65504.0f32..65504.0) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }

    /// Monotone through the subnormal band around zero, where the encoding
    /// switches representation and flush-to-zero happens.
    #[test]
    fn monotone_across_subnormals(
        x in -6.2e-5f32..6.2e-5,
        y in -6.2e-5f32..6.2e-5,
    ) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }

    /// Subnormal absolute error is bounded by half the subnormal spacing
    /// (2^-25), and every subnormal round-trips exactly.
    #[test]
    fn subnormal_error_bound_and_roundtrip(mag in MIN_SUBNORMAL..MAX_SUBNORMAL, neg in 0u8..2) {
        let x = if neg == 1 { -mag } else { mag };
        let h = F16::from_f32(x);
        prop_assert!(h.is_finite());
        prop_assert!((h.to_f32() - x).abs() <= 2.0f32.powi(-25), "x={x} h={h}");
        prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), h.to_bits());
    }

    /// Bit-order agrees with numeric order for same-sign finite values:
    /// within the positive half the encoding is lexicographic.
    #[test]
    fn positive_bit_order_is_numeric_order(a in 0u16..0x7C00, b in 0u16..0x7C00) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_bits(lo).to_f32() <= F16::from_bits(hi).to_f32());
    }

    /// Every NaN payload stays NaN through f32 and back: decode is NaN,
    /// re-encode is NaN with the canonical quiet payload and the sign kept.
    #[test]
    fn nan_payloads_stay_nan(payload in 1u16..=0x3FF, sign in 0u8..2) {
        let bits = if sign == 1 { 0xFC00 } else { 0x7C00 } | payload;
        let h = F16::from_bits(bits);
        prop_assert!(h.is_nan());
        prop_assert!(h.to_f32().is_nan());
        let back = F16::from_f32(h.to_f32());
        prop_assert!(back.is_nan());
        // from_f32 canonicalises payloads to the quiet 0x0200 pattern.
        prop_assert_eq!(back.to_bits() & 0x3FF, 0x0200);
        prop_assert_eq!(back.to_bits() & 0x8000, bits & 0x8000);
    }

    /// Infinities dominate every finite value and round-trip exactly.
    #[test]
    fn infinities_bound_all_finite(x in -65504.0f32..65504.0) {
        let h = F16::from_f32(x);
        prop_assert!(F16::NEG_INFINITY < h && h < F16::INFINITY);
        prop_assert_eq!(F16::from_f32(f32::INFINITY).to_bits(), F16::INFINITY.to_bits());
        prop_assert_eq!(
            F16::from_f32(f32::NEG_INFINITY).to_bits(),
            F16::NEG_INFINITY.to_bits()
        );
    }

    /// The encode/decode slice helpers agree with element-wise conversion —
    /// they are the KV arena's write/read halves.
    #[test]
    fn slice_helpers_match_elementwise(values in prop::collection::vec(-100.0f32..100.0, 0..65)) {
        let mut bits = Vec::new();
        lad_math::f16::encode_bits_into(&values, &mut bits);
        prop_assert_eq!(bits.len(), values.len());
        let mut decoded = vec![0.0f32; values.len()];
        lad_math::f16::decode_bits_into(&bits, &mut decoded);
        for (&v, &d) in values.iter().zip(&decoded) {
            prop_assert_eq!(d, F16::from_f32(v).to_f32());
        }
    }
}

#[test]
fn signed_zeros_are_distinct_encodings_with_equal_value() {
    let pos = F16::from_f32(0.0);
    let neg = F16::from_f32(-0.0);
    assert_eq!(pos.to_bits(), 0x0000);
    assert_eq!(neg.to_bits(), 0x8000);
    assert_eq!(pos.to_f32(), neg.to_f32());
}
