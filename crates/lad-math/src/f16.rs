//! Software IEEE 754 binary16 ("half") floating point.
//!
//! The LAD accelerator's computation components use fp16 number representation
//! (paper Sec. V-A). This module provides a bit-exact storage type, [`F16`],
//! with round-to-nearest-even conversion from `f32`, so simulations can model
//! the precision of on-chip arithmetic (values are stored as fp16, operated on
//! as `f32`, and re-rounded — the usual behaviour of fp16 MAC units with wider
//! accumulators).

use std::fmt;

/// An IEEE 754 binary16 value stored in its raw 16-bit encoding.
///
/// Arithmetic is performed by widening to `f32` and re-rounding on storage,
/// matching an fp16 datapath with single-precision internal accumulation.
///
/// # Example
///
/// ```
/// use lad_math::F16;
///
/// let x = F16::from_f32(1.0 / 3.0);
/// // fp16 has ~3 decimal digits of precision.
/// assert!((x.to_f32() - 1.0 / 3.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);

    /// Creates an `F16` from its raw bit encoding.
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Returns the raw bit encoding.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to the nearest representable `F16`
    /// (round-to-nearest-even, overflow to infinity, subnormal support).
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mantissa = bits & 0x7F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN.
            let payload = if mantissa != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | payload);
        }

        // Unbiased exponent in f32 is exp - 127; f16 bias is 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflows f16 range -> infinity.
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range for f16.
            let half_exp = (unbiased + 15) as u16;
            let half_mant = (mantissa >> 13) as u16;
            let rounding = round_bits(mantissa, 13, half_mant);
            let magnitude = ((half_exp << 10) | half_mant).wrapping_add(rounding);
            // A mantissa carry into the exponent is exactly what we want
            // (1.111.. rounds up to 10.000.., i.e. exponent + 1), and carrying
            // past the max exponent correctly yields infinity.
            return F16(sign | magnitude);
        }
        if unbiased >= -25 {
            // Subnormal f16: shift the implicit leading 1 into the mantissa.
            let full = mantissa | 0x80_0000;
            let shift = (-unbiased - 14 + 13) as u32;
            let half_mant = (full >> shift) as u16;
            let rounding = round_bits(full, shift, half_mant);
            return F16(sign | half_mant.wrapping_add(rounding));
        }
        // Too small: flush to (signed) zero.
        F16(sign)
    }

    /// Converts this value to `f32` exactly (every f16 is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mantissa = (self.0 & 0x3FF) as u32;

        let bits = if exp == 0 {
            if mantissa == 0 {
                sign
            } else {
                // Subnormal: value is mantissa * 2^-24; renormalise so the top
                // set bit (position p) becomes the implicit leading 1.
                let p = 31 - mantissa.leading_zeros();
                let exp32 = 127 - 24 + p;
                let mant32 = (mantissa << (23 - p)) & 0x7F_FFFF;
                sign | (exp32 << 23) | mant32
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mantissa << 13)
        } else {
            sign | ((exp + 127 - 15) << 23) | (mantissa << 13)
        };
        f32::from_bits(bits)
    }

    /// Converts this value to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// Returns `true` if this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x3FF) != 0
    }

    /// Returns `true` if this value is positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Returns `true` for anything that is neither infinite nor NaN.
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }
}

/// Round-to-nearest-even increment for a truncation of `bits` by `shift`.
fn round_bits(bits: u32, shift: u32, truncated_lsb: u16) -> u16 {
    if shift == 0 || shift > 31 {
        return 0;
    }
    let dropped = bits & ((1 << shift) - 1);
    let halfway = 1u32 << (shift - 1);
    if dropped > halfway || (dropped == halfway && (truncated_lsb & 1) == 1) {
        1
    } else {
        0
    }
}

impl From<F16> for f32 {
    fn from(value: F16) -> f32 {
        value.to_f32()
    }
}

impl From<f32> for F16 {
    fn from(value: f32) -> F16 {
        F16::from_f32(value)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl std::ops::Add for F16 {
    type Output = F16;
    fn add(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl std::ops::Sub for F16 {
    type Output = F16;
    fn sub(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl std::ops::Mul for F16 {
    type Output = F16;
    fn mul(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl std::ops::Div for F16 {
    type Output = F16;
    fn div(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl std::ops::Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &F16) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

/// Quantises every element of a slice through fp16 and back, returning the
/// precision-limited copy. Used to model data stored in fp16 HBM/SRAM.
pub fn quantize_slice(values: &[f32]) -> Vec<f32> {
    values.iter().map(|&v| F16::from_f32(v).to_f32()).collect()
}

/// Encodes a slice to raw fp16 bits, appending to `out` — the write half of
/// the fp16 KV arena (amortised allocation-free once `out` has capacity).
pub fn encode_bits_into(values: &[f32], out: &mut Vec<u16>) {
    out.extend(values.iter().map(|&v| F16::from_f32(v).to_bits()));
}

/// Decodes raw fp16 bits into an `f32` buffer (exact — every f16 is
/// representable).
///
/// # Panics
///
/// Panics if `bits.len() != out.len()`.
pub fn decode_bits_into(bits: &[u16], out: &mut [f32]) {
    assert_eq!(bits.len(), out.len(), "decode_bits_into: length mismatch");
    for (slot, &b) in out.iter_mut().zip(bits) {
        *slot = F16::from_bits(b).to_f32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, -2.5, 1024.0, 65504.0] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn all_bit_patterns_roundtrip_through_f32() {
        // Every finite f16 must convert to f32 and back to the identical bits.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            // -0.0 and 0.0 keep their signs.
            assert_eq!(back.to_bits(), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(1e6).is_infinite());
        assert!(F16::from_f32(-1e6).is_infinite());
        assert!(F16::from_f32(-1e6).to_f32() < 0.0);
    }

    #[test]
    fn underflow_flushes_to_zero() {
        assert_eq!(F16::from_f32(1e-10).to_f32(), 0.0);
        let neg = F16::from_f32(-1e-10);
        assert_eq!(neg.to_f32(), 0.0);
        assert_eq!(neg.to_bits() & 0x8000, 0x8000, "sign preserved");
    }

    #[test]
    fn subnormals_are_representable() {
        // Smallest positive subnormal = 2^-24.
        let tiny = 2.0f32.powi(-24);
        let h = F16::from_f32(tiny);
        assert_eq!(h.to_f32(), tiny);
        assert_eq!(h.to_bits(), 1);
    }

    #[test]
    fn nan_is_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next f16; the
        // even neighbour is 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above goes up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-18);
        assert!(F16::from_f32(above).to_f32() > 1.0);
    }

    #[test]
    fn relative_error_is_bounded_for_normals() {
        // fp16 normals carry 11 significant bits: relative error <= 2^-11.
        let mut x = 6.2e-5f32; // just above the smallest normal (2^-14)
        while x < 6.0e4 {
            let err = (F16::from_f32(x).to_f32() - x).abs() / x;
            assert!(err <= 2.0f32.powi(-11), "x={x} err={err}");
            x *= 1.37;
        }
    }

    #[test]
    fn arithmetic_reranks_through_f32() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((-a).to_f32(), -1.5);
        assert!((a / b).to_f32() > 0.66 && (a / b).to_f32() < 0.67);
    }

    #[test]
    fn quantize_slice_matches_elementwise() {
        let v = [0.1f32, 0.2, -0.3, 123.456];
        let q = quantize_slice(&v);
        for (orig, quant) in v.iter().zip(&q) {
            assert_eq!(*quant, F16::from_f32(*orig).to_f32());
        }
    }

    #[test]
    fn display_and_ordering() {
        assert_eq!(F16::from_f32(1.5).to_string(), "1.5");
        assert!(F16::from_f32(1.0) < F16::from_f32(2.0));
        assert!(F16::NEG_INFINITY < F16::ZERO);
    }
}
