//! A small deterministic PRNG (SplitMix64-seeded xoshiro256**).
//!
//! Keeps this substrate crate dependency-free while making every experiment in
//! the workspace reproducible from a single `u64` seed. The generator passes
//! the statistical checks that matter for simulation workloads (equidistributed
//! 64-bit outputs, long period 2²⁵⁶−1).

/// Deterministic xoshiro256** generator.
///
/// # Example
///
/// ```
/// use lad_math::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed, expanding it with SplitMix64 so that
    /// similar seeds yield unrelated streams.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2n = s2 ^ s0;
        let mut s3n = s3 ^ s1;
        let s1n = s1 ^ s2n;
        let s0n = s0 ^ s3n;
        s2n ^= t;
        s3n = s3n.rotate_left(45);
        self.state = [s0n, s1n, s2n, s3n];
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        // Lemire's rejection-free-in-expectation multiply-shift method.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fills a vector with `n` i.i.d. normal samples scaled by `scale`.
    pub fn normal_vec(&mut self, n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|_| self.normal() as f32 * scale).collect()
    }

    /// Samples an index from a discrete distribution given by non-negative
    /// weights. Falls back to the last index under fp slack.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index: empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index: weights sum to zero");
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = Rng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn next_below_stays_in_bounds_and_covers() {
        let mut rng = Rng::new(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn chance_probability() {
        let mut rng = Rng::new(9);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::new(13);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&[1.0, 2.0, 1.0])] += 1;
        }
        let p1 = counts[1] as f64 / 30_000.0;
        assert!((p1 - 0.5).abs() < 0.02, "p1={p1}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Rng::new(0).next_below(0);
    }
}
