//! Row-major dense matrix.
//!
//! The intermediate cache `A = Σ aᵢ* kᵢᵀ vᵢ` (paper Eq. 5) is a `d × d` matrix
//! maintained by rank-1 (outer product) updates, and queried by vector-matrix
//! products `qA`. [`Matrix`] provides exactly those operations, plus the
//! general matrix products the transformer substrate needs.

use crate::vector;

/// A dense row-major `rows × cols` matrix of `f32`.
///
/// # Example
///
/// ```
/// use lad_math::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.vecmat(&[1.0, 1.0]), vec![4.0, 6.0]);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Matrix {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "from_flat: size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "get: out of bounds");
        self.data[row * self.cols + col]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "set: out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of a row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row: out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable borrow of a row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row_mut: out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Vector-matrix product `x · M` where `x` has `rows` elements; the result
    /// has `cols` elements. This is `qA` in paper Eq. 4.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vecmat(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        self.vecmat_into(x, &mut out);
        out
    }

    /// In-place [`Matrix::vecmat`]: writes `x · M` into `out` (overwritten),
    /// so hot paths reusing a scratch buffer never allocate. Bit-identical to
    /// `vecmat`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    pub fn vecmat_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "vecmat: dimension mismatch");
        assert_eq!(out.len(), self.cols, "vecmat: output dimension mismatch");
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi != 0.0 {
                vector::axpy(out, xi, self.row(i));
            }
        }
    }

    /// Matrix-vector product `M · x` where `x` has `cols` elements; the result
    /// has `rows` elements.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// In-place [`Matrix::matvec`]: writes `M · x` into `out` (overwritten).
    /// Each output element is a sequential ascending-`k` dot product — the
    /// same accumulation order as the batched [`Matrix::matmul_bt`] kernel,
    /// so per-sample and batched projections agree bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec: output dimension mismatch");
        if self.cols == 0 {
            out.fill(0.0);
            return;
        }
        for (slot, row) in out.iter_mut().zip(self.iter_rows()) {
            *slot = vector::dot(row, x);
        }
    }

    /// Rank-1 update `M += scale · aᵀ b` (outer product of column vector `a`
    /// and row vector `b`). Used for the `A += αᵢ kᵢᵀ vᵢ` cache updates
    /// (paper Eq. 6).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != rows` or `b.len() != cols`.
    pub fn rank1_update(&mut self, scale: f32, a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), self.rows, "rank1_update: row dim mismatch");
        assert_eq!(b.len(), self.cols, "rank1_update: col dim mismatch");
        for (i, &ai) in a.iter().enumerate() {
            let factor = scale * ai;
            if factor != 0.0 {
                vector::axpy(self.row_mut(i), factor, b);
            }
        }
    }

    /// General matrix product `self · other`, via the cache-blocked
    /// [`crate::gemm`] kernel: `other` is transposed into contiguous panels
    /// once, then every output element is one sequential ascending-`k` dot
    /// product (see the [`crate::gemm`] accumulation contract).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dim mismatch");
        self.matmul_bt(&other.transpose())
    }

    /// Matrix product against a pre-transposed right-hand side:
    /// `self · otherᵀ`, where `other` is `n × k` row-major (so each of its
    /// rows is one output column's weights). This is the layout linear layers
    /// store naturally (`out × in`), so batched projections skip the
    /// transpose entirely.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_bt: inner dim mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        crate::gemm::gemm_bt(
            self.rows,
            other.rows,
            self.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Maximum absolute element-wise difference with another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "max_abs_diff: shape mismatch"
        );
        vector::max_abs_diff(&self.data, &other.data)
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_matvec_is_noop() {
        let id = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(id.matvec(&x), x);
        assert_eq!(id.vecmat(&x), x);
    }

    #[test]
    fn vecmat_matches_manual() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        // [1,0,2] · M = row0 + 2*row2
        assert_eq!(m.vecmat(&[1.0, 0.0, 2.0]), vec![11.0, 14.0]);
    }

    #[test]
    fn rank1_update_equals_outer_product() {
        let mut m = Matrix::zeros(2, 3);
        m.rank1_update(2.0, &[1.0, -1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[2.0, 4.0, 6.0]);
        assert_eq!(m.row(1), &[-2.0, -4.0, -6.0]);
    }

    #[test]
    fn matmul_against_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-4.0, 0.5, 6.0]]);
        let x2 = [0.5f32, -1.5];
        let x3 = [2.0f32, 0.0, -1.0];
        let mut out = vec![9.0f32; 3];
        m.vecmat_into(&x2, &mut out);
        assert_eq!(out, m.vecmat(&x2));
        let mut out = vec![9.0f32; 2];
        m.matvec_into(&x3, &mut out);
        assert_eq!(out, m.matvec(&x3));
    }

    #[test]
    fn matmul_bt_equals_matmul_of_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-1.0, 0.5, 2.0]]);
        let b = Matrix::from_rows(&[vec![2.0, 0.0, 1.0], vec![1.0, -1.0, 3.0]]);
        // a · bᵀ via the dedicated entry point vs the generic product.
        assert_eq!(a.matmul_bt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_rows_equal_per_sample_matvec() {
        // The batching contract: row i of A·Wᵀ is exactly W.matvec(row i).
        let mut rng = crate::Rng::new(3);
        let acts = Matrix::from_flat(5, 12, rng.normal_vec(5 * 12, 1.0));
        let w = Matrix::from_flat(7, 12, rng.normal_vec(7 * 12, 1.0));
        let batched = acts.matmul_bt(&w);
        for i in 0..5 {
            assert_eq!(batched.row(i), &w.matvec(acts.row(i))[..], "row {i}");
        }
    }

    #[test]
    #[should_panic(expected = "output dimension mismatch")]
    fn matvec_into_wrong_out_len_panics() {
        Matrix::zeros(2, 3).matvec_into(&[1.0, 2.0, 3.0], &mut [0.0; 3]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn vecmat_is_transpose_matvec() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 4.0], vec![3.0, 1.0]]);
        let x = vec![1.0, 2.0, -1.0];
        assert_eq!(m.vecmat(&x), m.transpose().matvec(&x));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_len_panics() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
