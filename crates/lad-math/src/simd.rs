//! Runtime-dispatched SIMD microkernels behind the GEMM and KV-read paths.
//!
//! The scalar `MR = 8` microkernel in [`crate::gemm`] keeps eight independent
//! accumulators — one per packed A row — and walks the transposed panel one
//! `k` index at a time. That shape is already a vector computation: the eight
//! accumulators are one `f32x8` register, the packed panel chunk at index `l`
//! is one aligned-width load, and the `B` weight is a broadcast. The AVX2
//! kernel here exploits exactly that layout, with two invariants that make it
//! **bit-identical** to the scalar reference:
//!
//! * **Lanes are rows, not `k`.** Each SIMD lane accumulates one output
//!   element sequentially over ascending `l`, so the ascending-`k`
//!   accumulation contract (see [`crate::gemm`]) is preserved per element —
//!   vectorisation reorders *which elements* advance together, never the adds
//!   within one element.
//! * **Separate multiply and add, never FMA.** Rust scalar `acc += x * w`
//!   rounds the product before the add (no floating-point contraction), so the
//!   SIMD kernel uses `_mm256_mul_ps` + `_mm256_add_ps`; a fused
//!   multiply-add would skip the intermediate rounding and drift off the
//!   scalar path by an ULP at a time.
//!
//! Dispatch is three-tiered: a process-wide default from `LAD_GEMM_KERNEL`
//! (`scalar` forces the reference path, `simd`/`auto` use AVX2 when the CPU
//! has it), a thread-local scoped override ([`with_kernel`]) for tests and
//! benches, and a runtime CPUID check that degrades to scalar on machines
//! without AVX2/F16C. The f16 dot kernel ([`dot_f16`]) reorders its
//! accumulation for throughput and is therefore *bounded-error*, not
//! bit-exact — its reference semantics are [`dot_f16_scalar`].

use std::cell::Cell;
use std::sync::OnceLock;

use crate::f16::F16;
use crate::gemm::MR;

/// Column-block width of the SIMD microkernel: four `B` rows share each packed
/// panel load, quartering panel traffic without touching per-element
/// accumulation order.
pub const NR: usize = 4;

/// Which GEMM/KV-read microkernel family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// The portable reference microkernel — always available, and the
    /// bit-exactness oracle for the SIMD f32 path.
    Scalar,
    /// Explicit AVX2 `f32x8` microkernel (plus F16C for fp16 KV reads).
    /// Requests degrade to [`Kernel::Scalar`] when the CPU lacks support.
    Simd,
}

impl Kernel {
    /// Whether this kernel can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            Kernel::Scalar => true,
            Kernel::Simd => simd_supported(),
        }
    }

    /// Static name used for spans and reports.
    pub const fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Simd => "simd",
        }
    }
}

/// Runtime CPU check for the SIMD path (AVX2 + F16C on x86-64), cached after
/// the first query.
#[cfg(target_arch = "x86_64")]
pub fn simd_supported() -> bool {
    static SUPPORTED: OnceLock<bool> = OnceLock::new();
    *SUPPORTED.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("f16c"))
}

/// Runtime CPU check for the SIMD path — always `false` off x86-64.
#[cfg(not(target_arch = "x86_64"))]
pub fn simd_supported() -> bool {
    false
}

/// Process-wide default kernel, read once from `LAD_GEMM_KERNEL`
/// (`scalar` | `simd` | `auto`; unset or unrecognised means `auto`).
fn env_default() -> Kernel {
    static DEFAULT: OnceLock<Kernel> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("LAD_GEMM_KERNEL").as_deref() {
        Ok("scalar") => Kernel::Scalar,
        _ => Kernel::Simd,
    })
}

thread_local! {
    static OVERRIDE: Cell<Option<Kernel>> = const { Cell::new(None) };
}

/// Runs `f` with `kernel` forced for every GEMM/KV-read issued *on this
/// thread*, restoring the previous selection afterwards (panic-safe).
///
/// The batch engine issues all its GEMMs on the stepping thread (pool workers
/// only fan out per-head attention dots), so scoping the override to the
/// calling thread is enough to pin a whole decode to one kernel. Forcing
/// [`Kernel::Simd`] on a CPU without AVX2 silently degrades to scalar.
pub fn with_kernel<R>(kernel: Kernel, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Kernel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(kernel))));
    f()
}

/// The kernel the next GEMM/KV-read on this thread will actually run:
/// thread-local override, else the `LAD_GEMM_KERNEL` default, degraded to
/// [`Kernel::Scalar`] when the requested path is unavailable on this CPU.
pub fn active_kernel() -> Kernel {
    let requested = OVERRIDE.with(|o| o.get()).unwrap_or_else(env_default);
    if requested.available() {
        requested
    } else {
        Kernel::Scalar
    }
}

// ---------------------------------------------------------------------------
// f32 GEMM block microkernel
// ---------------------------------------------------------------------------

/// Computes all `n` output columns for one packed `MR`-row block with the
/// AVX2 microkernel. `panel` is the `MR`-interleaved transposed A block
/// (`MR * k` long), `b_t` the full `n × k` weight matrix, and results land at
/// `c[(i0 + ii) * n + j]` for `ii < mr`.
///
/// Falls back to the scalar block when SIMD is unsupported (callers dispatch
/// via [`active_kernel`], so this is a safety net, not a hot branch).
pub(crate) fn gemm_block_f32_simd(
    i0: usize,
    mr: usize,
    n: usize,
    k: usize,
    panel: &[f32],
    b_t: &[f32],
    c: &mut [f32],
) {
    debug_assert_eq!(panel.len(), MR * k);
    #[cfg(target_arch = "x86_64")]
    if simd_supported() {
        // SAFETY: AVX2 presence just checked; slice lengths are asserted by
        // the caller (`gemm_bt_into`) and re-checked by debug_assert above.
        unsafe { gemm_block_f32_avx2(i0, mr, n, k, panel, b_t, c) };
        return;
    }
    gemm_block_f32_scalar(i0, mr, n, k, panel, b_t, c);
}

/// The scalar reference block — the exact loop the pre-SIMD kernel ran.
pub(crate) fn gemm_block_f32_scalar(
    i0: usize,
    mr: usize,
    n: usize,
    k: usize,
    panel: &[f32],
    b_t: &[f32],
    c: &mut [f32],
) {
    for (j, b_row) in b_t.chunks_exact(k).enumerate().take(n) {
        // MR dot products in lockstep: acc[ii] accumulates c[i0+ii][j]
        // sequentially over ascending l — the bit-exactness contract.
        let mut acc = [0.0f32; MR];
        for (chunk, &w) in panel.chunks_exact(MR).zip(b_row) {
            for (slot, &x) in acc.iter_mut().zip(chunk) {
                *slot += x * w;
            }
        }
        for (ii, &v) in acc[..mr].iter().enumerate() {
            c[(i0 + ii) * n + j] = v;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_block_f32_avx2(
    i0: usize,
    mr: usize,
    n: usize,
    k: usize,
    panel: &[f32],
    b_t: &[f32],
    c: &mut [f32],
) {
    use std::arch::x86_64::*;

    let p = panel.as_ptr();
    let b = b_t.as_ptr();
    let mut j = 0;
    // NR = 4 column block: four B rows stream against one panel walk, so each
    // packed load is reused four times. Per lane (= per output element) the
    // operation sequence is still mul-then-add over ascending l.
    while j + NR <= n {
        let b0 = b.add(j * k);
        let b1 = b.add((j + 1) * k);
        let b2 = b.add((j + 2) * k);
        let b3 = b.add((j + 3) * k);
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        for l in 0..k {
            let a = _mm256_loadu_ps(p.add(l * MR));
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(a, _mm256_set1_ps(*b0.add(l))));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(a, _mm256_set1_ps(*b1.add(l))));
            acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(a, _mm256_set1_ps(*b2.add(l))));
            acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(a, _mm256_set1_ps(*b3.add(l))));
        }
        store_block(acc0, i0, mr, n, j, c);
        store_block(acc1, i0, mr, n, j + 1, c);
        store_block(acc2, i0, mr, n, j + 2, c);
        store_block(acc3, i0, mr, n, j + 3, c);
        j += NR;
    }
    while j < n {
        let b0 = b.add(j * k);
        let mut acc = _mm256_setzero_ps();
        for l in 0..k {
            let a = _mm256_loadu_ps(p.add(l * MR));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(a, _mm256_set1_ps(*b0.add(l))));
        }
        store_block(acc, i0, mr, n, j, c);
        j += 1;
    }
}

/// Scatters one `f32x8` accumulator (lane `ii` = row `i0 + ii`) into column
/// `j` of `c`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn store_block(
    acc: std::arch::x86_64::__m256,
    i0: usize,
    mr: usize,
    n: usize,
    j: usize,
    c: &mut [f32],
) {
    let mut buf = [0.0f32; MR];
    std::arch::x86_64::_mm256_storeu_ps(buf.as_mut_ptr(), acc);
    for (ii, &v) in buf[..mr].iter().enumerate() {
        c[(i0 + ii) * n + j] = v;
    }
}

// ---------------------------------------------------------------------------
// f16 KV dot kernels
// ---------------------------------------------------------------------------

/// Dot product of an `f32` query against an fp16-encoded key, dispatched
/// through [`active_kernel`].
///
/// The SIMD path converts eight halves at a time with F16C and keeps four
/// independent accumulators, so it **reorders the summation** relative to
/// [`dot_f16_scalar`] — this kernel is *bounded-error* (see the error-bound
/// tests), not bit-exact. The scalar path is the reference semantics.
///
/// # Panics
///
/// Panics if `q.len() != bits.len()`.
pub fn dot_f16(q: &[f32], bits: &[u16]) -> f32 {
    assert_eq!(q.len(), bits.len(), "dot_f16: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if active_kernel() == Kernel::Simd {
        // SAFETY: Kernel::Simd is only active when AVX2+F16C are present.
        return unsafe { dot_f16_avx2(q, bits) };
    }
    dot_f16_scalar(q, bits)
}

/// Reference fp16 dot: decode each half exactly to `f32`, then multiply-add
/// sequentially in ascending index order — the same shape as
/// [`crate::vector::dot`] over a decoded key.
///
/// # Panics
///
/// Panics if `q.len() != bits.len()`.
pub fn dot_f16_scalar(q: &[f32], bits: &[u16]) -> f32 {
    assert_eq!(q.len(), bits.len(), "dot_f16: length mismatch");
    let mut acc = 0.0f32;
    for (&x, &b) in q.iter().zip(bits) {
        acc += x * F16::from_bits(b).to_f32();
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,f16c")]
unsafe fn dot_f16_avx2(q: &[f32], bits: &[u16]) -> f32 {
    use std::arch::x86_64::*;

    let n = q.len();
    let qp = q.as_ptr();
    let bp = bits.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 32 <= n {
        let h0 = _mm256_cvtph_ps(_mm_loadu_si128(bp.add(i).cast()));
        let h1 = _mm256_cvtph_ps(_mm_loadu_si128(bp.add(i + 8).cast()));
        let h2 = _mm256_cvtph_ps(_mm_loadu_si128(bp.add(i + 16).cast()));
        let h3 = _mm256_cvtph_ps(_mm_loadu_si128(bp.add(i + 24).cast()));
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(h0, _mm256_loadu_ps(qp.add(i))));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(h1, _mm256_loadu_ps(qp.add(i + 8))));
        acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(h2, _mm256_loadu_ps(qp.add(i + 16))));
        acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(h3, _mm256_loadu_ps(qp.add(i + 24))));
        i += 32;
    }
    let mut acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
    while i + 8 <= n {
        let h = _mm256_cvtph_ps(_mm_loadu_si128(bp.add(i).cast()));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(h, _mm256_loadu_ps(qp.add(i))));
        i += 8;
    }
    let mut buf = [0.0f32; 8];
    _mm256_storeu_ps(buf.as_mut_ptr(), acc);
    let mut sum = buf.iter().sum::<f32>();
    while i < n {
        sum += *qp.add(i) * F16::from_bits(*bp.add(i)).to_f32();
        i += 1;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn kernel_names_and_availability() {
        assert!(Kernel::Scalar.available());
        assert_eq!(Kernel::Scalar.name(), "scalar");
        assert_eq!(Kernel::Simd.name(), "simd");
        // active_kernel never returns an unavailable kernel.
        assert!(active_kernel().available());
    }

    #[test]
    fn with_kernel_scopes_and_restores() {
        let outer = active_kernel();
        with_kernel(Kernel::Scalar, || {
            assert_eq!(active_kernel(), Kernel::Scalar);
            with_kernel(Kernel::Simd, || {
                // Degrades to scalar off-x86; either way it is available.
                assert!(active_kernel().available());
            });
            assert_eq!(active_kernel(), Kernel::Scalar);
        });
        assert_eq!(active_kernel(), outer);
    }

    #[test]
    fn with_kernel_restores_on_panic() {
        let outer = active_kernel();
        let caught = std::panic::catch_unwind(|| {
            with_kernel(Kernel::Scalar, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(active_kernel(), outer);
    }

    #[test]
    fn f16_dot_simd_is_close_to_scalar() {
        let mut rng = Rng::new(41);
        for n in [0usize, 1, 7, 8, 31, 32, 33, 64, 257] {
            let q = rng.normal_vec(n, 1.0);
            let key = rng.normal_vec(n, 1.0);
            let bits: Vec<u16> = key.iter().map(|&v| F16::from_f32(v).to_bits()).collect();
            let reference = dot_f16_scalar(&q, &bits);
            let simd = with_kernel(Kernel::Simd, || dot_f16(&q, &bits));
            let scalar = with_kernel(Kernel::Scalar, || dot_f16(&q, &bits));
            assert_eq!(scalar, reference, "scalar dispatch must be the reference");
            // Reordered f32 summation over n terms: bound the drift by a
            // generous multiple of n * eps * sum(|terms|).
            let magnitude: f32 = q
                .iter()
                .zip(&bits)
                .map(|(&x, &b)| (x * F16::from_bits(b).to_f32()).abs())
                .sum();
            let bound = f32::EPSILON * (n as f32 + 1.0) * (magnitude + 1.0);
            assert!(
                (simd - reference).abs() <= bound,
                "n={n} simd={simd} ref={reference} bound={bound}"
            );
        }
    }

    #[test]
    fn f16_dot_decodes_exact_values() {
        // Powers of two and small integers are exact in fp16, and summation
        // of exact small integers is exact in f32 in any order: both kernels
        // must agree exactly here.
        let q: Vec<f32> = (0..100).map(|i| (i % 7) as f32).collect();
        let bits: Vec<u16> = (0..100)
            .map(|i| F16::from_f32((i % 5) as f32).to_bits())
            .collect();
        let reference = dot_f16_scalar(&q, &bits);
        for kernel in [Kernel::Scalar, Kernel::Simd] {
            let got = with_kernel(kernel, || dot_f16(&q, &bits));
            assert_eq!(got, reference, "{}", kernel.name());
        }
    }
}
