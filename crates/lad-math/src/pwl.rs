//! Piecewise-linear approximation of `exp` on `(-inf, 0]` (paper Sec. III-A).
//!
//! The domain is non-uniformly partitioned into sub-intervals, shorter near 0
//! where `exp` curves fastest; the farthest interval extends to `-inf` and is
//! pinned to the zero function (`a = b = 0`). Coefficients of the remaining
//! intervals are obtained by *closed-form* least-squares optimisation:
//! minimising `∫ (a·x + b − eˣ)² dx` over each interval has an analytic
//! solution because the moments of `x` and `eˣ` integrate in closed form.
//!
//! Interval indices follow the paper's convention: index 0 is the interval
//! farthest from zero (`(-inf, b₀]`), the last index is the interval touching
//! zero. The default partition is the paper's example:
//! `(-inf,-10], [-10,-6], [-6,-3], [-3,-1], [-1,0]`.

use serde::{Deserialize, Serialize};

/// One linear segment `y = a·x + b` valid on `[lo, hi]` (`lo` may be `-inf`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Lower bound of the interval (may be `-inf`).
    pub lo: f64,
    /// Upper bound of the interval.
    pub hi: f64,
    /// Slope.
    pub a: f64,
    /// Intercept.
    pub b: f64,
}

impl Segment {
    /// Evaluates the segment's linear function at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.a * x + self.b
    }
}

/// Least-squares linear fit of `eˣ` on the finite interval `[lo, hi]`.
///
/// Minimises `∫_lo^hi (a·x + b − eˣ)² dx`. The normal equations use the
/// closed-form integrals `∫eˣ = eˣ` and `∫x·eˣ = (x−1)eˣ`.
///
/// # Panics
///
/// Panics if `lo >= hi` or either bound is non-finite.
pub fn fit_exp_segment(lo: f64, hi: f64) -> Segment {
    assert!(
        lo.is_finite() && hi.is_finite(),
        "fit: bounds must be finite"
    );
    assert!(lo < hi, "fit: lo must be < hi");
    let s0 = hi - lo;
    let s1 = (hi * hi - lo * lo) / 2.0;
    let s2 = (hi * hi * hi - lo * lo * lo) / 3.0;
    let t0 = hi.exp() - lo.exp();
    let t1 = (hi - 1.0) * hi.exp() - (lo - 1.0) * lo.exp();
    // Solve [s2 s1; s1 s0] [a b]ᵀ = [t1 t0]ᵀ.
    let det = s2 * s0 - s1 * s1;
    let a = (t1 * s0 - t0 * s1) / det;
    let b = (s2 * t0 - s1 * t1) / det;
    Segment { lo, hi, a, b }
}

/// A complete piecewise-linear approximation of `exp` on `(-inf, 0]`.
///
/// # Example
///
/// ```
/// use lad_math::PwlExp;
///
/// let pwl = PwlExp::paper_default();
/// assert_eq!(pwl.num_intervals(), 5);
/// // -7.95 falls in interval 1 ([-10, -6]) — the paper's Fig. 3 step 5.
/// assert_eq!(pwl.interval_of(-7.95), 1);
/// // The farthest interval approximates exp by zero.
/// assert_eq!(pwl.eval(-50.0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PwlExp {
    /// Finite boundaries `b₀ < b₁ < … < b_{I-2} = 0` separating the intervals.
    /// Interval `0` is `(-inf, boundaries[0]]`; interval `i > 0` is
    /// `[boundaries[i-1], boundaries[i]]`.
    boundaries: Vec<f64>,
    segments: Vec<Segment>,
}

impl PwlExp {
    /// The paper's example partition:
    /// `(-inf,-10], [-10,-6], [-6,-3], [-3,-1], [-1,0]`.
    ///
    /// This is the 5-interval partition of the paper's worked example (Fig. 3)
    /// — illustrative, not accuracy-optimal. Deployments use
    /// [`PwlExp::accurate_default`].
    pub fn paper_default() -> PwlExp {
        PwlExp::with_boundaries(&[-10.0, -6.0, -3.0, -1.0, 0.0])
            .expect("paper default boundaries are valid")
    }

    /// The 16-interval partition used for accuracy-critical decoding.
    ///
    /// The hardware stores the mode as a `uint4` (paper Sec. IV-C), so at most
    /// 16 intervals are representable. Boundaries follow `x_k = c·ln(k/K)`
    /// with `c = 3`, which equalises the per-interval least-squares error of
    /// `exp` — this meets the paper's "< 1e-6 MSE to softmax results" claim
    /// (validated in `lad_math::softmax` tests).
    pub fn accurate_default() -> PwlExp {
        const INTERVALS: usize = 16;
        let k_norm = INTERVALS as f64 - 0.13;
        let mut bounds: Vec<f64> = (1..INTERVALS)
            .map(|k| 3.0 * (k as f64 / k_norm).ln())
            .collect();
        bounds.push(0.0);
        PwlExp::with_boundaries(&bounds).expect("accurate default boundaries are valid")
    }

    /// Builds a PWL approximation from explicit finite boundaries.
    ///
    /// `boundaries` must be strictly increasing and end at `0.0`; it yields
    /// `boundaries.len()` intervals (the first stretching to `-inf`).
    ///
    /// # Errors
    ///
    /// Returns an error string if the boundaries are empty, not strictly
    /// increasing, not finite, or do not end at zero.
    pub fn with_boundaries(boundaries: &[f64]) -> Result<PwlExp, String> {
        if boundaries.is_empty() {
            return Err("at least one boundary required".to_string());
        }
        if boundaries.iter().any(|b| !b.is_finite()) {
            return Err("boundaries must be finite".to_string());
        }
        if boundaries.windows(2).any(|w| w[0] >= w[1]) {
            return Err("boundaries must be strictly increasing".to_string());
        }
        if *boundaries.last().unwrap() != 0.0 {
            return Err("last boundary must be 0".to_string());
        }
        let mut segments = Vec::with_capacity(boundaries.len());
        // Interval 0: (-inf, boundaries[0]], pinned to zero.
        segments.push(Segment {
            lo: f64::NEG_INFINITY,
            hi: boundaries[0],
            a: 0.0,
            b: 0.0,
        });
        for w in boundaries.windows(2) {
            segments.push(fit_exp_segment(w[0], w[1]));
        }
        Ok(PwlExp {
            boundaries: boundaries.to_vec(),
            segments,
        })
    }

    /// A geometric partition with `n` intervals: boundaries at
    /// `-(r^0), -(r^1), …` scaled to reach `farthest`, denser near zero.
    /// Useful for interval-count ablations.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `farthest >= 0`.
    pub fn geometric(n: usize, farthest: f64) -> PwlExp {
        assert!(n >= 2, "geometric: need at least 2 intervals");
        assert!(farthest < 0.0, "geometric: farthest bound must be negative");
        // n intervals need n finite boundaries ending at 0; generate
        // n-1 negative boundaries geometrically spaced from `farthest` to ~0.
        let ratio = 2.0f64;
        let mut bounds: Vec<f64> = (0..n - 1)
            .map(|i| farthest / ratio.powi(i as i32))
            .collect();
        bounds.push(0.0);
        PwlExp::with_boundaries(&bounds).expect("geometric boundaries are valid")
    }

    /// Number of intervals `I` (including the unbounded farthest interval).
    pub fn num_intervals(&self) -> usize {
        self.segments.len()
    }

    /// The finite boundaries (excluding `-inf`), ending at 0.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// The fitted segments, farthest interval first.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Index of the interval containing `x` (`x` is clamped into `(-inf, 0]`:
    /// scores above the running maximum cannot occur, but fp slack maps to the
    /// last interval).
    pub fn interval_of(&self, x: f64) -> usize {
        if x >= 0.0 {
            return self.segments.len() - 1;
        }
        // boundaries are sorted ascending; find the first boundary >= x.
        match self
            .boundaries
            .binary_search_by(|b| b.partial_cmp(&x).expect("finite"))
        {
            Ok(idx) => idx + 1.min(self.segments.len() - 1 - idx),
            Err(idx) => idx,
        }
        .min(self.segments.len() - 1)
    }

    /// Linear coefficients `(a, b)` of interval `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_intervals()`.
    pub fn coeffs(&self, index: usize) -> (f64, f64) {
        let seg = &self.segments[index];
        (seg.a, seg.b)
    }

    /// Bounds `(lo, hi)` of interval `index` (`lo` of interval 0 is `-inf`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_intervals()`.
    pub fn interval_bounds(&self, index: usize) -> (f64, f64) {
        let seg = &self.segments[index];
        (seg.lo, seg.hi)
    }

    /// Evaluates the PWL approximation of `eˣ` at `x ≤ 0`.
    pub fn eval(&self, x: f64) -> f64 {
        self.segments[self.interval_of(x)].eval(x.min(0.0))
    }

    /// Mean squared error of the approximation against true `exp`, sampled
    /// uniformly with `samples` points over `[lo, 0]`.
    pub fn mse(&self, lo: f64, samples: usize) -> f64 {
        assert!(lo < 0.0 && samples > 1);
        let mut acc = 0.0;
        for i in 0..samples {
            let x = lo + (0.0 - lo) * (i as f64) / ((samples - 1) as f64);
            let err = self.eval(x) - x.exp();
            acc += err * err;
        }
        acc / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_is_exact_for_linearisable_targets() {
        // Over a tiny interval, exp is nearly linear: the fit must be close
        // (residual scales with the interval width squared).
        let seg = fit_exp_segment(-0.01, 0.0);
        assert!((seg.eval(-0.005) - (-0.005f64).exp()).abs() < 1e-4);
    }

    #[test]
    fn fit_normal_equations_minimise_error() {
        // Perturbing the fitted coefficients must not decrease the L2 error.
        let (lo, hi) = (-3.0, -1.0);
        let seg = fit_exp_segment(lo, hi);
        let l2 = |a: f64, b: f64| {
            let n = 2000;
            (0..n)
                .map(|i| {
                    let x = lo + (hi - lo) * (i as f64) / ((n - 1) as f64);
                    let e = a * x + b - x.exp();
                    e * e
                })
                .sum::<f64>()
        };
        let base = l2(seg.a, seg.b);
        for (da, db) in [(1e-3, 0.0), (-1e-3, 0.0), (0.0, 1e-3), (0.0, -1e-3)] {
            assert!(l2(seg.a + da, seg.b + db) >= base - 1e-9);
        }
    }

    #[test]
    fn paper_default_shape() {
        let pwl = PwlExp::paper_default();
        assert_eq!(pwl.num_intervals(), 5);
        assert_eq!(pwl.boundaries(), &[-10.0, -6.0, -3.0, -1.0, 0.0]);
        let (a0, b0) = pwl.coeffs(0);
        assert_eq!((a0, b0), (0.0, 0.0));
        // The last interval must have positive slope (exp is increasing).
        assert!(pwl.coeffs(4).0 > 0.0);
    }

    #[test]
    fn interval_of_matches_paper_examples() {
        let pwl = PwlExp::paper_default();
        assert_eq!(pwl.interval_of(-50.0), 0);
        assert_eq!(pwl.interval_of(-7.95), 1); // Fig.3 step 5
        assert_eq!(pwl.interval_of(-5.34), 2); // Fig.3 step 4
        assert_eq!(pwl.interval_of(-2.0), 3);
        assert_eq!(pwl.interval_of(-0.5), 4);
        assert_eq!(pwl.interval_of(0.0), 4);
        // Clamp above zero.
        assert_eq!(pwl.interval_of(0.25), 4);
    }

    #[test]
    fn interval_of_boundary_points_are_consistent() {
        let pwl = PwlExp::paper_default();
        for (i, &b) in pwl.boundaries().iter().enumerate() {
            let idx = pwl.interval_of(b);
            // A boundary belongs to one of its two adjacent intervals.
            assert!(idx == i || idx == i + 1, "boundary {b} -> {idx}");
            // And evaluation there must be finite and near exp(b) — the
            // coarse 5-interval partition is accurate to ~0.06 absolute.
            let y = pwl.eval(b);
            assert!((y - b.exp()).abs() < 0.07, "boundary {b}: {y}");
        }
    }

    #[test]
    fn eval_accuracy_near_zero() {
        // The coarse example partition is accurate to a few percent near 0;
        // the accurate partition is an order of magnitude tighter.
        let coarse = PwlExp::paper_default();
        let fine = PwlExp::accurate_default();
        for i in 0..100 {
            let x = -(i as f64) / 99.0;
            assert!((coarse.eval(x) - x.exp()).abs() < 0.07, "coarse x={x}");
            assert!((fine.eval(x) - x.exp()).abs() < 0.004, "fine x={x}");
        }
    }

    #[test]
    fn mse_is_small() {
        assert!(PwlExp::paper_default().mse(-12.0, 4000) < 2e-3);
        assert!(PwlExp::accurate_default().mse(-12.0, 4000) < 2e-6);
    }

    #[test]
    fn accurate_default_shape() {
        let pwl = PwlExp::accurate_default();
        assert_eq!(pwl.num_intervals(), 16);
        assert_eq!(*pwl.boundaries().last().unwrap(), 0.0);
        // Fits into the uint4 mode field of the hardware's G tensor.
        assert!(pwl.num_intervals() <= 16);
        // Boundaries strictly increasing, tail reaching past -8.
        assert!(pwl.boundaries()[0] < -8.0);
    }

    #[test]
    fn finer_partition_reduces_mse() {
        let coarse = PwlExp::with_boundaries(&[-8.0, -4.0, 0.0]).unwrap();
        let fine =
            PwlExp::with_boundaries(&[-8.0, -6.0, -4.0, -3.0, -2.0, -1.0, -0.5, 0.0]).unwrap();
        assert!(fine.mse(-10.0, 4000) < coarse.mse(-10.0, 4000));
    }

    #[test]
    fn geometric_partition_valid() {
        for n in 2..10 {
            let pwl = PwlExp::geometric(n, -12.0);
            assert_eq!(pwl.num_intervals(), n);
            assert_eq!(*pwl.boundaries().last().unwrap(), 0.0);
        }
    }

    #[test]
    fn invalid_boundaries_rejected() {
        assert!(PwlExp::with_boundaries(&[]).is_err());
        assert!(PwlExp::with_boundaries(&[-1.0, -2.0, 0.0]).is_err());
        assert!(PwlExp::with_boundaries(&[-2.0, -1.0]).is_err());
        assert!(PwlExp::with_boundaries(&[f64::NAN, 0.0]).is_err());
    }

    #[test]
    fn eval_clamps_positive_inputs() {
        let pwl = PwlExp::paper_default();
        assert_eq!(pwl.eval(0.5), pwl.eval(0.0));
    }
}
