//! Summary statistics used across the evaluation harness.
//!
//! The paper reports geometric-mean speedups and energy-efficiency ratios; the
//! locality analysis (Fig. 2) needs histograms and top-k probabilities. This
//! module centralises those primitives.

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean; 0.0 for empty input.
///
/// # Panics
///
/// Panics if any value is non-positive (geomeans of ratios require positive
/// inputs).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geomean: all values must be positive"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Population variance; 0.0 for fewer than two values.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Linear-interpolated quantile, `q` in `[0, 1]`.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile: empty input");
    assert!((0.0..=1.0).contains(&q), "quantile: q out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A fixed-bin histogram over `[lo, hi)` with overflow/underflow folded into
/// the edge bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram: need at least one bin");
        assert!(lo < hi, "histogram: lo must be < hi");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Records one observation (out-of-range values clamp to edge bins).
    pub fn record(&mut self, value: f64) {
        let bins = self.counts.len();
        let idx = if value < self.lo {
            0
        } else if value >= self.hi {
            bins - 1
        } else {
            (((value - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations in the bin containing the most observations.
    pub fn top1_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.iter().max().unwrap() as f64 / self.total as f64
    }

    /// Fraction of observations in the two most-populated bins combined.
    pub fn top2_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut sorted: Vec<u64> = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        (sorted[0] + sorted.get(1).copied().unwrap_or(0)) as f64 / self.total as f64
    }
}

/// Top-1 and top-2 probabilities of a discrete count vector (the paper's
/// Fig. 2(b) metric over per-position interval counters).
pub fn top1_top2(counts: &[u64]) -> (f64, f64) {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return (0.0, 0.0);
    }
    let mut sorted = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top1 = sorted[0] as f64 / total as f64;
    let top2 = (sorted[0] + sorted.get(1).copied().unwrap_or(0)) as f64 / total as f64;
    (top1, top2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn geomean_of_ratios() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[10.0]) - 10.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn quantiles() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.5, 1.5, 2.5, 2.6, 2.7, 11.0, -3.0] {
            h.record(v);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.counts()[1], 3); // 2.5, 2.6, 2.7
        assert_eq!(h.counts()[4], 1); // overflow clamps
        assert_eq!(h.counts()[0], 3); // 0.5, 1.5, underflow
        assert!((h.top1_fraction() - 3.0 / 7.0).abs() < 1e-12);
        assert!((h.top2_fraction() - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn top1_top2_counts() {
        let (t1, t2) = top1_top2(&[10, 80, 5, 5]);
        assert!((t1 - 0.8).abs() < 1e-12);
        assert!((t2 - 0.9).abs() < 1e-12);
        assert_eq!(top1_top2(&[0, 0]), (0.0, 0.0));
        assert_eq!(top1_top2(&[7]), (1.0, 1.0));
    }
}
