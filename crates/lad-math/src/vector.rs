//! Dense vector kernels over `f32` slices.
//!
//! These are the primitive operations the VPU (vector processing unit) in the
//! LAD accelerator performs — dot products (`DP`), element-wise multiplication
//! (`EM`) and scalar scaling (`S`) — plus the norms and cosine similarity the
//! directional-center extraction (paper Alg. 1) relies on.

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
///
/// # Example
///
/// ```
/// assert_eq!(lad_math::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a vector.
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine of the angle between two vectors.
///
/// Returns 0.0 when either vector has zero norm — a zero key has no direction
/// and must never be treated as collinear with anything.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// `out += scale * x` (the BLAS `axpy`).
///
/// # Panics
///
/// Panics if `out.len() != x.len()`.
pub fn axpy(out: &mut [f32], scale: f32, x: &[f32]) {
    assert_eq!(out.len(), x.len(), "axpy: length mismatch");
    for (o, v) in out.iter_mut().zip(x) {
        *o += scale * v;
    }
}

/// Element-wise product, writing into a fresh vector (the VPU `EM` op).
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
pub fn elementwise_mul(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "elementwise_mul: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// `scale * x` into a fresh vector (the VPU `S` op).
pub fn scale(x: &[f32], factor: f32) -> Vec<f32> {
    x.iter().map(|v| v * factor).collect()
}

/// In-place `x *= factor`.
pub fn scale_in_place(x: &mut [f32], factor: f32) {
    for v in x.iter_mut() {
        *v *= factor;
    }
}

/// Element-wise sum into a fresh vector.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b` into a fresh vector.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Maximum absolute element-wise difference between two vectors.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Relative L2 distance `||a - b|| / max(||b||, eps)`.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
pub fn relative_l2(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "relative_l2: length mismatch");
    let mut num = 0.0f32;
    let mut den = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        num += (x - y) * (x - y);
        den += y * y;
    }
    num.sqrt() / den.sqrt().max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm_is_euclidean() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_range_and_degenerate() {
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-3.0, 0.0]) + 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut out = vec![1.0, 1.0];
        axpy(&mut out, 2.0, &[3.0, -1.0]);
        assert_eq!(out, vec![7.0, -1.0]);
    }

    #[test]
    fn elementwise_and_scale() {
        assert_eq!(elementwise_mul(&[1.0, 2.0], &[3.0, 4.0]), vec![3.0, 8.0]);
        assert_eq!(scale(&[1.0, -2.0], 0.5), vec![0.5, -1.0]);
        let mut v = vec![2.0, 4.0];
        scale_in_place(&mut v, 0.25);
        assert_eq!(v, vec![0.5, 1.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [1.5f32, -2.0, 3.25];
        let b = [0.5f32, 2.0, -1.25];
        assert_eq!(sub(&add(&a, &b), &b), a.to_vec());
    }

    #[test]
    fn distances() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
        assert!(relative_l2(&[1.0, 0.0], &[1.0, 0.0]) < 1e-9);
        assert!((relative_l2(&[2.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
    }
}
