//! Numerical substrate for the LAD reproduction.
//!
//! This crate provides the low-level numerical building blocks that the rest of
//! the workspace is built on:
//!
//! * [`mod@f16`] — a software half-precision float matching the fp16 number format
//!   the LAD accelerator's computation units use (IEEE 754 binary16 storage with
//!   round-to-nearest-even conversion).
//! * [`vector`] — dense vector kernels (dot products, norms, cosine similarity,
//!   scaled accumulation) over `f32` slices.
//! * [`matrix`] — a row-major dense [`matrix::Matrix`] with the vector-matrix
//!   and outer-product operations the intermediate caches need.
//! * [`gemm`] — cache-blocked matrix-matrix kernels with a bit-exact
//!   ascending-`k` accumulation contract, so batched projections agree with
//!   per-sample `matvec` calls bit for bit.
//! * [`simd`] — runtime-dispatched AVX2 microkernels behind the same
//!   interfaces (`LAD_GEMM_KERNEL`, [`with_kernel`]): the f32 path is
//!   bit-identical to scalar, the fp16 KV dot is bounded-error.
//! * [`quant`] — int8 weight quantisation with per-output-row scales and the
//!   `W8A32` GEMM/matvec kernels that consume it.
//! * [`pwl`] — piecewise-linear approximation of `exp` on `(-inf, 0]` with
//!   closed-form least-squares segment fitting (paper Sec. III-A).
//! * [`softmax`] — numerically stable softmax and its PWL counterpart.
//! * [`rng`] — a tiny deterministic PRNG (SplitMix64 / xoshiro256**) so the
//!   substrate stays dependency-free while experiments remain reproducible.
//! * [`stats`] — summary statistics used throughout the evaluation (geometric
//!   mean, quantiles, histograms).
//!
//! # Example
//!
//! ```
//! use lad_math::pwl::PwlExp;
//!
//! let pwl = PwlExp::accurate_default();
//! let y = pwl.eval(-0.5);
//! assert!((y - (-0.5f64).exp()).abs() < 0.002);
//! ```

pub mod f16;
pub mod gemm;
pub mod matrix;
pub mod pwl;
pub mod quant;
pub mod rng;
pub mod simd;
pub mod softmax;
pub mod stats;
pub mod vector;

pub use f16::F16;
pub use matrix::Matrix;
pub use pwl::{PwlExp, Segment};
pub use quant::Q8Matrix;
pub use rng::Rng;
pub use simd::{with_kernel, Kernel};
