//! Cache-blocked GEMM kernels with a bit-exact accumulation contract.
//!
//! Decoding is memory-bandwidth bound: a per-sample `matvec` streams the full
//! weight matrix once per sample per step, so at batch `b` every linear layer
//! pays `b×` the weight traffic for the same arithmetic per byte. These
//! kernels compute whole `batch × out` panels per weight fetch instead — the
//! step-synchronous batch engine stacks the per-sample activation vectors
//! into an `m × k` matrix `A` and runs one `C = A · Bᵀ` product per layer.
//!
//! **Accumulation contract.** Every output element is a dot product
//! accumulated *sequentially in ascending `k` order* into a single
//! accumulator:
//!
//! ```text
//! c[i][j] = ((a[i][0]·b[j][0] + a[i][1]·b[j][1]) + a[i][2]·b[j][2]) + …
//! ```
//!
//! That is exactly the order [`crate::Matrix::matvec`] (a row-wise
//! [`crate::vector::dot`]) uses, so a batched projection is **bit-identical**
//! to `batch` separate per-sample `matvec` calls, and the blocked kernel is
//! bit-identical to a naive triple loop. Blocking therefore only reorders
//! *which elements* are computed when (i/j tiling plus a transposed,
//! `MR`-interleaved A panel that makes the micro-kernel's inner loop a
//! contiguous `chunks_exact` walk) — never the adds within one element.
//! The differential harness (`tests/differential.rs`) and the lad-math
//! proptests pin this contract down.
//!
//! **Kernel dispatch.** The inner block microkernel is selected per call via
//! [`crate::simd::active_kernel`]: the scalar reference, or an explicit AVX2
//! `f32x8` path ([`crate::simd`]) whose lanes run across the `MR` packed rows
//! so each output element still accumulates sequentially in ascending `k` —
//! the two are bit-identical, and tests below plus the differential grid pin
//! that.

use crate::simd::{self, Kernel};

/// Register-block width over the `m` (batch/row) dimension: the micro-kernel
/// keeps `MR` accumulators live and re-reads each `B` row once per `MR` rows
/// of `A`, so a batch of ≤ `MR` samples streams the weights exactly once.
pub const MR: usize = 8;

/// `C = A · Bᵀ` where `a` is `m × k` row-major, `b_t` is `n × k` row-major
/// (each of its rows is one *output* row of weights — the natural layout of a
/// `Linear`'s `out × in` matrix), and `c` is `m × n` row-major.
///
/// Allocates its packing scratch internally; hot paths should hold a
/// [`GemmScratch`] and call [`gemm_bt_into`].
///
/// # Panics
///
/// Panics if any slice length disagrees with `m`, `n`, `k`.
pub fn gemm_bt(m: usize, n: usize, k: usize, a: &[f32], b_t: &[f32], c: &mut [f32]) {
    gemm_bt_into(m, n, k, a, b_t, c, &mut GemmScratch::default());
}

/// Reusable packing buffer for [`gemm_bt_into`]: holds the transposed,
/// `MR`-interleaved A panel so steady-state GEMM calls never allocate.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    panel: Vec<f32>,
}

/// How much larger than the current need the panel's retained capacity may
/// grow before [`GemmScratch::prepare`] releases it. A hysteresis factor
/// (rather than shrinking to fit every call) keeps steady-state same-shape
/// call sequences allocation-free while stopping one peak-`k` call from
/// pinning its high-water allocation across a stream of small shapes.
const SHRINK_FACTOR: usize = 4;

impl GemmScratch {
    /// Clears and sizes the panel for a `k`-deep block, shrinking the backing
    /// allocation when a smaller `k` follows a much larger one.
    pub(crate) fn prepare(&mut self, k: usize) -> &mut [f32] {
        let need = MR * k;
        self.panel.clear();
        if self.panel.capacity() > SHRINK_FACTOR * need {
            self.panel.shrink_to(need);
        }
        self.panel.resize(need, 0.0);
        &mut self.panel[..]
    }

    /// Current backing capacity in elements (observability for the
    /// shrink-regression tests).
    pub fn panel_capacity(&self) -> usize {
        self.panel.capacity()
    }
}

/// Packs the `mr`-row block of `a` starting at row `i0` transposed and
/// `MR`-interleaved: `panel[l·MR + ii] = a[i0+ii][l]`. The microkernels then
/// walk it one contiguous `MR`-vector per `k` index.
pub(crate) fn pack_panel(panel: &mut [f32], a: &[f32], i0: usize, mr: usize, k: usize) {
    for (l, chunk) in panel.chunks_exact_mut(MR).enumerate().take(k) {
        for (ii, slot) in chunk[..mr].iter_mut().enumerate() {
            *slot = a[(i0 + ii) * k + l];
        }
    }
}

/// Allocation-free [`gemm_bt`]: packs row blocks of `a` into `scratch` and
/// re-uses its buffer across calls.
///
/// # Panics
///
/// Panics if any slice length disagrees with `m`, `n`, `k`.
pub fn gemm_bt_into(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b_t: &[f32],
    c: &mut [f32],
    scratch: &mut GemmScratch,
) {
    assert_eq!(a.len(), m * k, "gemm_bt: A size mismatch");
    assert_eq!(b_t.len(), n * k, "gemm_bt: Bᵀ size mismatch");
    assert_eq!(c.len(), m * n, "gemm_bt: C size mismatch");
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let kernel = simd::active_kernel();
    let panel = scratch.prepare(k);

    let mut i0 = 0;
    while i0 < m {
        let mr = MR.min(m - i0);
        pack_panel(panel, a, i0, mr, k);
        match kernel {
            Kernel::Simd => simd::gemm_block_f32_simd(i0, mr, n, k, panel, b_t, c),
            Kernel::Scalar => simd::gemm_block_f32_scalar(i0, mr, n, k, panel, b_t, c),
        }
        i0 += mr;
    }
}

/// Reference `C = A · Bᵀ` triple loop (one sequential dot per element) — the
/// oracle the blocked kernel must match bit-for-bit. Kept public so tests
/// and benches outside this crate can pin the equivalence too.
pub fn gemm_bt_naive(m: usize, n: usize, k: usize, a: &[f32], b_t: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_bt_naive: A size mismatch");
    assert_eq!(b_t.len(), n * k, "gemm_bt_naive: Bᵀ size mismatch");
    assert_eq!(c.len(), m * n, "gemm_bt_naive: C size mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[i * k + l] * b_t[j * k + l];
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn random(len: usize, seed: u64) -> Vec<f32> {
        Rng::new(seed).normal_vec(len, 1.0)
    }

    #[test]
    fn blocked_equals_naive_bitwise() {
        for (m, n, k, seed) in [
            (1, 1, 1, 1u64),
            (3, 5, 7, 2),
            (8, 8, 8, 3),
            (9, 17, 33, 4),
            (16, 4, 64, 5),
            (2, 256, 128, 6),
        ] {
            let a = random(m * k, seed);
            let b_t = random(n * k, seed + 100);
            let mut blocked = vec![0.0; m * n];
            let mut naive = vec![0.0; m * n];
            gemm_bt(m, n, k, &a, &b_t, &mut blocked);
            gemm_bt_naive(m, n, k, &a, &b_t, &mut naive);
            assert_eq!(blocked, naive, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn batched_rows_equal_per_sample_dots() {
        // The tentpole contract: row i of the GEMM equals the per-sample
        // matvec (sequential dots) of sample i, bit for bit.
        let (m, n, k) = (5, 12, 31);
        let a = random(m * k, 7);
        let b_t = random(n * k, 8);
        let mut c = vec![0.0; m * n];
        gemm_bt(m, n, k, &a, &b_t, &mut c);
        for i in 0..m {
            for j in 0..n {
                let dot = crate::vector::dot(&a[i * k..(i + 1) * k], &b_t[j * k..(j + 1) * k]);
                assert_eq!(c[i * n + j], dot, "({i},{j})");
            }
        }
    }

    #[test]
    fn simd_and_scalar_kernels_are_bit_identical() {
        use crate::simd::{with_kernel, Kernel};
        // Shapes chosen to exercise every microkernel edge: partial MR
        // blocks, NR tails, k = 1, and the MLP-dominant bench shape.
        for (m, n, k, seed) in [
            (1, 1, 1, 1u64),
            (3, 5, 7, 2),
            (8, 8, 8, 3),
            (9, 17, 33, 4),
            (16, 4, 64, 5),
            (2, 256, 128, 6),
            (7, 3, 1, 7),
            (8, 512, 256, 8),
        ] {
            let a = random(m * k, seed);
            let b_t = random(n * k, seed + 200);
            let mut scalar = vec![0.0; m * n];
            let mut simd = vec![0.0; m * n];
            let mut naive = vec![0.0; m * n];
            with_kernel(Kernel::Scalar, || gemm_bt(m, n, k, &a, &b_t, &mut scalar));
            with_kernel(Kernel::Simd, || gemm_bt(m, n, k, &a, &b_t, &mut simd));
            gemm_bt_naive(m, n, k, &a, &b_t, &mut naive);
            assert_eq!(scalar, naive, "scalar vs naive m={m} n={n} k={k}");
            assert_eq!(simd, naive, "simd vs naive m={m} n={n} k={k}");
        }
    }

    #[test]
    fn scratch_is_reused_without_reallocation() {
        let mut scratch = GemmScratch::default();
        let (m, n, k) = (4, 6, 32);
        let a = random(m * k, 9);
        let b_t = random(n * k, 10);
        let mut c = vec![0.0; m * n];
        gemm_bt_into(m, n, k, &a, &b_t, &mut c, &mut scratch);
        let cap = scratch.panel.capacity();
        for _ in 0..5 {
            gemm_bt_into(m, n, k, &a, &b_t, &mut c, &mut scratch);
        }
        assert_eq!(scratch.panel.capacity(), cap);
    }

    #[test]
    fn scratch_shrinks_after_peak_k_shapes() {
        // Regression for the resize-up-only bug: one peak-k call must not pin
        // its high-water allocation across a stream of much smaller shapes.
        let mut scratch = GemmScratch::default();
        let big_k = 1024;
        let a_big = random(big_k, 11);
        let b_big = random(2 * big_k, 12);
        let mut c_big = vec![0.0; 2];
        gemm_bt_into(1, 2, big_k, &a_big, &b_big, &mut c_big, &mut scratch);
        assert!(scratch.panel_capacity() >= MR * big_k);

        let small_k = 8;
        let a_small = random(small_k, 13);
        let b_small = random(2 * small_k, 14);
        let mut c_small = vec![0.0; 2];
        gemm_bt_into(
            1,
            2,
            small_k,
            &a_small,
            &b_small,
            &mut c_small,
            &mut scratch,
        );
        assert!(
            scratch.panel_capacity() <= SHRINK_FACTOR * MR * small_k,
            "capacity {} retained after small shape",
            scratch.panel_capacity()
        );

        // Interleaving shapes stays correct and re-grows on demand.
        let mut expect_big = vec![0.0; 2];
        gemm_bt_naive(1, 2, big_k, &a_big, &b_big, &mut expect_big);
        for _ in 0..3 {
            gemm_bt_into(1, 2, big_k, &a_big, &b_big, &mut c_big, &mut scratch);
            assert_eq!(c_big, expect_big);
            gemm_bt_into(
                1,
                2,
                small_k,
                &a_small,
                &b_small,
                &mut c_small,
                &mut scratch,
            );
            assert!(scratch.panel_capacity() <= SHRINK_FACTOR * MR * small_k);
        }
    }

    #[test]
    fn scratch_same_shape_never_shrinks_mid_stream() {
        // The hysteresis factor must keep steady-state same-shape streams
        // (the batch engine's per-layer calls) free of churn.
        let mut scratch = GemmScratch::default();
        let (m, n, k) = (8, 16, 64);
        let a = random(m * k, 15);
        let b_t = random(n * k, 16);
        let mut c = vec![0.0; m * n];
        gemm_bt_into(m, n, k, &a, &b_t, &mut c, &mut scratch);
        let cap = scratch.panel_capacity();
        for _ in 0..8 {
            gemm_bt_into(m, n, k, &a, &b_t, &mut c, &mut scratch);
            assert_eq!(scratch.panel_capacity(), cap);
        }
    }

    #[test]
    fn degenerate_shapes() {
        let mut c = vec![1.0; 0];
        gemm_bt(0, 0, 0, &[], &[], &mut c);
        let mut c = vec![9.0; 3];
        gemm_bt(1, 3, 0, &[], &[], &mut c);
        assert_eq!(c, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn shape_mismatch_panics() {
        let mut c = vec![0.0; 4];
        gemm_bt(2, 2, 3, &[0.0; 5], &[0.0; 6], &mut c);
    }
}
