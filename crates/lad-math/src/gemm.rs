//! Cache-blocked GEMM kernels with a bit-exact accumulation contract.
//!
//! Decoding is memory-bandwidth bound: a per-sample `matvec` streams the full
//! weight matrix once per sample per step, so at batch `b` every linear layer
//! pays `b×` the weight traffic for the same arithmetic per byte. These
//! kernels compute whole `batch × out` panels per weight fetch instead — the
//! step-synchronous batch engine stacks the per-sample activation vectors
//! into an `m × k` matrix `A` and runs one `C = A · Bᵀ` product per layer.
//!
//! **Accumulation contract.** Every output element is a dot product
//! accumulated *sequentially in ascending `k` order* into a single
//! accumulator:
//!
//! ```text
//! c[i][j] = ((a[i][0]·b[j][0] + a[i][1]·b[j][1]) + a[i][2]·b[j][2]) + …
//! ```
//!
//! That is exactly the order [`crate::Matrix::matvec`] (a row-wise
//! [`crate::vector::dot`]) uses, so a batched projection is **bit-identical**
//! to `batch` separate per-sample `matvec` calls, and the blocked kernel is
//! bit-identical to a naive triple loop. Blocking therefore only reorders
//! *which elements* are computed when (i/j tiling plus a transposed,
//! `MR`-interleaved A panel that makes the micro-kernel's inner loop a
//! contiguous `chunks_exact` walk) — never the adds within one element.
//! The differential harness (`tests/differential.rs`) and the lad-math
//! proptests pin this contract down.

/// Register-block width over the `m` (batch/row) dimension: the micro-kernel
/// keeps `MR` accumulators live and re-reads each `B` row once per `MR` rows
/// of `A`, so a batch of ≤ `MR` samples streams the weights exactly once.
pub const MR: usize = 8;

/// `C = A · Bᵀ` where `a` is `m × k` row-major, `b_t` is `n × k` row-major
/// (each of its rows is one *output* row of weights — the natural layout of a
/// `Linear`'s `out × in` matrix), and `c` is `m × n` row-major.
///
/// Allocates its packing scratch internally; hot paths should hold a
/// [`GemmScratch`] and call [`gemm_bt_into`].
///
/// # Panics
///
/// Panics if any slice length disagrees with `m`, `n`, `k`.
pub fn gemm_bt(m: usize, n: usize, k: usize, a: &[f32], b_t: &[f32], c: &mut [f32]) {
    gemm_bt_into(m, n, k, a, b_t, c, &mut GemmScratch::default());
}

/// Reusable packing buffer for [`gemm_bt_into`]: holds the transposed,
/// `MR`-interleaved A panel so steady-state GEMM calls never allocate.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    panel: Vec<f32>,
}

/// Allocation-free [`gemm_bt`]: packs row blocks of `a` into `scratch` and
/// re-uses its buffer across calls.
///
/// # Panics
///
/// Panics if any slice length disagrees with `m`, `n`, `k`.
pub fn gemm_bt_into(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b_t: &[f32],
    c: &mut [f32],
    scratch: &mut GemmScratch,
) {
    assert_eq!(a.len(), m * k, "gemm_bt: A size mismatch");
    assert_eq!(b_t.len(), n * k, "gemm_bt: Bᵀ size mismatch");
    assert_eq!(c.len(), m * n, "gemm_bt: C size mismatch");
    if k == 0 {
        c.fill(0.0);
        return;
    }
    scratch.panel.clear();
    scratch.panel.resize(MR * k, 0.0);
    let panel = &mut scratch.panel[..];

    let mut i0 = 0;
    while i0 < m {
        let mr = MR.min(m - i0);
        // Pack the A row block transposed and interleaved: panel[l·MR + ii] =
        // a[i0+ii][l]. The micro-kernel then walks it with chunks_exact(MR),
        // one contiguous MR-vector per k index.
        for (l, chunk) in panel.chunks_exact_mut(MR).enumerate().take(k) {
            for (ii, slot) in chunk[..mr].iter_mut().enumerate() {
                *slot = a[(i0 + ii) * k + l];
            }
        }
        for (j, b_row) in b_t.chunks_exact(k).enumerate().take(n) {
            // MR dot products in lockstep: acc[ii] accumulates c[i0+ii][j]
            // sequentially over ascending l — the bit-exactness contract.
            let mut acc = [0.0f32; MR];
            for (chunk, &w) in panel.chunks_exact(MR).zip(b_row) {
                for (slot, &x) in acc.iter_mut().zip(chunk) {
                    *slot += x * w;
                }
            }
            for (ii, &v) in acc[..mr].iter().enumerate() {
                c[(i0 + ii) * n + j] = v;
            }
        }
        i0 += mr;
    }
}

/// Reference `C = A · Bᵀ` triple loop (one sequential dot per element) — the
/// oracle the blocked kernel must match bit-for-bit. Kept public so tests
/// and benches outside this crate can pin the equivalence too.
pub fn gemm_bt_naive(m: usize, n: usize, k: usize, a: &[f32], b_t: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_bt_naive: A size mismatch");
    assert_eq!(b_t.len(), n * k, "gemm_bt_naive: Bᵀ size mismatch");
    assert_eq!(c.len(), m * n, "gemm_bt_naive: C size mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[i * k + l] * b_t[j * k + l];
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn random(len: usize, seed: u64) -> Vec<f32> {
        Rng::new(seed).normal_vec(len, 1.0)
    }

    #[test]
    fn blocked_equals_naive_bitwise() {
        for (m, n, k, seed) in [
            (1, 1, 1, 1u64),
            (3, 5, 7, 2),
            (8, 8, 8, 3),
            (9, 17, 33, 4),
            (16, 4, 64, 5),
            (2, 256, 128, 6),
        ] {
            let a = random(m * k, seed);
            let b_t = random(n * k, seed + 100);
            let mut blocked = vec![0.0; m * n];
            let mut naive = vec![0.0; m * n];
            gemm_bt(m, n, k, &a, &b_t, &mut blocked);
            gemm_bt_naive(m, n, k, &a, &b_t, &mut naive);
            assert_eq!(blocked, naive, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn batched_rows_equal_per_sample_dots() {
        // The tentpole contract: row i of the GEMM equals the per-sample
        // matvec (sequential dots) of sample i, bit for bit.
        let (m, n, k) = (5, 12, 31);
        let a = random(m * k, 7);
        let b_t = random(n * k, 8);
        let mut c = vec![0.0; m * n];
        gemm_bt(m, n, k, &a, &b_t, &mut c);
        for i in 0..m {
            for j in 0..n {
                let dot = crate::vector::dot(&a[i * k..(i + 1) * k], &b_t[j * k..(j + 1) * k]);
                assert_eq!(c[i * n + j], dot, "({i},{j})");
            }
        }
    }

    #[test]
    fn scratch_is_reused_without_reallocation() {
        let mut scratch = GemmScratch::default();
        let (m, n, k) = (4, 6, 32);
        let a = random(m * k, 9);
        let b_t = random(n * k, 10);
        let mut c = vec![0.0; m * n];
        gemm_bt_into(m, n, k, &a, &b_t, &mut c, &mut scratch);
        let cap = scratch.panel.capacity();
        for _ in 0..5 {
            gemm_bt_into(m, n, k, &a, &b_t, &mut c, &mut scratch);
        }
        assert_eq!(scratch.panel.capacity(), cap);
    }

    #[test]
    fn degenerate_shapes() {
        let mut c = vec![1.0; 0];
        gemm_bt(0, 0, 0, &[], &[], &mut c);
        let mut c = vec![9.0; 3];
        gemm_bt(1, 3, 0, &[], &[], &mut c);
        assert_eq!(c, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn shape_mismatch_panics() {
        let mut c = vec![0.0; 4];
        gemm_bt(2, 2, 3, &[0.0; 5], &[0.0; 6], &mut c);
    }
}
