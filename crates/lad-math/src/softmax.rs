//! Numerically stable softmax and its piecewise-linear counterpart.
//!
//! The attention denominator in paper Eq. 2 is a softmax over scores; LAD
//! replaces the `exp` with the PWL approximation of [`crate::pwl`]. This module
//! provides both so that accuracy claims (PWL softmax MSE < 1e-6, paper
//! Sec. III-F) can be validated directly.

use crate::pwl::PwlExp;

/// Stable softmax: subtracts the maximum before exponentiating.
///
/// Returns an empty vector for empty input.
///
/// # Example
///
/// ```
/// let p = lad_math::softmax::softmax(&[1.0, 2.0, 3.0]);
/// assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// assert!(p[2] > p[1] && p[1] > p[0]);
/// ```
pub fn softmax(scores: &[f32]) -> Vec<f32> {
    if scores.is_empty() {
        return Vec::new();
    }
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = scores.iter().map(|&s| (s - max).exp()).collect();
    let total: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

/// Softmax computed with the piecewise-linear `exp` approximation.
///
/// Scores are shifted by their maximum (so all inputs to the PWL land in
/// `(-inf, 0]`, its domain) and normalised by the PWL-sum. This is exactly the
/// arithmetic LAD performs, so comparing against [`softmax`] bounds the
/// approximation error of the whole scheme absent misidentification.
pub fn softmax_pwl(scores: &[f32], pwl: &PwlExp) -> Vec<f32> {
    if scores.is_empty() {
        return Vec::new();
    }
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f64> = scores
        .iter()
        .map(|&s| pwl.eval(f64::from(s - max)))
        .collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| (e / total) as f32).collect()
}

/// Mean squared error between two probability vectors.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = f64::from(x - y);
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[0.0, 1.0, -1.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[1] > p[0] && p[0] > p[2]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extreme_scores() {
        let p = softmax(&[1000.0, -1000.0]);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!(p[1] < 1e-6);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_empty() {
        assert!(softmax(&[]).is_empty());
        assert!(softmax_pwl(&[], &PwlExp::paper_default()).is_empty());
    }

    #[test]
    fn pwl_softmax_close_to_exact() {
        let pwl = PwlExp::accurate_default();
        let mut rng = Rng::new(21);
        let mut worst = 0.0f64;
        for _ in 0..200 {
            let scores: Vec<f32> = (0..64).map(|_| rng.normal_with(0.0, 2.0) as f32).collect();
            let exact = softmax(&scores);
            let approx = softmax_pwl(&scores, &pwl);
            worst = worst.max(mse(&exact, &approx));
        }
        // Paper Sec. III-F: "less than 1e-6 mean squared error to softmax".
        assert!(worst < 1e-6, "worst mse = {worst}");
    }

    #[test]
    fn pwl_softmax_long_sequence_accuracy() {
        // Realistic decode-time distribution: one dominant score, a long tail
        // of strongly negative ones (the regime the paper's claim targets).
        let pwl = PwlExp::accurate_default();
        let mut rng = Rng::new(22);
        let mut worst = 0.0f64;
        for _ in 0..50 {
            let mut scores = vec![0.0f32];
            scores.extend((0..511).map(|_| rng.normal_with(-6.0, 2.0) as f32));
            worst = worst.max(mse(&softmax(&scores), &softmax_pwl(&scores, &pwl)));
        }
        assert!(worst < 1e-6, "worst mse = {worst}");
    }

    #[test]
    fn pwl_softmax_sums_to_one() {
        let pwl = PwlExp::paper_default();
        let p = softmax_pwl(&[0.0, -2.0, -5.0, -12.0], &pwl);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        // The -12 score falls in the zero interval -> exactly zero weight.
        assert_eq!(p[3], 0.0);
    }

    #[test]
    fn mse_zero_for_identical() {
        assert_eq!(mse(&[0.25, 0.75], &[0.25, 0.75]), 0.0);
    }
}
