//! Int8 weight quantisation with per-output-row scales, plus the GEMM kernels
//! that consume it.
//!
//! A `Linear`'s `out × in` weight matrix quantises row-by-row: each output row
//! `j` stores `q[j][l] = round(w[j][l] / s_j)` as `i8` with one `f32` scale
//! `s_j = max_l |w[j][l]| / 127`, quartering weight traffic for the
//! MLP/projection GEMMs that dominate step time. Activations stay `f32` and
//! the kernels dequantise on the fly (`W8A32`): every MAC promotes the `i8`
//! weight to `f32` **exactly** (all of `-127..=127` is representable),
//! accumulates in ascending-`k` order like [`crate::gemm`], and applies the
//! row scale once at the end. The only approximation is therefore the
//! quantisation itself: `|w - s·q| ≤ s/2` per weight, which gives the output
//! bound `|c_q[i][j]·s_j − c[i][j]| ≤ (s_j/2)·Σ_l |a[i][l]|` up to f32
//! rounding — pinned by the error-bound tests here and the `lad-eval`
//! quality leg.
//!
//! Because the scale multiply is the *last* operation on each element, the
//! scalar and SIMD int8 kernels are bit-identical to each other (same lane =
//! row trick as [`crate::simd`]), and the batched kernel is bit-identical to
//! the per-sample [`matvec_q8_into`] — quantisation changes the numbers once,
//! at quantisation time, never per-call.

use crate::gemm::{pack_panel, GemmScratch, MR};
use crate::matrix::Matrix;
use crate::simd::{active_kernel, Kernel, NR};

/// An `out × in` weight matrix stored as `i8` with one `f32` scale per
/// output row.
#[derive(Debug, Clone, PartialEq)]
pub struct Q8Matrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl Q8Matrix {
    /// Quantises a row-major weight matrix with per-row absmax scales.
    /// An all-zero row gets scale `0.0` (its products are exactly zero).
    pub fn quantize(weight: &Matrix) -> Q8Matrix {
        let (rows, cols) = (weight.rows(), weight.cols());
        let src = weight.as_slice();
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for row in src.chunks_exact(cols.max(1)).take(rows) {
            let absmax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = absmax / 127.0;
            scales.push(scale);
            if scale == 0.0 {
                data.extend(std::iter::repeat_n(0i8, cols));
            } else {
                data.extend(
                    row.iter()
                        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8),
                );
            }
        }
        Q8Matrix {
            rows,
            cols,
            data,
            scales,
        }
    }

    /// Number of output rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of input columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The scale of output row `j`.
    pub fn scale(&self, row: usize) -> f32 {
        self.scales[row]
    }

    /// The quantised weights of output row `j`.
    pub fn row_q(&self, row: usize) -> &[i8] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Storage footprint in bytes (`i8` weights + `f32` scales).
    pub fn bytes(&self) -> usize {
        self.data.len() + 4 * self.scales.len()
    }

    /// Reconstructs the dequantised matrix `s_j · q[j][l]` — the effective
    /// weights the quantised kernels compute with.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for j in 0..self.rows {
            let s = self.scales[j];
            out.extend(self.row_q(j).iter().map(|&q| s * f32::from(q)));
        }
        Matrix::from_flat(self.rows, self.cols, out)
    }
}

/// `C = A · Qᵀ` against int8 per-row-scaled weights; allocates its packing
/// scratch internally. Hot paths should hold a [`GemmScratch`] and call
/// [`gemm_bt_q8_into`].
///
/// # Panics
///
/// Panics if any slice length disagrees with `m`, `n = w.rows()`,
/// `k = w.cols()`.
pub fn gemm_bt_q8(m: usize, a: &[f32], w: &Q8Matrix, c: &mut [f32]) {
    gemm_bt_q8_into(m, a, w, c, &mut GemmScratch::default());
}

/// Allocation-free [`gemm_bt_q8`]: same packed-panel blocking as
/// [`crate::gemm::gemm_bt_into`], dispatched through
/// [`crate::simd::active_kernel`].
///
/// # Panics
///
/// Panics if any slice length disagrees with `m`, `w.rows()`, `w.cols()`.
pub fn gemm_bt_q8_into(
    m: usize,
    a: &[f32],
    w: &Q8Matrix,
    c: &mut [f32],
    scratch: &mut GemmScratch,
) {
    let (n, k) = (w.rows, w.cols);
    assert_eq!(a.len(), m * k, "gemm_bt_q8: A size mismatch");
    assert_eq!(c.len(), m * n, "gemm_bt_q8: C size mismatch");
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let kernel = active_kernel();
    let panel = scratch.prepare(k);
    let mut i0 = 0;
    while i0 < m {
        let mr = MR.min(m - i0);
        pack_panel(panel, a, i0, mr, k);
        match kernel {
            Kernel::Simd => gemm_block_q8_simd(i0, mr, n, k, panel, &w.data, &w.scales, c),
            Kernel::Scalar => gemm_block_q8_scalar(i0, mr, n, k, panel, &w.data, &w.scales, c),
        }
        i0 += mr;
    }
}

/// Per-sample `out = W_q · x`: one sequential ascending-`k` dot per output
/// row, scaled at the end — bit-identical to row `i` of [`gemm_bt_q8`].
///
/// # Panics
///
/// Panics if `x.len() != w.cols()` or `out.len() != w.rows()`.
pub fn matvec_q8_into(w: &Q8Matrix, x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), w.cols, "matvec_q8: x size mismatch");
    assert_eq!(out.len(), w.rows, "matvec_q8: out size mismatch");
    for (j, slot) in out.iter_mut().enumerate() {
        let row = &w.data[j * w.cols..(j + 1) * w.cols];
        let mut acc = 0.0f32;
        for (&x_l, &q_l) in x.iter().zip(row) {
            acc += x_l * f32::from(q_l);
        }
        *slot = acc * w.scales[j];
    }
}

#[allow(clippy::too_many_arguments)]
fn gemm_block_q8_scalar(
    i0: usize,
    mr: usize,
    n: usize,
    k: usize,
    panel: &[f32],
    data: &[i8],
    scales: &[f32],
    c: &mut [f32],
) {
    for (j, q_row) in data.chunks_exact(k).enumerate().take(n) {
        let mut acc = [0.0f32; MR];
        for (chunk, &q) in panel.chunks_exact(MR).zip(q_row) {
            let w = f32::from(q);
            for (slot, &x) in acc.iter_mut().zip(chunk) {
                *slot += x * w;
            }
        }
        let s = scales[j];
        for (ii, &v) in acc[..mr].iter().enumerate() {
            c[(i0 + ii) * n + j] = v * s;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn gemm_block_q8_simd(
    i0: usize,
    mr: usize,
    n: usize,
    k: usize,
    panel: &[f32],
    data: &[i8],
    scales: &[f32],
    c: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::simd_supported() {
        // SAFETY: AVX2 presence just checked; lengths asserted by the caller.
        unsafe { gemm_block_q8_avx2(i0, mr, n, k, panel, data, scales, c) };
        return;
    }
    gemm_block_q8_scalar(i0, mr, n, k, panel, data, scales, c);
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn gemm_block_q8_avx2(
    i0: usize,
    mr: usize,
    n: usize,
    k: usize,
    panel: &[f32],
    data: &[i8],
    scales: &[f32],
    c: &mut [f32],
) {
    use std::arch::x86_64::*;

    // Per-element `f32::from(i8)` inside the broadcast loop compiles to a
    // sign-extend + `vcvtsi2ss` chain whose false output dependency stalls
    // the port — measured ~2.4x slower than the f32 kernel. Instead each
    // KC-element weight tile is widened 8-at-a-time into an f32 staging
    // buffer (`vpmovsxbd` + `vcvtdq2ps`, exact for all of -127..=127), and
    // the inner loop becomes the f32 kernel's plain `vbroadcastss`.
    // Accumulators live across tiles, so the per-element add order is still
    // ascending `k` and the kernel stays bit-identical to the scalar one.
    const KC: usize = 256;
    let p = panel.as_ptr();
    let d = data.as_ptr();
    let mut stage = [0.0f32; NR * KC];
    let mut j = 0;
    while j + NR <= n {
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut l0 = 0;
        while l0 < k {
            let kc = KC.min(k - l0);
            for r in 0..NR {
                widen_i8_row(d.add((j + r) * k + l0), kc, stage.as_mut_ptr().add(r * KC));
            }
            let (w0, w1, w2, w3) = (
                stage.as_ptr(),
                stage.as_ptr().add(KC),
                stage.as_ptr().add(2 * KC),
                stage.as_ptr().add(3 * KC),
            );
            for l in 0..kc {
                let a = _mm256_loadu_ps(p.add((l0 + l) * MR));
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(a, _mm256_set1_ps(*w0.add(l))));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(a, _mm256_set1_ps(*w1.add(l))));
                acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(a, _mm256_set1_ps(*w2.add(l))));
                acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(a, _mm256_set1_ps(*w3.add(l))));
            }
            l0 += kc;
        }
        store_scaled(acc0, scales[j], i0, mr, n, j, c);
        store_scaled(acc1, scales[j + 1], i0, mr, n, j + 1, c);
        store_scaled(acc2, scales[j + 2], i0, mr, n, j + 2, c);
        store_scaled(acc3, scales[j + 3], i0, mr, n, j + 3, c);
        j += NR;
    }
    while j < n {
        let mut acc = _mm256_setzero_ps();
        let mut l0 = 0;
        while l0 < k {
            let kc = KC.min(k - l0);
            widen_i8_row(d.add(j * k + l0), kc, stage.as_mut_ptr());
            let w0 = stage.as_ptr();
            for l in 0..kc {
                let a = _mm256_loadu_ps(p.add((l0 + l) * MR));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(a, _mm256_set1_ps(*w0.add(l))));
            }
            l0 += kc;
        }
        store_scaled(acc, scales[j], i0, mr, n, j, c);
        j += 1;
    }
}

/// Widens `len` int8 weights at `src` to f32 at `dst`, 8 per instruction
/// pair. Integer-to-float conversion of `-127..=127` is exact, so this is a
/// pure representation change — no rounding enters the kernel here.
///
/// # Safety
///
/// `src` must be readable for `len` bytes and `dst` writable for `len`
/// floats; requires AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn widen_i8_row(src: *const i8, len: usize, dst: *mut f32) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 8 <= len {
        let bytes = _mm_loadl_epi64(src.add(i).cast());
        let wide = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
        _mm256_storeu_ps(dst.add(i), wide);
        i += 8;
    }
    while i < len {
        *dst.add(i) = f32::from(*src.add(i));
        i += 1;
    }
}

/// Applies the row scale lane-wise (the per-element *final* multiply, same as
/// the scalar kernel) and scatters into column `j` of `c`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn store_scaled(
    acc: std::arch::x86_64::__m256,
    scale: f32,
    i0: usize,
    mr: usize,
    n: usize,
    j: usize,
    c: &mut [f32],
) {
    use std::arch::x86_64::*;
    let scaled = _mm256_mul_ps(acc, _mm256_set1_ps(scale));
    let mut buf = [0.0f32; MR];
    _mm256_storeu_ps(buf.as_mut_ptr(), scaled);
    for (ii, &v) in buf[..mr].iter().enumerate() {
        c[(i0 + ii) * n + j] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_bt_naive;
    use crate::simd::with_kernel;
    use crate::Rng;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_flat(rows, cols, Rng::new(seed).normal_vec(rows * cols, 1.0))
    }

    #[test]
    fn quantize_row_error_is_within_half_scale() {
        let w = random_matrix(13, 37, 1);
        let q = Q8Matrix::quantize(&w);
        for j in 0..w.rows() {
            let s = q.scale(j);
            for (l, &orig) in w.row(j).iter().enumerate() {
                let deq = s * f32::from(q.row_q(j)[l]);
                assert!(
                    (deq - orig).abs() <= 0.5 * s + 1e-6,
                    "row {j} col {l}: |{deq} - {orig}| > s/2 = {}",
                    0.5 * s
                );
            }
        }
    }

    #[test]
    fn zero_row_gets_zero_scale_and_zero_output() {
        let w = Matrix::from_flat(2, 4, vec![0.0, 0.0, 0.0, 0.0, 1.0, -2.0, 3.0, -4.0]);
        let q = Q8Matrix::quantize(&w);
        assert_eq!(q.scale(0), 0.0);
        assert!(q.row_q(0).iter().all(|&v| v == 0));
        let mut out = vec![9.0f32; 2];
        matvec_q8_into(&q, &[1.0, 1.0, 1.0, 1.0], &mut out);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn gemm_q8_matches_dequantized_exact_gemm_within_rounding() {
        // The quantised kernel against exact GEMM over the *dequantised*
        // weights isolates kernel error (≈ f32 rounding) from quantisation
        // error (s/2 per weight, checked above).
        let (m, n, k) = (5, 12, 31);
        let a = Rng::new(7).normal_vec(m * k, 1.0);
        let w = random_matrix(n, k, 8);
        let q = Q8Matrix::quantize(&w);
        let deq = q.dequantize();
        let mut exact = vec![0.0f32; m * n];
        gemm_bt_naive(m, n, k, &a, deq.as_slice(), &mut exact);
        let mut got = vec![0.0f32; m * n];
        gemm_bt_q8(m, &a, &q, &mut got);
        for (idx, (&g, &e)) in got.iter().zip(&exact).enumerate() {
            // Kernel applies the scale once per element instead of per term;
            // allow a few ULPs of f32 drift.
            let tol = 1e-5 * (1.0 + e.abs());
            assert!((g - e).abs() <= tol, "idx {idx}: {g} vs {e}");
        }
    }

    #[test]
    fn gemm_q8_error_bound_vs_unquantized() {
        // End-to-end bound: |c_q - c| ≤ (s_j/2)·Σ|a_i| + f32 slack.
        let (m, n, k) = (4, 9, 64);
        let a = Rng::new(17).normal_vec(m * k, 1.0);
        let w = random_matrix(n, k, 18);
        let q = Q8Matrix::quantize(&w);
        let mut exact = vec![0.0f32; m * n];
        gemm_bt_naive(m, n, k, &a, w.as_slice(), &mut exact);
        let mut got = vec![0.0f32; m * n];
        gemm_bt_q8(m, &a, &q, &mut got);
        for i in 0..m {
            let a_l1: f32 = a[i * k..(i + 1) * k].iter().map(|v| v.abs()).sum();
            for j in 0..n {
                let bound = 0.5 * q.scale(j) * a_l1 * 1.01 + 1e-4;
                let err = (got[i * n + j] - exact[i * n + j]).abs();
                assert!(err <= bound, "({i},{j}): err {err} > bound {bound}");
            }
        }
    }

    #[test]
    fn scalar_and_simd_q8_kernels_are_bit_identical() {
        for (m, n, k, seed) in [
            (1, 1, 1, 1u64),
            (3, 5, 7, 2),
            (9, 17, 33, 3),
            (8, 512, 256, 4),
        ] {
            let a = Rng::new(seed).normal_vec(m * k, 1.0);
            let w = random_matrix(n, k, seed + 100);
            let q = Q8Matrix::quantize(&w);
            let mut scalar = vec![0.0f32; m * n];
            let mut simd = vec![0.0f32; m * n];
            with_kernel(Kernel::Scalar, || gemm_bt_q8(m, &a, &q, &mut scalar));
            with_kernel(Kernel::Simd, || gemm_bt_q8(m, &a, &q, &mut simd));
            assert_eq!(scalar, simd, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn matvec_q8_is_bit_identical_to_gemm_rows() {
        let (m, n, k) = (6, 14, 29);
        let a = Rng::new(21).normal_vec(m * k, 1.0);
        let w = random_matrix(n, k, 22);
        let q = Q8Matrix::quantize(&w);
        for kernel in [Kernel::Scalar, Kernel::Simd] {
            let mut c = vec![0.0f32; m * n];
            with_kernel(kernel, || gemm_bt_q8(m, &a, &q, &mut c));
            let mut row = vec![0.0f32; n];
            for i in 0..m {
                matvec_q8_into(&q, &a[i * k..(i + 1) * k], &mut row);
                assert_eq!(
                    &c[i * n..(i + 1) * n],
                    &row[..],
                    "row {i} ({})",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn bytes_reports_quarter_weight_traffic() {
        let w = random_matrix(16, 32, 30);
        let q = Q8Matrix::quantize(&w);
        assert_eq!(q.bytes(), 16 * 32 + 4 * 16);
        assert!(q.bytes() * 4 < 16 * 32 * 4 + 4 * 4 * 16 + 1);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn shape_mismatch_panics() {
        let w = random_matrix(3, 4, 31);
        let q = Q8Matrix::quantize(&w);
        let mut c = vec![0.0f32; 3];
        gemm_bt_q8(1, &[0.0; 3], &q, &mut c);
    }
}
