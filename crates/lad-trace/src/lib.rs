//! Synthetic attention-score traces with calibrated numerical locality.
//!
//! The LAD accelerator's performance depends on trace statistics (active
//! positions, mode updates, prefetch hits, directional centers) that the
//! paper measures on real LLM checkpoints. This crate substitutes a
//! parameterised generator calibrated to the paper's reported numbers —
//! see `DESIGN.md` for the substitution rationale.
//!
//! * [`generator`] — the Markov-chain score-trace generator ([`ScoreTrace`],
//!   [`TraceGenerator`]).
//! * [`analysis`] — replay of traces into per-step [`lad_core::StepStats`]
//!   for the accelerator model ([`analyze`]).
//!
//! # Example
//!
//! ```
//! use lad_trace::{analyze, AnalysisConfig, ScoreTrace, TraceConfig};
//!
//! let cfg = TraceConfig::calibrated(512, 64);
//! let trace = ScoreTrace::generate(&cfg);
//! let stats = analyze(&trace, &cfg.pwl, &AnalysisConfig::new(&cfg.pwl));
//! assert_eq!(stats.len(), 64);
//! // Only a small fraction of cached positions is active per step.
//! assert!(stats.last().unwrap().active_fraction() < 0.4);
//! ```

pub mod analysis;
pub mod generator;

pub use analysis::{analyze, AnalysisConfig, CentersModel};
pub use generator::{ScoreTrace, TraceConfig, TraceGenerator};
