//! Replay of score traces into LAD execution statistics.
//!
//! Given a shifted-score trace (from [`crate::generator`] or extracted from a
//! real decode), this module replays the mode-tracking logic of the LAD
//! decoder to produce the per-step [`StepStats`] the accelerator model
//! consumes: active positions `|J|`, mode updates `|U|`, prefetch hits, and a
//! configurable directional-center count model `|C|`.

use std::collections::HashSet;

use lad_core::modes::ModeTracker;
use lad_core::stats::StepStats;
use lad_math::pwl::PwlExp;

use crate::generator::ScoreTrace;

/// Model for the number of directional centers `|C|` as a function of the
/// sequence length.
///
/// The paper shows center traffic is a small, shrinking fraction of the KV
/// cache (Fig. 8 left). Real center counts depend on key geometry, which a
/// score trace does not carry, so the analysis parameterises them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CentersModel {
    /// `|C| = fraction · n`.
    Fraction(f64),
    /// `|C| = coef · n^exponent` — sub-linear growth (keys keep landing near
    /// existing directions as the sequence grows).
    PowerLaw {
        /// Multiplier.
        coef: f64,
        /// Growth exponent in `(0, 1)`.
        exponent: f64,
    },
}

impl CentersModel {
    /// Paper-calibrated default: `|C| ≈ 2·√n` (≈3 % of a 4096-token cache).
    pub fn calibrated() -> CentersModel {
        CentersModel::PowerLaw {
            coef: 2.0,
            exponent: 0.5,
        }
    }

    /// Center count at sequence length `n` (at least 1 for non-empty caches).
    pub fn count(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let c = match *self {
            CentersModel::Fraction(f) => f * n as f64,
            CentersModel::PowerLaw { coef, exponent } => coef * (n as f64).powf(exponent),
        };
        (c.round() as usize).clamp(1, n)
    }
}

/// Configuration for trace replay.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Latest-position window excluded from the caches.
    pub window: usize,
    /// Modes at or above this index are scored exactly (`|M|`).
    pub large_mode_min_index: usize,
    /// Center count model.
    pub centers: CentersModel,
}

impl AnalysisConfig {
    /// Defaults matching the decoder: window 16, exact scores for the top two
    /// intervals, calibrated center growth.
    pub fn new(pwl: &PwlExp) -> AnalysisConfig {
        AnalysisConfig {
            window: lad_core::decoder::DEFAULT_WINDOW,
            large_mode_min_index: pwl.num_intervals().saturating_sub(2),
            centers: CentersModel::calibrated(),
        }
    }
}

/// Replays a trace through LAD's mode-tracking logic, producing one
/// [`StepStats`] per step.
///
/// Identification is oracle (the trace carries the true intervals), so the
/// statistics isolate the algorithmic quantities from approximation effects.
pub fn analyze(trace: &ScoreTrace, pwl: &PwlExp, cfg: &AnalysisConfig) -> Vec<StepStats> {
    let mut tracker = ModeTracker::new(pwl.num_intervals());
    // Row index at which each position was first observed; a position joins
    // the caches once it has more than `window` observations (the decoder
    // ages it at the end of its `window`-th step).
    let mut first_row: Vec<usize> = Vec::new();
    let mut prev_active: HashSet<usize> = HashSet::new();
    let mut out = Vec::with_capacity(trace.steps());

    for (row_idx, row) in trace.rows().iter().enumerate() {
        let n = row.len();
        while tracker.len() < n {
            tracker.push_position();
            first_row.push(row_idx);
        }
        let cached = |i: usize| row_idx - first_row[i] > cfg.window;

        let mut active: Vec<usize> = Vec::new();
        let mut window_count = 0usize;
        let mut mode_updates = 0usize;
        let mut large_mode_exact = 0usize;

        for (i, &s) in row.iter().enumerate() {
            let interval = pwl.interval_of(s);
            if cached(i) {
                if tracker.mode(i) >= cfg.large_mode_min_index {
                    large_mode_exact += 1;
                }
                if interval != tracker.mode(i) {
                    active.push(i);
                    if tracker.record(i, interval) {
                        mode_updates += 1;
                    }
                } else {
                    tracker.record_mode_hit(i);
                }
            } else {
                window_count += 1;
                tracker.record(i, interval);
            }
        }

        let new_active = active.iter().filter(|j| !prev_active.contains(j)).count();
        prev_active = active.iter().copied().collect();

        out.push(StepStats {
            n,
            centers: cfg.centers.count(n),
            large_mode_exact,
            active: active.len(),
            window: window_count,
            mode_updates,
            new_active,
            false_negatives: 0,
            false_positives: 0,
            den_fallbacks: 0,
            // Trace rows carry scores, not vectors: every position is scored,
            // exact fetches are the large-mode + window + correction reads,
            // and byte traffic is dimensionless here (no head dim in a trace).
            keys_scored: n,
            keys_read: large_mode_exact + window_count + active.len(),
            bytes_moved: 0,
            evictions: 0,
            fanout_width: 0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceConfig;
    use lad_core::stats::StatsSummary;

    fn calibrated_stats(stability: f64, prompt: usize, steps: usize) -> Vec<StepStats> {
        let mut cfg = TraceConfig::calibrated(prompt, steps);
        cfg.stability = stability;
        let trace = ScoreTrace::generate(&cfg);
        let acfg = AnalysisConfig::new(&cfg.pwl);
        analyze(&trace, &cfg.pwl, &acfg)
    }

    #[test]
    fn centers_model_counts() {
        assert_eq!(CentersModel::Fraction(0.1).count(100), 10);
        let pl = CentersModel::PowerLaw {
            coef: 2.0,
            exponent: 0.5,
        };
        assert_eq!(pl.count(100), 20);
        assert_eq!(pl.count(0), 0);
        // Clamped to n.
        assert_eq!(CentersModel::Fraction(5.0).count(10), 10);
        assert_eq!(CentersModel::Fraction(1e-9).count(10), 1);
    }

    #[test]
    fn active_fraction_tracks_instability() {
        let stable = calibrated_stats(0.95, 512, 100);
        let unstable = calibrated_stats(0.70, 512, 100);
        let s = StatsSummary::from_steps(&stable);
        let u = StatsSummary::from_steps(&unstable);
        assert!(
            u.mean_active_fraction > s.mean_active_fraction * 2.0,
            "stable {} vs unstable {}",
            s.mean_active_fraction,
            u.mean_active_fraction
        );
    }

    #[test]
    fn hit_ratio_exceeds_paper_threshold() {
        // Paper Sec. IV-D: "the active position hit ratio exceeds 80% in most
        // cases" — calibrated persistence must reproduce that.
        let stats = calibrated_stats(0.85, 1024, 150);
        let summary = StatsSummary::from_steps(&stats);
        assert!(
            summary.mean_hit_ratio > 0.8,
            "hit ratio {}",
            summary.mean_hit_ratio
        );
    }

    #[test]
    fn mode_updates_are_rare() {
        let stats = calibrated_stats(0.85, 512, 150);
        let summary = StatsSummary::from_steps(&stats);
        // |U| must be far smaller than |J| (paper Sec. III-C).
        assert!(summary.mean_mode_updates < summary.mean_active * 0.5);
    }

    #[test]
    fn window_positions_counted() {
        let stats = calibrated_stats(0.85, 64, 40);
        for (row, s) in stats.iter().enumerate() {
            if row <= 16 {
                // Until the prompt positions accumulate window-many
                // observations, nothing is cached.
                assert_eq!(s.window, s.n, "row {row}");
            } else {
                // Steady state: the window spans the latest 17 positions
                // (16 excluded + the one ageing in this step).
                assert_eq!(s.window, 17, "row {row}");
            }
        }
    }

    #[test]
    fn active_subset_of_cached() {
        let stats = calibrated_stats(0.8, 128, 60);
        for s in &stats {
            assert!(s.active <= s.n.saturating_sub(s.window));
            assert!(s.new_active <= s.active);
        }
    }
}
