//! Synthetic attention-score trace generation with calibrated numerical
//! locality.
//!
//! The paper's performance results depend on the *statistics* of real LLM
//! attention traces: top-1 interval probabilities of 74–90 % (Fig. 2b),
//! active-position fractions of a few percent, >80 % prefetch hit ratios
//! (Sec. IV-D). Real checkpoints are unavailable offline, so this generator
//! synthesises shifted-score streams with those statistics as *controllable
//! parameters*, defaulting to paper-calibrated values.
//!
//! Each position runs a two-state Markov chain — *home* (score inside its
//! base interval) or *away* (score in an excursion interval, usually
//! adjacent). Excursion persistence produces the temporal locality of active
//! positions that prefetching exploits; slow base-interval drift produces the
//! mode updates `U`.

use lad_math::pwl::PwlExp;
use lad_math::Rng;

/// Configuration of a synthetic score trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Prompt length: positions that exist before the first decode step.
    pub prompt_len: usize,
    /// Number of decode steps to generate (one new position per step).
    pub steps: usize,
    /// Interval partition the scores are calibrated against.
    pub pwl: PwlExp,
    /// Stationary probability of a position's score being in its base
    /// interval (the Fig. 2b top-1 target). Paper: 0.74–0.90.
    pub stability: f64,
    /// Probability an excursion lands in an interval adjacent to the base
    /// (the paper observes top-2 intervals neighbour top-1).
    pub adjacency: f64,
    /// Per-step probability a position's base interval drifts permanently to
    /// a neighbour (drives the mode-update set `U`).
    pub drift_prob: f64,
    /// Probability an away position stays away next step (drives the
    /// temporal locality / prefetch hit ratio; paper reports >80 % hits).
    pub persistence: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TraceConfig {
    /// Paper-calibrated defaults for a given prompt length and step count.
    pub fn calibrated(prompt_len: usize, steps: usize) -> TraceConfig {
        TraceConfig {
            prompt_len,
            steps,
            pwl: PwlExp::accurate_default(),
            stability: 0.85,
            adjacency: 0.9,
            drift_prob: 0.002,
            persistence: 0.85,
            seed: 0x1ad,
        }
    }
}

/// A generated trace: one row of shifted scores (`sᵢ − m ≤ 0`) per decode
/// step, rows growing by one position per step.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreTrace {
    rows: Vec<Vec<f64>>,
}

impl ScoreTrace {
    /// Generates a trace from the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or `stability`, `adjacency` or `persistence`
    /// are outside `(0, 1]`.
    pub fn generate(cfg: &TraceConfig) -> ScoreTrace {
        assert!(cfg.steps > 0, "trace: steps must be positive");
        for (name, v) in [
            ("stability", cfg.stability),
            ("adjacency", cfg.adjacency),
            ("persistence", cfg.persistence),
        ] {
            assert!(v > 0.0 && v <= 1.0, "trace: {name} must be in (0, 1]");
        }
        let mut gen = TraceGenerator::new(cfg);
        let rows = (0..cfg.steps).map(|_| gen.next_row()).collect();
        ScoreTrace { rows }
    }

    /// The score rows, one per step.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Number of steps.
    pub fn steps(&self) -> usize {
        self.rows.len()
    }

    /// Final sequence length.
    pub fn final_len(&self) -> usize {
        self.rows.last().map_or(0, Vec::len)
    }
}

/// Per-position Markov state.
#[derive(Debug, Clone)]
struct PositionState {
    base: usize,
    away: bool,
    away_interval: usize,
}

/// Incremental trace generator (exposed for streaming use — the accelerator
/// simulator can consume rows without materialising the whole trace).
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    cfg: TraceConfig,
    rng: Rng,
    states: Vec<PositionState>,
    /// P(home -> away) derived from the stationary stability target.
    p_out: f64,
}

impl TraceGenerator {
    /// Creates a generator; positions for the prompt are initialised
    /// immediately.
    pub fn new(cfg: &TraceConfig) -> TraceGenerator {
        // Stationary away probability q = 1 - stability under
        // P(away->away) = persistence, P(home->away) = p_out:
        //   q = p_out · (1-q) + persistence · q
        let q = 1.0 - cfg.stability;
        let p_out = (q * (1.0 - cfg.persistence) / (1.0 - q)).clamp(0.0, 1.0);
        let mut gen = TraceGenerator {
            cfg: cfg.clone(),
            rng: Rng::new(cfg.seed),
            states: Vec::new(),
            p_out,
        };
        for _ in 0..cfg.prompt_len {
            gen.push_position();
        }
        gen
    }

    /// Base-interval distribution: most positions live deep (scores far from
    /// the maximum), a thin head lives near 0 — matching decode-time score
    /// shapes where only a few positions dominate.
    fn sample_base_interval(&mut self) -> usize {
        let intervals = self.cfg.pwl.num_intervals();
        let weights: Vec<f64> = (0..intervals)
            .map(|i| {
                // Exponentially fewer positions near interval I-1 (score ~0),
                // with a mild floor so every interval is populated.
                let depth = (intervals - 1 - i) as f64;
                0.03 + (-0.35 * (intervals as f64 - 1.0 - depth)).exp()
            })
            .collect();
        self.rng.weighted_index(&weights)
    }

    fn push_position(&mut self) {
        let base = self.sample_base_interval();
        self.states.push(PositionState {
            base,
            away: false,
            away_interval: base,
        });
    }

    fn excursion_interval(&mut self, base: usize) -> usize {
        let intervals = self.cfg.pwl.num_intervals();
        if self.rng.chance(self.cfg.adjacency) {
            // Neighbour excursion.
            if base == 0 {
                1.min(intervals - 1)
            } else if base == intervals - 1 || self.rng.chance(0.5) {
                base - 1
            } else {
                base + 1
            }
        } else {
            self.rng.index(intervals)
        }
    }

    /// Samples a score uniformly inside `interval` (the unbounded tail uses a
    /// finite band below its upper bound).
    fn sample_score_in(&mut self, interval: usize) -> f64 {
        let (lo, hi) = self.cfg.pwl.interval_bounds(interval);
        let lo = if lo.is_finite() { lo } else { hi - 4.0 };
        self.rng.range_f64(lo, hi)
    }

    /// Advances one decode step and returns the row of shifted scores.
    pub fn next_row(&mut self) -> Vec<f64> {
        // One new position per decode step.
        self.push_position();
        let intervals = self.cfg.pwl.num_intervals();
        let mut row = Vec::with_capacity(self.states.len());
        for idx in 0..self.states.len() {
            // Base drift.
            if self.rng.chance(self.cfg.drift_prob) {
                let base = self.states[idx].base;
                let new_base = if base == 0 {
                    1.min(intervals - 1)
                } else if base == intervals - 1 || self.rng.chance(0.5) {
                    base - 1
                } else {
                    base + 1
                };
                self.states[idx].base = new_base;
            }
            // Markov transition.
            let away = self.states[idx].away;
            let next_away = if away {
                self.rng.chance(self.cfg.persistence)
            } else {
                self.rng.chance(self.p_out)
            };
            if next_away && !away {
                let base = self.states[idx].base;
                self.states[idx].away_interval = self.excursion_interval(base);
            }
            self.states[idx].away = next_away;
            let interval = if next_away {
                self.states[idx].away_interval
            } else {
                self.states[idx].base
            };
            row.push(self.sample_score_in(interval));
        }
        row
    }

    /// Current number of positions.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` before any positions exist.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_core::locality::LocalityAnalyzer;

    #[test]
    fn trace_shape() {
        let cfg = TraceConfig::calibrated(100, 50);
        let trace = ScoreTrace::generate(&cfg);
        assert_eq!(trace.steps(), 50);
        assert_eq!(trace.rows()[0].len(), 101);
        assert_eq!(trace.final_len(), 150);
    }

    #[test]
    fn scores_are_non_positive() {
        let trace = ScoreTrace::generate(&TraceConfig::calibrated(20, 30));
        for row in trace.rows() {
            for &s in row {
                assert!(s <= 0.0, "score {s} out of domain");
            }
        }
    }

    #[test]
    fn determinism_under_seed() {
        let cfg = TraceConfig::calibrated(10, 10);
        assert_eq!(ScoreTrace::generate(&cfg), ScoreTrace::generate(&cfg));
        let mut other = cfg.clone();
        other.seed = 99;
        assert_ne!(ScoreTrace::generate(&cfg), ScoreTrace::generate(&other));
    }

    #[test]
    fn locality_matches_stability_target() {
        let mut cfg = TraceConfig::calibrated(256, 200);
        cfg.stability = 0.85;
        let trace = ScoreTrace::generate(&cfg);
        let mut analyzer = LocalityAnalyzer::new(cfg.pwl.clone());
        for row in trace.rows() {
            analyzer.observe_step(row);
        }
        let report = analyzer.report(50);
        // Top-1 close to the stationary stability (drift adds slack).
        assert!((report.top1 - 0.85).abs() < 0.08, "top1 = {}", report.top1);
        // Paper: top-1 + top-2 exceeds 95 %.
        assert!(report.top2 > 0.93, "top2 = {}", report.top2);
    }

    #[test]
    fn higher_stability_raises_top1() {
        let run = |stability: f64| {
            let mut cfg = TraceConfig::calibrated(256, 150);
            cfg.stability = stability;
            let trace = ScoreTrace::generate(&cfg);
            let mut analyzer = LocalityAnalyzer::new(cfg.pwl.clone());
            for row in trace.rows() {
                analyzer.observe_step(row);
            }
            analyzer.report(50).top1
        };
        assert!(run(0.95) > run(0.75) + 0.05);
    }

    #[test]
    fn streaming_generator_matches_batch() {
        let cfg = TraceConfig::calibrated(16, 8);
        let batch = ScoreTrace::generate(&cfg);
        let mut gen = TraceGenerator::new(&cfg);
        for row in batch.rows() {
            assert_eq!(&gen.next_row(), row);
        }
    }

    #[test]
    #[should_panic(expected = "stability")]
    fn invalid_stability_rejected() {
        let mut cfg = TraceConfig::calibrated(4, 4);
        cfg.stability = 1.5;
        ScoreTrace::generate(&cfg);
    }
}
