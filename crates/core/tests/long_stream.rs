//! Long-stream regression: past the hardware counter capacity (uint12,
//! 4095) position modes must still follow the stream. Without counter
//! aging, a saturated mode counter can never be strictly exceeded and every
//! early position's mode freezes ~4k steps in (paper Sec. IV-C packs `cnt`
//! into 12 bits of the `G` tensor).

use lad_core::decoder::{LadAttention, LadConfig};
use lad_math::pwl::PwlExp;
use lad_math::Rng;

#[test]
fn modes_still_change_past_counter_capacity() {
    let d = 4;
    let mut head = LadAttention::new(d, LadConfig::new(PwlExp::accurate_default()));
    let mut rng = Rng::new(0x10c5);
    // Two orthogonal key groups; the query attends to group X long enough to
    // saturate the early positions' counters, then switches to group Y so
    // every cached position's score interval flips.
    let ex = [1.0f32, 0.0, 0.0, 0.0];
    let ey = [0.0f32, 1.0, 0.0, 0.0];
    let phase_a = 4150usize;
    let phase_b = 2300usize;
    let mut tail_updates = 0usize;
    for step in 0..phase_a + phase_b {
        let q = if step < phase_a {
            [8.0f32, 0.0, 0.0, 0.0]
        } else {
            [0.0f32, 8.0, 0.0, 0.0]
        };
        let k = if step % 2 == 0 { ex } else { ey };
        let v = rng.normal_vec(d, 1.0);
        let out = head.step(&q, &k, &v);
        assert!(
            out.output.iter().all(|x| x.is_finite()),
            "non-finite output at step {step}"
        );
        if step >= phase_a {
            tail_updates += out.stats.mode_updates;
        }
    }
    assert!(
        tail_updates > 0,
        "no mode updates after the regime switch: modes frozen past counter saturation"
    );
}
