//! Property-based tests of the LAD core invariants.

use lad_core::cache::IntermediateCache;
use lad_core::decoder::{LadAttention, LadConfig};
use lad_core::kv::KvCache;
use lad_core::modes::ModeTracker;
use lad_core::reference;
use lad_math::pwl::PwlExp;
use lad_math::{vector, Rng};
use proptest::prelude::*;

proptest! {
    /// The fundamental exactness invariant: with oracle identification, LAD's
    /// cached computation (Eq. 4) equals direct PWL attention (Eq. 3) at
    /// every step of any stream.
    #[test]
    fn oracle_lad_equals_direct_pwl(seed in 0u64..200, steps in 20usize..60) {
        let d = 8;
        let pwl = PwlExp::accurate_default();
        let mut head = LadAttention::new(d, LadConfig::oracle(pwl.clone()));
        let mut shadow = KvCache::new(d);
        let mut rng = Rng::new(seed);
        for _ in 0..steps {
            let q = rng.normal_vec(d, 1.0);
            let k = rng.normal_vec(d, 1.0);
            let v = rng.normal_vec(d, 1.0);
            shadow.push(&k, &v);
            let lad = head.step(&q, &k, &v).output;
            let direct = reference::pwl_attention(&q, &shadow, &pwl);
            prop_assert!(vector::relative_l2(&lad, &direct) < 1e-4);
        }
    }

    /// Approximate identification only loses accuracy through false
    /// negatives; with diagnostics the error correlates with them, and
    /// without any false negatives the output matches the oracle path.
    #[test]
    fn misidentification_is_the_only_error_source(seed in 0u64..100) {
        let d = 8;
        let pwl = PwlExp::accurate_default();
        let mut cfg = LadConfig::new(pwl.clone());
        cfg.diagnostics = true;
        let mut head = LadAttention::new(d, cfg);
        let mut shadow = KvCache::new(d);
        let mut rng = Rng::new(seed);
        for _ in 0..40 {
            let q = rng.normal_vec(d, 1.0);
            let k = rng.normal_vec(d, 1.0);
            let v = rng.normal_vec(d, 1.0);
            shadow.push(&k, &v);
            let out = head.step(&q, &k, &v);
            if out.stats.false_negatives == 0 {
                let direct = reference::pwl_attention(&q, &shadow, &pwl);
                prop_assert!(
                    vector::relative_l2(&out.output, &direct) < 1e-4,
                    "fn=0 but output diverged"
                );
            }
        }
    }

    /// Intermediate caches maintained by insert + delta updates equal caches
    /// rebuilt from scratch with the final coefficients.
    #[test]
    fn cache_updates_equal_rebuild(
        seed in 0u64..500,
        entries in 1usize..12,
        dim in 1usize..8,
    ) {
        let mut rng = Rng::new(seed);
        let mut incremental = IntermediateCache::new(dim);
        let mut finals = Vec::new();
        for _ in 0..entries {
            let k = rng.normal_vec(dim, 1.0);
            let v = rng.normal_vec(dim, 1.0);
            let (a0, b0) = (rng.range_f64(-0.5, 0.8), rng.range_f64(-0.2, 0.4));
            incremental.insert(a0, b0, &k, &v);
            // Possibly apply one or two mode changes.
            let mut a = a0;
            let mut b = b0;
            for _ in 0..rng.index(3) {
                let (a1, b1) = (rng.range_f64(-0.5, 0.8), rng.range_f64(-0.2, 0.4));
                incremental.delta_update(a1 - a, b1 - b, &k, &v);
                a = a1;
                b = b1;
            }
            finals.push((a, b, k, v));
        }
        let mut rebuilt = IntermediateCache::new(dim);
        for (a, b, k, v) in &finals {
            rebuilt.insert(*a, *b, k, v);
        }
        let q: Vec<f32> = (0..dim).map(|i| (i as f32).sin()).collect();
        let m = 0.37;
        let (num_i, den_i) = incremental.evaluate(&q, m);
        let (num_r, den_r) = rebuilt.evaluate(&q, m);
        prop_assert!((den_i - den_r).abs() < 1e-6);
        for (x, y) in num_i.iter().zip(&num_r) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    /// The tracker's mode always carries a maximal counter.
    #[test]
    fn mode_is_always_argmax(
        seed in 0u64..500,
        intervals in 2usize..8,
        records in 1usize..200,
    ) {
        let mut rng = Rng::new(seed);
        let mut tracker = ModeTracker::new(intervals);
        tracker.push_position();
        for _ in 0..records {
            tracker.record(0, rng.index(intervals));
            let counts = tracker.counts(0);
            let max = *counts.iter().max().unwrap();
            prop_assert_eq!(counts[tracker.mode(0)], max);
        }
    }

    /// Step statistics are internally consistent on arbitrary streams.
    #[test]
    fn step_stats_are_consistent(seed in 0u64..100, window in 2usize..24) {
        let d = 6;
        let mut cfg = LadConfig::new(PwlExp::accurate_default());
        cfg.window = window;
        let mut head = LadAttention::new(d, cfg);
        let mut rng = Rng::new(seed);
        let mut prev_n = 0;
        for _ in 0..50 {
            let out = head.step(
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
                &rng.normal_vec(d, 1.0),
            );
            let s = out.stats;
            prop_assert_eq!(s.n, prev_n + 1);
            prop_assert_eq!(s.window, s.n.min(window + 1));
            prop_assert!(s.active <= s.n - s.window);
            prop_assert!(s.new_active <= s.active);
            prop_assert!(s.mode_updates <= s.active);
            prop_assert!(out.output.iter().all(|v| v.is_finite()));
            prev_n = s.n;
        }
    }

    /// Attention outputs stay within the convex hull bounds of the values
    /// up to PWL slack: each coordinate lies within [min, max] of the value
    /// coordinates, slightly widened.
    #[test]
    fn output_within_value_hull(seed in 0u64..200) {
        let d = 4;
        let mut head = LadAttention::new(d, LadConfig::oracle(PwlExp::accurate_default()));
        let mut rng = Rng::new(seed);
        let mut lo = vec![f32::INFINITY; d];
        let mut hi = vec![f32::NEG_INFINITY; d];
        for _ in 0..30 {
            let v = rng.normal_vec(d, 1.0);
            for i in 0..d {
                lo[i] = lo[i].min(v[i]);
                hi[i] = hi[i].max(v[i]);
            }
            let out = head.step(&rng.normal_vec(d, 1.0), &rng.normal_vec(d, 1.0), &v);
            for i in 0..d {
                let slack = 0.1 * (hi[i] - lo[i]) + 0.05;
                prop_assert!(out.output[i] >= lo[i] - slack && out.output[i] <= hi[i] + slack,
                    "coord {i}: {} not in [{}, {}]", out.output[i], lo[i], hi[i]);
            }
        }
    }
}
