//! The six fixed-size intermediate caches `A`–`F` (paper Eq. 4–6).
//!
//! With PWL coefficients `(aᵢ*, bᵢ*)` of each position's mode interval, the
//! mode-based part of the attention output is
//!
//! ```text
//! numerator   = q·A − m·B + C      A = Σ aᵢ* kᵢᵀvᵢ   B = Σ aᵢ* vᵢ   C = Σ bᵢ* vᵢ
//! denominator = q·D − m·E + F      D = Σ aᵢ* kᵢᵀ     E = Σ aᵢ*     F = Σ bᵢ*
//! ```
//!
//! Total size `d² + 3d + 2` — *independent of the sequence length*, which is
//! what makes LAD's KV-cache traffic sub-linear. When a position's mode
//! changes, its contribution is corrected in place with the coefficient
//! deltas `(α, β)` (Eq. 6), never requiring other positions' keys or values.

use lad_math::Matrix;

/// Mode-based intermediate caches of one attention head.
///
/// Internally kept in `f64` so that the exactness invariant (cached
/// evaluation ≡ direct PWL attention) is tight; the hardware keeps them in
/// fp16 SRAM with wide accumulators.
///
/// # Example
///
/// ```
/// use lad_core::cache::IntermediateCache;
///
/// let mut cache = IntermediateCache::new(2);
/// cache.insert(0.5, 0.1, &[1.0, 0.0], &[0.0, 2.0]);
/// let (num, den) = cache.evaluate(&[1.0, 1.0], 0.0);
/// // numerator = a*(q·k)·v + b*·v = 0.5·1·[0,2] + 0.1·[0,2] = [0, 1.2]
/// assert!((num[1] - 1.2).abs() < 1e-9);
/// // denominator = a*(q·k) + b* = 0.6
/// assert!((den - 0.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IntermediateCache {
    dim: usize,
    /// `A[r][c] = Σ aᵢ* kᵢ[r] vᵢ[c]` (row-major, d×d).
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    d: Vec<f64>,
    e: f64,
    f: f64,
}

impl IntermediateCache {
    /// Creates zeroed caches for head dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> IntermediateCache {
        assert!(dim > 0, "IntermediateCache: dim must be positive");
        IntermediateCache {
            dim,
            a: vec![0.0; dim * dim],
            b: vec![0.0; dim],
            c: vec![0.0; dim],
            d: vec![0.0; dim],
            e: 0.0,
            f: 0.0,
        }
    }

    /// Head dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Adds a position's contribution under mode coefficients `(a_star,
    /// b_star)` (paper Eq. 5).
    ///
    /// # Panics
    ///
    /// Panics if `key` or `value` length differs from `dim`.
    pub fn insert(&mut self, a_star: f64, b_star: f64, key: &[f32], value: &[f32]) {
        self.apply(a_star, b_star, key, value);
    }

    /// Corrects a position's contribution after a mode change using the
    /// coefficient deltas `alpha = a_new − a_old`, `beta = b_new − b_old`
    /// (paper Eq. 6). Identical arithmetic to [`IntermediateCache::insert`];
    /// the distinct name mirrors the paper's two operations.
    ///
    /// # Panics
    ///
    /// Panics if `key` or `value` length differs from `dim`.
    pub fn delta_update(&mut self, alpha: f64, beta: f64, key: &[f32], value: &[f32]) {
        self.apply(alpha, beta, key, value);
    }

    fn apply(&mut self, wa: f64, wb: f64, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.dim, "cache: key dim mismatch");
        assert_eq!(value.len(), self.dim, "cache: value dim mismatch");
        for (r, &kr) in key.iter().enumerate() {
            let factor = wa * f64::from(kr);
            if factor != 0.0 {
                let row = &mut self.a[r * self.dim..(r + 1) * self.dim];
                for (slot, &vc) in row.iter_mut().zip(value) {
                    *slot += factor * f64::from(vc);
                }
            }
        }
        for ((bb, cc), &vc) in self.b.iter_mut().zip(&mut self.c).zip(value) {
            *bb += wa * f64::from(vc);
            *cc += wb * f64::from(vc);
        }
        for (dd, &kr) in self.d.iter_mut().zip(key) {
            *dd += wa * f64::from(kr);
        }
        self.e += wa;
        self.f += wb;
    }

    /// Evaluates the mode-based numerator and denominator (the cache terms of
    /// paper Eq. 4) for a scaled query and running maximum `m`:
    /// `(q·A − m·B + C, q·D − m·E + F)`.
    ///
    /// # Panics
    ///
    /// Panics if `q_scaled.len() != dim`.
    pub fn evaluate(&self, q_scaled: &[f32], m: f64) -> (Vec<f64>, f64) {
        let mut num = vec![0.0f64; self.dim];
        let den = self.evaluate_into(q_scaled, m, &mut num);
        (num, den)
    }

    /// Allocation-free variant of [`IntermediateCache::evaluate`]: writes the
    /// numerator into `num` (resized/zeroed as needed, so a reused scratch
    /// buffer never re-allocates after the first step) and returns the
    /// denominator.
    ///
    /// # Panics
    ///
    /// Panics if `q_scaled.len() != dim`.
    pub fn evaluate_into(&self, q_scaled: &[f32], m: f64, num: &mut Vec<f64>) -> f64 {
        assert_eq!(q_scaled.len(), self.dim, "cache: query dim mismatch");
        num.clear();
        num.resize(self.dim, 0.0);
        for (r, &qr) in q_scaled.iter().enumerate() {
            let qr = f64::from(qr);
            if qr != 0.0 {
                let row = &self.a[r * self.dim..(r + 1) * self.dim];
                for (slot, &arc) in num.iter_mut().zip(row) {
                    *slot += qr * arc;
                }
            }
        }
        for ((slot, &bb), &cc) in num.iter_mut().zip(&self.b).zip(&self.c) {
            *slot += cc - m * bb;
        }
        let mut den = self.f - m * self.e;
        for (&qr, &dd) in q_scaled.iter().zip(&self.d) {
            den += f64::from(qr) * dd;
        }
        den
    }

    /// The `A` cache as a matrix (for diagnostics and tests).
    pub fn a_matrix(&self) -> Matrix {
        Matrix::from_flat(
            self.dim,
            self.dim,
            self.a.iter().map(|&v| v as f32).collect(),
        )
    }

    /// The `B`, `C`, `D` vector caches and `E`, `F` scalars.
    pub fn small_caches(&self) -> (&[f64], &[f64], &[f64], f64, f64) {
        (&self.b, &self.c, &self.d, self.e, self.f)
    }

    /// Byte size of the caches under fp16 storage: `(d² + 3d + 2) · 2`
    /// (paper Sec. III-B).
    pub fn fp16_bytes(&self) -> usize {
        (self.dim * self.dim + 3 * self.dim + 2) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recomputes the caches from scratch and compares with the maintained
    /// ones — the fundamental consistency invariant.
    fn rebuild(dim: usize, entries: &[(f64, f64, Vec<f32>, Vec<f32>)]) -> IntermediateCache {
        let mut cache = IntermediateCache::new(dim);
        for (a, b, k, v) in entries {
            cache.insert(*a, *b, k, v);
        }
        cache
    }

    #[test]
    fn insert_matches_definition() {
        let mut cache = IntermediateCache::new(2);
        cache.insert(2.0, 3.0, &[1.0, -1.0], &[0.5, 4.0]);
        let (b, c, d, e, f) = cache.small_caches();
        assert_eq!(b, &[1.0, 8.0]); // a*·v
        assert_eq!(c, &[1.5, 12.0]); // b*·v
        assert_eq!(d, &[2.0, -2.0]); // a*·k
        assert_eq!(e, 2.0);
        assert_eq!(f, 3.0);
        // A = a* kᵀ v
        let a = cache.a_matrix();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 8.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(1, 1), -8.0);
    }

    #[test]
    fn evaluate_equals_direct_sum() {
        // num must equal Σ (a*(q·k − m) + b*) v, den likewise without v.
        let entries = vec![
            (0.7, 0.05, vec![1.0f32, 2.0], vec![3.0f32, -1.0]),
            (0.2, 0.30, vec![-1.0f32, 0.5], vec![0.0f32, 1.0]),
            (0.0, 0.00, vec![5.0f32, 5.0], vec![9.0f32, 9.0]),
        ];
        let cache = rebuild(2, &entries);
        let q = [0.5f32, -1.5];
        let m = 0.8;
        let (num, den) = cache.evaluate(&q, m);
        let mut exp_num = [0.0f64; 2];
        let mut exp_den = 0.0f64;
        for (a, b, k, v) in &entries {
            let s: f64 = q
                .iter()
                .zip(k)
                .map(|(x, y)| f64::from(*x) * f64::from(*y))
                .sum();
            let w = a * (s - m) + b;
            exp_den += w;
            for (slot, &vc) in exp_num.iter_mut().zip(v) {
                *slot += w * f64::from(vc);
            }
        }
        assert!((den - exp_den).abs() < 1e-9);
        for (got, want) in num.iter().zip(&exp_num) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn delta_update_equals_reinsertion() {
        // Inserting with old coefficients then delta-updating must equal
        // inserting with the new coefficients directly.
        let k = vec![1.0f32, -2.0, 0.5];
        let v = vec![0.25f32, 4.0, -1.0];
        let (a_old, b_old) = (0.3, 0.02);
        let (a_new, b_new) = (0.55, 0.11);

        let mut updated = IntermediateCache::new(3);
        updated.insert(a_old, b_old, &k, &v);
        updated.delta_update(a_new - a_old, b_new - b_old, &k, &v);

        let mut direct = IntermediateCache::new(3);
        direct.insert(a_new, b_new, &k, &v);

        let q = [1.0f32, 1.0, 1.0];
        let (nu, du) = updated.evaluate(&q, 0.3);
        let (nd, dd) = direct.evaluate(&q, 0.3);
        assert!((du - dd).abs() < 1e-12);
        for (x, y) in nu.iter().zip(&nd) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_coefficient_interval_contributes_nothing() {
        let mut cache = IntermediateCache::new(2);
        cache.insert(0.0, 0.0, &[7.0, 7.0], &[7.0, 7.0]);
        let (num, den) = cache.evaluate(&[1.0, 1.0], 0.0);
        assert_eq!(den, 0.0);
        assert_eq!(num, vec![0.0, 0.0]);
    }

    #[test]
    fn fp16_bytes_formula() {
        assert_eq!(
            IntermediateCache::new(128).fp16_bytes(),
            (128 * 128 + 3 * 128 + 2) * 2
        );
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_rejected() {
        IntermediateCache::new(0);
    }
}
